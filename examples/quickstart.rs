//! Quickstart: value a training set for a KNN classifier in four lines.
//!
//! Generates a synthetic 3-class embedding, computes exact Shapley values
//! (Theorem 1 of Jia et al. 2019) for every training point with respect to a
//! held-out test set, and shows the values are a true Shapley allocation
//! (group rationality) before listing the most and least valuable points.
//!
//! Run with: `cargo run --release --example quickstart`

use knnshap::datasets::synth::blobs::{self, BlobConfig};
use knnshap::valuation::axioms::check_efficiency;
use knnshap::valuation::utility::{KnnClassUtility, Utility};
use knnshap::valuation::{KnnShapley, Method};

fn main() {
    // 1. A dataset: 2000 points in 16-d, 4 classes, plus 50 test queries.
    let cfg = BlobConfig {
        n: 2000,
        dim: 16,
        n_classes: 4,
        cluster_std: 1.2,
        center_scale: 2.0,
        seed: 7,
    };
    let train = blobs::generate(&cfg);
    let test = blobs::queries(&cfg, 50, 99);

    // 2. Exact Shapley values, K = 5, all cores.
    let k = 5;
    let sv = KnnShapley::new(&train, &test)
        .k(k)
        .method(Method::Exact)
        .run()
        .expect("valid configuration");

    // 3. The values are a genuine Shapley allocation: they sum to the KNN
    //    utility of the full training set (group rationality).
    let utility = KnnClassUtility::unweighted(&train, &test, k);
    let eff = check_efficiency(&sv, &utility, 1e-9);
    println!(
        "group rationality: Σ sᵢ = {:.6} = ν(I) = {:.6} — {}",
        sv.total(),
        utility.grand(),
        if eff.holds { "holds" } else { "VIOLATED" }
    );

    // 4. Inspect the extremes.
    println!("\nmost valuable training points:");
    for &i in &sv.top_k(5) {
        println!("  #{i:<5} class {} value {:+.6}", train.y[i], sv[i]);
    }
    println!("\nleast valuable training points (candidates for review):");
    for &i in &sv.bottom_k(5) {
        println!("  #{i:<5} class {} value {:+.6}", train.y[i], sv[i]);
    }

    // 5. Same valuation, sublinear: the Theorem 2 truncated approximation
    //    touches only the K* = max(K, 1/ε) nearest neighbors per query.
    let approx = KnnShapley::new(&train, &test)
        .k(k)
        .method(Method::Truncated { eps: 0.05 })
        .run()
        .expect("valid configuration");
    println!(
        "\ntruncated (ε = 0.05) max deviation from exact: {:.6} (guaranteed ≤ 0.05)",
        sv.max_abs_diff(&approx)
    );
}
