//! Data-quality auditing with Shapley values.
//!
//! The paper argues task-specific valuation defends against noisy and
//! adversarial contributions: "the 'bad' training points will naturally have
//! low SVs because they contribute little to boosting the performance of the
//! model" (§7). This example corrupts 10% of the labels, values every point
//! exactly, and measures how well the bottom of the value ranking recovers
//! the corrupted points — precision@|flipped| far above the 10% random
//! baseline.
//!
//! Run with: `cargo run --release --example label_noise_audit`

use knnshap::datasets::noise::{flip_labels, inject_poison};
use knnshap::datasets::synth::blobs::{self, BlobConfig};
use knnshap::valuation::analysis::DetectionCurve;
use knnshap::valuation::exact_unweighted::knn_class_shapley;

fn main() {
    let cfg = BlobConfig {
        n: 3000,
        dim: 24,
        n_classes: 5,
        cluster_std: 1.0,
        center_scale: 2.5,
        seed: 31,
    };
    let clean = blobs::generate(&cfg);
    let test = blobs::queries(&cfg, 100, 8);

    let noise_fraction = 0.10;
    let (noisy, flipped) = flip_labels(&clean, noise_fraction, 77);
    println!(
        "corrupted {} of {} training labels ({:.0}%)",
        flipped.len(),
        noisy.len(),
        noise_fraction * 100.0
    );

    let k = 5;
    let sv = knn_class_shapley(&noisy, &test, k);

    // How well does ascending-value inspection recover the corrupted set?
    let mut is_bad = vec![false; noisy.len()];
    for &i in &flipped {
        is_bad[i] = true;
    }
    let curve = DetectionCurve::new(&sv, &is_bad);
    let precision = curve.precision_at(flipped.len());
    println!(
        "bottom-{} valued points contain {} corrupted labels (precision {:.1}%, random \
         baseline {:.1}%); detection AUC {:.3} (random = 0.5)",
        flipped.len(),
        (precision * flipped.len() as f64).round() as usize,
        precision * 100.0,
        noise_fraction * 100.0,
        curve.auc(),
    );
    let suspects = sv.bottom_k(flipped.len());

    // Average value by cohort: corrupted points should sit far below clean.
    let mut flipped_sum = 0.0;
    let mut clean_sum = 0.0;
    for i in 0..noisy.len() {
        if flipped.binary_search(&i).is_ok() {
            flipped_sum += sv[i];
        } else {
            clean_sum += sv[i];
        }
    }
    let flipped_mean = flipped_sum / flipped.len() as f64;
    let clean_mean = clean_sum / (noisy.len() - flipped.len()) as f64;
    println!("mean SV: corrupted {flipped_mean:+.3e}   clean {clean_mean:+.3e}");

    // Remove the suspects, retrain (conceptually: re-value), and show the
    // model's utility improves.
    let keep: Vec<usize> = (0..noisy.len()).filter(|i| !suspects.contains(i)).collect();
    let pruned = noisy.gather(&keep);
    let acc_before = knnshap::knn::KnnClassifier::unweighted(&noisy, k).accuracy(&test, 2);
    let acc_after = knnshap::knn::KnnClassifier::unweighted(&pruned, k).accuracy(&test, 2);
    println!(
        "test accuracy: {:.1}% with corrupted data → {:.1}% after dropping the \
         {} lowest-valued points",
        acc_before * 100.0,
        acc_after * 100.0,
        suspects.len()
    );

    assert!(
        precision > 3.0 * noise_fraction,
        "valuation should concentrate corrupted points at the bottom"
    );

    // Second attack mode: targeted poisoning. The adversary clones test
    // queries with wrong labels — the most damaging contribution a KNN
    // buyer can receive, and exactly what §7 says the valuation defuses.
    let n_poison = 100;
    let (poisoned, poison_idx) = inject_poison(&clean, &test, n_poison, 0.01, 5);
    let sv_p = knn_class_shapley(&poisoned, &test, k);
    let mut is_poison = vec![false; poisoned.len()];
    for &i in &poison_idx {
        is_poison[i] = true;
    }
    let pcurve = DetectionCurve::new(&sv_p, &is_poison);
    println!(
        "\ntargeted poisoning: {} adversarial points injected; \
         precision@{} = {:.1}%, AUC {:.3}",
        n_poison,
        n_poison,
        pcurve.precision_at(n_poison) * 100.0,
        pcurve.auc(),
    );
    assert!(
        pcurve.precision_at(n_poison) > 0.8,
        "poison should dominate the bottom of the ranking"
    );
}
