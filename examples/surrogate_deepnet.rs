//! KNN Shapley values as a surrogate for an expensive parametric model
//! (paper §7, "Computing the SV for Models Beyond KNN").
//!
//! The recipe: take the expensive model's *embedding* of the data (here the
//! features themselves stand in for penultimate-layer activations), train
//! the expensive model once to measure its accuracy, **calibrate K** so an
//! unweighted KNN mimics that accuracy, and then use the exact O(N log N)
//! KNN Shapley values as a stand-in for the model's own (retraining-based,
//! exponentially expensive) values.
//!
//! Run with: `cargo run --release --example surrogate_deepnet`

use knnshap::datasets::noise::flip_labels;
use knnshap::datasets::split::train_test_split;
use knnshap::datasets::synth::blobs::{self, BlobConfig};
use knnshap::ml::logreg::{LogRegConfig, LogisticRegression};
use knnshap::ml::surrogate::calibrate_k;
use knnshap::valuation::exact_unweighted::knn_class_shapley;
use std::time::Instant;

fn main() {
    // "Deep features" with 15% label noise — the noise is what a valuation
    // should find.
    let cfg = BlobConfig {
        n: 2500,
        dim: 20,
        n_classes: 5,
        cluster_std: 1.2,
        center_scale: 2.2,
        seed: 64,
    };
    let clean = blobs::generate(&cfg);
    let (noisy, flipped) = flip_labels(&clean, 0.15, 11);
    let (train, test) = train_test_split(&noisy, 0.2, 5);

    // 1. The expensive model (logistic regression standing in for the deep
    //    net's head) and its accuracy.
    let lr_cfg = LogRegConfig {
        epochs: 150,
        learning_rate: 0.5,
        l2: 1e-4,
    };
    let t0 = Instant::now();
    let model = LogisticRegression::fit(&train, &lr_cfg);
    let target_acc = model.accuracy(&test);
    println!(
        "expensive model: accuracy {:.3} (one training run took {:.2?})",
        target_acc,
        t0.elapsed()
    );

    // 2. Calibrate K so KNN mimics it (§7).
    let (k, knn_acc) = calibrate_k(&train, &test, &[1, 3, 5, 7, 11, 15], target_acc);
    println!("calibrated surrogate: {k}-NN with accuracy {knn_acc:.3}");

    // 3. Exact KNN Shapley values — the surrogate valuation.
    let t1 = Instant::now();
    let sv = knn_class_shapley(&train, &test, k);
    println!(
        "valued {} training points exactly in {:.2?}",
        train.len(),
        t1.elapsed()
    );

    // 4. The surrogate valuation finds the corrupted labels. (`flipped`
    //    indexes the pre-split dataset; recover the post-split positions by
    //    matching rows.)
    let is_flipped: Vec<bool> = {
        // mark flipped rows by their (unique, synthetic) feature vector
        let mut marks = vec![false; train.len()];
        for (ti, row) in train.x.rows().enumerate() {
            'outer: for &fi in &flipped {
                if noisy.x.row(fi) == row {
                    marks[ti] = true;
                    break 'outer;
                }
            }
        }
        marks
    };
    let n_flipped_in_train = is_flipped.iter().filter(|&&b| b).count();
    let suspects = sv.bottom_k(n_flipped_in_train);
    let caught = suspects.iter().filter(|&&i| is_flipped[i]).count();
    println!(
        "bottom-{n_flipped_in_train} surrogate values contain {caught} of the \
         {n_flipped_in_train} corrupted labels ({:.0}% precision; 15% would be random)",
        100.0 * caught as f64 / n_flipped_in_train.max(1) as f64
    );

    // 5. Why the surrogate matters: one retraining-based Shapley estimate
    //    would need ~N·T model fits. Extrapolate the cost.
    let one_fit = t0.elapsed().as_secs_f64();
    let mc_cost = one_fit * train.len() as f64 * 100.0; // 100 permutations, N fits each
    println!(
        "retraining-based MC valuation would need ≈ {:.1} hours; the surrogate took {:.2?}",
        mc_cost / 3600.0,
        t1.elapsed()
    );
}
