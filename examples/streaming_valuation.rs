//! Streaming valuation with an LSH index — the paper's document-retrieval
//! motivation for sublinear approximation (§3.1, C1.2): "test points could
//! arrive sequentially and the values of each training point need to get
//! updated and accumulated on the fly, which makes it impossible to complete
//! sorting offline."
//!
//! We build one p-stable LSH index over the corpus, then process a stream of
//! queries, accumulating per-point Shapley values as each arrives —
//! sublinear work per query — and compare the running estimate against the
//! exact values at the end.
//!
//! Run with: `cargo run --release --example streaming_valuation`

use knnshap::datasets::noise::flip_labels;
use knnshap::datasets::synth::deepfeat::EmbeddingSpec;
use knnshap::datasets::{contrast, normalize};
use knnshap::lsh::index::LshIndex;
use knnshap::valuation::exact_unweighted::knn_class_shapley;
use knnshap::valuation::lsh_approx::{lsh_class_shapley_single, plan_index_params};
use knnshap::valuation::truncated::k_star;
use knnshap::valuation::ShapleyValues;
use std::time::Instant;

fn main() {
    // A 50k-document corpus of 32-d embeddings, 10 topics; 25% of the topic
    // tags are wrong (scraped corpora are noisy) — exactly the points the
    // running valuation should learn to discount.
    let spec = EmbeddingSpec::deep_like(50_000);
    let clean = spec.generate();
    let (mut corpus, _mislabeled) = flip_labels(&clean, 0.25, 404);
    let mut stream = spec.queries(200);
    let factor = normalize::scale_to_unit_dmean(&mut corpus.x, 2000, 1);
    normalize::apply_scale(&mut stream.x, factor);

    let (k, eps, delta) = (3usize, 0.1f64, 0.1f64);
    let ks = k_star(k, eps);

    // Plan and build the index once, offline.
    let est = contrast::estimate(&corpus.x, &stream.x, ks, 16, 64, 3);
    let params = plan_index_params(corpus.len(), &est, k, eps, delta, 1.0, 32, 9);
    let t0 = Instant::now();
    let index = LshIndex::build(&corpus.x, params);
    println!(
        "corpus: {} docs; contrast C_{ks} = {:.3}; index: {} tables × {} projections \
         (built in {:.2?})",
        corpus.len(),
        est.c_k,
        index.num_tables(),
        index.params().projections,
        t0.elapsed()
    );

    // Process the stream, accumulating values on the fly.
    let mut running = ShapleyValues::zeros(corpus.len());
    let t1 = Instant::now();
    for j in 0..stream.len() {
        let per_query =
            lsh_class_shapley_single(&index, &corpus, stream.x.row(j), stream.y[j], k, eps);
        running.add_assign(&per_query);
        if (j + 1) % 50 == 0 {
            println!(
                "  after {:>3} queries: {:.1}µs/query, top doc so far #{}",
                j + 1,
                t1.elapsed().as_micros() as f64 / (j + 1) as f64,
                running.top_k(1)[0]
            );
        }
    }
    running.scale(1.0 / stream.len() as f64);
    let stream_time = t1.elapsed();

    // Exact values for comparison (needs the full corpus sorted per query).
    let t2 = Instant::now();
    let exact = knn_class_shapley(&corpus, &stream, k);
    let exact_time = t2.elapsed();

    println!(
        "\nstreamed {} queries in {:.2?} ({:.1}µs/query) vs exact {:.2?} ({:.1}µs/query)",
        stream.len(),
        stream_time,
        stream_time.as_micros() as f64 / stream.len() as f64,
        exact_time,
        exact_time.as_micros() as f64 / stream.len() as f64,
    );
    println!(
        "‖streamed − exact‖_∞ = {:.6} (ε target {eps}, δ = {delta})",
        exact.max_abs_diff(&running)
    );
    // Among documents the stream actually retrieved (nonzero running value),
    // value ranks should track the exact ranks; the unretrieved tail is tied
    // at ≈0 by Theorem 2, so a raw top-k set comparison would be tie-noise.
    let retrieved: Vec<usize> = (0..corpus.len()).filter(|&i| running[i] != 0.0).collect();
    let a: Vec<f64> = retrieved.iter().map(|&i| running[i]).collect();
    let b: Vec<f64> = retrieved.iter().map(|&i| exact[i]).collect();
    println!(
        "rank correlation on the {} retrieved documents: {:.3}",
        retrieved.len(),
        knnshap::numerics::stats::spearman(&a, &b)
    );
}
