//! Valuing data for KNN *regression* (paper §4 / Appendix E.1) — and what
//! changes when neighbors are distance-weighted (Appendix E.2).
//!
//! A sensor-calibration story: noisy readings y = f(x) + ε from many field
//! sensors, a KNN regressor serving interpolation queries, and Theorem 6's
//! exact O(N log N) Shapley values identifying which readings help and which
//! (outlier) readings actively hurt. The weighted variant (Theorem 7,
//! O(N^K)) is compared on a subsample.
//!
//! Run with: `cargo run --release --example regression_valuation`

use knnshap::datasets::synth::regression::{self, RegressionConfig, Surface};
use knnshap::knn::WeightFn;
use knnshap::valuation::exact_regression::knn_reg_shapley;
use knnshap::valuation::exact_weighted::weighted_knn_reg_shapley;
use knnshap::valuation::utility::{KnnRegUtility, Utility};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 5000 clean readings over a smooth response surface…
    let cfg = RegressionConfig {
        n: 5000,
        dim: 3,
        surface: Surface::Sinusoid,
        noise_std: 0.05,
        seed: 12,
    };
    let mut readings = regression::generate(&cfg);
    let queries = regression::queries(&cfg, 80);

    // …except 100 sensors are miscalibrated: their targets are shifted hard.
    let mut rng = StdRng::seed_from_u64(99);
    let mut broken: Vec<usize> = Vec::new();
    while broken.len() < 100 {
        let i = rng.gen_range(0..readings.len());
        if !broken.contains(&i) {
            broken.push(i);
            readings.y[i] += 3.0 + rng.gen::<f64>();
        }
    }
    broken.sort_unstable();

    let k = 7;
    let sv = knn_reg_shapley(&readings, &queries, k);

    // Group rationality: values sum to the (negative MSE) utility.
    let u = KnnRegUtility::unweighted(&readings, &queries, k);
    println!(
        "Σ sᵢ = {:+.6} = ν(I) = {:+.6} (negative MSE of the full fleet)",
        sv.total(),
        u.grand()
    );

    // Broken sensors should dominate the bottom of the ranking.
    let suspects = sv.bottom_k(broken.len());
    let caught = suspects.iter().filter(|i| broken.contains(i)).count();
    println!(
        "bottom-{} valued readings contain {caught} of the {} miscalibrated sensors \
         (random baseline would catch {:.0})",
        broken.len(),
        broken.len(),
        broken.len() as f64 * broken.len() as f64 / readings.len() as f64,
    );

    // Weighted KNN on a subsample: inverse-distance weighting shifts value
    // toward the closest readings but preserves the overall ranking.
    let sub: Vec<usize> = (0..300).collect();
    let sub_readings = readings.gather(&sub);
    let sub_queries = queries.gather(&(0..10).collect::<Vec<_>>());
    let threads = knnshap::parallel::current_threads();
    let unweighted = knn_reg_shapley(&sub_readings, &sub_queries, 3);
    let weighted = weighted_knn_reg_shapley(
        &sub_readings,
        &sub_queries,
        3,
        WeightFn::InverseDistance { eps: 1e-6 },
        threads,
    );
    println!(
        "\nweighted vs unweighted on a 300-reading subsample: pearson = {:.3}, \
         ‖Δ‖_∞ = {:.5}",
        knnshap::numerics::stats::pearson(unweighted.as_slice(), weighted.as_slice()),
        unweighted.max_abs_diff(&weighted)
    );

    assert!(
        caught * 2 > broken.len(),
        "the valuation should flag most miscalibrated sensors"
    );
}
