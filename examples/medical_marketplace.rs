//! The paper's motivating scenario (Fig. 1): a clinical data marketplace.
//!
//! Patients upload medical records to a data store; a buyer trains a KNN
//! model over them and pays $X, which must be divided fairly. Each *patient*
//! (curator) owns several records, a third-party *analyst* contributes the
//! computation, and the payment is split with the Shapley value of the
//! composite game (Theorems 8 & 12 of Jia et al. 2019). The monetary mapping
//! follows §7: revenue is affine in model utility, `R(S) = a·ν(S) + b`, so
//! each participant receives `a·s_i + b/(M+1)`.
//!
//! Run with: `cargo run --release --example medical_marketplace`

use knnshap::datasets::synth::blobs::{self, BlobConfig};
use knnshap::valuation::composite::GameForm;
use knnshap::valuation::curator::{curator_class_shapley, Ownership};
use knnshap::valuation::utility::{KnnClassUtility, Utility};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Synthetic "patient records": 600 records of 12 biomarkers, with a
    // binary outcome to predict. 40 patients contribute 3–30 records each.
    // Records are scarce relative to the feature space (≈4 per patient), so
    // individual contributions genuinely move the model.
    let cfg = BlobConfig {
        n: 160,
        dim: 12,
        n_classes: 2,
        cluster_std: 2.5,
        center_scale: 2.0,
        seed: 2024,
    };
    let records = blobs::generate(&cfg);
    let buyer_queries = blobs::queries(&cfg, 40, 4);

    let n_patients = 40usize;
    let mut rng = StdRng::seed_from_u64(5);
    let owners: Vec<u32> = (0..records.len())
        .map(|_| rng.gen_range(0..n_patients as u32))
        .collect();
    let ownership = Ownership::new(owners, n_patients);

    // Theorem 8's exact curator algorithm is O(M^K): with 40 patients K = 3
    // keeps the canonical-coalition enumeration comfortably interactive.
    let k = 3;
    // Data-only game: split among patients alone.
    let data_only = curator_class_shapley(
        &records,
        &ownership,
        &buyer_queries,
        k,
        knnshap::knn::WeightFn::Uniform,
        GameForm::DataOnly,
    );
    // Composite game: the analyst is paid too.
    let composite = curator_class_shapley(
        &records,
        &ownership,
        &buyer_queries,
        k,
        knnshap::knn::WeightFn::Uniform,
        GameForm::Composite,
    );
    let utility = KnnClassUtility::unweighted(&records, &buyer_queries, k);
    let total_utility = utility.grand();
    let analyst_share = total_utility - composite.total();

    // Monetary mapping: buyer pays $10 000 at ν(I), with a $500 base fee.
    let (a, b) = (10_000.0, 500.0);
    let revenue = a * total_utility + b;
    println!("model utility ν(I) = {total_utility:.4}; buyer pays ${revenue:.2}\n");

    println!("payouts in the composite game (analyst + {n_patients} patients):");
    println!(
        "  analyst: ${:>9.2}  ({:.1}% of the utility-linked part)",
        a * analyst_share + b / (n_patients + 1) as f64,
        100.0 * analyst_share / total_utility
    );
    let groups = ownership.groups();
    let mut ranked: Vec<usize> = (0..n_patients).collect();
    ranked.sort_by(|&i, &j| composite[j].partial_cmp(&composite[i]).unwrap());
    for &p in ranked.iter().take(5) {
        println!(
            "  patient {p:>2} ({:>2} records): ${:>8.2}  (data-only would pay ${:>8.2})",
            groups[p].len(),
            a * composite[p] + b / (n_patients + 1) as f64,
            a * data_only[p] + b / n_patients as f64,
        );
    }
    println!("  … ({} more patients)", n_patients - 5);

    // Group rationality audits both games.
    let sum_composite = composite.total() + analyst_share;
    println!(
        "\naudit: Σ patients + analyst = {sum_composite:.6} = ν(I) = {total_utility:.6}; \
         Σ data-only = {:.6}",
        data_only.total()
    );
    // Patients with more (and more informative) records earn more; show the
    // correlation between record count and payout.
    let counts: Vec<f64> = groups.iter().map(|g| g.len() as f64).collect();
    let payouts: Vec<f64> = (0..n_patients).map(|p| data_only[p]).collect();
    println!(
        "corr(record count, payout) = {:.3}",
        knnshap::numerics::stats::pearson(&counts, &payouts)
    );
}
