//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++ seeded via
//! SplitMix64 — not the ChaCha12 of the real crate, but a high-quality,
//! deterministic PRNG, which is all the workspace needs (seeded synthetic data
//! and Monte Carlo permutations). Swap this shim for the real `rand` in
//! `[workspace.dependencies]` when networked; no source changes required.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Deterministically expands a `u64` into a full seed via SplitMix64,
    /// matching the spirit (not the bit stream) of the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step: the standard seed expander for xoshiro-family generators.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Extension methods on [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution
    /// (floats uniform in `[0, 1)`, integers over the full range).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // Widest instantiated type is 64-bit, so in u128 the span
                // (end − start + 1) is always nonzero, even for 0..=MAX.
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                start.wrapping_add(v as $t)
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                start + unit * (end - start)
            }
        }
    )+};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
