//! The `Standard` distribution: uniform floats in `[0, 1)`, full-range
//! integers, and fair bools.

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    /// Iterator of samples, mirroring `rand::distributions::Distribution`.
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        Self: Sized,
        R: Rng,
    {
        DistIter {
            dist: self,
            rng,
            _marker: core::marker::PhantomData,
        }
    }
}

/// See [`Distribution::sample_iter`].
pub struct DistIter<D, R, T> {
    dist: D,
    rng: R,
    _marker: core::marker::PhantomData<T>,
}

impl<D: Distribution<T>, R: Rng, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.dist.sample(&mut self.rng))
    }
}

/// The generic "natural" distribution for a type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),+) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
