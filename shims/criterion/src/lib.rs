//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of criterion its benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is timed with `std::time::Instant`
//! and reported as mean/min/max over `sample_size` samples — no outlier
//! analysis, warm-up tuning, or HTML reports. Swap for the real crate in
//! `[workspace.dependencies]` when networked; bench sources compile unchanged.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each `criterion_group!` target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_SAMPLE_SIZE trims CI smoke runs without touching sources.
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, self.sample_size, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A function + parameter label, e.g. `BenchmarkId::new("exact", n)`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass, then one timed pass per sample.
        black_box(f());
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let start = Instant::now();
            black_box(f());
            total += start.elapsed();
        }
        self.samples
            .push(total / self.iters_per_sample.max(1) as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label:<48} (no measurements)");
        return;
    }
    let n = bencher.samples.len() as u32;
    let mean = bencher.samples.iter().sum::<Duration>() / n;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    println!(
        "{label:<48} mean {:>12?}  min {:>12?}  max {:>12?}  ({n} samples)",
        mean, min, max
    );
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
