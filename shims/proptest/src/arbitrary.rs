//! `any::<T>()`: the type's full-range "natural" strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

/// Strategy over the entire domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    // Finite values only: all-bit-pattern f64s (NaNs, infinities) would fail
    // numeric code in uninteresting ways, and the workspace's `any::<f64>()`
    // uses are seeds and magnitudes.
    fn arbitrary_sample(rng: &mut TestRng) -> f64 {
        (rng.gen::<f64>() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary_sample(rng: &mut TestRng) -> f32 {
        (rng.gen::<f32>() - 0.5) * 2.0e6
    }
}
