//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of proptest its suites actually use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and tuple
//! strategies, `prop::collection::vec`, `any::<T>()`, `.prop_map`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, deliberate for CI determinism:
//!
//! * **No shrinking.** A failing case reports its seed and case index; re-run
//!   with `PROPTEST_RNG_SEED=<seed>` to reproduce the exact failing input.
//! * **Deterministic seeding.** Each test derives its base seed from the test
//!   function's name (FNV-1a hash), so runs are reproducible across machines
//!   and repetitions — no persistence files, no wall-clock entropy.
//! * **Case count** comes from `ProptestConfig::with_cases`, else the
//!   `PROPTEST_CASES` env var, else 32.
//!
//! Swap this shim for the real `proptest` in `[workspace.dependencies]` when
//! networked; the test sources compile unchanged against either.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of the real crate's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runs one property-based test: `cases` sampled inputs through `body`.
/// Not public API of the real crate — invoked by the [`proptest!`] expansion.
pub fn run_property_test<F>(config: &test_runner::ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    use test_runner::TestCaseError;

    let base_seed = test_runner::base_seed(test_name);
    let cases = config.cases.max(1);
    let mut executed = 0u32;
    let mut rejected = 0u32;
    // Each case gets its own RNG stream so a failure is reproducible from
    // (base_seed, case index) alone, independent of earlier cases' draws.
    let mut case_index = 0u64;
    while executed < cases {
        if rejected > config.max_global_rejects {
            panic!(
                "proptest '{test_name}': too many prop_assume! rejections \
                 ({rejected} rejects for {executed}/{cases} cases)"
            );
        }
        let seed = base_seed ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = test_runner::new_rng(seed);
        case_index += 1;
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{test_name}' failed at case {} (base seed {base_seed:#x}, \
                     case seed {seed:#x}): {msg}\n\
                     (re-run with PROPTEST_RNG_SEED={seed} to replay this input)",
                    executed + rejected
                );
            }
        }
    }
}

/// The `proptest! { ... }` macro: an optional `#![proptest_config(..)]`
/// header followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::run_property_test(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a proptest body, failing the case (not
/// panicking directly) so the runner can report the reproducing seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+), l, r
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (runner resamples) when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
