//! Collection strategies: `prop::collection::vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Sizes accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
pub trait SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
