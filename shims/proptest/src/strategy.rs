//! Strategies: how to generate a value of some type from the test RNG.
//! No shrinking — see the crate docs for the rationale.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of values for one proptest parameter.
pub trait Strategy {
    type Value;

    /// Samples one value. (The real crate returns a shrinkable value tree;
    /// this shim samples directly.)
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; sampling retries until `f` accepts
    /// (bounded, then panics — prefer `prop_assume!` for sparse conditions).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive samples",
            self.whence
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
