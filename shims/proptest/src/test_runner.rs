//! Configuration, RNG plumbing, and case-level error type.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Mirror of `proptest::test_runner::Config` (the fields this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition not met; the case is resampled.
    Reject(String),
    /// `prop_assert!` failed; the test fails with this message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Base seed for a test: `PROPTEST_RNG_SEED` env override (replay a reported
/// failing case), else a stable FNV-1a hash of the test name, so every run on
/// every machine explores the same deterministic sequence of inputs.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_RNG_SEED") {
        if let Ok(seed) = v.parse::<u64>() {
            return seed;
        }
    }
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}
