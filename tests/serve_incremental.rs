//! Differential-testing battery for the incremental serving path (ISSUE 6).
//!
//! The claim under test is the serving determinism contract: after **any**
//! interleaving of train-point inserts and deletes, the resident engine's
//! vector — and the vector the daemon actually serves — is
//! **bitwise-identical** to a cold `exact_unweighted` recompute on the
//! final dataset, at every thread count. Three independent checks triangulate:
//!
//! 1. **Bitwise vs cold recompute** (`knn_class_shapley_with_threads` on
//!    the post-mutation dataset, serial) — same recurrence, so identity
//!    must hold to the last bit.
//! 2. **Thread invariance** — engines run at 1, 8 and `KNNSHAP_THREADS`
//!    workers must agree bitwise (CI replays this file at
//!    `KNNSHAP_THREADS=1` and `=8`).
//! 3. **An independent Wang–Jia-note oracle** (arXiv:2304.04258): a
//!    from-scratch implementation of the recurrence in its *forward
//!    closed-form* — f64 distances, index sort, O(N²) per-rank suffix
//!    sums; none of the production code path. Bitwise equality is not
//!    meaningful across a different float-op order, so the oracle is
//!    compared to 1e-9 absolute — tight enough that a wrong tie-break,
//!    off-by-one rank or bad min(K,i)/i factor fails loudly. Features are
//!    drawn on a small integer grid so f32 and f64 squared distances are
//!    both exact and the two implementations provably rank identically
//!    (and exact duplicate distances occur constantly, stressing the
//!    tie-break rule).
//!
//! Property tests drive random interleavings (including k ≥ N boundaries
//! and duplicate points); deterministic tests pin the named edge cases.

use knnshap::datasets::{ClassDataset, Features};
use knnshap::serve::{Request, Response, ValuationServer};
use knnshap::valuation::exact_unweighted::knn_class_shapley_with_threads;
use knnshap::valuation::resident::ResidentValuator;
use knnshap::valuation::types::ShapleyValues;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::assert_bitwise;

// ---------------------------------------------------------------------------
// Independent reference: the Wang–Jia-note recurrence, forward closed form.
// ---------------------------------------------------------------------------

/// From-scratch KNN Shapley (unweighted classification): for each test
/// point, rank by f64 squared L2 (ties toward the smaller index), then for
/// each 1-based rank `i` evaluate the closed-form suffix sum
///
/// ```text
/// s_i = (1/K) [ Σ_{j=i}^{N−1} (1[y_j = y] − 1[y_{j+1} = y]) · min(K,j)/j
///               + 1[y_N = y] · min(K,N)/N ]
/// ```
///
/// which is the unrolled form of the paper's Theorem 1 recurrence as
/// restated (with the min(K,i)/i correction) in the Wang–Jia note. O(N²)
/// per test point and deliberately naive.
fn wang_jia_reference(train: &ClassDataset, test: &ClassDataset, k: usize) -> Vec<f64> {
    let n = train.len();
    let mut total = vec![0.0f64; n];
    for t in 0..test.len() {
        let q = test.x.row(t);
        let y = test.y[t];
        let dist: Vec<f64> = (0..n)
            .map(|i| {
                train
                    .x
                    .row(i)
                    .iter()
                    .zip(q)
                    .map(|(a, b)| {
                        let d = f64::from(*a) - f64::from(*b);
                        d * d
                    })
                    .sum()
            })
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| dist[a].partial_cmp(&dist[b]).unwrap().then(a.cmp(&b)));
        let hit = |rank1: usize| u8::from(train.y[order[rank1 - 1]] == y) as f64;
        for i in 1..=n {
            let mut acc = 0.0f64;
            for j in i..n {
                acc += (hit(j) - hit(j + 1)) * k.min(j) as f64 / j as f64;
            }
            acc += hit(n) * k.min(n) as f64 / n as f64;
            total[order[i - 1]] += acc / k as f64;
        }
    }
    total.iter().map(|v| v / test.len() as f64).collect()
}

fn assert_close_to_oracle(
    got: &ShapleyValues,
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
) {
    let oracle = wang_jia_reference(train, test, k);
    assert_eq!(got.len(), oracle.len());
    for (i, (a, b)) in got.as_slice().iter().zip(&oracle).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "value {i} disagrees with the Wang–Jia oracle: {a} vs {b}"
        );
    }
}

// ---------------------------------------------------------------------------
// Random-instance machinery. Integer-grid features: f32/f64 squared
// distances are exactly representable, so the production f32 path and the
// oracle's f64 path provably produce the same ranking — and duplicate
// distances are common, exercising the (dist, index) tie-break everywhere.
// ---------------------------------------------------------------------------

const CLASSES: u32 = 3;

fn grid_row(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(-4i32..=4) as f32).collect()
}

fn grid_dataset(rng: &mut StdRng, n: usize, dim: usize) -> ClassDataset {
    let mut x = Features::new(Vec::new(), dim);
    let y: Vec<u32> = (0..n).map(|_| rng.gen_range(0..CLASSES)).collect();
    for _ in 0..n {
        x.push_row(&grid_row(rng, dim));
    }
    ClassDataset::new(x, y, CLASSES)
}

enum Mutation {
    Insert(Vec<f32>, u32),
    Delete(usize),
}

/// A random mutation script: ~1/3 deletes, ~1/3 fresh-point inserts, ~1/3
/// duplicate-of-existing-point inserts (exact duplicate distances).
fn random_script(rng: &mut StdRng, engine: &mut ResidentValuator, steps: usize) -> Vec<Mutation> {
    let mut script = Vec::with_capacity(steps);
    for _ in 0..steps {
        let m = if engine.n_train() > 2 && rng.gen_range(0..3) == 0 {
            Mutation::Delete(rng.gen_range(0..engine.n_train()))
        } else if rng.gen_range(0..2) == 0 {
            let src = rng.gen_range(0..engine.n_train());
            Mutation::Insert(
                engine.train().x.row(src).to_vec(),
                rng.gen_range(0..CLASSES),
            )
        } else {
            Mutation::Insert(
                grid_row(rng, engine.train().dim()),
                rng.gen_range(0..CLASSES),
            )
        };
        match &m {
            Mutation::Insert(row, label) => {
                engine.insert(row, *label).expect("insert");
            }
            Mutation::Delete(i) => engine.delete(*i).expect("delete"),
        }
        script.push(m);
    }
    script
}

fn replay(script: &[Mutation], engine: &mut ResidentValuator) {
    for m in script {
        match m {
            Mutation::Insert(row, label) => {
                engine.insert(row, *label).expect("replay insert");
            }
            Mutation::Delete(i) => engine.delete(*i).expect("replay delete"),
        }
    }
}

// ---------------------------------------------------------------------------
// Property battery.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings: engine values after the script are bitwise-
    /// identical to the cold recompute, at 1, 8 and `KNNSHAP_THREADS`
    /// workers, and agree with the independent oracle.
    #[test]
    fn mutation_interleavings_match_cold_recompute(
        seed in 0u64..1_000_000,
        n in 4usize..32,
        n_test in 1usize..6,
        dim in 1usize..4,
        k in 1usize..8,
        steps in 1usize..14,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let train = grid_dataset(&mut rng, n, dim);
        let test = grid_dataset(&mut rng, n_test, dim);

        let mut engine = ResidentValuator::new(train.clone(), test.clone(), k, 1).unwrap();
        let script = random_script(&mut rng, &mut engine, steps);
        let served = engine.values();

        // 1. Bitwise vs cold serial recompute on the final dataset.
        let cold = knn_class_shapley_with_threads(engine.train(), &test, k, 1);
        prop_assert!(common::bitwise_ok(&cold, &served),
            "engine diverged from cold recompute (seed {seed})");

        // 2. Thread invariance: same script at 8 and at the env-driven
        //    thread count (CI replays with KNNSHAP_THREADS=1 and =8).
        for threads in [8usize, knnshap::parallel::current_threads()] {
            let mut other = ResidentValuator::new(train.clone(), test.clone(), k, threads).unwrap();
            replay(&script, &mut other);
            prop_assert!(common::bitwise_ok(&served, &other.values()),
                "engine at {threads} threads diverged (seed {seed})");
        }

        // 3. Independent Wang–Jia oracle on the final dataset.
        let oracle = wang_jia_reference(engine.train(), &test, k);
        for (i, (a, b)) in served.as_slice().iter().zip(&oracle).enumerate() {
            prop_assert!((a - b).abs() < 1e-9,
                "value {i} disagrees with the oracle: {a} vs {b} (seed {seed})");
        }
    }

    /// What-if is a pure preview: bitwise-equal to committing the insert
    /// and reading the new point's value, with no state change.
    #[test]
    fn what_if_equals_committed_insert(
        seed in 0u64..1_000_000,
        n in 3usize..24,
        n_test in 1usize..5,
        k in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let train = grid_dataset(&mut rng, n, 2);
        let test = grid_dataset(&mut rng, n_test, 2);
        // Half the candidates duplicate an existing point exactly.
        let (row, label) = if rng.gen_range(0..2) == 0 {
            (train.x.row(rng.gen_range(0..n)).to_vec(), rng.gen_range(0..CLASSES))
        } else {
            (grid_row(&mut rng, 2), rng.gen_range(0..CLASSES))
        };

        let engine = ResidentValuator::new(train.clone(), test.clone(), k, 1).unwrap();
        let before = engine.version();
        let preview = engine.what_if(&row, label).unwrap();
        prop_assert_eq!(engine.version(), before, "what_if must not commit");

        let mut committed = ResidentValuator::new(train, test, k, 1).unwrap();
        let idx = committed.insert(&row, label).unwrap();
        let actual = committed.values().get(idx);
        prop_assert_eq!(preview.to_bits(), actual.to_bits(),
            "what_if {} != committed {} (seed {})", preview, actual, seed);
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases.
// ---------------------------------------------------------------------------

/// K at and across the shrinking/growing training-set size: deletes that
/// pull N below K, inserts that push it back above.
#[test]
fn k_boundary_churn_stays_bitwise() {
    let mut rng = StdRng::seed_from_u64(7);
    let test = grid_dataset(&mut rng, 3, 2);
    for k in [1usize, 4, 5, 6, 9] {
        let train = grid_dataset(&mut rng, 5, 2);
        let mut engine = ResidentValuator::new(train, test.clone(), k, 2).unwrap();
        // Shrink to 2 points (N < K for most k), then regrow to 6.
        engine.delete(4).unwrap();
        engine.delete(0).unwrap();
        engine.delete(1).unwrap();
        for i in 0..4 {
            engine
                .insert(&[i as f32, -(i as f32)], i % CLASSES)
                .unwrap();
        }
        let cold = knn_class_shapley_with_threads(engine.train(), &test, k, 1);
        assert_bitwise(&cold, &engine.values(), &format!("k={k} boundary churn"));
        assert_close_to_oracle(&engine.values(), engine.train(), &test, k);
    }
}

/// Every training point at the same location (all pairwise distances
/// duplicate): ordering is pure index tie-break; churn must preserve it.
#[test]
fn all_duplicate_distances_survive_churn() {
    let n = 10;
    let x = Features::new(vec![1.0f32; n * 2], 2);
    let y: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
    let train = ClassDataset::new(x, y, 2);
    let test = ClassDataset::new(Features::new(vec![0.0, 0.0, 2.0, 2.0], 2), vec![0, 1], 2);

    let mut engine = ResidentValuator::new(train, test.clone(), 3, 2).unwrap();
    engine.delete(4).unwrap(); // middle of the tie run
    engine.insert(&[1.0, 1.0], 0).unwrap(); // yet another duplicate
    engine.delete(0).unwrap(); // front of the tie run
    let cold = knn_class_shapley_with_threads(engine.train(), &test, 3, 1);
    assert_bitwise(&cold, &engine.values(), "all-duplicate distances");
    assert_close_to_oracle(&engine.values(), engine.train(), &test, 3);
}

/// The vector the *daemon* serves (through `handle`, the same dispatch the
/// socket loop uses) obeys the contract too — version tags, checksums and
/// all. Mirrors the socket-level CI smoke in-process.
#[test]
fn served_dump_matches_cold_value_run() {
    let mut rng = StdRng::seed_from_u64(41);
    let train = grid_dataset(&mut rng, 20, 3);
    let test = grid_dataset(&mut rng, 4, 3);
    let server = ValuationServer::new(train, test.clone(), 2, 2).unwrap();

    let script: Vec<Request> = vec![
        Request::Insert {
            features: vec![0.0, 0.0, 0.0],
            label: 1,
        },
        Request::Delete { index: 3 },
        Request::Insert {
            features: vec![1.0, 2.0, -1.0],
            label: 0,
        },
        Request::Delete { index: 20 },
        Request::Delete { index: 0 },
    ];
    for (i, req) in script.iter().enumerate() {
        match server.handle(req) {
            Response::Mutated { version, .. } => assert_eq!(version, i as u64 + 1),
            other => panic!("mutation {i} failed: {other:?}"),
        }
    }

    let (final_train, served) = match server.handle(&Request::TrainCsv) {
        Response::TrainCsv { csv, .. } => {
            let dir = std::env::temp_dir();
            let path = dir.join(format!("knnshap-serveinc-{}.csv", std::process::id()));
            std::fs::write(&path, &csv).unwrap();
            let train = knnshap::datasets::io::load_class_csv(&path).unwrap();
            std::fs::remove_file(&path).ok();
            (train, server.snapshot())
        }
        other => panic!("train-csv failed: {other:?}"),
    };
    assert_eq!(served.version, script.len() as u64);
    assert!(served.verify(), "served snapshot checksum");

    // Cold one-shot run on the dataset as a client would reload it.
    let cold = knn_class_shapley_with_threads(&final_train, &test, 2, 1);
    assert_bitwise(&cold, &served.values, "served vs cold value run");
}

/// The fresh (unmutated) engine already agrees with both references —
/// anchors the oracle itself against the production batch path.
#[test]
fn oracle_agrees_with_batch_path_on_fresh_datasets() {
    let mut rng = StdRng::seed_from_u64(17);
    for k in [1usize, 3, 10, 40] {
        let train = grid_dataset(&mut rng, 30, 2);
        let test = grid_dataset(&mut rng, 5, 2);
        let batch = knn_class_shapley_with_threads(&train, &test, k, 1);
        assert_close_to_oracle(&batch, &train, &test, k);
    }
}
