//! Every estimator in the workspace against the same game: the Theorem 1
//! exact values as ground truth, with the truncated, improved-MC,
//! baseline-MC and group-testing estimators each held to the accuracy their
//! theory promises for the budget they are given. This is the integration
//! surface of the paper's Fig. 5/6 comparisons.

use knnshap::datasets::synth::blobs::{self, BlobConfig};
use knnshap::knn::WeightFn;
use knnshap::numerics::stats::pearson;
use knnshap::valuation::exact_unweighted::knn_class_shapley_with_threads;
use knnshap::valuation::group_testing::group_testing_shapley;
use knnshap::valuation::mc::{
    mc_shapley_baseline, mc_shapley_improved, IncKnnUtility, StoppingRule,
};
use knnshap::valuation::truncated::truncated_class_shapley;
use knnshap::valuation::utility::{KnnClassUtility, Utility};

fn game() -> (
    knnshap::datasets::ClassDataset,
    knnshap::datasets::ClassDataset,
) {
    // label noise keeps per-point values spread out, so correlation against
    // ground truth is a meaningful statistic
    let cfg = BlobConfig {
        n: 80,
        dim: 4,
        n_classes: 3,
        cluster_std: 0.8,
        center_scale: 2.5,
        seed: 19,
    };
    let train = blobs::generate(&cfg);
    let (noisy, _) = knnshap::datasets::noise::flip_labels(&train, 0.2, 3);
    (noisy, blobs::queries(&cfg, 6, 77))
}

#[test]
fn all_estimators_agree_with_the_exact_algorithm() {
    let (train, test) = game();
    let k = 3usize;
    let exact = knn_class_shapley_with_threads(&train, &test, k, 2);
    let u = KnnClassUtility::unweighted(&train, &test, k);

    // Truncated (ε, 0): a hard, deterministic guarantee.
    let eps = 0.05;
    let trunc = truncated_class_shapley(&train, &test, k, eps);
    assert!(trunc.max_abs_diff(&exact) <= eps + 1e-12);

    // Improved MC (Algorithm 2): statistical, tight at this budget.
    let mut inc = IncKnnUtility::classification(&train, &test, k, WeightFn::Uniform);
    let imp = mc_shapley_improved(&mut inc, StoppingRule::Fixed(8_000), 5, None).values;
    assert!(
        imp.max_abs_diff(&exact) < 0.03,
        "improved MC: {}",
        imp.max_abs_diff(&exact)
    );
    assert!(pearson(imp.as_slice(), exact.as_slice()) > 0.9);

    // Baseline MC (§2.2): same estimator, far more expensive per permutation;
    // spend fewer permutations and expect a looser result.
    let base = mc_shapley_baseline(&u, StoppingRule::Fixed(800), 5, None).values;
    assert!(
        base.max_abs_diff(&exact) < 0.08,
        "baseline MC: {}",
        base.max_abs_diff(&exact)
    );
    assert!(pearson(base.as_slice(), exact.as_slice()) > 0.6);

    // Group testing ([JDW+19]): high-variance by construction (the Z ≈ 2 ln N
    // factor); the loosest envelope of the family.
    let gt = group_testing_shapley(&u, 120_000, 5).values;
    assert!(
        gt.max_abs_diff(&exact) < 0.08,
        "group testing: {}",
        gt.max_abs_diff(&exact)
    );
    assert!(pearson(gt.as_slice(), exact.as_slice()) > 0.4);

    // Every stochastic estimator still satisfies efficiency (improved MC and
    // group testing enforce it structurally; baseline MC only in expectation,
    // so it gets a tolerance).
    let grand = u.grand();
    assert!((imp.total() - grand).abs() < 0.25);
    assert!((gt.total() - grand).abs() < 1e-9);
}

#[test]
fn estimator_cost_ordering_matches_fig6() {
    // The paper's Fig. 6 cost ordering at fixed accuracy: exact ≪ improved
    // MC ≪ baseline MC — measured here as wall-clock on identical work.
    use std::time::Instant;
    let (train, test) = game();
    let k = 2usize;

    let t0 = Instant::now();
    let _ = knn_class_shapley_with_threads(&train, &test, k, 1);
    let exact_t = t0.elapsed();

    let mut inc = IncKnnUtility::classification(&train, &test, k, WeightFn::Uniform);
    let t1 = Instant::now();
    let _ = mc_shapley_improved(&mut inc, StoppingRule::Fixed(500), 5, None);
    let improved_t = t1.elapsed();

    let u = KnnClassUtility::unweighted(&train, &test, k);
    let t2 = Instant::now();
    let _ = mc_shapley_baseline(&u, StoppingRule::Fixed(500), 5, None);
    let baseline_t = t2.elapsed();

    assert!(
        exact_t < baseline_t,
        "exact {exact_t:?} should beat baseline MC {baseline_t:?}"
    );
    assert!(
        improved_t < baseline_t,
        "improved MC {improved_t:?} should beat baseline MC {baseline_t:?} at equal permutations"
    );
}
