//! Determinism battery for the adaptive MC scheduler (ISSUE 9), extending
//! `mc_determinism.rs`: the measured-cost-model planners may re-tile *which
//! permutations run in which round, chunk and block*, but the output of
//! every estimator family must stay **bitwise-identical** to the static
//! schedule at every thread count — and under adversarially-forced
//! schedules pinned through the `KNNSHAP_SCHED_FORCE` test hook.
//!
//! Three layers:
//! * adaptive vs static, per family (baseline MC, improved MC class + reg,
//!   group testing, truncated), at 1/2/8 threads, covering both scheduling
//!   shapes (fixed budget → fan-out; heuristic/snapshots → rounds);
//! * forced pathological tilings (serial, one-permutation chunks, absurd
//!   block sizes, garbage strings) against the same static goldens;
//! * snapshot trajectories, not just final vectors — the round path's
//!   per-permutation bookkeeping must replay identically however the
//!   scheduler slices the rounds.
//!
//! `KNNSHAP_SCHED_FORCE` is process-global, and the test harness runs tests
//! of this binary concurrently, so every test here serializes on `ENV_LOCK`
//! (the unforced tests too — they must observe an *unset* variable).

use knnshap::knn::WeightFn;
use knnshap::valuation::group_testing::{
    group_testing_shapley_adaptive, group_testing_shapley_with_threads,
};
use knnshap::valuation::mc::{
    mc_shapley_baseline_adaptive, mc_shapley_baseline_with_threads, mc_shapley_improved_adaptive,
    mc_shapley_improved_with_threads, IncKnnUtility, StoppingRule,
};
use knnshap::valuation::truncated::{
    truncated_class_shapley_adaptive, truncated_class_shapley_with_threads,
};
use knnshap::valuation::utility::KnnClassUtility;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

mod common;
use common::{assert_bitwise, random_class, random_reg};

/// Serializes every test in this binary around the process-global
/// `KNNSHAP_SCHED_FORCE` variable. Poisoning is ignored: a failed sibling
/// must not mask this test's own verdict.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_force<R>(force: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    match force {
        Some(v) => std::env::set_var("KNNSHAP_SCHED_FORCE", v),
        None => std::env::remove_var("KNNSHAP_SCHED_FORCE"),
    }
    let out = f();
    std::env::remove_var("KNNSHAP_SCHED_FORCE");
    out
}

const THREADS: [usize; 3] = [1, 2, 8];

/// Adversarial tilings: serial everything, one-permutation chunks on a wide
/// pool, absurd block sizes, partial specs, and garbage that must parse to
/// "no constraint" rather than to a behavior change.
const FORCES: [&str; 6] = [
    "serial",
    "threads=8,block=1,round=3,chunk=1",
    "threads=2,block=7",
    "round=1,chunk=1",
    "threads=8,block=1000000,round=4096,chunk=4096",
    "garbage,threads=banana,block=",
];

#[test]
fn adaptive_baseline_bitwise_matches_static() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(7), 60, 4, 3);
    let u = KnnClassUtility::unweighted(&train, &test, 3);
    for rule in [
        StoppingRule::Fixed(200),
        StoppingRule::Heuristic {
            threshold: 1e-4,
            max: 500,
        },
    ] {
        let golden = mc_shapley_baseline_with_threads(&u, rule, 7, None, 1);
        for threads in THREADS {
            let adaptive = with_force(None, || {
                mc_shapley_baseline_adaptive(&u, rule, 7, None, threads)
            });
            assert_eq!(golden.permutations, adaptive.permutations, "t={threads}");
            assert_bitwise(
                &golden.values,
                &adaptive.values,
                &format!("baseline adaptive t={threads}"),
            );
        }
    }
}

#[test]
fn adaptive_improved_bitwise_matches_static_with_snapshots() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(3), 120, 6, 3);
    let inc = IncKnnUtility::classification(&train, &test, 5, WeightFn::Uniform);
    for (rule, snapshot_every) in [
        (StoppingRule::Fixed(300), None),
        (StoppingRule::Fixed(120), Some(25)),
        (
            StoppingRule::Heuristic {
                threshold: 1e-4,
                max: 600,
            },
            None,
        ),
    ] {
        let golden = mc_shapley_improved_with_threads(&inc, rule, 3, snapshot_every, 1);
        for threads in THREADS {
            let adaptive = with_force(None, || {
                mc_shapley_improved_adaptive(&inc, rule, 3, snapshot_every, threads)
            });
            assert_eq!(golden.permutations, adaptive.permutations, "t={threads}");
            assert_bitwise(
                &golden.values,
                &adaptive.values,
                &format!("improved adaptive t={threads}"),
            );
            assert_eq!(golden.snapshots.len(), adaptive.snapshots.len());
            for ((ta, va), (tb, vb)) in golden.snapshots.iter().zip(&adaptive.snapshots) {
                assert_eq!(ta, tb);
                assert_bitwise(va, vb, &format!("snapshot t={ta} threads={threads}"));
            }
        }
    }
}

#[test]
fn adaptive_improved_reg_bitwise_matches_static() {
    let (train, test) = random_reg(&mut StdRng::seed_from_u64(17), 100, 5);
    let inc = IncKnnUtility::regression(&train, &test, 3, WeightFn::Uniform);
    let golden = mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(200), 11, None, 1);
    for threads in THREADS {
        let adaptive = with_force(None, || {
            mc_shapley_improved_adaptive(&inc, StoppingRule::Fixed(200), 11, None, threads)
        });
        assert_bitwise(
            &golden.values,
            &adaptive.values,
            &format!("reg adaptive t={threads}"),
        );
    }
}

#[test]
fn adaptive_group_testing_bitwise_matches_static() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(5), 40, 6, 2);
    let u = KnnClassUtility::unweighted(&train, &test, 2);
    let golden = group_testing_shapley_with_threads(&u, 3_000, 21, 1);
    for threads in THREADS {
        let adaptive = with_force(None, || {
            group_testing_shapley_adaptive(&u, 3_000, 21, threads)
        });
        assert_eq!(golden.tests, adaptive.tests);
        assert_bitwise(
            &golden.values,
            &adaptive.values,
            &format!("gt adaptive t={threads}"),
        );
    }
}

#[test]
fn adaptive_truncated_bitwise_matches_static() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(29), 150, 200, 3);
    let golden = truncated_class_shapley_with_threads(&train, &test, 3, 0.1, 1);
    for threads in THREADS {
        let adaptive = with_force(None, || {
            truncated_class_shapley_adaptive(&train, &test, 3, 0.1, threads)
        });
        assert_bitwise(
            &golden,
            &adaptive,
            &format!("truncated adaptive t={threads}"),
        );
    }
}

#[test]
fn forced_schedules_never_move_a_bit() {
    // Every family, every adversarial tiling, against goldens computed on
    // the unforced static path. A forced schedule may slow the run down; it
    // must not change one output bit anywhere.
    let (ctrain, ctest) = random_class(&mut StdRng::seed_from_u64(2027), 70, 5, 3);
    let u = KnnClassUtility::unweighted(&ctrain, &ctest, 3);
    let inc = IncKnnUtility::classification(&ctrain, &ctest, 3, WeightFn::Uniform);
    let heuristic = StoppingRule::Heuristic {
        threshold: 1e-4,
        max: 300,
    };

    let g_base = mc_shapley_baseline_with_threads(&u, StoppingRule::Fixed(90), 13, None, 1);
    let g_imp_fan = mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(90), 13, None, 1);
    let g_imp_rounds = mc_shapley_improved_with_threads(&inc, heuristic, 13, Some(20), 1);
    let g_gt = group_testing_shapley_with_threads(&u, 1_500, 13, 1);
    let g_trunc = truncated_class_shapley_with_threads(&ctrain, &ctest, 3, 0.1, 1);

    for force in FORCES {
        for threads in [2usize, 8] {
            with_force(Some(force), || {
                let base =
                    mc_shapley_baseline_adaptive(&u, StoppingRule::Fixed(90), 13, None, threads);
                assert_eq!(
                    g_base.permutations, base.permutations,
                    "{force} t={threads}"
                );
                assert_bitwise(
                    &g_base.values,
                    &base.values,
                    &format!("baseline forced '{force}' t={threads}"),
                );

                let fan =
                    mc_shapley_improved_adaptive(&inc, StoppingRule::Fixed(90), 13, None, threads);
                assert_bitwise(
                    &g_imp_fan.values,
                    &fan.values,
                    &format!("improved fan-out forced '{force}' t={threads}"),
                );

                let rounds = mc_shapley_improved_adaptive(&inc, heuristic, 13, Some(20), threads);
                assert_eq!(g_imp_rounds.permutations, rounds.permutations, "{force}");
                assert_bitwise(
                    &g_imp_rounds.values,
                    &rounds.values,
                    &format!("improved rounds forced '{force}' t={threads}"),
                );
                assert_eq!(g_imp_rounds.snapshots.len(), rounds.snapshots.len());
                for ((ta, va), (tb, vb)) in g_imp_rounds.snapshots.iter().zip(&rounds.snapshots) {
                    assert_eq!(ta, tb);
                    assert_bitwise(va, vb, &format!("snapshot t={ta} forced '{force}'"));
                }

                let gt = group_testing_shapley_adaptive(&u, 1_500, 13, threads);
                assert_eq!(g_gt.tests, gt.tests);
                assert_bitwise(
                    &g_gt.values,
                    &gt.values,
                    &format!("group testing forced '{force}' t={threads}"),
                );

                let trunc = truncated_class_shapley_adaptive(&ctrain, &ctest, 3, 0.1, threads);
                assert_bitwise(
                    &g_trunc,
                    &trunc,
                    &format!("truncated forced '{force}' t={threads}"),
                );
            });
        }
    }
}

#[test]
fn adaptive_zero_budget_matches_static_empty_run() {
    // Degenerate budget: no permutations at all. The adaptive entry points
    // must not even attempt a measurement (there is nothing to measure on)
    // and must return the same all-zero vector as the static path.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(1), 12, 2, 2);
    let inc = IncKnnUtility::classification(&train, &test, 2, WeightFn::Uniform);
    let golden = mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(0), 9, None, 1);
    let adaptive = with_force(None, || {
        mc_shapley_improved_adaptive(&inc, StoppingRule::Fixed(0), 9, None, 8)
    });
    assert_eq!(golden.permutations, adaptive.permutations);
    assert_bitwise(&golden.values, &adaptive.values, "zero budget");
}
