//! End-to-end scenario tests for the streaming valuator and the §7
//! marketplace analyses, spanning datasets → lsh → core.

use knnshap::datasets::noise::{flip_labels, inject_poison};
use knnshap::datasets::synth::blobs::{self, BlobConfig};
use knnshap::datasets::{contrast, normalize};
use knnshap::lsh::index::LshIndex;
use knnshap::valuation::analysis::{
    monetary_payout, per_class_summary, rank_agreement, DetectionCurve,
};
use knnshap::valuation::exact_unweighted::knn_class_shapley_with_threads;
use knnshap::valuation::lsh_approx::plan_index_params;
use knnshap::valuation::streaming::{OnlineValuator, StreamBackend};
use knnshap::valuation::truncated::k_star;

fn corpus(
    n: usize,
    seed: u64,
) -> (
    knnshap::datasets::ClassDataset,
    knnshap::datasets::ClassDataset,
) {
    let cfg = BlobConfig {
        n,
        dim: 8,
        n_classes: 3,
        cluster_std: 0.5,
        center_scale: 3.0,
        seed,
    };
    (blobs::generate(&cfg), blobs::queries(&cfg, 30, seed ^ 0xAB))
}

/// Streaming accumulation with the exact backend reproduces the batch
/// valuation bit-for-bit; interleaving order does not matter.
#[test]
fn streaming_exact_is_order_invariant_and_equals_batch() {
    let (train, test) = corpus(200, 9);
    let batch = knn_class_shapley_with_threads(&train, &test, 3, 2);

    let mut forward = OnlineValuator::new(&train, 3, StreamBackend::Exact);
    for j in 0..test.len() {
        forward.observe(test.x.row(j), test.y[j]);
    }
    let mut backward = OnlineValuator::new(&train, 3, StreamBackend::Exact);
    for j in (0..test.len()).rev() {
        backward.observe(test.x.row(j), test.y[j]);
    }
    assert!(forward.values().max_abs_diff(&batch) < 1e-12);
    assert!(backward.values().max_abs_diff(&batch) < 1e-12);
}

/// The full marketplace loop: corrupt a quarter of the labels, value the
/// corpus with the *streaming LSH* path, and check that (a) the audit finds
/// corrupted points far better than chance, (b) payouts conserve revenue,
/// (c) the corrupted class analysis is consistent.
#[test]
fn noisy_market_audit_via_streaming_lsh() {
    let (clean, _) = corpus(600, 31);
    // a larger query stream so that most training points fall inside some
    // query's K* prefix and receive a nonzero (rankable) value
    let mut test = blobs::queries(
        &BlobConfig {
            n: 600,
            dim: 8,
            n_classes: 3,
            cluster_std: 0.5,
            center_scale: 3.0,
            seed: 31,
        },
        120,
        0xBEEF,
    );
    let (mut train, flipped) = flip_labels(&clean, 0.25, 77);
    assert!(!flipped.is_empty());

    let factor = normalize::scale_to_unit_dmean(&mut train.x, 500, 3);
    normalize::apply_scale(&mut test.x, factor);

    let (k, eps, delta) = (3usize, 0.1f64, 0.1f64);
    let ks = k_star(k, eps);
    let est = contrast::estimate(&train.x, &test.x, ks, 16, 64, 5);
    let params = plan_index_params(train.len(), &est, k, eps, delta, 1.0, 48, 11);
    let index = LshIndex::build(&train.x, params);

    let mut online = OnlineValuator::new(&train, k, StreamBackend::Lsh { index, eps });
    for j in 0..test.len() {
        online.observe(test.x.row(j), test.y[j]);
    }
    let sv = online.values();

    // (a) detection beats chance by a wide margin
    let mut is_bad = vec![false; train.len()];
    for &i in &flipped {
        is_bad[i] = true;
    }
    let curve = DetectionCurve::new(&sv, &is_bad);
    assert!(
        curve.auc() > 0.65,
        "mislabel detection AUC {} should be well above random 0.5",
        curve.auc()
    );
    // Inspecting the |bad| lowest-valued points must beat the 25% base rate
    // by a wide margin.
    assert!(
        curve.precision_at(flipped.len()) > 0.5,
        "precision@|bad| {} vs base rate 0.25",
        curve.precision_at(flipped.len())
    );

    // (b) affine payout conserves revenue
    let revenue = 10_000.0;
    let base = 600.0;
    let pay = monetary_payout(&sv, revenue, base);
    let paid: f64 = pay.iter().sum();
    assert!((paid - (revenue * sv.total() + base)).abs() < 1e-6);

    // (c) per-class totals add up to the overall total
    let classes = per_class_summary(&sv, &train.y, train.n_classes);
    let class_total: f64 = classes.iter().map(|c| c.total).sum();
    assert!((class_total - sv.total()).abs() < 1e-9);
    let class_count: usize = classes.iter().map(|c| c.count).sum();
    assert_eq!(class_count, train.len());
}

/// The truncated streaming backend stays within its ε guarantee of the exact
/// batch answer, and agrees with the exact ranking among the points it
/// retains (points beyond every query's K* prefix are truncated to exactly
/// zero, so *global* rank agreement is the wrong yardstick — Theorem 2 only
/// promises rank preservation inside the prefix).
#[test]
fn truncated_stream_ranks_like_exact_on_retained_points() {
    // Label noise matters here: with perfectly pure clusters every retained
    // neighbor matches the query label, all recursion differences vanish and
    // the (ε,0)-valid answer is identically zero — nothing to rank.
    let (clean, test) = corpus(300, 13);
    let (train, _) = flip_labels(&clean, 0.2, 55);
    let eps = 0.05;
    let mut online = OnlineValuator::new(&train, 2, StreamBackend::Truncated { eps });
    for j in 0..test.len() {
        online.observe(test.x.row(j), test.y[j]);
    }
    let exact = knn_class_shapley_with_threads(&train, &test, 2, 2);
    let approx = online.values();
    assert!(approx.max_abs_diff(&exact) <= eps + 1e-12);

    // Restrict the comparison to points the truncation kept (nonzero value):
    // there the orderings must agree strongly.
    let kept: Vec<usize> = (0..train.len()).filter(|&i| approx.get(i) != 0.0).collect();
    assert!(kept.len() >= 20, "expected a healthy retained prefix");
    let a = knnshap::valuation::ShapleyValues::new(kept.iter().map(|&i| approx.get(i)).collect());
    let e = knnshap::valuation::ShapleyValues::new(kept.iter().map(|&i| exact.get(i)).collect());
    assert!(
        rank_agreement(&a, &e) > 0.8,
        "rank agreement on retained points: {}",
        rank_agreement(&a, &e)
    );
}

/// The §7 defense claim, against the strongest KNN attack we can generate:
/// poison points cloned from the test queries with wrong labels must sink to
/// the bottom of the valuation (strongly negative values, worst ranks).
#[test]
fn poisoning_defense_ranks_poison_at_bottom() {
    let (clean, test) = corpus(250, 47);
    let n_poison = 25;
    let (train, poison_idx) = inject_poison(&clean, &test, n_poison, 0.01, 3);
    assert_eq!(train.len(), 275);

    let sv = knn_class_shapley_with_threads(&train, &test, 3, 2);

    // every poison point should be strictly harmful on average
    let negative = poison_idx.iter().filter(|&&i| sv.get(i) < 0.0).count();
    assert!(
        negative >= n_poison * 9 / 10,
        "only {negative}/{n_poison} poison points have negative value"
    );

    // and the bottom of the ranking should be dominated by poison
    let mut is_bad = vec![false; train.len()];
    for &i in &poison_idx {
        is_bad[i] = true;
    }
    let curve = DetectionCurve::new(&sv, &is_bad);
    assert!(
        curve.precision_at(n_poison) >= 0.8,
        "precision@{n_poison} = {}",
        curve.precision_at(n_poison)
    );
    assert!(curve.auc() > 0.9, "AUC = {}", curve.auc());
}

/// Merging shard accumulators must commute (parallel ingestion safety).
#[test]
fn shard_merge_commutes() {
    let (train, test) = corpus(120, 21);
    let mk = || OnlineValuator::new(&train, 2, StreamBackend::Exact);
    let mut a = mk();
    let mut b = mk();
    for j in 0..test.len() {
        if j % 2 == 0 {
            a.observe(test.x.row(j), test.y[j]);
        } else {
            b.observe(test.x.row(j), test.y[j]);
        }
    }
    let mut ab = mk();
    ab.merge(&a);
    ab.merge(&b);
    let mut ba = mk();
    ba.merge(&b);
    ba.merge(&a);
    assert!(ab.values().max_abs_diff(&ba.values()) < 1e-15);
    assert_eq!(ab.queries_seen(), test.len());
}
