//! Determinism battery for the sharded valuation runtime (ISSUE 4),
//! completing the trilogy of `parallel_determinism.rs` (thread counts) and
//! `mc_determinism.rs` (stochastic estimators): for every estimator with a
//! shard-range entry point — exact classification/regression/weighted,
//! truncated, baseline/improved MC, group testing — splitting the job into
//! {1, 2, 7} shards, running each shard at {1, 8} threads, round-tripping
//! every partial through the versioned wire format, and merging must
//! reproduce the unsharded estimator **bit for bit**.
//!
//! A second layer pins the merge protocol itself: input-order invariance,
//! and loud rejection of version mismatches, mixed jobs (different seeds ⇒
//! different fingerprints), coverage gaps and overlaps.

use knnshap::knn::WeightFn;
use knnshap::valuation::exact_regression::{knn_reg_shapley_shard, knn_reg_shapley_with_threads};
use knnshap::valuation::exact_unweighted::{
    knn_class_shapley_shard, knn_class_shapley_with_threads,
};
use knnshap::valuation::exact_weighted::{
    weighted_knn_class_shapley, weighted_knn_class_shapley_shard,
};
use knnshap::valuation::group_testing::{
    group_testing_shapley_shard, group_testing_shapley_with_threads,
};
use knnshap::valuation::mc::{
    mc_shapley_baseline_shard, mc_shapley_baseline_with_threads, mc_shapley_improved_shard,
    mc_shapley_improved_with_threads, IncKnnUtility, StoppingRule,
};
use knnshap::valuation::sharding::{
    merge_partials, ShardError, ShardPartial, ShardSpec, SHARD_FORMAT_VERSION,
};
use knnshap::valuation::truncated::{
    truncated_class_shapley_shard, truncated_class_shapley_with_threads,
};
use knnshap::valuation::types::ShapleyValues;
use knnshap::valuation::utility::KnnClassUtility;
use rand::rngs::StdRng;
use rand::SeedableRng;

mod common;
use common::{assert_bitwise, random_class, random_reg};

/// Shard counts every family is checked at (1 = trivial split, 2 = even,
/// 7 = deliberately awkward against 31 test points / 100 permutations).
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];
/// Per-shard thread counts.
const THREADS: [usize; 2] = [1, 8];

/// Run `make_shard` for every (shard, thread) combination, round-trip each
/// partial through bytes, merge, and compare bitwise against `reference`.
fn check_family<F>(reference: &ShapleyValues, what: &str, make_shard: F)
where
    F: Fn(ShardSpec, usize) -> ShardPartial,
{
    for shards in SHARD_COUNTS {
        for threads in THREADS {
            let parts: Vec<ShardPartial> = (0..shards)
                .map(|i| {
                    let p = make_shard(ShardSpec::new(i, shards), threads);
                    // Wire-format round trip: what lands on disk is what merges.
                    ShardPartial::from_bytes(&p.to_bytes()).expect("round trip")
                })
                .collect();
            let merged = merge_partials(&parts).expect("merge");
            assert_bitwise(
                reference,
                &merged.values,
                &format!("{what}: {shards} shards x {threads} threads"),
            );
        }
    }
}

#[test]
fn exact_classification_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0xA1), 80, 31, 3);
    for k in [1usize, 3] {
        // The unsharded reference must itself be thread-count-free…
        let reference = knn_class_shapley_with_threads(&train, &test, k, 1);
        assert_bitwise(
            &reference,
            &knn_class_shapley_with_threads(&train, &test, k, 8),
            "exact class unsharded across threads",
        );
        // …and every shard/thread combination must land on the same bits.
        check_family(
            &reference,
            &format!("exact class k={k}"),
            |spec, threads| knn_class_shapley_shard(&train, &test, k, spec, threads),
        );
    }
}

#[test]
fn exact_regression_shards_bitwise() {
    let (train, test) = random_reg(&mut StdRng::seed_from_u64(0xB2), 70, 23);
    let reference = knn_reg_shapley_with_threads(&train, &test, 3, 1);
    check_family(&reference, "exact reg", |spec, threads| {
        knn_reg_shapley_shard(&train, &test, 3, spec, threads)
    });
}

#[test]
fn weighted_classification_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0xC3), 30, 9, 2);
    let weight = WeightFn::InverseDistance { eps: 1e-3 };
    let reference = weighted_knn_class_shapley(&train, &test, 2, weight, 1);
    check_family(&reference, "weighted class", |spec, threads| {
        weighted_knn_class_shapley_shard(&train, &test, 2, weight, spec, threads)
    });
}

#[test]
fn truncated_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0xD4), 90, 17, 3);
    let reference = truncated_class_shapley_with_threads(&train, &test, 2, 0.15, 1);
    check_family(&reference, "truncated", |spec, threads| {
        truncated_class_shapley_shard(&train, &test, 2, 0.15, spec, threads)
    });
}

#[test]
fn mc_baseline_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0xE5), 25, 4, 2);
    let u = KnnClassUtility::unweighted(&train, &test, 2);
    let reference =
        mc_shapley_baseline_with_threads(&u, StoppingRule::Fixed(100), 7, None, 1).values;
    check_family(&reference, "mc baseline", |spec, threads| {
        mc_shapley_baseline_shard(&u, 100, 7, spec, threads)
    });
}

#[test]
fn mc_improved_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0xF6), 40, 5, 2);
    let inc = IncKnnUtility::classification(&train, &test, 3, WeightFn::Uniform);
    let reference =
        mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(100), 11, None, 1).values;
    check_family(&reference, "mc improved", |spec, threads| {
        mc_shapley_improved_shard(&inc, 100, 11, spec, threads)
    });
}

#[test]
fn group_testing_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x17), 15, 3, 2);
    let u = KnnClassUtility::unweighted(&train, &test, 2);
    let reference = group_testing_shapley_with_threads(&u, 500, 13, 1).values;
    check_family(&reference, "group testing", |spec, threads| {
        group_testing_shapley_shard(&u, 500, 13, spec, threads)
    });
}

// ---------------------------------------------------------------------------
// Merge protocol: ordering, versioning, and failure modes.
// ---------------------------------------------------------------------------

fn three_shards() -> (ShapleyValues, Vec<ShardPartial>) {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x28), 40, 10, 2);
    let reference = knn_class_shapley_with_threads(&train, &test, 2, 1);
    let parts = (0..3)
        .map(|i| knn_class_shapley_shard(&train, &test, 2, ShardSpec::new(i, 3), 1))
        .collect();
    (reference, parts)
}

#[test]
fn merge_is_input_order_invariant() {
    let (reference, mut parts) = three_shards();
    parts.rotate_left(1);
    parts.swap(0, 1);
    let merged = merge_partials(&parts).expect("merge in scrambled order");
    assert_bitwise(&reference, &merged.values, "scrambled merge order");
}

#[test]
fn merge_rejects_version_mismatch() {
    let (_, parts) = three_shards();
    let mut bytes = parts[1].to_bytes();
    bytes[8] = (SHARD_FORMAT_VERSION + 1) as u8; // bump the version field
    let err = ShardPartial::from_bytes(&bytes).unwrap_err();
    assert_eq!(
        err,
        ShardError::UnsupportedVersion {
            found: SHARD_FORMAT_VERSION + 1
        }
    );
}

#[test]
fn merge_rejects_mixed_seeds_sizes_and_coverage_faults() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x39), 20, 4, 2);
    let u = KnnClassUtility::unweighted(&train, &test, 2);
    let parts: Vec<ShardPartial> = (0..2)
        .map(|i| mc_shapley_baseline_shard(&u, 40, 1, ShardSpec::new(i, 2), 1))
        .collect();

    // Same job, different seed ⇒ fingerprint mismatch.
    let alien = mc_shapley_baseline_shard(&u, 40, 2, ShardSpec::new(1, 2), 1);
    let err = merge_partials(&[parts[0].clone(), alien]).unwrap_err();
    assert!(matches!(err, ShardError::Incompatible(_)), "{err}");

    // Different budget ⇒ different total_items.
    let short = mc_shapley_baseline_shard(&u, 30, 1, ShardSpec::new(1, 2), 1);
    let err = merge_partials(&[parts[0].clone(), short]).unwrap_err();
    assert!(matches!(err, ShardError::Incompatible(_)), "{err}");

    // Gap and overlap.
    let err = merge_partials(&[parts[1].clone()]).unwrap_err();
    assert!(matches!(err, ShardError::Coverage(_)), "{err}");
    let err = merge_partials(&[parts[0].clone(), parts[0].clone(), parts[1].clone()]).unwrap_err();
    assert!(matches!(err, ShardError::Coverage(_)), "{err}");
    assert_eq!(merge_partials(&[]).unwrap_err(), ShardError::Empty);
}

#[test]
fn oversharded_jobs_merge_through_empty_shards() {
    // 7 shards of a 4-item test set: some shards cover nothing; the merge
    // must still reproduce the unsharded bits.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x4A), 30, 4, 2);
    let reference = knn_class_shapley_with_threads(&train, &test, 1, 1);
    let parts: Vec<ShardPartial> = (0..7)
        .map(|i| knn_class_shapley_shard(&train, &test, 1, ShardSpec::new(i, 7), 1))
        .collect();
    assert!(parts.iter().any(|p| p.meta.item_lo == p.meta.item_hi));
    let merged = merge_partials(&parts).expect("merge with empty shards");
    assert_bitwise(&reference, &merged.values, "oversharded");
}

#[test]
fn shard_files_are_canonical_across_thread_counts() {
    // Same shard computed at 1 and 8 threads serializes to identical BYTES —
    // the property that lets operators checksum shard files.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x5B), 60, 12, 3);
    for i in 0..2 {
        let a = knn_class_shapley_shard(&train, &test, 2, ShardSpec::new(i, 2), 1);
        let b = knn_class_shapley_shard(&train, &test, 2, ShardSpec::new(i, 2), 8);
        assert_eq!(a.to_bytes(), b.to_bytes(), "shard {i} bytes");
    }
}
