//! Cross-crate integration: every exact algorithm in the workspace agrees
//! with the O(2^N) Shapley enumeration, on randomized instances, via
//! property-based testing (proptest). This is the repository's strongest
//! correctness statement: Theorems 1, 6, 7, 8, 9, 10 and 11 are all checked
//! against the definition of the Shapley value itself.

use knnshap::datasets::{ClassDataset, Features, RegDataset};
use knnshap::knn::WeightFn;
use knnshap::valuation::composite::{
    composite_knn_class_shapley_single, composite_knn_reg_shapley_single, CompositeUtility,
    GameForm,
};
use knnshap::valuation::curator::{curator_class_shapley_single, Ownership, SellerUtility};
use knnshap::valuation::exact_enum::shapley_enumeration;
use knnshap::valuation::exact_regression::{knn_reg_shapley_single, knn_reg_shapley_with_threads};
use knnshap::valuation::exact_unweighted::{
    knn_class_shapley_single, knn_class_shapley_with_threads,
};
use knnshap::valuation::exact_weighted::{
    weighted_knn_class_shapley, weighted_knn_class_shapley_single, weighted_knn_reg_shapley,
    weighted_knn_reg_shapley_single,
};
use knnshap::valuation::utility::{KnnClassUtility, KnnRegUtility};
use proptest::prelude::*;

fn class_instance(
    feats: &[f32],
    labels: &[u32],
    query: (f32, f32),
    qlabel: u32,
) -> (ClassDataset, ClassDataset) {
    let n = labels.len();
    let train = ClassDataset::new(
        Features::new(feats[..n * 2].to_vec(), 2),
        labels.to_vec(),
        3,
    );
    let test = ClassDataset::new(Features::new(vec![query.0, query.1], 2), vec![qlabel], 3);
    (train, test)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem1_matches_enumeration(
        feats in prop::collection::vec(-1.0f32..1.0, 16),
        labels in prop::collection::vec(0u32..3, 8),
        qx in -1.0f32..1.0,
        qy in -1.0f32..1.0,
        qlabel in 0u32..3,
        k in 1usize..10,
    ) {
        let (train, test) = class_instance(&feats, &labels, (qx, qy), qlabel);
        let fast = knn_class_shapley_single(&train, test.x.row(0), qlabel, k);
        let truth = shapley_enumeration(&KnnClassUtility::unweighted(&train, &test, k));
        prop_assert!(fast.max_abs_diff(&truth) < 1e-9);
    }

    #[test]
    fn theorem6_matches_enumeration(
        feats in prop::collection::vec(-1.0f32..1.0, 16),
        targets in prop::collection::vec(-2.0f64..2.0, 8),
        qx in -1.0f32..1.0,
        qy in -1.0f32..1.0,
        qt in -2.0f64..2.0,
        k in 1usize..10,
    ) {
        let train = RegDataset::new(Features::new(feats.clone(), 2), targets);
        let test = RegDataset::new(Features::new(vec![qx, qy], 2), vec![qt]);
        let fast = knn_reg_shapley_single(&train, test.x.row(0), qt, k);
        let truth = shapley_enumeration(&KnnRegUtility::unweighted(&train, &test, k));
        prop_assert!(fast.max_abs_diff(&truth) < 1e-8);
    }

    #[test]
    fn theorem7_matches_enumeration_classification(
        feats in prop::collection::vec(-1.0f32..1.0, 14),
        labels in prop::collection::vec(0u32..3, 7),
        qx in -1.0f32..1.0,
        qy in -1.0f32..1.0,
        qlabel in 0u32..3,
        k in 1usize..4,
    ) {
        let (train, test) = class_instance(&feats, &labels, (qx, qy), qlabel);
        let w = WeightFn::InverseDistance { eps: 1e-3 };
        let fast = weighted_knn_class_shapley_single(&train, test.x.row(0), qlabel, k, w);
        let truth = shapley_enumeration(&KnnClassUtility::new(&train, &test, k, w));
        prop_assert!(fast.max_abs_diff(&truth) < 1e-9);
    }

    #[test]
    fn theorem7_matches_enumeration_regression(
        feats in prop::collection::vec(-1.0f32..1.0, 12),
        targets in prop::collection::vec(-2.0f64..2.0, 6),
        qx in -1.0f32..1.0,
        qy in -1.0f32..1.0,
        qt in -2.0f64..2.0,
        k in 1usize..4,
    ) {
        let train = RegDataset::new(Features::new(feats.clone(), 2), targets);
        let test = RegDataset::new(Features::new(vec![qx, qy], 2), vec![qt]);
        let w = WeightFn::Exponential { beta: 1.0 };
        let fast = weighted_knn_reg_shapley_single(&train, test.x.row(0), qt, k, w);
        let truth = shapley_enumeration(&KnnRegUtility::new(&train, &test, k, w));
        prop_assert!(fast.max_abs_diff(&truth) < 1e-8);
    }

    #[test]
    fn theorem8_matches_seller_enumeration(
        feats in prop::collection::vec(-1.0f32..1.0, 18),
        labels in prop::collection::vec(0u32..2, 9),
        owners in prop::collection::vec(0u32..4, 9),
        qx in -1.0f32..1.0,
        qy in -1.0f32..1.0,
        qlabel in 0u32..2,
        k in 1usize..4,
    ) {
        let n = labels.len();
        let train = ClassDataset::new(Features::new(feats[..n * 2].to_vec(), 2), labels.clone(), 2);
        let test = ClassDataset::new(Features::new(vec![qx, qy], 2), vec![qlabel], 2);
        let ownership = Ownership::new(owners.clone(), 4);
        let point_u = KnnClassUtility::unweighted(&train, &test, k);
        let seller_u = SellerUtility { point_utility: &point_u, ownership: &ownership };
        let truth = shapley_enumeration(&seller_u);
        let fast = curator_class_shapley_single(
            &train, &ownership, test.x.row(0), qlabel, k, WeightFn::Uniform, GameForm::DataOnly,
        );
        prop_assert!(fast.max_abs_diff(&truth) < 1e-9);
    }

    #[test]
    fn theorems9_and_10_match_composite_enumeration(
        feats in prop::collection::vec(-1.0f32..1.0, 14),
        labels in prop::collection::vec(0u32..2, 7),
        targets in prop::collection::vec(-1.0f64..1.0, 7),
        qx in -1.0f32..1.0,
        qy in -1.0f32..1.0,
        qlabel in 0u32..2,
        qt in -1.0f64..1.0,
        k in 1usize..4,
    ) {
        // classification (Theorem 9)
        let (train, test) = class_instance(&feats, &labels, (qx, qy), qlabel);
        let base = KnnClassUtility::unweighted(&train, &test, k);
        let comp = CompositeUtility::new(&base);
        let truth = shapley_enumeration(&comp);
        let fast = composite_knn_class_shapley_single(&train, test.x.row(0), qlabel, k);
        for i in 0..train.len() {
            prop_assert!((fast.sellers[i] - truth[i]).abs() < 1e-9);
        }
        prop_assert!((fast.analyst - truth[comp.analyst_player()]).abs() < 1e-9);

        // regression (Theorem 10) — recursion requires K < N
        let rtrain = RegDataset::new(Features::new(feats.clone(), 2), targets);
        let rtest = RegDataset::new(Features::new(vec![qx, qy], 2), vec![qt]);
        let rbase = KnnRegUtility::unweighted(&rtrain, &rtest, k);
        let rcomp = CompositeUtility::new(&rbase);
        let rtruth = shapley_enumeration(&rcomp);
        let rfast = composite_knn_reg_shapley_single(&rtrain, rtest.x.row(0), qt, k);
        for i in 0..rtrain.len() {
            prop_assert!((rfast.sellers[i] - rtruth[i]).abs() < 1e-8);
        }
        prop_assert!((rfast.analyst - rtruth[rcomp.analyst_player()]).abs() < 1e-8);
    }

    // ------------------------------------------------------------------
    // Golden-value checks for the `par_map_reduce`-backed multi-test
    // drivers (ISSUE 2): the work-stealing reduction over test points must
    // still reproduce the brute-force enumeration of the *averaged* game,
    // at an intentionally parallel thread count.
    // ------------------------------------------------------------------

    #[test]
    fn multi_test_class_parallel_matches_enumeration(
        feats in prop::collection::vec(-1.0f32..1.0, 16),
        labels in prop::collection::vec(0u32..3, 8),
        qfeats in prop::collection::vec(-1.0f32..1.0, 6),
        qlabels in prop::collection::vec(0u32..3, 3),
        k in 1usize..10,
    ) {
        let n = labels.len();
        let train = ClassDataset::new(Features::new(feats[..n * 2].to_vec(), 2), labels.clone(), 3);
        let test = ClassDataset::new(Features::new(qfeats.clone(), 2), qlabels.clone(), 3);
        let fast = knn_class_shapley_with_threads(&train, &test, k, 4);
        let truth = shapley_enumeration(&KnnClassUtility::unweighted(&train, &test, k));
        prop_assert!(fast.max_abs_diff(&truth) < 1e-9);
    }

    #[test]
    fn multi_test_reg_parallel_matches_enumeration(
        feats in prop::collection::vec(-1.0f32..1.0, 16),
        targets in prop::collection::vec(-2.0f64..2.0, 8),
        qfeats in prop::collection::vec(-1.0f32..1.0, 6),
        qtargets in prop::collection::vec(-2.0f64..2.0, 3),
        k in 1usize..10,
    ) {
        let train = RegDataset::new(Features::new(feats.clone(), 2), targets);
        let test = RegDataset::new(Features::new(qfeats.clone(), 2), qtargets);
        let fast = knn_reg_shapley_with_threads(&train, &test, k, 4);
        let truth = shapley_enumeration(&KnnRegUtility::unweighted(&train, &test, k));
        prop_assert!(fast.max_abs_diff(&truth) < 1e-8);
    }

    #[test]
    fn multi_test_weighted_class_parallel_matches_enumeration(
        feats in prop::collection::vec(-1.0f32..1.0, 14),
        labels in prop::collection::vec(0u32..3, 7),
        qfeats in prop::collection::vec(-1.0f32..1.0, 4),
        qlabels in prop::collection::vec(0u32..3, 2),
        k in 1usize..4,
    ) {
        let n = labels.len();
        let train = ClassDataset::new(Features::new(feats[..n * 2].to_vec(), 2), labels.clone(), 3);
        let test = ClassDataset::new(Features::new(qfeats.clone(), 2), qlabels.clone(), 3);
        let w = WeightFn::InverseDistance { eps: 1e-3 };
        let fast = weighted_knn_class_shapley(&train, &test, k, w, 4);
        let truth = shapley_enumeration(&KnnClassUtility::new(&train, &test, k, w));
        prop_assert!(fast.max_abs_diff(&truth) < 1e-9);
    }

    #[test]
    fn multi_test_weighted_reg_parallel_matches_enumeration(
        feats in prop::collection::vec(-1.0f32..1.0, 12),
        targets in prop::collection::vec(-2.0f64..2.0, 6),
        qfeats in prop::collection::vec(-1.0f32..1.0, 4),
        qtargets in prop::collection::vec(-2.0f64..2.0, 2),
        k in 1usize..4,
    ) {
        let train = RegDataset::new(Features::new(feats.clone(), 2), targets);
        let test = RegDataset::new(Features::new(qfeats.clone(), 2), qtargets);
        let w = WeightFn::Exponential { beta: 1.0 };
        let fast = weighted_knn_reg_shapley(&train, &test, k, w, 4);
        let truth = shapley_enumeration(&KnnRegUtility::new(&train, &test, k, w));
        prop_assert!(fast.max_abs_diff(&truth) < 1e-8);
    }
}
