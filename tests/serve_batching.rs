//! Differential battery for batched mutations (ISSUE 8, satellite 1).
//!
//! The claim under test: applying a group of insert/delete mutations via
//! `ResidentValuator::apply_batch` — and via the daemon's `Batch` frame —
//! is **bitwise-identical** to applying them one at a time, at every
//! thread count, with per-mutation acks carrying exactly the versions and
//! indices sequential application would produce. Three checks triangulate:
//!
//! 1. **Batched vs sequential, bitwise** — same engine type, same script,
//!    one `apply_batch` per random group vs one `insert`/`delete` call per
//!    mutation, compared value-for-value by bits at `KNNSHAP_THREADS`-
//!    relevant worker counts (CI replays this file at 1 and 8).
//! 2. **Cold recompute** — the batched engine's final vector equals a
//!    serial `knn_class_shapley_with_threads` run on the final dataset.
//! 3. **The independent Wang–Jia oracle** (arXiv:2304.04258) — forward
//!    closed form, f64 distances, none of the production path; compared to
//!    1e-9 on integer-grid features where both rankings are provably
//!    identical (and exact duplicate distances are everywhere, stressing
//!    the tie-break rule inside the batch splice loop).
//!
//! Deterministic cases pin the k-boundary (batch shrinks N below K and
//! regrows it) and the all-duplicate-distance dataset; server-level tests
//! drive the same invariants through `ValuationServer::handle(Batch)`,
//! including mid-batch rejections and the admission-control `Busy` tier.

use knnshap::datasets::{ClassDataset, Features};
use knnshap::serve::{BatchMutation, BatchOutcome, ErrorCode, Request, Response, ValuationServer};
use knnshap::valuation::exact_unweighted::knn_class_shapley_with_threads;
use knnshap::valuation::resident::{Mutation, ResidentValuator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::assert_bitwise;

const CLASSES: u32 = 3;

fn grid_row(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(-4i32..=4) as f32).collect()
}

fn grid_dataset(rng: &mut StdRng, n: usize, dim: usize) -> ClassDataset {
    let mut x = Features::new(Vec::new(), dim);
    let y: Vec<u32> = (0..n).map(|_| rng.gen_range(0..CLASSES)).collect();
    for _ in 0..n {
        x.push_row(&grid_row(rng, dim));
    }
    ClassDataset::new(x, y, CLASSES)
}

/// The Wang–Jia-note closed form (arXiv:2304.04258), from scratch — same
/// oracle `serve_incremental.rs` uses; deliberately O(N²) and naive.
fn wang_jia_reference(train: &ClassDataset, test: &ClassDataset, k: usize) -> Vec<f64> {
    let n = train.len();
    let mut total = vec![0.0f64; n];
    for t in 0..test.len() {
        let q = test.x.row(t);
        let y = test.y[t];
        let dist: Vec<f64> = (0..n)
            .map(|i| {
                train
                    .x
                    .row(i)
                    .iter()
                    .zip(q)
                    .map(|(a, b)| {
                        let d = f64::from(*a) - f64::from(*b);
                        d * d
                    })
                    .sum()
            })
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| dist[a].partial_cmp(&dist[b]).unwrap().then(a.cmp(&b)));
        let hit = |rank1: usize| u8::from(train.y[order[rank1 - 1]] == y) as f64;
        for i in 1..=n {
            let mut acc = 0.0f64;
            for j in i..n {
                acc += (hit(j) - hit(j + 1)) * k.min(j) as f64 / j as f64;
            }
            acc += hit(n) * k.min(n) as f64 / n as f64;
            total[order[i - 1]] += acc / k as f64;
        }
    }
    total.iter().map(|v| v / test.len() as f64).collect()
}

fn assert_close_to_oracle(engine: &ResidentValuator, test: &ClassDataset, k: usize) {
    let got = engine.values();
    let oracle = wang_jia_reference(engine.train(), test, k);
    assert_eq!(got.len(), oracle.len());
    for (i, (a, b)) in got.as_slice().iter().zip(&oracle).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "value {i} disagrees with the Wang–Jia oracle: {a} vs {b}"
        );
    }
}

/// A random always-valid mutation group (≈1/3 deletes, ≈1/3 duplicate
/// inserts, rest fresh inserts), with delete indices resolved against the
/// training size as it evolves *within* the group.
fn random_group(rng: &mut StdRng, engine: &ResidentValuator, max_len: usize) -> Vec<Mutation> {
    let mut len = engine.n_train();
    let dim = engine.train().dim();
    // Resolve duplicate-inserts against the *current* dataset only — rows
    // inserted earlier in the same group can't be sampled, which keeps
    // generation simple while exact duplicates still occur constantly.
    (0..rng.gen_range(1..=max_len))
        .map(|_| {
            if len > 2 && rng.gen_range(0..3) == 0 {
                let index = rng.gen_range(0..len);
                len -= 1;
                Mutation::Delete { index }
            } else {
                len += 1;
                let features = if rng.gen_range(0..2) == 0 && engine.n_train() > 0 {
                    let src = rng.gen_range(0..engine.n_train());
                    engine.train().x.row(src).to_vec()
                } else {
                    grid_row(rng, dim)
                };
                Mutation::Insert {
                    features,
                    label: rng.gen_range(0..CLASSES),
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random mutation groups applied batched vs one-at-a-time are
    /// bitwise-identical at serial and parallel thread counts, with acks
    /// mirroring sequential versions/indices — and the final state agrees
    /// with the cold recompute and the independent oracle.
    #[test]
    fn batched_groups_match_sequential_bitwise(
        seed in 0u64..1_000_000,
        n in 4usize..28,
        n_test in 1usize..6,
        dim in 1usize..4,
        k in 1usize..8,
        rounds in 1usize..5,
    ) {
        for threads in [1usize, knnshap::parallel::current_threads()] {
            let mut rng = StdRng::seed_from_u64(seed);
            let train = grid_dataset(&mut rng, n, dim);
            let test = grid_dataset(&mut rng, n_test, dim);
            let mut batched =
                ResidentValuator::new(train.clone(), test.clone(), k, threads).unwrap();
            let mut sequential =
                ResidentValuator::new(train, test.clone(), k, threads).unwrap();

            for round in 0..rounds {
                let group = random_group(&mut rng, &batched, 7);
                let acks = batched.apply_batch(&group);
                prop_assert_eq!(acks.len(), group.len());
                for (m, ack) in group.iter().zip(&acks) {
                    let a = ack.as_ref().expect("always-valid group");
                    match m {
                        Mutation::Insert { features, label } => {
                            let idx = sequential.insert(features, *label).unwrap();
                            prop_assert_eq!(a.index, idx, "insert index (seed {})", seed);
                        }
                        Mutation::Delete { index } => {
                            sequential.delete(*index).unwrap();
                            prop_assert_eq!(a.index, *index);
                        }
                    }
                    prop_assert_eq!(a.version, sequential.version(),
                        "ack version must match sequential numbering (seed {})", seed);
                }
                prop_assert!(
                    common::bitwise_ok(&sequential.values(), &batched.values()),
                    "batched diverged from sequential (seed {seed}, threads {threads}, \
                     round {round})"
                );
            }

            let cold = knn_class_shapley_with_threads(batched.train(), &test, k, 1);
            prop_assert!(common::bitwise_ok(&cold, &batched.values()),
                "batched diverged from cold recompute (seed {seed})");
            assert_close_to_oracle(&batched, &test, k);
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases.
// ---------------------------------------------------------------------------

/// One batch drags N below K (deletes) and regrows it (inserts) — the
/// k-boundary crossing happens *inside* a single splice pass.
#[test]
fn k_boundary_crossing_inside_one_batch() {
    let mut rng = StdRng::seed_from_u64(23);
    let test = grid_dataset(&mut rng, 3, 2);
    for k in [1usize, 4, 5, 6, 9] {
        let train = grid_dataset(&mut rng, 5, 2);
        let mut batched = ResidentValuator::new(train.clone(), test.clone(), k, 2).unwrap();
        let mut sequential = ResidentValuator::new(train, test.clone(), k, 2).unwrap();
        let group = vec![
            Mutation::Delete { index: 4 },
            Mutation::Delete { index: 0 },
            Mutation::Delete { index: 1 }, // N = 2, below most k
            Mutation::Insert {
                features: vec![0.0, 0.0],
                label: 0,
            },
            Mutation::Insert {
                features: vec![1.0, -1.0],
                label: 1,
            },
            Mutation::Insert {
                features: vec![2.0, -2.0],
                label: 2,
            },
            Mutation::Insert {
                features: vec![3.0, -3.0],
                label: 0,
            }, // back to N = 6
        ];
        for ack in batched.apply_batch(&group) {
            ack.expect("valid boundary script");
        }
        for m in &group {
            match m {
                Mutation::Insert { features, label } => {
                    sequential.insert(features, *label).unwrap();
                }
                Mutation::Delete { index } => sequential.delete(*index).unwrap(),
            }
        }
        assert_bitwise(
            &sequential.values(),
            &batched.values(),
            &format!("k={k} boundary batch"),
        );
        let cold = knn_class_shapley_with_threads(batched.train(), &test, k, 1);
        assert_bitwise(&cold, &batched.values(), &format!("k={k} vs cold"));
        assert_close_to_oracle(&batched, &test, k);
    }
}

/// Every training point at the same location: a batch that deletes from
/// the middle and front of the tie run and inserts more duplicates rides
/// entirely on the (distance, index) tie-break.
#[test]
fn all_duplicate_distances_in_one_batch() {
    let n = 10;
    let x = Features::new(vec![1.0f32; n * 2], 2);
    let y: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
    let train = ClassDataset::new(x, y, 2);
    let test = ClassDataset::new(Features::new(vec![0.0, 0.0, 2.0, 2.0], 2), vec![0, 1], 2);

    let group = vec![
        Mutation::Delete { index: 4 },
        Mutation::Insert {
            features: vec![1.0, 1.0],
            label: 0,
        },
        Mutation::Delete { index: 0 },
        Mutation::Insert {
            features: vec![1.0, 1.0],
            label: 1,
        },
    ];
    for threads in [1usize, 8] {
        let mut batched = ResidentValuator::new(train.clone(), test.clone(), 3, threads).unwrap();
        let mut sequential =
            ResidentValuator::new(train.clone(), test.clone(), 3, threads).unwrap();
        for ack in batched.apply_batch(&group) {
            ack.expect("valid duplicate script");
        }
        for m in &group {
            match m {
                Mutation::Insert { features, label } => {
                    sequential.insert(features, *label).unwrap();
                }
                Mutation::Delete { index } => sequential.delete(*index).unwrap(),
            }
        }
        assert_bitwise(
            &sequential.values(),
            &batched.values(),
            &format!("all-duplicate batch, threads {threads}"),
        );
        let cold = knn_class_shapley_with_threads(batched.train(), &test, 3, 1);
        assert_bitwise(&cold, &batched.values(), "all-duplicate vs cold");
        assert_close_to_oracle(&batched, &test, 3);
    }
}

// ---------------------------------------------------------------------------
// Server-level: the same invariants through the daemon's dispatch.
// ---------------------------------------------------------------------------

/// A `Batch` frame through `handle` publishes ONE snapshot whose vector is
/// bitwise-equal to replaying the same mutations as individual requests,
/// and per-mutation outcomes carry the sequential versions.
#[test]
fn served_batch_matches_served_sequential_bitwise() {
    let mut rng = StdRng::seed_from_u64(77);
    let train = grid_dataset(&mut rng, 20, 3);
    let test = grid_dataset(&mut rng, 4, 3);
    let batched_srv = ValuationServer::new(train.clone(), test.clone(), 2, 2).unwrap();
    let seq_srv = ValuationServer::new(train, test, 2, 2).unwrap();

    let mutations = vec![
        BatchMutation::Insert {
            features: vec![0.0, 0.0, 0.0],
            label: 1,
        },
        BatchMutation::Delete { index: 3 },
        BatchMutation::Insert {
            features: vec![1.0, 2.0, -1.0],
            label: 0,
        },
        BatchMutation::Delete { index: 20 },
    ];
    match batched_srv.handle(&Request::Batch {
        mutations: mutations.clone(),
    }) {
        Response::BatchApplied { version, outcomes } => {
            assert_eq!(version, 4);
            for (i, o) in outcomes.iter().enumerate() {
                assert!(
                    matches!(o, BatchOutcome::Applied { version, .. }
                        if *version == i as u64 + 1),
                    "outcome {i}: {o:?}"
                );
            }
        }
        other => panic!("batch failed: {other:?}"),
    }
    for (i, m) in mutations.iter().enumerate() {
        let req = match m {
            BatchMutation::Insert { features, label } => Request::Insert {
                features: features.clone(),
                label: *label,
            },
            BatchMutation::Delete { index } => Request::Delete { index: *index },
        };
        match seq_srv.handle(&req) {
            Response::Mutated { version, .. } => assert_eq!(version, i as u64 + 1),
            other => panic!("sequential mutation {i} failed: {other:?}"),
        }
    }

    let (b, s) = (batched_srv.snapshot(), seq_srv.snapshot());
    assert_eq!(b.version, s.version);
    assert!(b.verify() && s.verify());
    assert_eq!(b.labels, s.labels);
    assert_bitwise(&s.values, &b.values, "served batch vs served sequential");
}

/// Mid-batch rejections: the bad mutation gets a `Rejected` outcome, the
/// rest of the group still applies, and the published vector equals what
/// sequential application of the *accepted* mutations produces.
#[test]
fn served_batch_rejections_are_per_mutation() {
    let mut rng = StdRng::seed_from_u64(99);
    let train = grid_dataset(&mut rng, 12, 2);
    let test = grid_dataset(&mut rng, 3, 2);
    let srv = ValuationServer::new(train.clone(), test.clone(), 3, 1).unwrap();

    match srv.handle(&Request::Batch {
        mutations: vec![
            BatchMutation::Insert {
                features: vec![2.0, -2.0],
                label: 1,
            },
            BatchMutation::Delete { index: 999 }, // out of range
            BatchMutation::Insert {
                features: vec![2.0],
                label: 0,
            }, // dim mismatch
            BatchMutation::Delete { index: 12 },  // the point inserted above
        ],
    }) {
        Response::BatchApplied { version, outcomes } => {
            assert_eq!(version, 2);
            assert!(matches!(
                outcomes[0],
                BatchOutcome::Applied {
                    version: 1,
                    index: 12
                }
            ));
            assert!(matches!(
                &outcomes[1],
                BatchOutcome::Rejected { code: ErrorCode::Rejected, message }
                    if message.contains("out of range")
            ));
            assert!(matches!(
                &outcomes[2],
                BatchOutcome::Rejected { code: ErrorCode::Rejected, message }
                    if message.contains("features")
            ));
            assert!(matches!(
                outcomes[3],
                BatchOutcome::Applied {
                    version: 2,
                    index: 12
                }
            ));
        }
        other => panic!("batch failed: {other:?}"),
    }
    // Net effect: insert then delete the same point — original valuation.
    let snap = srv.snapshot();
    assert_eq!(snap.version, 2);
    let cold = knn_class_shapley_with_threads(&train, &test, 3, 1);
    assert_bitwise(&cold, &snap.values, "rejections leave accepted net effect");
}

/// Admission control at the dispatch level: bound 0 refuses every
/// mutation — single or batched — with the `Busy` tier, touches nothing,
/// and keeps serving reads.
#[test]
fn served_batch_respects_admission_control() {
    let mut rng = StdRng::seed_from_u64(5);
    let train = grid_dataset(&mut rng, 10, 2);
    let test = grid_dataset(&mut rng, 2, 2);
    let srv = ValuationServer::new(train, test, 2, 1).unwrap();
    srv.set_queue_bound(0);
    match srv.handle(&Request::Batch {
        mutations: vec![BatchMutation::Delete { index: 0 }],
    }) {
        Response::Error {
            code: ErrorCode::Busy,
            ..
        } => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    assert_eq!(srv.snapshot().version, 0);
    assert!(matches!(
        srv.handle(&Request::Dump),
        Response::Vector { .. }
    ));
}
