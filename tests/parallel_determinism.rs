//! Determinism battery for the work-stealing runtime (ISSUE 2): for every
//! estimator migrated onto `knnshap_parallel`, the parallel output with 1, 2
//! and 8 threads must be **bitwise-identical** to the serial path — not
//! approximately equal, identical to the last mantissa bit. This is the
//! `par_map_reduce` contract (fixed block partition + fixed reduction order)
//! checked end-to-end through the real Shapley recursions.
//!
//! Two layers:
//! * proptest over randomized instances (the shim seeds deterministically
//!   from the test name, so every run replays the same pinned cases);
//! * fixed-seed `StdRng` instances large enough (hundreds of test points)
//!   that every thread count actually schedules many blocks.

use knnshap::knn::classifier::KnnClassifier;
use knnshap::knn::WeightFn;
use knnshap::valuation::exact_regression::knn_reg_shapley_with_threads;
use knnshap::valuation::exact_unweighted::knn_class_shapley_with_threads;
use knnshap::valuation::exact_weighted::{weighted_knn_class_shapley, weighted_knn_reg_shapley};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

mod common;
use common::{assert_bitwise, bitwise_ok, random_class, random_reg, THREAD_COUNTS};

// ---------------------------------------------------------------------------
// Fixed-seed instances, large enough to schedule many blocks per region.
// ---------------------------------------------------------------------------

#[test]
fn unweighted_classification_bitwise_across_thread_counts() {
    for seed in [7u64, 1234, 0xD5] {
        let (train, test) = random_class(&mut StdRng::seed_from_u64(seed), 200, 300, 3);
        for k in [1usize, 5, 16] {
            let serial = knn_class_shapley_with_threads(&train, &test, k, 1);
            for threads in THREAD_COUNTS {
                let par = knn_class_shapley_with_threads(&train, &test, k, threads);
                assert_bitwise(
                    &serial,
                    &par,
                    &format!("class seed={seed} k={k} t={threads}"),
                );
            }
        }
    }
}

#[test]
fn unweighted_regression_bitwise_across_thread_counts() {
    for seed in [3u64, 99] {
        let (train, test) = random_reg(&mut StdRng::seed_from_u64(seed), 150, 300);
        for k in [1usize, 7] {
            let serial = knn_reg_shapley_with_threads(&train, &test, k, 1);
            for threads in THREAD_COUNTS {
                let par = knn_reg_shapley_with_threads(&train, &test, k, threads);
                assert_bitwise(&serial, &par, &format!("reg seed={seed} k={k} t={threads}"));
            }
        }
    }
}

#[test]
fn weighted_classification_bitwise_across_thread_counts() {
    // Theorem 7 is O(N^K): keep N modest, push the test-point count instead
    // so the parallel region still spans many blocks.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(41), 40, 120, 3);
    let w = WeightFn::InverseDistance { eps: 1e-3 };
    let serial = weighted_knn_class_shapley(&train, &test, 2, w, 1);
    for threads in THREAD_COUNTS {
        let par = weighted_knn_class_shapley(&train, &test, 2, w, threads);
        assert_bitwise(&serial, &par, &format!("weighted class t={threads}"));
    }
}

#[test]
fn weighted_regression_bitwise_across_thread_counts() {
    let (train, test) = random_reg(&mut StdRng::seed_from_u64(17), 30, 120);
    let w = WeightFn::Exponential { beta: 0.5 };
    let serial = weighted_knn_reg_shapley(&train, &test, 2, w, 1);
    for threads in THREAD_COUNTS {
        let par = weighted_knn_reg_shapley(&train, &test, 2, w, threads);
        assert_bitwise(&serial, &par, &format!("weighted reg t={threads}"));
    }
}

#[test]
fn repeated_runs_never_wobble() {
    // Same input, same thread count, many runs: scheduling (and therefore
    // stealing patterns) varies — the Shapley vector must not.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(2026), 120, 200, 2);
    let reference = knn_class_shapley_with_threads(&train, &test, 3, 8);
    for run in 0..5 {
        let again = knn_class_shapley_with_threads(&train, &test, 3, 8);
        assert_bitwise(&reference, &again, &format!("repeat run {run}"));
    }
}

#[test]
fn classifier_accuracy_identical_across_thread_counts() {
    // The batched prediction path (par_map over queries) is order-preserving
    // by construction; pin that too.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(5), 300, 400, 4);
    let clf = KnnClassifier::unweighted(&train, 5);
    let serial = clf.accuracy(&test, 1);
    for threads in THREAD_COUNTS {
        assert_eq!(serial.to_bits(), clf.accuracy(&test, threads).to_bits());
    }
}

// ---------------------------------------------------------------------------
// Randomized instances (deterministically seeded by the proptest shim).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_unweighted_class_bitwise(
        seed in 0u64..1_000_000,
        n in 5usize..60,
        n_test in 1usize..40,
        k in 1usize..8,
    ) {
        let (train, test) = random_class(&mut StdRng::seed_from_u64(seed), n, n_test, 3);
        let serial = knn_class_shapley_with_threads(&train, &test, k, 1);
        for threads in THREAD_COUNTS {
            let par = knn_class_shapley_with_threads(&train, &test, k, threads);
            prop_assert!(bitwise_ok(&serial, &par), "threads={threads}");
        }
    }

    #[test]
    fn prop_unweighted_reg_bitwise(
        seed in 0u64..1_000_000,
        n in 5usize..50,
        n_test in 1usize..40,
        k in 1usize..8,
    ) {
        let (train, test) = random_reg(&mut StdRng::seed_from_u64(seed), n, n_test);
        let serial = knn_reg_shapley_with_threads(&train, &test, k, 1);
        for threads in THREAD_COUNTS {
            let par = knn_reg_shapley_with_threads(&train, &test, k, threads);
            prop_assert!(bitwise_ok(&serial, &par), "threads={threads}");
        }
    }

    #[test]
    fn prop_weighted_class_bitwise(
        seed in 0u64..1_000_000,
        n in 4usize..14,
        n_test in 1usize..24,
        k in 1usize..4,
    ) {
        let (train, test) = random_class(&mut StdRng::seed_from_u64(seed), n, n_test, 2);
        let w = WeightFn::InverseDistance { eps: 1e-3 };
        let serial = weighted_knn_class_shapley(&train, &test, k, w, 1);
        for threads in THREAD_COUNTS {
            let par = weighted_knn_class_shapley(&train, &test, k, w, threads);
            prop_assert!(bitwise_ok(&serial, &par), "threads={threads}");
        }
    }

    #[test]
    fn prop_weighted_reg_bitwise(
        seed in 0u64..1_000_000,
        n in 4usize..12,
        n_test in 1usize..24,
        k in 1usize..4,
    ) {
        let (train, test) = random_reg(&mut StdRng::seed_from_u64(seed), n, n_test);
        let w = WeightFn::Exponential { beta: 1.0 };
        let serial = weighted_knn_reg_shapley(&train, &test, k, w, 1);
        for threads in THREAD_COUNTS {
            let par = weighted_knn_reg_shapley(&train, &test, k, w, threads);
            prop_assert!(bitwise_ok(&serial, &par), "threads={threads}");
        }
    }
}
