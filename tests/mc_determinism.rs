//! Determinism battery for the parallel Monte Carlo runtime (ISSUE 3),
//! mirroring `parallel_determinism.rs` for the stochastic half of the
//! codebase: for every estimator routed through counter-based RNG streams and
//! compensated blocked reductions — baseline MC, improved MC (classification
//! and regression), group testing, and the truncated multi-test average —
//! the output at 2 and 8 threads must be **bitwise-identical** to the
//! 1-thread path, permutation counts included.
//!
//! Two layers, as in the exact-estimator battery:
//! * fixed-seed instances large enough that every thread count schedules
//!   many blocks;
//! * proptest over randomized instances (deterministically seeded by the
//!   shim), plus golden-value checks against the O(2^N) enumeration so the
//!   parallel rewrite is held to the estimators' statistical contract, not
//!   just to self-consistency.

use knnshap::knn::WeightFn;
use knnshap::valuation::exact_enum::shapley_enumeration;
use knnshap::valuation::group_testing::group_testing_shapley_with_threads;
use knnshap::valuation::mc::{
    mc_shapley_baseline_with_threads, mc_shapley_improved_with_threads, IncKnnUtility, StoppingRule,
};
use knnshap::valuation::truncated::truncated_class_shapley_with_threads;
use knnshap::valuation::utility::{KnnClassUtility, KnnRegUtility, Utility};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

mod common;
use common::{assert_bitwise, bitwise_ok, random_class, random_reg, THREAD_COUNTS};

// ---------------------------------------------------------------------------
// Fixed-seed instances: every estimator, both stopping-rule scheduling paths.
// ---------------------------------------------------------------------------

#[test]
fn baseline_mc_bitwise_across_thread_counts() {
    for seed in [7u64, 0xD5] {
        let (train, test) = random_class(&mut StdRng::seed_from_u64(seed), 60, 4, 3);
        let u = KnnClassUtility::unweighted(&train, &test, 3);
        for rule in [
            StoppingRule::Fixed(200),
            StoppingRule::Heuristic {
                threshold: 1e-4,
                max: 500,
            },
        ] {
            let serial = mc_shapley_baseline_with_threads(&u, rule, seed, None, 1);
            for threads in THREAD_COUNTS {
                let par = mc_shapley_baseline_with_threads(&u, rule, seed, None, threads);
                assert_eq!(serial.permutations, par.permutations, "seed={seed}");
                assert_bitwise(
                    &serial.values,
                    &par.values,
                    &format!("baseline seed={seed} t={threads}"),
                );
            }
        }
    }
}

#[test]
fn improved_mc_class_bitwise_across_thread_counts() {
    for seed in [3u64, 1234] {
        let (train, test) = random_class(&mut StdRng::seed_from_u64(seed), 300, 8, 3);
        let inc = IncKnnUtility::classification(&train, &test, 5, WeightFn::Uniform);
        for rule in [
            StoppingRule::Fixed(400),
            StoppingRule::Heuristic {
                threshold: 1e-4,
                max: 1000,
            },
        ] {
            let serial = mc_shapley_improved_with_threads(&inc, rule, seed, None, 1);
            for threads in THREAD_COUNTS {
                let par = mc_shapley_improved_with_threads(&inc, rule, seed, None, threads);
                assert_eq!(serial.permutations, par.permutations, "seed={seed}");
                assert_bitwise(
                    &serial.values,
                    &par.values,
                    &format!("improved seed={seed} t={threads}"),
                );
            }
        }
    }
}

#[test]
fn improved_mc_reg_bitwise_across_thread_counts() {
    let (train, test) = random_reg(&mut StdRng::seed_from_u64(17), 200, 6);
    let inc = IncKnnUtility::regression(&train, &test, 3, WeightFn::Uniform);
    let serial = mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(300), 11, None, 1);
    for threads in THREAD_COUNTS {
        let par =
            mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(300), 11, None, threads);
        assert_bitwise(&serial.values, &par.values, &format!("reg t={threads}"));
    }
}

#[test]
fn group_testing_bitwise_across_thread_counts() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(5), 40, 6, 2);
    let u = KnnClassUtility::unweighted(&train, &test, 2);
    let serial = group_testing_shapley_with_threads(&u, 5_000, 21, 1);
    for threads in THREAD_COUNTS {
        let par = group_testing_shapley_with_threads(&u, 5_000, 21, threads);
        assert_eq!(serial.tests, par.tests);
        assert_bitwise(&serial.values, &par.values, &format!("gt t={threads}"));
    }
}

#[test]
fn truncated_multi_test_bitwise_across_thread_counts() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(29), 250, 300, 3);
    let serial = truncated_class_shapley_with_threads(&train, &test, 3, 0.1, 1);
    for threads in THREAD_COUNTS {
        let par = truncated_class_shapley_with_threads(&train, &test, 3, 0.1, threads);
        assert_bitwise(&serial, &par, &format!("truncated t={threads}"));
    }
}

#[test]
fn snapshots_and_early_stop_identical_across_thread_counts() {
    // The round path's per-permutation bookkeeping (snapshots, heuristic
    // stop) must replay identically, not just the final vector.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(2026), 80, 5, 2);
    let inc = IncKnnUtility::classification(&train, &test, 2, WeightFn::Uniform);
    let serial = mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(120), 7, Some(25), 1);
    assert_eq!(serial.snapshots.len(), 4);
    for threads in THREAD_COUNTS {
        let par =
            mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(120), 7, Some(25), threads);
        assert_eq!(par.snapshots.len(), serial.snapshots.len());
        for ((ta, va), (tb, vb)) in serial.snapshots.iter().zip(&par.snapshots) {
            assert_eq!(ta, tb);
            assert_bitwise(va, vb, &format!("snapshot t={ta} threads={threads}"));
        }
    }
}

#[test]
fn repeated_runs_never_wobble() {
    // Same input, same thread count, many runs: scheduling (and therefore
    // stealing patterns) varies — the MC Shapley vector must not.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(99), 150, 6, 2);
    let inc = IncKnnUtility::classification(&train, &test, 3, WeightFn::Uniform);
    let reference = mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(200), 4, None, 8);
    for run in 0..5 {
        let again = mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(200), 4, None, 8);
        assert_bitwise(&reference.values, &again.values, &format!("repeat {run}"));
    }
}

// ---------------------------------------------------------------------------
// Golden values: the parallel estimators against the O(2^N) enumeration.
// ---------------------------------------------------------------------------

#[test]
fn parallel_mc_converges_to_enumeration() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(41), 10, 3, 2);
    let u = KnnClassUtility::unweighted(&train, &test, 2);
    let truth = shapley_enumeration(&u);
    let inc = IncKnnUtility::classification(&train, &test, 2, WeightFn::Uniform);
    for threads in [1usize, 8] {
        let imp =
            mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(6_000), 13, None, threads);
        assert!(
            imp.values.max_abs_diff(&truth) < 0.03,
            "improved t={threads}: {}",
            imp.values.max_abs_diff(&truth)
        );
        let base =
            mc_shapley_baseline_with_threads(&u, StoppingRule::Fixed(3_000), 13, None, threads);
        assert!(
            base.values.max_abs_diff(&truth) < 0.04,
            "baseline t={threads}: {}",
            base.values.max_abs_diff(&truth)
        );
    }
    let gt = group_testing_shapley_with_threads(&u, 60_000, 13, 8);
    assert!(
        gt.values.max_abs_diff(&truth) < 0.06,
        "group testing: {}",
        gt.values.max_abs_diff(&truth)
    );
    assert!((gt.values.total() - u.grand()).abs() < 1e-9);
}

// ---------------------------------------------------------------------------
// Randomized instances (deterministically seeded by the proptest shim).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_improved_mc_bitwise(
        seed in 0u64..1_000_000,
        n in 5usize..40,
        n_test in 1usize..8,
        k in 1usize..5,
        perms in 1usize..120,
    ) {
        let (train, test) = random_class(&mut StdRng::seed_from_u64(seed), n, n_test, 3);
        let inc = IncKnnUtility::classification(&train, &test, k, WeightFn::Uniform);
        let serial =
            mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(perms), seed, None, 1);
        for threads in THREAD_COUNTS {
            let par = mc_shapley_improved_with_threads(
                &inc, StoppingRule::Fixed(perms), seed, None, threads,
            );
            prop_assert!(bitwise_ok(&serial.values, &par.values), "threads={threads}");
        }
    }

    #[test]
    fn prop_baseline_mc_bitwise(
        seed in 0u64..1_000_000,
        n in 4usize..20,
        n_test in 1usize..6,
        perms in 1usize..60,
    ) {
        let (train, test) = random_class(&mut StdRng::seed_from_u64(seed), n, n_test, 2);
        let u = KnnClassUtility::unweighted(&train, &test, 2);
        let serial =
            mc_shapley_baseline_with_threads(&u, StoppingRule::Fixed(perms), seed, None, 1);
        for threads in THREAD_COUNTS {
            let par = mc_shapley_baseline_with_threads(
                &u, StoppingRule::Fixed(perms), seed, None, threads,
            );
            prop_assert!(bitwise_ok(&serial.values, &par.values), "threads={threads}");
        }
    }

    #[test]
    fn prop_reg_improved_tracks_enumeration(
        seed in 0u64..100_000,
        n in 4usize..9,
    ) {
        // Golden-value proptest: the parallel improved estimator vs the
        // enumeration on regression games small enough to enumerate.
        let (train, test) = random_reg(&mut StdRng::seed_from_u64(seed), n, 2);
        let u = KnnRegUtility::unweighted(&train, &test, 2);
        let truth = shapley_enumeration(&u);
        let inc = IncKnnUtility::regression(&train, &test, 2, WeightFn::Uniform);
        let est = mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(4_000), seed, None, 8);
        let spread = truth
            .as_slice()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-9);
        prop_assert!(
            est.values.max_abs_diff(&truth) < 0.2 * spread + 0.05,
            "err={}",
            est.values.max_abs_diff(&truth)
        );
    }
}
