//! Cross-crate integration: Shapley axioms hold for the produced valuations,
//! and every approximation respects its advertised error bound.

use knnshap::datasets::synth::blobs::{self, BlobConfig};
use knnshap::datasets::{contrast, normalize, ClassDataset, Features};
use knnshap::knn::WeightFn;
use knnshap::lsh::index::LshIndex;
use knnshap::valuation::axioms::{check_efficiency, check_null_player, check_symmetry};
use knnshap::valuation::exact_unweighted::{
    knn_class_shapley_single, knn_class_shapley_with_threads,
};
use knnshap::valuation::lsh_approx::{lsh_class_shapley, plan_index_params};
use knnshap::valuation::mc::{mc_shapley_improved, IncKnnUtility, StoppingRule};
use knnshap::valuation::truncated::{k_star, truncated_class_shapley};
use knnshap::valuation::utility::KnnClassUtility;
use proptest::prelude::*;

fn blob_instance(n: usize, seed: u64) -> (ClassDataset, ClassDataset) {
    let cfg = BlobConfig {
        n,
        dim: 6,
        n_classes: 3,
        cluster_std: 1.0,
        center_scale: 2.0,
        seed,
    };
    (blobs::generate(&cfg), blobs::queries(&cfg, 6, seed ^ 0xFF))
}

#[test]
fn efficiency_across_methods_and_k() {
    let (train, test) = blob_instance(150, 3);
    for k in [1usize, 3, 10, 150, 200] {
        let sv = knn_class_shapley_with_threads(&train, &test, k, 2);
        let u = KnnClassUtility::unweighted(&train, &test, k);
        let chk = check_efficiency(&sv, &u, 1e-9);
        assert!(chk.holds, "k={k}: {:?}", chk.violation);
    }
}

#[test]
fn duplicate_points_receive_equal_values() {
    // Symmetry in practice: two identical training points (same features,
    // same label) are interchangeable, so their SVs must coincide.
    let train = ClassDataset::new(
        Features::new(vec![0.5, 0.5, 0.5, 0.5, 2.0, 2.0, -1.0, 3.0], 2),
        vec![1, 1, 0, 1],
        2,
    );
    let test = ClassDataset::new(Features::new(vec![0.4, 0.6], 2), vec![1], 2);
    let sv = knn_class_shapley_single(&train, test.x.row(0), 1, 2);
    assert!(
        (sv[0] - sv[1]).abs() < 1e-12,
        "duplicates valued differently: {} vs {}",
        sv[0],
        sv[1]
    );
    let u = KnnClassUtility::unweighted(&train, &test, 2);
    assert!(check_symmetry(&sv, &u, 0, 1, 1e-9).holds);
}

#[test]
fn truncation_error_bound_is_respected_everywhere() {
    for seed in [1u64, 2, 3] {
        let (train, test) = blob_instance(200, seed);
        for eps in [0.3, 0.1, 0.02] {
            for k in [1usize, 4] {
                let exact = knn_class_shapley_with_threads(&train, &test, k, 2);
                let approx = truncated_class_shapley(&train, &test, k, eps);
                let err = exact.max_abs_diff(&approx);
                assert!(err <= eps + 1e-12, "seed={seed} eps={eps} k={k}: err={err}");
            }
        }
    }
}

#[test]
fn full_pipeline_dataset_to_lsh_valuation() {
    // dataset → normalization → contrast estimation → planned index →
    // valuation → error audit, across crates.
    let cfg = BlobConfig {
        n: 800,
        dim: 16,
        n_classes: 4,
        cluster_std: 0.5,
        center_scale: 3.0,
        seed: 17,
    };
    let mut train = blobs::generate(&cfg);
    let mut test = blobs::queries(&cfg, 10, 5);
    let factor = normalize::scale_to_unit_dmean(&mut train.x, 2000, 1);
    normalize::apply_scale(&mut test.x, factor);
    let (k, eps, delta) = (2usize, 0.1, 0.1);
    let est = contrast::estimate(&train.x, &test.x, k_star(k, eps), 8, 64, 3);
    assert!(est.c_k > 1.0, "clustered data must have contrast > 1");
    let params = plan_index_params(train.len(), &est, k, eps, delta, 1.0, 64, 7);
    let index = LshIndex::build(&train.x, params);
    let exact = knn_class_shapley_with_threads(&train, &test, k, 2);
    let approx = lsh_class_shapley(&index, &train, &test, k, eps);
    let err = exact.max_abs_diff(&approx);
    assert!(err <= 1.5 * eps, "LSH valuation error {err} (ε = {eps})");
}

#[test]
fn improved_mc_converges_and_stops() {
    let (train, test) = blob_instance(60, 9);
    let exact = knn_class_shapley_with_threads(&train, &test, 3, 2);
    let mut inc = IncKnnUtility::classification(&train, &test, 3, WeightFn::Uniform);
    let res = mc_shapley_improved(
        &mut inc,
        StoppingRule::Heuristic {
            threshold: 1e-4,
            max: 100_000,
        },
        5,
        None,
    );
    assert!(res.permutations < 100_000, "heuristic never fired");
    assert!(
        exact.max_abs_diff(&res.values) < 0.05,
        "err={}",
        exact.max_abs_diff(&res.values)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn far_away_points_are_near_null(
        labels in prop::collection::vec(0u32..2, 6),
        k in 1usize..3,
    ) {
        // A point much farther than all others has SV magnitude ≤ 1/(K·N)
        // · min(K,N)... — concretely, bounded by 1/N (proof of Theorem 2).
        let n = labels.len() + 1;
        let mut feats: Vec<f32> = (0..labels.len()).map(|i| i as f32 * 0.1).collect();
        feats.push(1e6); // the far point
        let mut all_labels = labels.clone();
        all_labels.push(0);
        let train = ClassDataset::new(Features::new(feats, 1), all_labels, 2);
        let sv = knn_class_shapley_single(&train, &[0.0], 0, k);
        prop_assert!(sv[n - 1].abs() <= 1.0 / (n as f64) + 1e-12);
    }

    #[test]
    fn all_wrong_labels_give_nonpositive_total(
        feats in prop::collection::vec(-1.0f32..1.0, 6),
        k in 1usize..4,
    ) {
        // If no training point carries the test label, ν(S) = 0 for all S,
        // so every SV must be 0 (null players).
        let train = ClassDataset::new(
            Features::new(feats.clone(), 1),
            vec![0; feats.len()],
            2,
        );
        let test = ClassDataset::new(Features::new(vec![0.0], 1), vec![1], 2);
        let sv = knn_class_shapley_single(&train, test.x.row(0), 1, k);
        for i in 0..train.len() {
            prop_assert!(sv[i].abs() < 1e-12);
        }
        let u = KnnClassUtility::unweighted(&train, &test, k);
        prop_assert!(check_null_player(&sv, &u, 0, 1e-9).holds);
    }
}
