//! Differential battery for graph-backed valuation (ISSUE 7): every
//! estimator family that accepts a precomputed `KNNGRAPH` artifact must
//! reproduce its brute-force sibling **bit for bit** — unsharded, across
//! {1, 2, 7} shards, at {1, 8} threads per shard, and with the graph
//! round-tripped through the wire format before use (what ships on disk is
//! what computes).
//!
//! Two adversarial datasets ride along: a k-boundary instance (k = N, so
//! every training point is always in the neighborhood) and an
//! all-duplicate-distance instance (every train point at the same location,
//! so the entire ranking is decided by the index tie-break the graph must
//! have frozen in argsort order). A final layer pins the daemon seed path:
//! `ResidentValuator::with_graph` serves the same bits as a cold `new`.

use knnshap::datasets::{ClassDataset, Features};
use knnshap::knn::graph::KnnGraph;
use knnshap::knn::WeightFn;
use knnshap::valuation::exact_regression::{
    knn_reg_shapley_from_graph, knn_reg_shapley_graph_shard, knn_reg_shapley_with_threads,
};
use knnshap::valuation::exact_unweighted::{
    knn_class_shapley_from_graph, knn_class_shapley_graph_shard, knn_class_shapley_shard,
    knn_class_shapley_with_threads,
};
use knnshap::valuation::exact_weighted::{
    weighted_knn_class_shapley, weighted_knn_class_shapley_from_graph,
    weighted_knn_class_shapley_graph_shard, weighted_knn_reg_shapley,
    weighted_knn_reg_shapley_from_graph,
};
use knnshap::valuation::group_testing::{
    group_testing_shapley_shard, group_testing_shapley_with_threads,
};
use knnshap::valuation::mc::{
    mc_shapley_baseline_shard, mc_shapley_baseline_with_threads, mc_shapley_improved_shard,
    mc_shapley_improved_with_threads, IncKnnUtility, StoppingRule,
};
use knnshap::valuation::resident::ResidentValuator;
use knnshap::valuation::sharding::{merge_partials, ShardPartial, ShardSpec};
use knnshap::valuation::truncated::{
    truncated_class_shapley_from_graph, truncated_class_shapley_graph_shard,
    truncated_class_shapley_with_threads,
};
use knnshap::valuation::types::ShapleyValues;
use knnshap::valuation::utility::{KnnClassUtility, Utility};
use rand::rngs::StdRng;
use rand::SeedableRng;

mod common;
use common::{assert_bitwise, random_class, random_reg};

/// Shard counts every graph-backed family is checked at.
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];
/// Per-shard thread counts.
const THREADS: [usize; 2] = [1, 8];

/// Build the graph for `(train, test)` features and round-trip it through
/// the wire format, so every assertion downstream exercises the decoder's
/// output rather than the in-memory builder's.
fn wire_graph(train: &Features, test: &Features) -> KnnGraph {
    let built = KnnGraph::build(train, test, 4);
    let decoded = KnnGraph::from_bytes(&built.to_bytes()).expect("graph wire round trip");
    assert_eq!(built, decoded, "decode must reproduce the built graph");
    decoded
}

/// Merge `make_shard` partials at every (shard, thread) combination and
/// compare bitwise against `reference` (the brute-force, graph-free run).
fn check_family<F>(reference: &ShapleyValues, what: &str, make_shard: F)
where
    F: Fn(ShardSpec, usize) -> ShardPartial,
{
    for shards in SHARD_COUNTS {
        for threads in THREADS {
            let parts: Vec<ShardPartial> = (0..shards)
                .map(|i| {
                    let p = make_shard(ShardSpec::new(i, shards), threads);
                    ShardPartial::from_bytes(&p.to_bytes()).expect("round trip")
                })
                .collect();
            let merged = merge_partials(&parts).expect("merge");
            assert_bitwise(
                reference,
                &merged.values,
                &format!("{what}: {shards} shards x {threads} threads"),
            );
        }
    }
}

#[test]
fn exact_classification_graph_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x71), 80, 31, 3);
    let graph = wire_graph(&train.x, &test.x);
    for k in [1usize, 3] {
        let reference = knn_class_shapley_with_threads(&train, &test, k, 1);
        for threads in THREADS {
            assert_bitwise(
                &reference,
                &knn_class_shapley_from_graph(&train, &test, k, &graph, threads),
                &format!("exact class from_graph k={k} threads={threads}"),
            );
        }
        check_family(
            &reference,
            &format!("exact class k={k}"),
            |spec, threads| knn_class_shapley_graph_shard(&train, &test, k, &graph, spec, threads),
        );
    }
}

#[test]
fn exact_regression_graph_shards_bitwise() {
    let (train, test) = random_reg(&mut StdRng::seed_from_u64(0x72), 70, 23);
    let graph = wire_graph(&train.x, &test.x);
    let reference = knn_reg_shapley_with_threads(&train, &test, 3, 1);
    for threads in THREADS {
        assert_bitwise(
            &reference,
            &knn_reg_shapley_from_graph(&train, &test, 3, &graph, threads),
            &format!("exact reg from_graph threads={threads}"),
        );
    }
    check_family(&reference, "exact reg", |spec, threads| {
        knn_reg_shapley_graph_shard(&train, &test, 3, &graph, spec, threads)
    });
}

#[test]
fn weighted_classification_graph_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x73), 30, 9, 2);
    let graph = wire_graph(&train.x, &test.x);
    let weight = WeightFn::InverseDistance { eps: 1e-3 };
    let reference = weighted_knn_class_shapley(&train, &test, 2, weight, 1);
    for threads in THREADS {
        assert_bitwise(
            &reference,
            &weighted_knn_class_shapley_from_graph(&train, &test, 2, weight, &graph, threads),
            &format!("weighted class from_graph threads={threads}"),
        );
    }
    check_family(&reference, "weighted class", |spec, threads| {
        weighted_knn_class_shapley_graph_shard(&train, &test, 2, weight, &graph, spec, threads)
    });
}

#[test]
fn weighted_regression_graph_bitwise() {
    let (train, test) = random_reg(&mut StdRng::seed_from_u64(0x74), 40, 11);
    let graph = wire_graph(&train.x, &test.x);
    let weight = WeightFn::InverseDistance { eps: 1e-2 };
    let reference = weighted_knn_reg_shapley(&train, &test, 2, weight, 1);
    for threads in THREADS {
        assert_bitwise(
            &reference,
            &weighted_knn_reg_shapley_from_graph(&train, &test, 2, weight, &graph, threads),
            &format!("weighted reg from_graph threads={threads}"),
        );
    }
}

#[test]
fn truncated_graph_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x75), 90, 17, 3);
    let graph = wire_graph(&train.x, &test.x);
    let reference = truncated_class_shapley_with_threads(&train, &test, 2, 0.15, 1);
    for threads in THREADS {
        assert_bitwise(
            &reference,
            &truncated_class_shapley_from_graph(&train, &test, 2, 0.15, &graph, threads),
            &format!("truncated from_graph threads={threads}"),
        );
    }
    check_family(&reference, "truncated", |spec, threads| {
        truncated_class_shapley_graph_shard(&train, &test, 2, 0.15, &graph, spec, threads)
    });
}

#[test]
fn mc_baseline_graph_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x76), 25, 4, 2);
    let graph = wire_graph(&train.x, &test.x);
    let brute = KnnClassUtility::unweighted(&train, &test, 2);
    let backed = KnnClassUtility::from_graph(&train, &test, 2, WeightFn::Uniform, &graph);
    // Same dataset-content fingerprint: MC shards built on either utility
    // inter-merge.
    assert_eq!(brute.fingerprint(), backed.fingerprint());
    let reference = mc_shapley_baseline_with_threads(&brute, StoppingRule::Fixed(100), 7, None, 1);
    check_family(&reference.values, "mc baseline", |spec, threads| {
        mc_shapley_baseline_shard(&backed, 100, 7, spec, threads)
    });
}

#[test]
fn mc_improved_graph_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x77), 40, 5, 2);
    let graph = wire_graph(&train.x, &test.x);
    let brute = IncKnnUtility::classification(&train, &test, 3, WeightFn::Uniform);
    let backed =
        IncKnnUtility::classification_from_graph(&train, &test, 3, WeightFn::Uniform, &graph);
    let reference = mc_shapley_improved_with_threads(&brute, StoppingRule::Fixed(100), 11, None, 1);
    check_family(&reference.values, "mc improved", |spec, threads| {
        mc_shapley_improved_shard(&backed, 100, 11, spec, threads)
    });
}

#[test]
fn mc_improved_regression_graph_bitwise() {
    let (train, test) = random_reg(&mut StdRng::seed_from_u64(0x78), 30, 6);
    let graph = wire_graph(&train.x, &test.x);
    let brute = IncKnnUtility::regression(&train, &test, 2, WeightFn::Uniform);
    let backed = IncKnnUtility::regression_from_graph(&train, &test, 2, WeightFn::Uniform, &graph);
    let a = mc_shapley_improved_with_threads(&brute, StoppingRule::Fixed(60), 5, None, 1);
    let b = mc_shapley_improved_with_threads(&backed, StoppingRule::Fixed(60), 5, None, 8);
    assert_bitwise(&a.values, &b.values, "mc improved regression via graph");
}

#[test]
fn group_testing_graph_shards_bitwise() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x79), 15, 3, 2);
    let graph = wire_graph(&train.x, &test.x);
    let brute = KnnClassUtility::unweighted(&train, &test, 2);
    let backed = KnnClassUtility::from_graph(&train, &test, 2, WeightFn::Uniform, &graph);
    let reference = group_testing_shapley_with_threads(&brute, 500, 13, 1);
    check_family(&reference.values, "group testing", |spec, threads| {
        group_testing_shapley_shard(&backed, 500, 13, spec, threads)
    });
}

#[test]
fn graph_and_brute_force_shards_inter_merge() {
    // The headline operational property: a job may mix workers that have
    // the artifact with workers that do not — the shards carry the same
    // kind and fingerprint, so the merge neither knows nor cares.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x7A), 50, 13, 3);
    let graph = wire_graph(&train.x, &test.x);
    let reference = knn_class_shapley_with_threads(&train, &test, 2, 1);
    let parts = [
        knn_class_shapley_shard(&train, &test, 2, ShardSpec::new(0, 3), 1),
        knn_class_shapley_graph_shard(&train, &test, 2, &graph, ShardSpec::new(1, 3), 8),
        knn_class_shapley_shard(&train, &test, 2, ShardSpec::new(2, 3), 8),
    ];
    let merged = merge_partials(&parts).expect("mixed merge");
    assert_bitwise(&reference, &merged.values, "brute-force + graph shards");
}

// ---------------------------------------------------------------------------
// Adversarial datasets: k-boundary and all-duplicate distances.
// ---------------------------------------------------------------------------

#[test]
fn k_boundary_graph_bitwise() {
    // k = N and k > N: every training point sits inside the neighborhood,
    // so the recursion's boundary terms dominate.
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x7B), 12, 5, 2);
    let graph = wire_graph(&train.x, &test.x);
    for k in [train.len(), train.len() + 3] {
        let reference = knn_class_shapley_with_threads(&train, &test, k, 1);
        check_family(&reference, &format!("k-boundary k={k}"), |spec, threads| {
            knn_class_shapley_graph_shard(&train, &test, k, &graph, spec, threads)
        });
    }
}

/// Every training point at the exact same location: all N distances to any
/// test point are bitwise-equal, so the graph's entire order is the index
/// tie-break.
fn all_duplicate_instance() -> (ClassDataset, ClassDataset) {
    let n = 20;
    let row = [0.25f32, -0.75, 0.5];
    let feats: Vec<f32> = (0..n).flat_map(|_| row).collect();
    let labels: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
    let train = ClassDataset::new(Features::new(feats, 3), labels, 3);
    let test = ClassDataset::new(
        Features::new(vec![0.0, 0.0, 0.0, 1.0, -1.0, 1.0], 3),
        vec![0, 2],
        3,
    );
    (train, test)
}

#[test]
fn all_duplicate_distances_graph_bitwise() {
    let (train, test) = all_duplicate_instance();
    let graph = wire_graph(&train.x, &test.x);
    // The graph must have resolved every tie to ascending index.
    for j in 0..test.len() {
        let order: Vec<u32> = graph.list(j).iter().map(|n| n.index).collect();
        let expected: Vec<u32> = (0..train.len() as u32).collect();
        assert_eq!(order, expected, "tie-break order for test point {j}");
    }
    let reference = knn_class_shapley_with_threads(&train, &test, 3, 1);
    check_family(&reference, "all-duplicate exact", |spec, threads| {
        knn_class_shapley_graph_shard(&train, &test, 3, &graph, spec, threads)
    });
    let weight = WeightFn::InverseDistance { eps: 1e-3 };
    let wref = weighted_knn_class_shapley(&train, &test, 3, weight, 1);
    assert_bitwise(
        &wref,
        &weighted_knn_class_shapley_from_graph(&train, &test, 3, weight, &graph, 8),
        "all-duplicate weighted",
    );
}

// ---------------------------------------------------------------------------
// Daemon seed path.
// ---------------------------------------------------------------------------

#[test]
fn resident_valuator_with_graph_matches_cold_start() {
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x7C), 35, 8, 3);
    let graph = wire_graph(&train.x, &test.x);
    for threads in THREADS {
        let cold = ResidentValuator::new(train.clone(), test.clone(), 2, threads).expect("cold");
        let seeded = ResidentValuator::with_graph(train.clone(), test.clone(), 2, threads, &graph)
            .expect("seeded");
        assert_bitwise(&cold.values(), &seeded.values(), "resident graph seed");

        // The seeded daemon must keep the contract through mutations too:
        // insert then delete a point on both and compare again.
        let mut cold = cold;
        let mut seeded = seeded;
        for v in [&mut cold, &mut seeded] {
            let idx = v.insert(&[0.1, 0.9], 1).expect("insert");
            v.delete(idx.saturating_sub(1)).expect("delete");
        }
        assert_bitwise(
            &cold.values(),
            &seeded.values(),
            "resident graph seed after churn",
        );
    }
}
