//! Determinism battery for the telemetry layer (ISSUE 10): observing a run
//! must never change it. `knnshap_obs` promises that counters, histograms
//! and the JSONL event stream are strictly write-only — nothing feeds back
//! into a computation — so every estimator family re-run with telemetry
//! fully enabled (metrics registry on, debug-level event log draining into
//! the in-memory capture sink) must produce output **bitwise-identical** to
//! the telemetry-off run, at 1 thread and at 8.
//!
//! Three layers:
//! * estimator families (exact class/regression, truncated, baseline MC,
//!   improved MC, group testing) × {1, 8} threads × telemetry on/off
//!   byte-compare, permutation counts included;
//! * every captured event line is validated against the JSONL schema
//!   (`knnshap_obs::json::validate_event_line`) — reserved keys present,
//!   scalar-only fields, no duplicates;
//! * a proptest hammering the per-thread event buffers with concurrent
//!   writers: every emitted event must reach the sink exactly once (the
//!   64-line self-drain plus the drain-on-thread-exit leave nothing
//!   behind), in per-writer order.
//!
//! The telemetry switches are process-global, so every test in this file
//! serializes on one file-local lock (the obs crate's own test lock is
//! crate-internal and unavailable here).

use knnshap::knn::WeightFn;
use knnshap::obs;
use knnshap::obs::{FieldValue, Level};
use knnshap::valuation::exact_regression::knn_reg_shapley_with_threads;
use knnshap::valuation::exact_unweighted::knn_class_shapley_with_threads;
use knnshap::valuation::group_testing::group_testing_shapley_with_threads;
use knnshap::valuation::mc::{
    mc_shapley_baseline_with_threads, mc_shapley_improved_with_threads, IncKnnUtility, StoppingRule,
};
use knnshap::valuation::truncated::truncated_class_shapley_with_threads;
use knnshap::valuation::types::ShapleyValues;
use knnshap::valuation::utility::KnnClassUtility;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

mod common;
use common::{assert_bitwise, random_class, random_reg};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn telemetry_lock() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with telemetry fully on — metrics registry live, debug-level
/// event log draining into the capture sink — then restores the off state
/// and returns the result together with every captured event line.
fn with_telemetry_on<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    obs::set_metrics(true);
    obs::set_log(Some(Level::Debug));
    obs::set_capture_sink();
    // A pool worker may still hold lines buffered during an earlier
    // telemetry-on test; discard anything already in the sink.
    let _ = obs::take_captured();
    let out = f();
    obs::flush();
    obs::set_log(None);
    obs::set_metrics(false);
    (out, obs::take_captured())
}

/// Byte-compares a telemetry-off run of `run` against a telemetry-on run,
/// and schema-validates every event line the instrumented run produced.
fn assert_family_unmoved(what: &str, run: &dyn Fn() -> ShapleyValues) {
    obs::set_metrics(false);
    obs::set_log(None);
    let off = run();
    let (on, lines) = with_telemetry_on(run);
    assert_bitwise(&off, &on, what);
    for (i, line) in lines.iter().enumerate() {
        if let Err(e) = obs::json::validate_event_line(line) {
            panic!("{what}: captured event {i} violates the schema ({e}): {line}");
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 1: estimator families × {1, 8} threads × telemetry on/off.
// ---------------------------------------------------------------------------

#[test]
fn exact_estimators_bitwise_with_telemetry_on_and_off() {
    let _g = telemetry_lock();
    let mut rng = StdRng::seed_from_u64(0x0B5_1);
    let (train, test) = random_class(&mut rng, 120, 6, 3);
    let (rtrain, rtest) = random_reg(&mut rng, 100, 5);
    for threads in [1usize, 8] {
        assert_family_unmoved(&format!("exact class t={threads}"), &|| {
            knn_class_shapley_with_threads(&train, &test, 3, threads)
        });
        assert_family_unmoved(&format!("exact reg t={threads}"), &|| {
            knn_reg_shapley_with_threads(&rtrain, &rtest, 3, threads)
        });
        assert_family_unmoved(&format!("truncated t={threads}"), &|| {
            truncated_class_shapley_with_threads(&train, &test, 3, 0.1, threads)
        });
    }
}

#[test]
fn mc_estimators_bitwise_with_telemetry_on_and_off() {
    let _g = telemetry_lock();
    let mut rng = StdRng::seed_from_u64(0x0B5_2);
    let (train, test) = random_class(&mut rng, 90, 4, 3);
    let u = KnnClassUtility::unweighted(&train, &test, 3);
    let inc = IncKnnUtility::classification(&train, &test, 3, WeightFn::Uniform);
    for threads in [1usize, 8] {
        assert_family_unmoved(&format!("mc baseline t={threads}"), &|| {
            mc_shapley_baseline_with_threads(&u, StoppingRule::Fixed(60), 7, None, threads).values
        });
        assert_family_unmoved(&format!("mc improved t={threads}"), &|| {
            mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(200), 7, None, threads)
                .values
        });
        assert_family_unmoved(&format!("group testing t={threads}"), &|| {
            group_testing_shapley_with_threads(&u, 2_000, 7, threads).values
        });
    }
}

/// Telemetry must not change *how much work* an adaptive run does either:
/// the consumed-permutation count under the heuristic stopping rule is part
/// of the contract, not just the value vector.
#[test]
fn telemetry_does_not_move_permutation_counts() {
    let _g = telemetry_lock();
    let (train, test) = random_class(&mut StdRng::seed_from_u64(0x0B5_3), 150, 4, 3);
    let inc = IncKnnUtility::classification(&train, &test, 5, WeightFn::Uniform);
    let rule = StoppingRule::Heuristic {
        threshold: 1e-4,
        max: 600,
    };
    for threads in [1usize, 8] {
        obs::set_metrics(false);
        obs::set_log(None);
        let off = mc_shapley_improved_with_threads(&inc, rule, 11, None, threads);
        let (on, _) =
            with_telemetry_on(|| mc_shapley_improved_with_threads(&inc, rule, 11, None, threads));
        assert_eq!(
            off.permutations, on.permutations,
            "telemetry changed the heuristic stop at t={threads}"
        );
        assert_bitwise(&off.values, &on.values, &format!("heuristic t={threads}"));
    }
}

// ---------------------------------------------------------------------------
// Layer 2: the captured stream is schema-valid JSONL.
// ---------------------------------------------------------------------------

#[test]
fn captured_event_stream_is_schema_valid_jsonl() {
    let _g = telemetry_lock();
    let ((), lines) = with_telemetry_on(|| {
        obs::emit(
            Level::Info,
            "obs_test",
            "battery_start",
            &[
                ("n", FieldValue::from(80u64)),
                ("suite", FieldValue::from("obs_determinism")),
            ],
        );
        let (train, test) = random_class(&mut StdRng::seed_from_u64(3), 80, 4, 3);
        let inc = IncKnnUtility::classification(&train, &test, 3, WeightFn::Uniform);
        let _ = mc_shapley_improved_with_threads(&inc, StoppingRule::Fixed(32), 3, None, 8);
        obs::emit(
            Level::Info,
            "obs_test",
            "battery_end",
            &[("ok", FieldValue::from(true))],
        );
    });
    assert!(
        lines.len() >= 2,
        "expected at least the two bracketing events, got {}",
        lines.len()
    );
    let mut names = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if let Err(e) = obs::json::validate_event_line(line) {
            panic!("event {i} violates the schema ({e}): {line}");
        }
        let v = obs::json::parse(line).expect("validated line parses");
        assert!(v.get("ts").and_then(|t| t.as_f64()).is_some());
        if v.get("target").and_then(|t| t.as_str()) == Some("obs_test") {
            names.push(v.get("ev").and_then(|e| e.as_str()).unwrap().to_string());
        }
    }
    // The calling thread's buffer drains in order, so the brackets survive.
    assert_eq!(names.first().map(String::as_str), Some("battery_start"));
    assert_eq!(names.last().map(String::as_str), Some("battery_end"));
}

#[test]
fn disabled_telemetry_emits_nothing_and_counts_nothing() {
    let _g = telemetry_lock();
    obs::set_metrics(false);
    obs::set_log(None);
    obs::set_capture_sink();
    let _ = obs::take_captured();

    static INERT: obs::Counter = obs::Counter::new("obs_test.inert");
    INERT.add(5);
    obs::emit(
        Level::Info,
        "obs_test",
        "should_not_appear",
        &[("x", FieldValue::from(1u64))],
    );
    let (train, test) = random_class(&mut StdRng::seed_from_u64(9), 60, 3, 3);
    let _ = knn_class_shapley_with_threads(&train, &test, 3, 8);
    obs::flush();

    assert!(
        obs::take_captured().is_empty(),
        "disabled log still reached the sink"
    );
    assert_eq!(
        obs::snapshot().counter("obs_test.inert").unwrap_or(0),
        0,
        "disabled metrics registry still moved"
    );
}

#[test]
fn metrics_registry_moves_only_while_enabled() {
    let _g = telemetry_lock();
    static MOVES: obs::Counter = obs::Counter::new("obs_test.moves");
    obs::set_metrics(false);
    MOVES.add(3); // inert
    let before = obs::snapshot().counter("obs_test.moves").unwrap_or(0);
    obs::set_metrics(true);
    MOVES.add(3);
    let after = obs::snapshot().counter("obs_test.moves").unwrap_or(0);
    obs::set_metrics(false);
    assert_eq!(after, before + 3);
}

// ---------------------------------------------------------------------------
// Layer 3: buffer drain under concurrent writers.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N writer threads each emit a numbered sequence; between the 64-line
    /// self-drain and the drain-on-thread-exit, every event must reach the
    /// sink exactly once, schema-valid, and in per-writer order. Sequence
    /// lengths straddle the buffer size so both drain paths are exercised.
    #[test]
    fn concurrent_writers_drain_every_event(
        writers in 2usize..=8,
        per_writer in 1usize..=150,
    ) {
        let _g = telemetry_lock();
        obs::set_log(Some(Level::Debug));
        obs::set_capture_sink();
        let _ = obs::take_captured();

        let handles: Vec<_> = (0..writers)
            .map(|w| {
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        obs::emit(
                            Level::Debug,
                            "obs_proptest",
                            "tick",
                            &[
                                ("writer", FieldValue::from(w as u64)),
                                ("seq", FieldValue::from(i as u64)),
                            ],
                        );
                    }
                    // Anything short of a full buffer drains on exit.
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        obs::set_log(None);

        // Keep only this test's events: a pool worker could in principle
        // drain lines buffered by an earlier telemetry-on test.
        let lines: Vec<String> = obs::take_captured()
            .into_iter()
            .filter(|l| {
                obs::json::parse(l)
                    .ok()
                    .and_then(|v| v.get("target").and_then(|t| t.as_str()).map(String::from))
                    .as_deref()
                    == Some("obs_proptest")
            })
            .collect();
        prop_assert_eq!(lines.len(), writers * per_writer, "lost or duplicated events");

        let mut next_seq = vec![0usize; writers];
        for line in &lines {
            prop_assert!(obs::json::validate_event_line(line).is_ok(), "invalid: {}", line);
            let v = obs::json::parse(line).unwrap();
            prop_assert_eq!(v.get("ev").and_then(|e| e.as_str()), Some("tick"));
            let w = v.get("writer").and_then(|x| x.as_f64()).unwrap() as usize;
            let s = v.get("seq").and_then(|x| x.as_f64()).unwrap() as usize;
            prop_assert!(w < writers, "writer id out of range");
            prop_assert_eq!(s, next_seq[w], "writer {} drained out of order", w);
            next_seq[w] += 1;
        }
        for (w, &n) in next_seq.iter().enumerate() {
            prop_assert_eq!(n, per_writer, "writer {} incomplete", w);
        }
    }
}
