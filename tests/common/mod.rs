//! Scaffolding shared by the determinism batteries
//! (`parallel_determinism.rs`, `mc_determinism.rs`): bitwise comparison
//! helpers and seeded random instance generators.
//!
//! Not every suite uses every helper, and each test target compiles this
//! module independently, so dead-code warnings are silenced wholesale.
#![allow(dead_code)]

use knnshap::datasets::{ClassDataset, Features, RegDataset};
use knnshap::valuation::types::ShapleyValues;
use rand::rngs::StdRng;
use rand::Rng;

/// Thread counts the batteries compare against the serial (1-thread) path.
pub const THREAD_COUNTS: [usize; 2] = [2, 8];

pub fn assert_bitwise(serial: &ShapleyValues, par: &ShapleyValues, what: &str) {
    assert_eq!(serial.len(), par.len(), "{what}: length mismatch");
    for (i, (a, b)) in serial.as_slice().iter().zip(par.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: value {i} differs: {a:?} vs {b:?}"
        );
    }
}

pub fn bitwise_ok(serial: &ShapleyValues, par: &ShapleyValues) -> bool {
    serial.len() == par.len()
        && serial
            .as_slice()
            .iter()
            .zip(par.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits())
}

pub fn random_class(
    rng: &mut StdRng,
    n: usize,
    n_test: usize,
    classes: u32,
) -> (ClassDataset, ClassDataset) {
    let feats: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
    let train = ClassDataset::new(Features::new(feats, 2), labels, classes);
    let tfeats: Vec<f32> = (0..n_test * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let tlabels: Vec<u32> = (0..n_test).map(|_| rng.gen_range(0..classes)).collect();
    let test = ClassDataset::new(Features::new(tfeats, 2), tlabels, classes);
    (train, test)
}

pub fn random_reg(rng: &mut StdRng, n: usize, n_test: usize) -> (RegDataset, RegDataset) {
    let feats: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let targets: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let train = RegDataset::new(Features::new(feats, 2), targets);
    let tfeats: Vec<f32> = (0..n_test * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ttargets: Vec<f64> = (0..n_test).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let test = RegDataset::new(Features::new(tfeats, 2), ttargets);
    (train, test)
}
