//! The on-disk job directory and crash-safe file publication.
//!
//! ```text
//! job/
//!   plan              KNNJOBPLAN file (spec + derived identity)
//!   shards/s<i>.shard completed KNNSHARD partials (canonical bytes)
//!   checkpoints/s<i>.ckpt  mid-shard resume state (also KNNSHARD bytes)
//!   leases/s<i>.lease work-queue claims (see crate::queue)
//! ```
//!
//! Everything that must never be seen half-written (plan, shard files,
//! checkpoints) goes through [`write_atomic`]: bytes land in a
//! uniquely-named temporary sibling and are moved into place with
//! `rename(2)`, which is atomic within a filesystem — a concurrent reader
//! sees either the old complete file or the new complete file, never a
//! prefix. Leases are the one exception: their *creation* must be exclusive
//! rather than atomic-replace, so they use `O_CREAT|O_EXCL` instead (see
//! [`crate::queue::try_claim`]).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Paths of one job directory. Purely computational — no filesystem access
/// except [`create`](Self::create) and the scan helpers.
#[derive(Debug, Clone)]
pub struct JobDirs {
    root: PathBuf,
}

impl JobDirs {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn plan_path(&self) -> PathBuf {
        self.root.join("plan")
    }

    pub fn shards_dir(&self) -> PathBuf {
        self.root.join("shards")
    }

    pub fn checkpoints_dir(&self) -> PathBuf {
        self.root.join("checkpoints")
    }

    pub fn leases_dir(&self) -> PathBuf {
        self.root.join("leases")
    }

    /// Final (published) partial of shard `i`.
    pub fn shard_path(&self, i: usize) -> PathBuf {
        self.shards_dir().join(format!("s{i}.shard"))
    }

    /// Mid-shard checkpoint of shard `i`.
    pub fn checkpoint_path(&self, i: usize) -> PathBuf {
        self.checkpoints_dir().join(format!("s{i}.ckpt"))
    }

    /// Work-queue claim on shard `i`.
    pub fn lease_path(&self, i: usize) -> PathBuf {
        self.leases_dir().join(format!("s{i}.lease"))
    }

    /// Append-only orchestration event stream (see [`crate::progress`]).
    pub fn events_path(&self) -> PathBuf {
        self.root.join("events.jsonl")
    }

    /// Create the directory tree (idempotent).
    pub fn create(&self) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.root)?;
        std::fs::create_dir_all(self.shards_dir())?;
        std::fs::create_dir_all(self.checkpoints_dir())?;
        std::fs::create_dir_all(self.leases_dir())
    }

    /// Is shard `i` published?
    pub fn shard_done(&self, i: usize) -> bool {
        self.shard_path(i).exists()
    }

    /// Indices in `0..shards` whose shard file has not been published yet.
    pub fn missing_shards(&self, shards: usize) -> Vec<usize> {
        (0..shards).filter(|&i| !self.shard_done(i)).collect()
    }
}

/// Process-unique suffix counter for temporary names.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: write a uniquely-named temporary
/// sibling, then `rename` it into place. On any filesystem where the job
/// directory lives together (the design requirement), the rename is atomic;
/// concurrent publishers of *canonical* content (shard files, checkpoints)
/// are therefore idempotent — last write wins with identical bytes.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "file".into());
    name.push(format!(".tmp.{}.{}", std::process::id(), seq));
    let tmp = path.with_file_name(name);
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("knnshap-layout-{}-{tag}", std::process::id()))
    }

    #[test]
    fn directory_tree_and_paths() {
        let dirs = JobDirs::new(tmp_root("tree"));
        dirs.create().unwrap();
        dirs.create().unwrap(); // idempotent
        assert!(dirs.shards_dir().is_dir());
        assert!(dirs.leases_dir().is_dir());
        assert!(dirs.checkpoints_dir().is_dir());
        assert_eq!(dirs.missing_shards(3), vec![0, 1, 2]);
        std::fs::write(dirs.shard_path(1), b"x").unwrap();
        assert!(dirs.shard_done(1));
        assert_eq!(dirs.missing_shards(3), vec![0, 2]);
        std::fs::remove_dir_all(dirs.root()).ok();
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temporaries() {
        let root = tmp_root("atomic");
        std::fs::create_dir_all(&root).unwrap();
        let target = root.join("out.bin");
        write_atomic(&target, b"first").unwrap();
        write_atomic(&target, b"second").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&root).ok();
    }
}
