//! The versioned on-disk job description: [`JobSpec`] (what the operator
//! asked for) → [`JobPlan`] (the spec plus everything the fleet must agree
//! on: estimator kind, job fingerprint, item counts, canonical shard and
//! checkpoint-chunk partitions).
//!
//! ## The `KNNJOBPLAN` file (version 1)
//!
//! A plan is one UTF-8 text file of `key value` lines, first line
//! `KNNJOBPLAN 1`. Keys are fixed and all required; values are written with
//! Rust's shortest round-trip float formatting, so a save/parse round trip
//! preserves every parameter bit-for-bit (and therefore preserves the job
//! fingerprint the parameters feed). Example:
//!
//! ```text
//! KNNJOBPLAN 1
//! task class
//! train /data/train.csv
//! test /data/test.csv
//! k 3
//! weight uniform
//! weight-param 0
//! method mc-improved
//! eps 0
//! perms 20000
//! seed 42
//! shards 8
//! checkpoint-chunks 4
//! kind mc-improved
//! fingerprint 9f1c2b3a4d5e6f70
//! n-train 100000
//! total-items 20000
//! ```
//!
//! The first twelve keys are the [`JobSpec`]; the last four are derived at
//! plan time ([`plan_job`]) from the *dataset contents* and pin the job's
//! identity: every worker re-derives the fingerprint from the files it
//! actually reads and refuses to compute against drifted data.
//!
//! ## Canonical partitions
//!
//! Shard `i` of `S` covers the canonical balanced range
//! `⌊i·T/S⌋ .. ⌊(i+1)·T/S⌋` (`knnshap_core::sharding::ShardSpec`). For
//! checkpointing, each shard is further split into `C` **micro-chunks**:
//! chunk `c` of shard `i` is `ShardSpec::new(i·C + c, S·C)`. Because the
//! balanced partition is *nested* — the cut points of the `S`-way split are
//! exactly the cut points `⌊j·C·T/(S·C)⌋` of the `(S·C)`-way split at
//! multiples of `C` — the chunks of shard `i` tile the shard's range
//! exactly, and absorbing them in order reproduces the one-shot shard
//! partial bit for bit (`ShardPartial::absorb_adjacent`).

use crate::layout::JobDirs;
use crate::{io_err, JobError};
use knnshap_core::sharding::{ShardKind, ShardSpec};
use knnshap_knn::weights::WeightFn;
use std::path::{Path, PathBuf};

/// Plan-file format version written/required by
/// [`JobPlan::to_file_string`]/[`JobPlan::parse`].
pub const PLAN_FORMAT_VERSION: u32 = 1;

/// First line of every plan file.
pub const PLAN_MAGIC: &str = "KNNJOBPLAN";

/// Which prediction task the datasets hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Classification CSVs (features…, integer label).
    Class,
    /// Regression CSVs (features…, float target).
    Reg,
}

impl TaskKind {
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Class => "class",
            TaskKind::Reg => "reg",
        }
    }
}

/// The estimator family a job runs, with its family-specific parameter.
///
/// The stochastic families carry an **a-priori** stream budget (the
/// sequential §6.2.2 heuristic stop cannot be sharded, so a fleet needs the
/// budget fixed up front). LSH is deliberately absent: its index is planned
/// from whole-test-set statistics and does not shard by test range (the CLI
/// explains this; `docs/sharding.md` documents the planned index-once /
/// stream-queries design).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobMethod {
    /// Exact per-test decomposition (Theorems 1/6/7; weighted via
    /// [`JobSpec::weight`]).
    Exact,
    /// Truncated (ε, 0)-approximation (Theorem 2).
    Truncated { eps: f64 },
    /// Baseline Monte Carlo over `perms` permutation streams.
    McBaseline { perms: usize },
    /// Improved Monte Carlo (Algorithm 2) over `perms` permutation streams.
    McImproved { perms: usize },
    /// Group-testing baseline over `tests` coalition-test streams.
    GroupTesting { tests: usize },
}

impl JobMethod {
    pub fn name(self) -> &'static str {
        match self {
            JobMethod::Exact => "exact",
            JobMethod::Truncated { .. } => "truncated",
            JobMethod::McBaseline { .. } => "mc-baseline",
            JobMethod::McImproved { .. } => "mc-improved",
            JobMethod::GroupTesting { .. } => "group-testing",
        }
    }

    fn eps(self) -> f64 {
        match self {
            JobMethod::Truncated { eps } => eps,
            _ => 0.0,
        }
    }

    fn perms(self) -> usize {
        match self {
            JobMethod::McBaseline { perms } | JobMethod::McImproved { perms } => perms,
            JobMethod::GroupTesting { tests } => tests,
            _ => 0,
        }
    }
}

/// What the operator asked for — everything `shard-plan` needs to derive a
/// [`JobPlan`]. Every field is part of the job identity except `shards` and
/// `checkpoint_chunks`, which partition the work without affecting a single
/// output bit (the determinism contract).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub task: TaskKind,
    /// Training CSV (classification or regression layout per `task`).
    pub train: PathBuf,
    /// Test CSV.
    pub test: PathBuf,
    pub k: usize,
    pub weight: WeightFn,
    pub method: JobMethod,
    /// RNG seed of the stochastic families (ignored by the exact ones).
    pub seed: u64,
    /// Worker-visible shard count.
    pub shards: usize,
    /// Checkpoint micro-chunks per shard: a killed worker loses at most one
    /// chunk of work.
    pub checkpoint_chunks: usize,
}

impl JobSpec {
    /// Reject impossible combinations before any dataset is read.
    pub fn validate(&self) -> Result<(), JobError> {
        let bad = |m: String| Err(JobError::Spec(m));
        if self.k == 0 {
            return bad("k must be at least 1".into());
        }
        if self.shards == 0 {
            return bad("need at least 1 shard".into());
        }
        if self.checkpoint_chunks == 0 {
            return bad("need at least 1 checkpoint chunk per shard".into());
        }
        let uniform = matches!(self.weight, WeightFn::Uniform);
        match (self.task, self.method) {
            (TaskKind::Reg, JobMethod::Exact) if uniform => Ok(()),
            (TaskKind::Reg, JobMethod::Exact) => {
                bad("regression jobs support uniform weights only".into())
            }
            (TaskKind::Reg, m) => bad(format!(
                "regression jobs support method exact (got {})",
                m.name()
            )),
            (TaskKind::Class, JobMethod::Truncated { .. }) if !uniform => {
                bad("truncated supports uniform weights only".into())
            }
            (
                TaskKind::Class,
                JobMethod::McBaseline { perms: 0 }
                | JobMethod::McImproved { perms: 0 }
                | JobMethod::GroupTesting { tests: 0 },
            ) => bad(
                "sharded Monte Carlo / group testing needs a fixed stream budget: \
                 pass --perms N (the §6.2.2 heuristic stop is sequential and \
                 cannot be sharded)"
                    .into(),
            ),
            (TaskKind::Class, _) => Ok(()),
        }
    }
}

/// A planned job: the spec plus the derived identity every process in the
/// fleet cross-checks (estimator kind, dataset-content job fingerprint,
/// training-point and item counts).
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlan {
    pub spec: JobSpec,
    /// Estimator family the shard files will carry.
    pub kind: ShardKind,
    /// The `knnshap_core::sharding` job fingerprint (dataset contents +
    /// every output-affecting parameter).
    pub fingerprint: u64,
    pub n_train: u64,
    /// Total items: test points for the exact decompositions, stream budget
    /// for the stochastic ones.
    pub total_items: u64,
}

impl JobPlan {
    /// The canonical item range of worker-visible shard `i`.
    pub fn shard_range(&self, shard: usize) -> std::ops::Range<usize> {
        ShardSpec::new(shard, self.spec.shards).range(self.total_items as usize)
    }

    /// The canonical micro-chunk spec: chunk `chunk` of shard `shard`, in
    /// the nested `(shards × checkpoint_chunks)`-way partition.
    pub fn micro_spec(&self, shard: usize, chunk: usize) -> ShardSpec {
        let c = self.spec.checkpoint_chunks;
        assert!(chunk < c, "chunk {chunk} out of range 0..{c}");
        ShardSpec::new(shard * c + chunk, self.spec.shards * c)
    }

    /// Serialize to the versioned plan-file text.
    pub fn to_file_string(&self) -> String {
        let s = &self.spec;
        let (wname, wparam) = weight_parts(s.weight);
        format!(
            "{PLAN_MAGIC} {PLAN_FORMAT_VERSION}\n\
             task {}\n\
             train {}\n\
             test {}\n\
             k {}\n\
             weight {wname}\n\
             weight-param {wparam}\n\
             method {}\n\
             eps {}\n\
             perms {}\n\
             seed {}\n\
             shards {}\n\
             checkpoint-chunks {}\n\
             kind {}\n\
             fingerprint {:016x}\n\
             n-train {}\n\
             total-items {}\n",
            s.task.name(),
            s.train.display(),
            s.test.display(),
            s.k,
            s.method.name(),
            s.method.eps(),
            s.method.perms(),
            s.seed,
            s.shards,
            s.checkpoint_chunks,
            self.kind.name(),
            self.fingerprint,
            self.n_train,
            self.total_items,
        )
    }

    /// Parse a plan file, validating magic, version, and that every key is
    /// present exactly once.
    pub fn parse(text: &str) -> Result<JobPlan, JobError> {
        let bad = |m: String| JobError::Plan(m);
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let mut hp = header.splitn(2, ' ');
        if hp.next() != Some(PLAN_MAGIC) {
            return Err(bad("not a knnshap job plan (bad first line)".into()));
        }
        let version: u32 = hp
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| bad("missing format version".into()))?;
        if version != PLAN_FORMAT_VERSION {
            return Err(bad(format!(
                "plan format version {version} is not supported (this build reads \
                 version {PLAN_FORMAT_VERSION})"
            )));
        }
        let mut kv = std::collections::BTreeMap::new();
        for (no, line) in lines.enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| bad(format!("line {}: expected 'key value'", no + 2)))?;
            if kv.insert(key.to_string(), value.to_string()).is_some() {
                return Err(bad(format!("duplicate key '{key}'")));
            }
        }
        let mut take = |key: &str| {
            kv.remove(key)
                .ok_or_else(|| bad(format!("missing key '{key}'")))
        };
        let parse_num = |key: &str, value: &str, what: &str| {
            JobError::Plan(format!("key '{key}': '{value}' is not {what}"))
        };
        macro_rules! num {
            ($key:literal, $ty:ty, $what:literal) => {{
                let v = take($key)?;
                v.parse::<$ty>().map_err(|_| parse_num($key, &v, $what))?
            }};
        }

        let task = match take("task")?.as_str() {
            "class" => TaskKind::Class,
            "reg" => TaskKind::Reg,
            other => return Err(bad(format!("unknown task '{other}' (class, reg)"))),
        };
        let train = PathBuf::from(take("train")?);
        let test = PathBuf::from(take("test")?);
        let k = num!("k", usize, "an unsigned integer");
        let wname = take("weight")?;
        let wparam = num!("weight-param", f64, "a number");
        let weight = weight_from_parts(&wname, wparam)?;
        let method_name = take("method")?;
        let eps = num!("eps", f64, "a number");
        let perms = num!("perms", usize, "an unsigned integer");
        let method = match method_name.as_str() {
            "exact" => JobMethod::Exact,
            "truncated" => JobMethod::Truncated { eps },
            "mc-baseline" => JobMethod::McBaseline { perms },
            "mc-improved" => JobMethod::McImproved { perms },
            "group-testing" => JobMethod::GroupTesting { tests: perms },
            other => {
                return Err(bad(format!(
                    "unknown method '{other}' (exact, truncated, mc-baseline, \
                     mc-improved, group-testing)"
                )))
            }
        };
        let seed = num!("seed", u64, "an unsigned integer");
        let shards = num!("shards", usize, "an unsigned integer");
        let checkpoint_chunks = num!("checkpoint-chunks", usize, "an unsigned integer");
        let kind_name = take("kind")?;
        let kind = kind_from_name(&kind_name)
            .ok_or_else(|| bad(format!("unknown estimator kind '{kind_name}'")))?;
        let fp = take("fingerprint")?;
        let fingerprint = u64::from_str_radix(&fp, 16)
            .map_err(|_| parse_num("fingerprint", &fp, "a hex integer"))?;
        let n_train = num!("n-train", u64, "an unsigned integer");
        let total_items = num!("total-items", u64, "an unsigned integer");
        if let Some(extra) = kv.keys().next() {
            return Err(bad(format!("unknown key '{extra}'")));
        }

        let plan = JobPlan {
            spec: JobSpec {
                task,
                train,
                test,
                k,
                weight,
                method,
                seed,
                shards,
                checkpoint_chunks,
            },
            kind,
            fingerprint,
            n_train,
            total_items,
        };
        plan.spec.validate()?;
        Ok(plan)
    }

    /// Write the plan into its job directory (atomically).
    pub fn save(&self, dirs: &JobDirs) -> Result<(), JobError> {
        dirs.create().map_err(|e| io_err(dirs.root(), e))?;
        crate::layout::write_atomic(&dirs.plan_path(), self.to_file_string().as_bytes())
            .map_err(|e| io_err(&dirs.plan_path(), e))
    }

    /// Read the plan from a job directory.
    pub fn load(dirs: &JobDirs) -> Result<JobPlan, JobError> {
        let path = dirs.plan_path();
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        JobPlan::parse(&text)
    }
}

/// Derive the [`JobPlan`] for a spec: load the datasets it names, validate
/// the combination, and compute the job identity (kind, dataset-content
/// fingerprint, item counts). This is the one place fingerprints enter the
/// system; workers re-derive and compare (`dispatch::PreparedJob`).
pub fn plan_job(spec: &JobSpec) -> Result<JobPlan, JobError> {
    spec.validate()?;
    let data = crate::dispatch::load_data(spec)?;
    let (kind, fingerprint) = crate::dispatch::job_identity(spec, &data);
    let (n_train, n_test) = data.sizes();
    if matches!(spec.method, JobMethod::GroupTesting { .. }) && n_train < 2 {
        return Err(JobError::Spec(
            "group testing needs at least two training points".into(),
        ));
    }
    let total_items = match spec.method {
        JobMethod::Exact | JobMethod::Truncated { .. } => n_test,
        m => m.perms(),
    };
    Ok(JobPlan {
        spec: spec.clone(),
        kind,
        fingerprint,
        n_train: n_train as u64,
        total_items: total_items as u64,
    })
}

/// `ShardKind` from its [`name`](ShardKind::name) (the plan file stores
/// names, not codes, to keep the file greppable).
pub fn kind_from_name(name: &str) -> Option<ShardKind> {
    Some(match name {
        "exact-class" => ShardKind::ExactClass,
        "exact-reg" => ShardKind::ExactReg,
        "truncated" => ShardKind::Truncated,
        "mc-baseline" => ShardKind::McBaseline,
        "mc-improved" => ShardKind::McImproved,
        "group-testing" => ShardKind::GroupTesting,
        _ => return None,
    })
}

/// `(name, param)` encoding of a weight function for the plan file.
fn weight_parts(w: WeightFn) -> (&'static str, f64) {
    match w {
        WeightFn::Uniform => ("uniform", 0.0),
        WeightFn::InverseDistance { eps } => ("inverse", eps as f64),
        WeightFn::Exponential { beta } => ("exponential", beta as f64),
    }
}

fn weight_from_parts(name: &str, param: f64) -> Result<WeightFn, JobError> {
    Ok(match name {
        "uniform" => WeightFn::Uniform,
        "inverse" => WeightFn::InverseDistance { eps: param as f32 },
        "exponential" => WeightFn::Exponential { beta: param as f32 },
        other => {
            return Err(JobError::Plan(format!(
                "unknown weight '{other}' (uniform, inverse, exponential)"
            )))
        }
    })
}

/// A path rendered relative-proof: `shard-plan` canonicalizes dataset paths
/// so workers launched from any working directory read the same files.
pub fn absolutize(path: &Path) -> PathBuf {
    std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            task: TaskKind::Class,
            train: "/tmp/train.csv".into(),
            test: "/tmp/test.csv".into(),
            k: 3,
            weight: WeightFn::InverseDistance { eps: 1e-3 },
            method: JobMethod::McImproved { perms: 500 },
            seed: 9,
            shards: 4,
            checkpoint_chunks: 3,
        }
    }

    fn plan() -> JobPlan {
        JobPlan {
            spec: spec(),
            kind: ShardKind::McImproved,
            fingerprint: 0x0123_4567_89ab_cdef,
            n_train: 100,
            total_items: 500,
        }
    }

    #[test]
    fn plan_file_round_trips_exactly() {
        let p = plan();
        let text = p.to_file_string();
        let back = JobPlan::parse(&text).unwrap();
        assert_eq!(back, p);
        // And the round trip is a fixed point of serialization.
        assert_eq!(back.to_file_string(), text);
    }

    #[test]
    fn parse_rejects_bad_headers_versions_and_keys() {
        let text = plan().to_file_string();
        let err = JobPlan::parse("NOTAPLAN 1\n").unwrap_err();
        assert!(err.to_string().contains("bad first line"), "{err}");
        let err = JobPlan::parse(&text.replace("KNNJOBPLAN 1", "KNNJOBPLAN 9")).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");
        let err = JobPlan::parse(&text.replace("seed 9", "sneed 9")).unwrap_err();
        assert!(err.to_string().contains("missing key 'seed'"), "{err}");
        let err = JobPlan::parse(&format!("{text}seed 9\n")).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        let err = JobPlan::parse(&text.replace("k 3", "k three")).unwrap_err();
        assert!(err.to_string().contains("not an unsigned"), "{err}");
    }

    #[test]
    fn validate_rejects_impossible_combinations() {
        let mut s = spec();
        s.task = TaskKind::Reg;
        assert!(s.validate().is_err(), "reg + mc");
        s.method = JobMethod::Exact;
        assert!(s.validate().is_err(), "reg + weighted");
        s.weight = WeightFn::Uniform;
        assert!(s.validate().is_ok(), "reg + exact uniform");

        let mut s = spec();
        s.method = JobMethod::McBaseline { perms: 0 };
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("--perms"), "{err}");

        let mut s = spec();
        s.method = JobMethod::Truncated { eps: 0.1 };
        assert!(s.validate().is_err(), "truncated + weighted");

        let mut s = spec();
        s.shards = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.checkpoint_chunks = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn micro_chunks_refine_shard_ranges_exactly() {
        // The nested-partition property the checkpoint/resume design rests
        // on: for every (total, shards, chunks), the chunk ranges of shard i
        // tile shard i's range exactly, in order.
        for total in [0usize, 1, 7, 11, 97, 1000] {
            for shards in [1usize, 2, 3, 5, 8] {
                for chunks in [1usize, 2, 4, 7] {
                    let p = JobPlan {
                        total_items: total as u64,
                        spec: JobSpec {
                            shards,
                            checkpoint_chunks: chunks,
                            ..spec()
                        },
                        ..plan()
                    };
                    for i in 0..shards {
                        let want = p.shard_range(i);
                        let mut at = want.start;
                        for c in 0..chunks {
                            let r = p.micro_spec(i, c).range(total);
                            assert_eq!(r.start, at, "t={total} s={shards} c={chunks} i={i}");
                            at = r.end;
                        }
                        assert_eq!(at, want.end, "t={total} s={shards} c={chunks} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            ShardKind::ExactClass,
            ShardKind::ExactReg,
            ShardKind::Truncated,
            ShardKind::McBaseline,
            ShardKind::McImproved,
            ShardKind::GroupTesting,
        ] {
            assert_eq!(kind_from_name(kind.name()), Some(kind));
        }
        assert_eq!(kind_from_name("bogus"), None);
    }
}
