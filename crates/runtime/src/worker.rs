//! The worker loop: claim a shard, compute it chunk by chunk with
//! checkpoints, publish, repeat until nothing is claimable.
//!
//! ## Resume semantics
//!
//! A shard's range is the ordered concatenation of its canonical
//! micro-chunks ([`JobPlan::micro_spec`](crate::spec::JobPlan::micro_spec)).
//! The worker folds finished chunks into an accumulated partial with
//! `ShardPartial::absorb_adjacent` and checkpoints the accumulation after
//! every chunk — each checkpoint is itself a valid `KNNSHARD` file covering
//! `shard_lo .. chunk_end`. On claim, a worker first looks for a
//! checkpoint; if it belongs to this job (fingerprint), starts at the
//! shard's start, and ends **exactly on a chunk boundary**, the covered
//! chunks are skipped. Anything else (corrupt bytes, stale job, different
//! chunk geometry) is discarded and the shard recomputes from scratch —
//! always sound, because exact accumulation makes the final bytes a pure
//! function of the covered range, however it was reassembled.
//!
//! ## Fault injection
//!
//! [`WorkerOptions::fault`] is consulted at the two interesting crash
//! points of every chunk — after computing it (checkpoint **not yet**
//! written) and after checkpointing it. Returning `true` makes the worker
//! abandon ship exactly as `kill -9` would: lease and checkpoint files are
//! left in place, nothing is cleaned up, and the caller gets
//! [`JobError::Crashed`]. The orchestration tests drive every kill point
//! this hook exposes; the CLI `worker` command wires it to the
//! `KNNSHAP_FAULT_AFTER_CHUNKS` environment variable (exiting the real
//! process) for process-level CI smoke tests.

use crate::dispatch::PreparedJob;
use crate::layout::JobDirs;
use crate::queue;
use crate::{io_err, JobError};
use knnshap_core::sharding::ShardPartial;

/// Where a fault hook is consulted (both are "between checkpoint writes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Chunk computed, checkpoint **not** written: the chunk's work is lost.
    AfterChunk { shard: usize, chunk: usize },
    /// Checkpoint written: the chunk's work survives the crash.
    AfterCheckpoint { shard: usize, chunk: usize },
}

/// A test hook deciding whether to crash at a [`FaultPoint`].
pub type FaultHook = Box<dyn FnMut(FaultPoint) -> bool + Send>;

/// Worker configuration.
pub struct WorkerOptions {
    /// Identity written into lease files (diagnostics only).
    pub worker_id: String,
    /// Threads for the in-shard parallel folds (0 ⇒
    /// `knnshap_parallel::current_threads()`, i.e. `KNNSHAP_THREADS`-aware).
    pub threads: usize,
    /// Fault-injection hook; `None` in production.
    pub fault: Option<FaultHook>,
    /// Path to a precomputed `KNNGRAPH` artifact (`knnshap build-graph`).
    /// Loaded once, fingerprint-checked against the job's datasets, and used
    /// by every chunk this worker computes — skipping the distance pass
    /// while publishing the same bytes a graph-less worker would.
    pub graph: Option<std::path::PathBuf>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            worker_id: format!("pid{}", std::process::id()),
            threads: 0,
            fault: None,
            graph: None,
        }
    }
}

/// What a worker accomplished before exiting cleanly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Shards this worker claimed, completed and published.
    pub completed: Vec<usize>,
    /// Micro-chunks actually computed (excludes chunks skipped via resume).
    pub chunks_computed: usize,
    /// Shards whose computation resumed from a predecessor's checkpoint.
    pub resumed: usize,
}

/// Run one worker against a job directory until no shard is claimable:
/// every shard is either published or leased to someone else. Returns what
/// was accomplished; stale-lease recovery is the supervisor's business, not
/// the worker's.
pub fn run_worker(dirs: &JobDirs, mut opts: WorkerOptions) -> Result<WorkerReport, JobError> {
    let mut prepared = PreparedJob::load(dirs)?;
    if let Some(path) = &opts.graph {
        let graph = knnshap_knn::graph::KnnGraph::load(path)
            .map_err(|e| JobError::Dataset(format!("{}: {e}", path.display())))?;
        prepared.attach_graph(graph)?;
    }
    let threads = if opts.threads == 0 {
        knnshap_parallel::current_threads()
    } else {
        opts.threads
    };
    let shards = prepared.plan().spec.shards;
    let mut report = WorkerReport::default();
    loop {
        let mut claimed_any = false;
        for i in dirs.missing_shards(shards) {
            let Some(lease) = queue::try_claim(dirs, i, &opts.worker_id)
                .map_err(|e| io_err(&dirs.lease_path(i), e))?
            else {
                continue; // someone else holds it
            };
            if dirs.shard_done(i) {
                // Published by a peer between our scan and the claim —
                // don't recompute a whole shard just to rewrite its bytes.
                lease.release().ok();
                continue;
            }
            claimed_any = true;
            crate::progress::append_event(
                dirs,
                "claim",
                &[
                    ("shard", i.into()),
                    ("worker", opts.worker_id.as_str().into()),
                ],
            );
            compute_shard(
                dirs,
                &prepared,
                i,
                &lease,
                threads,
                &mut opts.fault,
                &mut report,
            )?;
            queue::clear_checkpoint(dirs, i);
            lease.release().ok(); // already expired? fine — shard is published
            report.completed.push(i);
            crate::progress::append_event(
                dirs,
                "shard_done",
                &[
                    ("shard", i.into()),
                    ("worker", opts.worker_id.as_str().into()),
                ],
            );
        }
        if !claimed_any {
            // Everything is published or leased out; a worker that waited
            // here could wait forever on a dead peer — TTL recovery is the
            // supervisor's job, so exit cleanly instead.
            return Ok(report);
        }
    }
}

/// Compute shard `i` chunk by chunk, resuming from a valid checkpoint.
fn compute_shard(
    dirs: &JobDirs,
    prepared: &PreparedJob,
    i: usize,
    lease: &queue::Lease,
    threads: usize,
    fault: &mut Option<FaultHook>,
    report: &mut WorkerReport,
) -> Result<(), JobError> {
    let plan = prepared.plan();
    let chunks = plan.spec.checkpoint_chunks;
    let shard_range = plan.shard_range(i);
    let total = plan.total_items as usize;

    // Adopt a checkpoint only if it provably covers a chunk-aligned prefix
    // of this shard of this job.
    let mut acc: Option<ShardPartial> = queue::read_checkpoint(dirs, i).filter(|p| {
        p.meta.fingerprint == plan.fingerprint
            && p.meta.kind == plan.kind
            && p.meta.item_lo as usize == shard_range.start
            && p.meta.item_hi as usize <= shard_range.end
            && (0..chunks)
                .any(|c| plan.micro_spec(i, c).range(total).end == p.meta.item_hi as usize)
    });
    if acc.is_some() {
        report.resumed += 1;
    }

    for c in 0..chunks {
        let chunk_range = plan.micro_spec(i, c).range(total);
        if let Some(p) = &acc {
            if chunk_range.end <= p.meta.item_hi as usize {
                continue; // covered by the checkpoint
            }
        }
        let part = prepared.compute_chunk(plan.micro_spec(i, c), threads);
        report.chunks_computed += 1;
        match &mut acc {
            None => acc = Some(part),
            Some(a) => a.absorb_adjacent(&part)?,
        }
        lease.heartbeat().ok();
        if crash(fault, FaultPoint::AfterChunk { shard: i, chunk: c }) {
            return Err(JobError::Crashed(format!(
                "injected fault after computing chunk {c} of shard {i}"
            )));
        }
        let a = acc.as_ref().expect("accumulated above");
        queue::write_checkpoint(dirs, i, a).map_err(|e| io_err(&dirs.checkpoint_path(i), e))?;
        crate::progress::append_event(
            dirs,
            "chunk",
            &[
                ("shard", i.into()),
                ("chunk", c.into()),
                ("chunks", chunks.into()),
                ("item_hi", (a.meta.item_hi as usize).into()),
            ],
        );
        if crash(fault, FaultPoint::AfterCheckpoint { shard: i, chunk: c }) {
            return Err(JobError::Crashed(format!(
                "injected fault after checkpointing chunk {c} of shard {i}"
            )));
        }
    }
    let done = acc.expect("checkpoint_chunks >= 1 always computes at least one chunk");
    debug_assert_eq!(done.meta.item_lo as usize, shard_range.start);
    debug_assert_eq!(done.meta.item_hi as usize, shard_range.end);
    queue::publish_shard(dirs, i, &done).map_err(|e| io_err(&dirs.shard_path(i), e))
}

fn crash(fault: &mut Option<FaultHook>, at: FaultPoint) -> bool {
    fault.as_mut().is_some_and(|f| f(at))
}
