//! # knnshap_runtime — plan, execute, checkpoint and resume sharded
//! valuation fleets
//!
//! `knnshap_core::sharding` (PR 4) made every additive estimator *splittable*:
//! a shard computes exact partial sums over a canonical item range and the
//! merge is bitwise-identical to the unsharded run. But "splittable" is not
//! "operable" — an operator still had to hand-craft one `knnshap shard`
//! invocation per range, babysit the processes, and re-run anything that
//! died. This crate is the missing layer: a **job-orchestration runtime**
//! that turns one job description into a supervised, restartable fleet.
//!
//! The moving parts, bottom to top:
//!
//! * [`spec`] — a versioned on-disk **job plan** (`KNNJOBPLAN`): datasets,
//!   estimator family, parameters, shard count, checkpoint granularity, and
//!   the job fingerprint everything downstream is cross-checked against.
//!   Written once by `knnshap shard-plan`, read by every worker and the
//!   supervisor.
//! * [`layout`] — the job directory (`plan` + `shards/` + `leases/` +
//!   `checkpoints/`) and crash-safe publication: files land under temporary
//!   names and are moved into place with **atomic renames**, so a reader
//!   never observes a half-written shard or checkpoint.
//! * [`queue`] — a coordination-free **file-based work queue** over a shared
//!   filesystem. A worker claims shard `i` by exclusively creating
//!   `leases/s<i>.lease` (`O_CREAT|O_EXCL` — first writer wins, every other
//!   claimant loses cleanly); heartbeats refresh the lease's mtime; the
//!   supervisor expires leases whose heartbeat went stale and the shard
//!   becomes claimable again.
//! * [`dispatch`] — loads the datasets named by the plan, **verifies the job
//!   fingerprint** (a plan pointed at edited CSVs fails loudly instead of
//!   merging garbage), and computes micro-chunk partials for all seven
//!   shardable estimator families through the `knnshap_core` shard entry
//!   points.
//! * [`worker`] — the claim → compute → checkpoint → publish loop. A shard
//!   is computed as a sequence of canonical micro-chunks; after each chunk
//!   the accumulated partial (a valid `KNNSHARD` file covering a prefix of
//!   the shard's range) is checkpointed, so a killed worker **resumes
//!   mid-shard** from the last checkpoint. A fault-injection hook lets tests
//!   kill workers between any two writes.
//! * [`supervisor`] — `run_job`: spawns N local workers (in-process threads
//!   or `knnshap worker` processes), expires stale leases, respawns workers
//!   while unclaimed work remains, and **auto-merges** the completed shard
//!   set through `merge_partials`, cross-checking the result against the
//!   plan's fingerprint.
//! * [`fleet`] — a small bounded process pool (used by the bench battery's
//!   `run_all` to fan experiments out across processes).
//!
//! ### Determinism contract
//!
//! Everything the runtime adds is *bookkeeping*; the numbers flow through
//! the exact accumulators and canonical shard ranges of
//! `knnshap_core::sharding`. Consequently the merged valuation is
//! **bitwise-identical to the unsharded run** for every worker count, every
//! thread count, every checkpoint granularity, every crash/resume/reassign
//! schedule — and every interleaving the scheduler happens to produce.
//! Shard files are canonical, so even a shard computed twice (a stale lease
//! reassigned while the original worker limps on) publishes the same bytes;
//! last-write-wins is harmless. `crates/runtime/tests/orchestration.rs`
//! holds the runtime to this across all seven estimator families, worker
//! counts {1, 2, 4}, and kill points between every checkpoint write.
//!
//! `docs/operations.md` is the operator's handbook (job-dir layout,
//! lease/checkpoint semantics, failure-mode table, worked example).
//!
//! ```no_run
//! use knnshap_runtime::spec::{JobMethod, JobSpec, TaskKind};
//! use knnshap_runtime::supervisor::{run_job, SupervisorOptions};
//! use knnshap_runtime::layout::JobDirs;
//!
//! let spec = JobSpec {
//!     task: TaskKind::Class,
//!     train: "train.csv".into(),
//!     test: "test.csv".into(),
//!     k: 3,
//!     weight: knnshap_knn::weights::WeightFn::Uniform,
//!     method: JobMethod::Exact,
//!     seed: 42,
//!     shards: 8,
//!     checkpoint_chunks: 4,
//! };
//! let dirs = JobDirs::new("job");
//! knnshap_runtime::spec::plan_job(&spec)?.save(&dirs)?;
//! let outcome = run_job(&dirs, SupervisorOptions::default())?;
//! println!("total value {}", outcome.values.total());
//! # Ok::<(), knnshap_runtime::JobError>(())
//! ```

pub mod dispatch;
pub mod fleet;
pub mod layout;
pub mod progress;
pub mod queue;
pub mod spec;
pub mod supervisor;
pub mod worker;

use knnshap_core::sharding::ShardError;

/// Everything that can go wrong planning, executing, or merging a job.
#[derive(Debug)]
pub enum JobError {
    /// Filesystem trouble, with the path it happened on.
    Io(String, std::io::Error),
    /// Dataset file contents (CSV parse, dimension mismatch…).
    Dataset(String),
    /// A plan file that does not parse or carries an unsupported version.
    Plan(String),
    /// A spec that names an impossible job (bad combos, zero shards…).
    Spec(String),
    /// The datasets on disk no longer match the plan's job fingerprint.
    FingerprintMismatch { expected: u64, found: u64 },
    /// Shard-file or merge validation failures.
    Shard(ShardError),
    /// A worker hit an injected fault (tests) or unrecoverable state.
    Crashed(String),
    /// The supervisor ran out of its spawn budget with work outstanding.
    Workers(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Io(path, e) => write!(f, "{path}: {e}"),
            JobError::Dataset(m) => write!(f, "dataset error: {m}"),
            JobError::Plan(m) => write!(f, "job plan error: {m}"),
            JobError::Spec(m) => write!(f, "job spec error: {m}"),
            JobError::FingerprintMismatch { expected, found } => write!(
                f,
                "job fingerprint mismatch: the plan was built for {expected:016x} but the \
                 datasets on disk produce {found:016x} — the train/test files changed after \
                 `shard-plan` (re-plan, or restore the original files)"
            ),
            JobError::Shard(e) => write!(f, "{e}"),
            JobError::Crashed(m) => write!(f, "worker crashed: {m}"),
            JobError::Workers(m) => write!(f, "supervisor error: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<ShardError> for JobError {
    fn from(e: ShardError) -> Self {
        JobError::Shard(e)
    }
}

/// Attach a path to an `io::Error` (the bare error never names the file).
pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> JobError {
    JobError::Io(path.display().to_string(), e)
}
