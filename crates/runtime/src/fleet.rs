//! A small bounded process pool: run N commands, at most `max_concurrent`
//! at a time, collecting each one's output — the mechanism the bench
//! battery's `run_all` uses to fan the `paper`-scale experiments out across
//! processes (each experiment is independent, so process isolation costs
//! nothing and buys crash containment plus real parallelism on multi-core
//! runners).
//!
//! Results come back **in input order**, whatever order the children
//! finished in, so callers can interleave deterministic reporting with
//! nondeterministic scheduling.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Mutex;

/// One command to run.
#[derive(Debug, Clone)]
pub struct CommandSpec {
    /// Label shown in reports (e.g. the experiment name).
    pub label: String,
    pub program: PathBuf,
    pub args: Vec<String>,
    /// Extra environment for the child (inherits the parent's otherwise).
    pub envs: Vec<(String, String)>,
}

/// One command's outcome.
#[derive(Debug)]
pub struct CommandResult {
    pub label: String,
    /// Process exit success.
    pub ok: bool,
    pub stdout: String,
    pub stderr: String,
    /// Wall-clock seconds the child ran.
    pub secs: f64,
}

/// Run every command, bounded by `max_concurrent` simultaneous children.
/// Each slot thread runs its child via `Command::output()` (which drains
/// stdout/stderr concurrently, so large outputs cannot deadlock the pipe).
/// Returns results in input order. A command that fails to *spawn* is
/// reported as `ok: false` with the error text in `stderr`.
pub fn run_fleet(cmds: Vec<CommandSpec>, max_concurrent: usize) -> Vec<CommandResult> {
    let n = cmds.len();
    let slots = max_concurrent.max(1).min(n.max(1));
    let queue: Mutex<VecDeque<(usize, CommandSpec)>> =
        Mutex::new(cmds.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<CommandResult>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..slots {
            scope.spawn(|| loop {
                let Some((idx, cmd)) = queue.lock().expect("fleet queue").pop_front() else {
                    return;
                };
                let started = std::time::Instant::now();
                let out = std::process::Command::new(&cmd.program)
                    .args(&cmd.args)
                    .envs(cmd.envs.iter().map(|(k, v)| (k, v)))
                    .output();
                let secs = started.elapsed().as_secs_f64();
                let result = match out {
                    Ok(o) => CommandResult {
                        label: cmd.label.clone(),
                        ok: o.status.success(),
                        stdout: String::from_utf8_lossy(&o.stdout).into_owned(),
                        stderr: String::from_utf8_lossy(&o.stderr).into_owned(),
                        secs,
                    },
                    Err(e) => CommandResult {
                        label: cmd.label.clone(),
                        ok: false,
                        stdout: String::new(),
                        stderr: format!("failed to spawn {}: {e}", cmd.program.display()),
                        secs,
                    },
                };
                results.lock().expect("fleet results")[idx] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .expect("fleet results")
        .into_iter()
        .map(|r| r.expect("every queued command produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(label: &str, script: &str) -> CommandSpec {
        CommandSpec {
            label: label.into(),
            program: "/bin/sh".into(),
            args: vec!["-c".into(), script.into()],
            envs: vec![],
        }
    }

    #[test]
    fn results_come_back_in_input_order_with_output() {
        let cmds = vec![
            sh("slowish", "sleep 0.05; echo first"),
            sh("quick", "echo second"),
            sh("failing", "echo oops >&2; exit 3"),
        ];
        let rs = run_fleet(cmds, 2);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].label, "slowish");
        assert!(rs[0].ok && rs[0].stdout.contains("first"));
        assert!(rs[1].ok && rs[1].stdout.contains("second"));
        assert!(!rs[2].ok && rs[2].stderr.contains("oops"));
    }

    #[test]
    fn env_reaches_the_child_and_spawn_failures_report() {
        let mut cmd = sh("env", "echo $KNNSHAP_FLEET_TEST");
        cmd.envs.push(("KNNSHAP_FLEET_TEST".into(), "42".into()));
        let rs = run_fleet(vec![cmd], 1);
        assert!(rs[0].stdout.contains("42"));

        let rs = run_fleet(
            vec![CommandSpec {
                label: "missing".into(),
                program: "/nonexistent/knnshap-fleet".into(),
                args: vec![],
                envs: vec![],
            }],
            4,
        );
        assert!(!rs[0].ok);
        assert!(rs[0].stderr.contains("failed to spawn"));
    }
}
