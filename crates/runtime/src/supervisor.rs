//! The supervisor: spawn local workers, expire stale leases, respawn while
//! unclaimed work remains, auto-merge on completion.
//!
//! `run_job` is what `knnshap run-job` executes. It owns no computation
//! itself; it watches the job directory (the single source of truth — the
//! same one remote workers on a shared filesystem would mutate), keeps the
//! configured number of local workers alive while any *claimable* shard
//! remains, and reclaims shards whose worker stopped heartbeating. When
//! every shard file exists it validates and merges them
//! (`merge_partials`), cross-checking the merged job identity against the
//! plan.
//!
//! Crash-tolerance invariants worth internalizing:
//!
//! * a worker death loses at most one micro-chunk of work (the rest is in
//!   its shard checkpoint, which its successor adopts);
//! * a *slow* worker wrongly presumed dead is harmless — the reassigned
//!   shard publishes canonical bytes, so whoever finishes last rewrites the
//!   identical file;
//! * the spawn budget ([`SupervisorOptions::max_spawns`]) bounds
//!   crash-loops: a job whose workers keep dying fails loudly with
//!   [`JobError::Workers`] instead of spinning forever.

use crate::layout::JobDirs;
use crate::queue;
use crate::spec::JobPlan;
use crate::worker::{run_worker, FaultHook, WorkerOptions, WorkerReport};
use crate::JobError;
use knnshap_core::sharding::{merge_partials, MergedValuation};
use std::path::PathBuf;
use std::time::Duration;

/// How the supervisor launches a worker.
pub enum Launcher {
    /// Spawn worker loops on threads of this process. `fault_factory`, if
    /// set, is consulted with the spawn sequence number and may hand the
    /// worker a fault-injection hook (tests of the respawn path).
    InProcess {
        fault_factory: Option<Box<dyn Fn(usize) -> Option<FaultHook> + Send + Sync>>,
    },
    /// Spawn `program args…` as a child process per worker (the CLI passes
    /// its own binary with `worker --job <dir>`). The child inherits the
    /// environment (`KNNSHAP_THREADS` included).
    Command { program: PathBuf, args: Vec<String> },
}

impl Default for Launcher {
    fn default() -> Self {
        Launcher::InProcess {
            fault_factory: None,
        }
    }
}

/// Supervisor configuration.
pub struct SupervisorOptions {
    /// Target number of live local workers.
    pub workers: usize,
    /// Threads per worker (0 ⇒ `KNNSHAP_THREADS` / all cores).
    pub threads: usize,
    /// A lease whose heartbeat is older than this is presumed dead.
    pub lease_ttl: Duration,
    /// Poll cadence of the watch loop.
    pub poll: Duration,
    /// Total spawn budget (initial workers + respawns after crashes).
    pub max_spawns: usize,
    pub launcher: Launcher,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            threads: 0,
            lease_ttl: Duration::from_secs(30),
            poll: Duration::from_millis(50),
            max_spawns: 16,
            launcher: Launcher::default(),
        }
    }
}

/// The merged result plus orchestration accounting.
#[derive(Debug)]
pub struct JobOutcome {
    /// The finalized valuation — bitwise-identical to the unsharded run.
    pub values: knnshap_core::ShapleyValues,
    /// Items the job consumed (test points or stream budget).
    pub items: u64,
    /// Workers spawned over the job's lifetime.
    pub spawned: usize,
    /// Stale leases expired (shards reassigned after a presumed death).
    pub reassigned: usize,
    /// Worker deaths observed (crashes or kills; clean exits not counted).
    pub worker_failures: usize,
}

enum Handle {
    Thread(std::thread::JoinHandle<Result<WorkerReport, JobError>>),
    Process(std::process::Child),
}

impl Handle {
    fn is_running(&mut self) -> bool {
        match self {
            Handle::Thread(h) => !h.is_finished(),
            Handle::Process(c) => matches!(c.try_wait(), Ok(None)),
        }
    }

    /// Join a finished handle; `Ok(true)` means the worker ended cleanly.
    fn reap(self) -> bool {
        match self {
            Handle::Thread(h) => matches!(h.join(), Ok(Ok(_))),
            Handle::Process(mut c) => c.wait().map(|s| s.success()).unwrap_or(false),
        }
    }
}

/// Orchestrate a planned job to completion and merge it. See module docs.
pub fn run_job(dirs: &JobDirs, opts: SupervisorOptions) -> Result<JobOutcome, JobError> {
    let plan = JobPlan::load(dirs)?;
    let shards = plan.spec.shards;
    let workers = opts.workers.max(1);
    let mut spawned = 0usize;
    let mut reassigned = 0usize;
    let mut failures = 0usize;
    let mut handles: Vec<Handle> = Vec::new();
    // Wait on the event stream instead of busy-polling: in-process workers
    // wake us the instant they claim/checkpoint/publish; `opts.poll` bounds
    // the wait for out-of-process workers (see crate::progress).
    let mut seen_gen = crate::progress::generation();

    let spawn = |seq: usize| -> Result<Handle, JobError> {
        match &opts.launcher {
            Launcher::InProcess { fault_factory } => {
                let fault = fault_factory.as_ref().and_then(|f| f(seq));
                let dirs = dirs.clone();
                let wopts = WorkerOptions {
                    worker_id: format!("inproc-{seq}"),
                    threads: opts.threads,
                    fault,
                    graph: None,
                };
                Ok(Handle::Thread(std::thread::spawn(move || {
                    run_worker(&dirs, wopts)
                })))
            }
            Launcher::Command { program, args } => std::process::Command::new(program)
                .args(args)
                .spawn()
                .map(Handle::Process)
                .map_err(|e| crate::io_err(program, e)),
        }
    };

    loop {
        // Reap finished workers (counting unclean deaths).
        let mut still = Vec::with_capacity(handles.len());
        for mut h in handles {
            if h.is_running() {
                still.push(h);
            } else if !h.reap() {
                failures += 1;
            }
        }
        handles = still;

        let missing = dirs.missing_shards(shards);
        if missing.is_empty() {
            break;
        }
        let expired = queue::expire_stale(dirs, shards, opts.lease_ttl)
            .map_err(|e| crate::io_err(dirs.root(), e))?;
        for &shard in &expired {
            crate::progress::append_event(dirs, "reassign", &[("shard", shard.into())]);
        }
        reassigned += expired.len();

        // A shard is claimable iff unfinished and unleased. Keep the worker
        // pool at strength while claimable work exists; when everything
        // outstanding is leased, live workers are (presumably) on it and
        // dead workers' leases will age out above.
        let claimable = missing.iter().any(|&i| !dirs.lease_path(i).exists());
        if claimable {
            while handles.len() < workers {
                if spawned >= opts.max_spawns {
                    if handles.is_empty() {
                        return Err(JobError::Workers(format!(
                            "spawn budget of {} workers exhausted with {} shard(s) \
                             outstanding ({} worker deaths observed) — the job is \
                             crashing faster than it progresses",
                            opts.max_spawns,
                            missing.len(),
                            failures,
                        )));
                    }
                    break;
                }
                handles.push(spawn(spawned)?);
                crate::progress::append_event(
                    dirs,
                    "spawn",
                    &[("seq", spawned.into()), ("workers", workers.into())],
                );
                spawned += 1;
            }
        }
        seen_gen = crate::progress::wait_for_event(seen_gen, opts.poll);
    }

    // All shards are published; workers exit on their own once nothing is
    // claimable. Reap them before merging so the accounting is complete.
    for mut h in handles.drain(..) {
        while h.is_running() {
            seen_gen = crate::progress::wait_for_event(seen_gen, opts.poll);
        }
        if !h.reap() {
            failures += 1;
        }
    }

    let merged = merge_job(dirs, &plan)?;
    crate::progress::append_event(
        dirs,
        "job_done",
        &[
            ("shards", shards.into()),
            ("spawned", spawned.into()),
            ("reassigned", reassigned.into()),
        ],
    );
    Ok(JobOutcome {
        values: merged.values,
        items: merged.items,
        spawned,
        reassigned,
        worker_failures: failures,
    })
}

/// Validate and merge a completed job directory against its plan. Exposed
/// separately so tests (and operators with remotely-computed shards) can
/// merge without spawning anything.
pub fn merge_job(dirs: &JobDirs, plan: &JobPlan) -> Result<MergedValuation, JobError> {
    // Re-verify the datasets' *contents* before finalizing: when every
    // shard is already published, a merge-only `run_job` spawns no worker,
    // so this is the only place that catches CSVs edited after planning —
    // without it the report would pair stale values with drifted labels.
    // Dataset-content fingerprints make this O(dataset), not O(N · N_test).
    let data = crate::dispatch::load_data(&plan.spec)?;
    let (_, fingerprint) = crate::dispatch::job_identity(&plan.spec, &data);
    if fingerprint != plan.fingerprint {
        return Err(JobError::FingerprintMismatch {
            expected: plan.fingerprint,
            found: fingerprint,
        });
    }
    let parts = queue::read_all_shards(dirs, plan.spec.shards)?;
    if let Some(p) = parts.first() {
        if p.meta.fingerprint != plan.fingerprint || p.meta.kind != plan.kind {
            return Err(JobError::Plan(format!(
                "shard files carry {} job {:016x} but the plan says {} job {:016x} — \
                 the job directory holds another job's shards",
                p.meta.kind.name(),
                p.meta.fingerprint,
                plan.kind.name(),
                plan.fingerprint,
            )));
        }
    }
    Ok(merge_partials(&parts)?)
}
