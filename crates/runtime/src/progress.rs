//! The job directory's append-only event stream: `events.jsonl`.
//!
//! Every orchestration milestone — a lease claimed, a chunk checkpointed, a
//! shard published, a worker spawned, a stale lease reassigned, the job
//! merged — appends one JSON line (the schema of
//! [`knnshap_obs::json::validate_event_line`]) to `events.jsonl` in the job
//! root. Two consumers exist:
//!
//! * the **supervisor**, which blocks on the in-process [`wait_for_event`]
//!   notifier instead of busy-polling the filesystem — a worker thread's
//!   append wakes it immediately, and the bounded timeout covers workers in
//!   *other* processes (whose appends cannot signal this process's condvar);
//! * **`knnshap watch`** / `run-job --watch`, which tail the file with an
//!   [`EventCursor`] and render live shard × chunk progress.
//!
//! ### Why this is not gated behind `KNNSHAP_LOG`
//!
//! The stream is part of the job directory's operational surface (watchers
//! and the supervisor's wakeup depend on it), so it is always written —
//! unlike the process-wide telemetry of `knnshap_obs`, which stays off by
//! default. It remains strictly *observational*: no runtime decision reads
//! it back, write failures are swallowed (a full disk degrades the watch
//! experience, never the valuation), and the determinism battery holds the
//! merged bytes identical with and without a watcher attached.
//!
//! Appends use a single `O_APPEND` write per line. POSIX makes such writes
//! atomic with respect to one another for reasonable line lengths, so
//! concurrent workers interleave whole lines, never bytes.

use crate::layout::JobDirs;
use knnshap_obs::event::render_line;
use knnshap_obs::FieldValue;
use std::io::Write;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// In-process event notifier: a generation counter bumped on every local
/// [`append_event`], plus a condvar for blocked waiters.
static GEN: Mutex<u64> = Mutex::new(0);
static GEN_CV: Condvar = Condvar::new();

fn lock_gen() -> std::sync::MutexGuard<'static, u64> {
    GEN.lock().unwrap_or_else(|e| e.into_inner())
}

/// The current notifier generation. Pass it to [`wait_for_event`] to block
/// until the *next* local append.
pub fn generation() -> u64 {
    *lock_gen()
}

/// Block until a local append bumps the generation past `seen`, or until
/// `timeout` elapses (covering appends from other processes, which cannot
/// signal this condvar). Returns the generation to wait on next.
pub fn wait_for_event(seen: u64, timeout: Duration) -> u64 {
    let mut gen = lock_gen();
    let deadline = std::time::Instant::now() + timeout;
    while *gen == seen {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            break;
        }
        let (g, res) = GEN_CV
            .wait_timeout(gen, left)
            .unwrap_or_else(|e| e.into_inner());
        gen = g;
        if res.timed_out() {
            break;
        }
    }
    *gen
}

/// Append one event line to the job's `events.jsonl` and wake local
/// waiters. Failures are deliberately swallowed — the event stream is
/// observational, and the supervisor's bounded-timeout wait does not depend
/// on it for correctness.
pub fn append_event(dirs: &JobDirs, ev: &str, fields: &[(&str, FieldValue)]) {
    let mut line = render_line(knnshap_obs::Level::Info, "job", ev, fields);
    line.push('\n');
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dirs.events_path())
        .and_then(|mut f| f.write_all(line.as_bytes()));
    let mut gen = lock_gen();
    *gen += 1;
    GEN_CV.notify_all();
}

/// A byte-offset tail over `events.jsonl`: each [`read_new`](Self::read_new)
/// returns the complete lines appended since the last call. Tolerates the
/// file not existing yet (a watcher may start before the first worker).
pub struct EventCursor {
    path: std::path::PathBuf,
    offset: u64,
}

impl EventCursor {
    pub fn new(dirs: &JobDirs) -> Self {
        Self {
            path: dirs.events_path(),
            offset: 0,
        }
    }

    /// Complete lines appended since the previous call. A trailing partial
    /// line (an append racing this read) stays buffered for the next call.
    pub fn read_new(&mut self) -> Vec<String> {
        use std::io::{Read, Seek, SeekFrom};
        let Ok(mut f) = std::fs::File::open(&self.path) else {
            return Vec::new();
        };
        if f.seek(SeekFrom::Start(self.offset)).is_err() {
            return Vec::new();
        }
        let mut buf = String::new();
        if f.read_to_string(&mut buf).is_err() {
            return Vec::new();
        }
        let complete = match buf.rfind('\n') {
            Some(i) => i + 1,
            None => return Vec::new(),
        };
        self.offset += complete as u64;
        buf[..complete].lines().map(|l| l.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_job(tag: &str) -> JobDirs {
        let root: PathBuf =
            std::env::temp_dir().join(format!("knnshap-progress-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let dirs = JobDirs::new(root);
        dirs.create().unwrap();
        dirs
    }

    #[test]
    fn append_and_cursor_round_trip_valid_jsonl() {
        let dirs = tmp_job("roundtrip");
        let mut cur = EventCursor::new(&dirs);
        assert!(cur.read_new().is_empty(), "no file yet");
        append_event(&dirs, "claim", &[("shard", 3usize.into())]);
        append_event(
            &dirs,
            "chunk",
            &[("shard", 3usize.into()), ("chunk", 0usize.into())],
        );
        let lines = cur.read_new();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            knnshap_obs::json::validate_event_line(l).unwrap();
        }
        let v = knnshap_obs::json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("ev").and_then(|x| x.as_str()), Some("claim"));
        assert_eq!(v.get("shard").and_then(|x| x.as_f64()), Some(3.0));
        assert!(cur.read_new().is_empty(), "cursor advanced past both lines");
        std::fs::remove_dir_all(dirs.root()).ok();
    }

    #[test]
    fn wait_for_event_wakes_on_local_append() {
        let dirs = tmp_job("wake");
        let seen = generation();
        let t = std::thread::spawn(move || wait_for_event(seen, Duration::from_secs(10)));
        // Give the waiter a moment to block, then append.
        std::thread::sleep(Duration::from_millis(20));
        append_event(&dirs, "spawn", &[("seq", 0usize.into())]);
        let next = t.join().unwrap();
        assert!(next > seen, "append must bump the generation");
        std::fs::remove_dir_all(dirs.root()).ok();
    }

    #[test]
    fn wait_for_event_times_out_without_appends() {
        let seen = generation();
        let start = std::time::Instant::now();
        wait_for_event(seen, Duration::from_millis(30));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn cursor_holds_back_partial_lines() {
        let dirs = tmp_job("partial");
        let mut cur = EventCursor::new(&dirs);
        std::fs::write(
            dirs.events_path(),
            b"{\"ts\":1,\"lvl\":\"info\",\"target\":\"job\",\"ev\":\"x\"}\n{\"ts\":2",
        )
        .unwrap();
        assert_eq!(cur.read_new().len(), 1);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dirs.events_path())
            .unwrap();
        f.write_all(b",\"lvl\":\"info\",\"target\":\"job\",\"ev\":\"y\"}\n")
            .unwrap();
        let lines = cur.read_new();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"ev\":\"y\""));
        std::fs::remove_dir_all(dirs.root()).ok();
    }
}
