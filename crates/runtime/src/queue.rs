//! The coordination-free file-based work queue: lease claims, heartbeats,
//! stale-lease expiry, and checkpoint/shard publication.
//!
//! ## Protocol
//!
//! * **Claim** — to work on shard `i`, a worker exclusively creates
//!   `leases/s<i>.lease` (`O_CREAT|O_EXCL`, [`try_claim`]). Creation is the
//!   atomic test-and-set every POSIX (and NFSv4/SMB) filesystem provides:
//!   exactly one claimant succeeds, all others get `AlreadyExists` and move
//!   on. No locks, no server, no shared memory.
//! * **Heartbeat** — while computing, the worker rewrites its lease after
//!   every micro-chunk ([`Lease::heartbeat`]), refreshing the file's mtime.
//! * **Expiry** — a lease whose mtime is older than the supervisor's TTL is
//!   presumed dead (worker killed, machine lost) and removed
//!   ([`expire_stale`]); the shard becomes claimable again. If the original
//!   worker was merely slow and finishes anyway, both workers publish the
//!   **same canonical bytes** — double computation wastes cycles, never
//!   correctness.
//! * **Publish** — completed shards and checkpoints are written with
//!   [`crate::layout::write_atomic`], so readers only ever see whole files.
//! * **Release** — finishing a shard removes its checkpoint, then its lease
//!   (in that order: a lease-less leftover checkpoint is harmless — it is
//!   validated before reuse — whereas a checkpoint-less lease would merely
//!   delay reassignment by one TTL).
//!
//! A worker that dies leaves its lease and last checkpoint behind; the
//! checkpoint is precisely what lets its successor **resume mid-shard**
//! ([`read_checkpoint`] + `ShardPartial::absorb_adjacent`).

use crate::layout::{write_atomic, JobDirs};
use knnshap_core::sharding::ShardPartial;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, SystemTime};

/// A successfully claimed shard. Dropping it does **not** release the claim
/// (a crashed worker must leave its lease behind for TTL-based recovery);
/// call [`release`](Self::release) on success.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    shard: usize,
    worker: String,
}

impl Lease {
    pub fn shard(&self) -> usize {
        self.shard
    }

    fn content(&self) -> String {
        format!("worker {}\npid {}\n", self.worker, std::process::id())
    }

    /// Refresh the lease's mtime so the supervisor keeps considering this
    /// worker alive. Rewrites the claim content; if the supervisor expired
    /// the lease in the meantime (slow worker), the write recreates it —
    /// harmless, because publication is idempotent.
    pub fn heartbeat(&self) -> std::io::Result<()> {
        std::fs::write(&self.path, self.content())
    }

    /// Release the claim (shard finished and published).
    pub fn release(self) -> std::io::Result<()> {
        std::fs::remove_file(&self.path)
    }
}

/// Try to claim shard `i`: atomically create its lease file. Returns
/// `Ok(None)` if another worker holds the claim.
pub fn try_claim(dirs: &JobDirs, shard: usize, worker: &str) -> std::io::Result<Option<Lease>> {
    let path = dirs.lease_path(shard);
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)
    {
        Ok(mut f) => {
            let lease = Lease {
                path,
                shard,
                worker: worker.to_string(),
            };
            f.write_all(lease.content().as_bytes())?;
            f.flush()?;
            Ok(Some(lease))
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
        Err(e) => Err(e),
    }
}

/// Age of shard `i`'s lease (time since last heartbeat), or `None` if no
/// lease exists.
pub fn lease_age(dirs: &JobDirs, shard: usize) -> Option<Duration> {
    let meta = std::fs::metadata(dirs.lease_path(shard)).ok()?;
    let mtime = meta.modified().ok()?;
    SystemTime::now().duration_since(mtime).ok()
}

/// Remove every lease on an *unfinished* shard whose heartbeat is older
/// than `ttl`, returning the reclaimed shard indices. Leases on finished
/// shards (worker died between publish and release) are removed regardless
/// of age — the work is already done.
pub fn expire_stale(dirs: &JobDirs, shards: usize, ttl: Duration) -> std::io::Result<Vec<usize>> {
    let mut reclaimed = Vec::new();
    for i in 0..shards {
        let path = dirs.lease_path(i);
        if !path.exists() {
            continue;
        }
        if dirs.shard_done(i) {
            std::fs::remove_file(&path).ok();
            continue;
        }
        if lease_age(dirs, i).is_some_and(|age| age > ttl) {
            // Remove; a concurrent remove by another supervisor is fine.
            std::fs::remove_file(&path).ok();
            reclaimed.push(i);
        }
    }
    Ok(reclaimed)
}

/// Atomically publish the finished partial of shard `i`.
pub fn publish_shard(dirs: &JobDirs, i: usize, part: &ShardPartial) -> std::io::Result<()> {
    write_atomic(&dirs.shard_path(i), &part.to_bytes())
}

/// Atomically write shard `i`'s mid-shard checkpoint.
pub fn write_checkpoint(dirs: &JobDirs, i: usize, part: &ShardPartial) -> std::io::Result<()> {
    write_atomic(&dirs.checkpoint_path(i), &part.to_bytes())
}

/// Read shard `i`'s checkpoint, if one exists and parses. A missing,
/// truncated or otherwise corrupt checkpoint returns `None` — the worker
/// falls back to recomputing the shard from its start, which is always
/// sound (just slower).
pub fn read_checkpoint(dirs: &JobDirs, i: usize) -> Option<ShardPartial> {
    let bytes = std::fs::read(dirs.checkpoint_path(i)).ok()?;
    ShardPartial::from_bytes(&bytes).ok()
}

/// Remove shard `i`'s checkpoint (after successful publication).
pub fn clear_checkpoint(dirs: &JobDirs, i: usize) {
    std::fs::remove_file(dirs.checkpoint_path(i)).ok();
}

/// Read and parse every published shard of the job, in shard order.
pub fn read_all_shards(
    dirs: &JobDirs,
    shards: usize,
) -> Result<Vec<ShardPartial>, crate::JobError> {
    let mut parts = Vec::with_capacity(shards);
    for i in 0..shards {
        let path = dirs.shard_path(i);
        let bytes = std::fs::read(&path).map_err(|e| crate::io_err(&path, e))?;
        parts.push(ShardPartial::from_bytes(&bytes)?);
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirs(tag: &str) -> JobDirs {
        let d = JobDirs::new(
            std::env::temp_dir().join(format!("knnshap-queue-{}-{tag}", std::process::id())),
        );
        d.create().unwrap();
        d
    }

    #[test]
    fn claim_is_exclusive_and_release_reopens() {
        let d = dirs("claim");
        let lease = try_claim(&d, 0, "a").unwrap().expect("first claim wins");
        // Double-claim rejection: the queue's core invariant.
        assert!(try_claim(&d, 0, "b").unwrap().is_none());
        // Other shards are unaffected.
        assert!(try_claim(&d, 1, "b").unwrap().is_some());
        lease.release().unwrap();
        assert!(try_claim(&d, 0, "b").unwrap().is_some());
        std::fs::remove_dir_all(d.root()).ok();
    }

    #[test]
    fn stale_leases_expire_fresh_ones_survive() {
        let d = dirs("stale");
        let lease = try_claim(&d, 0, "w").unwrap().unwrap();
        // Fresh lease: not expired.
        assert!(expire_stale(&d, 1, Duration::from_secs(60))
            .unwrap()
            .is_empty());
        // Age it artificially past the TTL.
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(d.lease_path(0))
            .unwrap();
        f.set_modified(SystemTime::now() - Duration::from_secs(120))
            .unwrap();
        assert_eq!(
            expire_stale(&d, 1, Duration::from_secs(60)).unwrap(),
            vec![0]
        );
        // The shard is claimable again. If the presumed-dead worker was
        // merely slow, its eventual release removes the successor's lease —
        // which at worst lets a third worker duplicate the shard; canonical
        // publication makes that wasteful, never wrong.
        assert!(try_claim(&d, 0, "w2").unwrap().is_some());
        assert!(lease.release().is_ok());
        assert!(try_claim(&d, 0, "w3").unwrap().is_some());
        std::fs::remove_dir_all(d.root()).ok();
    }

    #[test]
    fn heartbeat_refreshes_age() {
        let d = dirs("beat");
        let lease = try_claim(&d, 2, "w").unwrap().unwrap();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(d.lease_path(2))
            .unwrap();
        f.set_modified(SystemTime::now() - Duration::from_secs(300))
            .unwrap();
        assert!(lease_age(&d, 2).unwrap() > Duration::from_secs(200));
        lease.heartbeat().unwrap();
        assert!(lease_age(&d, 2).unwrap() < Duration::from_secs(200));
        std::fs::remove_dir_all(d.root()).ok();
    }

    #[test]
    fn finished_shards_lose_their_leases_regardless_of_age() {
        let d = dirs("done");
        let _lease = try_claim(&d, 0, "w").unwrap().unwrap();
        std::fs::write(d.shard_path(0), b"published").unwrap();
        // Fresh lease + published shard: cleaned up, not reported reclaimed.
        assert!(expire_stale(&d, 1, Duration::from_secs(60))
            .unwrap()
            .is_empty());
        assert!(!d.lease_path(0).exists());
        std::fs::remove_dir_all(d.root()).ok();
    }

    #[test]
    fn corrupt_checkpoints_read_as_none() {
        let d = dirs("ckpt");
        assert!(read_checkpoint(&d, 0).is_none());
        std::fs::write(d.checkpoint_path(0), b"garbage").unwrap();
        assert!(read_checkpoint(&d, 0).is_none());
        std::fs::remove_dir_all(d.root()).ok();
    }
}
