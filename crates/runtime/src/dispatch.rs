//! From plan to partial sums: load the datasets a plan names, verify the
//! job fingerprint against their *contents*, and compute micro-chunk
//! partials through the `knnshap_core` shard entry points — all seven
//! shardable estimator families behind one call.

use crate::spec::{JobMethod, JobPlan, JobSpec, TaskKind};
use crate::JobError;
use knnshap_core::mc::IncKnnUtility;
use knnshap_core::sharding::{ShardKind, ShardPartial, ShardSpec};
use knnshap_core::utility::KnnClassUtility;
use knnshap_datasets::{ClassDataset, RegDataset};
use knnshap_knn::graph::KnnGraph;
use knnshap_knn::weights::WeightFn;
use std::cell::OnceCell;

/// The datasets of one job, typed by task.
pub enum JobData {
    Class {
        train: ClassDataset,
        test: ClassDataset,
    },
    Reg {
        train: RegDataset,
        test: RegDataset,
    },
}

impl JobData {
    /// `(n_train, n_test)`.
    pub fn sizes(&self) -> (usize, usize) {
        match self {
            JobData::Class { train, test } => (train.len(), test.len()),
            JobData::Reg { train, test } => (train.len(), test.len()),
        }
    }
}

/// Load the CSVs a spec names, with the structural checks every consumer
/// needs (matching dimensions, non-empty test set).
pub fn load_data(spec: &JobSpec) -> Result<JobData, JobError> {
    let ds = |m: String| JobError::Dataset(m);
    let data = match spec.task {
        TaskKind::Class => JobData::Class {
            train: knnshap_datasets::io::load_class_csv(&spec.train)
                .map_err(|e| ds(format!("{}: {e}", spec.train.display())))?,
            test: knnshap_datasets::io::load_class_csv(&spec.test)
                .map_err(|e| ds(format!("{}: {e}", spec.test.display())))?,
        },
        TaskKind::Reg => JobData::Reg {
            train: knnshap_datasets::io::load_reg_csv(&spec.train)
                .map_err(|e| ds(format!("{}: {e}", spec.train.display())))?,
            test: knnshap_datasets::io::load_reg_csv(&spec.test)
                .map_err(|e| ds(format!("{}: {e}", spec.test.display())))?,
        },
    };
    let (train_dim, test_dim, n_test) = match &data {
        JobData::Class { train, test } => (train.dim(), test.dim(), test.len()),
        JobData::Reg { train, test } => (train.dim(), test.dim(), test.len()),
    };
    if train_dim != test_dim {
        return Err(ds(format!(
            "train has {train_dim} features but test has {test_dim}"
        )));
    }
    if n_test == 0 {
        return Err(ds("need at least one test point".into()));
    }
    Ok(data)
}

/// The `(kind, fingerprint)` identity of a job over its loaded data — the
/// same dataset-content fingerprints the shard entry points stamp into
/// every `KNNSHARD` header, so plan, workers and merge all agree.
pub fn job_identity(spec: &JobSpec, data: &JobData) -> (ShardKind, u64) {
    let uniform = matches!(spec.weight, WeightFn::Uniform);
    match (data, spec.method) {
        (JobData::Class { train, test }, JobMethod::Exact) if uniform => (
            ShardKind::ExactClass,
            knnshap_core::exact_unweighted::class_fingerprint(train, test, spec.k),
        ),
        (JobData::Class { train, test }, JobMethod::Exact) => (
            ShardKind::ExactClass,
            knnshap_core::exact_weighted::weighted_class_fingerprint(
                train,
                test,
                spec.k,
                spec.weight,
            ),
        ),
        (JobData::Reg { train, test }, JobMethod::Exact) => (
            ShardKind::ExactReg,
            knnshap_core::exact_regression::reg_fingerprint(train, test, spec.k),
        ),
        (JobData::Class { train, test }, JobMethod::Truncated { eps }) => (
            ShardKind::Truncated,
            knnshap_core::truncated::truncated_fingerprint(train, test, spec.k, eps),
        ),
        (JobData::Class { train, test }, JobMethod::McBaseline { .. }) => (
            ShardKind::McBaseline,
            knnshap_core::mc::mc_baseline_class_fingerprint(
                train,
                test,
                spec.k,
                spec.weight,
                spec.seed,
            ),
        ),
        (JobData::Class { train, test }, JobMethod::McImproved { .. }) => (
            ShardKind::McImproved,
            knnshap_core::mc::mc_improved_class_fingerprint(
                train,
                test,
                spec.k,
                spec.weight,
                spec.seed,
            ),
        ),
        (JobData::Class { train, test }, JobMethod::GroupTesting { .. }) => (
            ShardKind::GroupTesting,
            knnshap_core::group_testing::group_testing_class_fingerprint(
                train,
                test,
                spec.k,
                spec.weight,
                spec.seed,
            ),
        ),
        // validate() forbids every other combination.
        (JobData::Reg { .. }, m) => unreachable!("validated: reg × {}", m.name()),
    }
}

/// A plan bound to its verified datasets, ready to compute chunks.
///
/// Construction re-derives the job identity from the files actually read
/// and compares it to the plan's — a worker pointed at a drifted CSV (one
/// edited row is enough) refuses to compute instead of publishing partials
/// that would poison the merge. The stochastic utilities (distance
/// matrices) are built lazily, once per `PreparedJob`, and reused across
/// every chunk and shard the owning worker computes.
pub struct PreparedJob {
    plan: JobPlan,
    data: JobData,
    /// Precomputed KNN graph, fingerprint-checked against the loaded
    /// datasets by [`PreparedJob::attach_graph`]. When present, every chunk
    /// skips the distance pass; the published bytes are identical either way
    /// (the graph stores the same bitwise distances the kernel produces).
    graph: Option<KnnGraph>,
    class_util: OnceCell<KnnClassUtility>,
    inc_util: OnceCell<IncKnnUtility>,
}

impl PreparedJob {
    /// Bind `plan` to its datasets, verifying the fingerprint.
    pub fn from_plan(plan: JobPlan) -> Result<Self, JobError> {
        plan.spec.validate()?;
        let data = load_data(&plan.spec)?;
        // Re-derive the identity from the files actually read; comparing the
        // whole identity also catches a hand-edited plan file.
        let (kind, fingerprint) = job_identity(&plan.spec, &data);
        if fingerprint != plan.fingerprint {
            return Err(JobError::FingerprintMismatch {
                expected: plan.fingerprint,
                found: fingerprint,
            });
        }
        let (n_train, n_test) = data.sizes();
        let total_items = match plan.spec.method {
            JobMethod::Exact | JobMethod::Truncated { .. } => n_test,
            JobMethod::McBaseline { perms } | JobMethod::McImproved { perms } => perms,
            JobMethod::GroupTesting { tests } => tests,
        };
        if kind != plan.kind
            || n_train as u64 != plan.n_train
            || total_items as u64 != plan.total_items
        {
            return Err(JobError::Plan(format!(
                "plan disagrees with its spec: derived {} / {} train / {} items, plan says \
                 {} / {} train / {} items",
                kind.name(),
                n_train,
                total_items,
                plan.kind.name(),
                plan.n_train,
                plan.total_items,
            )));
        }
        Ok(Self {
            plan,
            data,
            graph: None,
            class_util: OnceCell::new(),
            inc_util: OnceCell::new(),
        })
    }

    /// Load the plan from a job directory and bind it.
    pub fn load(dirs: &crate::layout::JobDirs) -> Result<Self, JobError> {
        Self::from_plan(JobPlan::load(dirs)?)
    }

    /// Attach a precomputed KNN graph. The graph's dataset-content
    /// fingerprints must match the datasets this job actually loaded — a
    /// graph built from drifted CSVs is refused here, before any chunk is
    /// computed, for the same reason `from_plan` verifies the job
    /// fingerprint.
    pub fn attach_graph(&mut self, graph: KnnGraph) -> Result<(), JobError> {
        let (train_x, test_x) = match &self.data {
            JobData::Class { train, test } => (&train.x, &test.x),
            JobData::Reg { train, test } => (&train.x, &test.x),
        };
        graph
            .validate_against(train_x, test_x)
            .map_err(|e| JobError::Dataset(format!("precomputed graph rejected: {e}")))?;
        self.graph = Some(graph);
        Ok(())
    }

    pub fn plan(&self) -> &JobPlan {
        &self.plan
    }

    fn class_data(&self) -> (&ClassDataset, &ClassDataset) {
        match &self.data {
            JobData::Class { train, test } => (train, test),
            JobData::Reg { .. } => unreachable!("validated: class method on reg data"),
        }
    }

    fn class_util(&self) -> &KnnClassUtility {
        self.class_util.get_or_init(|| {
            let (train, test) = self.class_data();
            match &self.graph {
                Some(g) => KnnClassUtility::from_graph(
                    train,
                    test,
                    self.plan.spec.k,
                    self.plan.spec.weight,
                    g,
                ),
                None => KnnClassUtility::new(train, test, self.plan.spec.k, self.plan.spec.weight),
            }
        })
    }

    fn inc_util(&self) -> &IncKnnUtility {
        self.inc_util.get_or_init(|| {
            let (train, test) = self.class_data();
            match &self.graph {
                Some(g) => IncKnnUtility::classification_from_graph(
                    train,
                    test,
                    self.plan.spec.k,
                    self.plan.spec.weight,
                    g,
                ),
                None => IncKnnUtility::classification(
                    train,
                    test,
                    self.plan.spec.k,
                    self.plan.spec.weight,
                ),
            }
        })
    }

    /// Compute the partial of one canonical chunk (`spec` indexes the
    /// micro-partition — or the shard partition itself when
    /// `checkpoint_chunks == 1`). Pure: a function of the job and the chunk
    /// range only, per the `knnshap_core::sharding` determinism contract.
    pub fn compute_chunk(&self, chunk: ShardSpec, threads: usize) -> ShardPartial {
        let s = &self.plan.spec;
        let uniform = matches!(s.weight, WeightFn::Uniform);
        match (&self.data, s.method) {
            (JobData::Class { train, test }, JobMethod::Exact) if uniform => match &self.graph {
                Some(g) => knnshap_core::exact_unweighted::knn_class_shapley_graph_shard(
                    train, test, s.k, g, chunk, threads,
                ),
                None => knnshap_core::exact_unweighted::knn_class_shapley_shard(
                    train, test, s.k, chunk, threads,
                ),
            },
            (JobData::Class { train, test }, JobMethod::Exact) => match &self.graph {
                Some(g) => knnshap_core::exact_weighted::weighted_knn_class_shapley_graph_shard(
                    train, test, s.k, s.weight, g, chunk, threads,
                ),
                None => knnshap_core::exact_weighted::weighted_knn_class_shapley_shard(
                    train, test, s.k, s.weight, chunk, threads,
                ),
            },
            (JobData::Reg { train, test }, JobMethod::Exact) => match &self.graph {
                Some(g) => knnshap_core::exact_regression::knn_reg_shapley_graph_shard(
                    train, test, s.k, g, chunk, threads,
                ),
                None => knnshap_core::exact_regression::knn_reg_shapley_shard(
                    train, test, s.k, chunk, threads,
                ),
            },
            (JobData::Class { train, test }, JobMethod::Truncated { eps }) => match &self.graph {
                Some(g) => knnshap_core::truncated::truncated_class_shapley_graph_shard(
                    train, test, s.k, eps, g, chunk, threads,
                ),
                None => knnshap_core::truncated::truncated_class_shapley_shard(
                    train, test, s.k, eps, chunk, threads,
                ),
            },
            (JobData::Class { .. }, JobMethod::McBaseline { perms }) => {
                knnshap_core::mc::mc_shapley_baseline_shard(
                    self.class_util(),
                    perms,
                    s.seed,
                    chunk,
                    threads,
                )
            }
            (JobData::Class { .. }, JobMethod::McImproved { perms }) => {
                knnshap_core::mc::mc_shapley_improved_shard(
                    self.inc_util(),
                    perms,
                    s.seed,
                    chunk,
                    threads,
                )
            }
            (JobData::Class { .. }, JobMethod::GroupTesting { tests }) => {
                knnshap_core::group_testing::group_testing_shapley_shard(
                    self.class_util(),
                    tests,
                    s.seed,
                    chunk,
                    threads,
                )
            }
            (JobData::Reg { .. }, m) => unreachable!("validated: reg × {}", m.name()),
        }
    }
}
