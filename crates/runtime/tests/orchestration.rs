//! End-to-end orchestration battery: every shardable estimator family, run
//! through plan → fleet → auto-merge, must be **bitwise-identical** to the
//! unsharded estimator — at worker counts {1, 2, 4}, after crashes at every
//! kill point between checkpoint writes, after lease-expiry reassignment,
//! and with corrupt or foreign checkpoints lying around.
//!
//! CI replays this suite under `KNNSHAP_THREADS=1` and `=8`, extending the
//! guarantee across thread counts.

use knnshap_core::mc::{IncKnnUtility, StoppingRule};
use knnshap_core::sharding::ShardKind;
use knnshap_core::utility::KnnClassUtility;
use knnshap_core::ShapleyValues;
use knnshap_datasets::synth::blobs::{self, BlobConfig};
use knnshap_datasets::synth::regression::{self, RegressionConfig};
use knnshap_knn::weights::WeightFn;
use knnshap_runtime::layout::JobDirs;
use knnshap_runtime::queue;
use knnshap_runtime::spec::{plan_job, JobMethod, JobSpec, TaskKind};
use knnshap_runtime::supervisor::{merge_job, run_job, Launcher, SupervisorOptions};
use knnshap_runtime::worker::{run_worker, FaultPoint, WorkerOptions};
use knnshap_runtime::JobError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const K: usize = 2;
const SEED: u64 = 9;
const PERMS: usize = 30;
const GT_TESTS: usize = 40;
const WEIGHT: WeightFn = WeightFn::Exponential { beta: 0.7 };

/// A scratch workspace holding the CSVs and job dirs of one test.
struct Workspace {
    root: PathBuf,
}

impl Workspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("knnshap-orch-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn class_csvs(&self) -> (PathBuf, PathBuf) {
        let cfg = BlobConfig {
            n: 36,
            dim: 3,
            n_classes: 2,
            cluster_std: 0.6,
            center_scale: 2.5,
            seed: 12,
        };
        let train = blobs::generate(&cfg);
        let test = blobs::queries(&cfg, 7, 5);
        let (t, q) = (self.root.join("train.csv"), self.root.join("test.csv"));
        knnshap_datasets::io::save_class_csv(&t, &train).unwrap();
        knnshap_datasets::io::save_class_csv(&q, &test).unwrap();
        (t, q)
    }

    fn reg_csvs(&self) -> (PathBuf, PathBuf) {
        let cfg = RegressionConfig {
            n: 30,
            dim: 2,
            ..Default::default()
        };
        let train = regression::generate(&cfg);
        let test = regression::queries(&cfg, 5);
        let (t, q) = (self.root.join("rtrain.csv"), self.root.join("rtest.csv"));
        knnshap_datasets::io::save_reg_csv(&t, &train).unwrap();
        knnshap_datasets::io::save_reg_csv(&q, &test).unwrap();
        (t, q)
    }

    fn job_dirs(&self, name: &str) -> JobDirs {
        JobDirs::new(self.root.join(name))
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

/// The seven shardable families as job specs (paths filled by caller).
fn families(ws: &Workspace) -> Vec<(&'static str, JobSpec)> {
    let (ct, cq) = ws.class_csvs();
    let (rt, rq) = ws.reg_csvs();
    let class = |method, weight| JobSpec {
        task: TaskKind::Class,
        train: ct.clone(),
        test: cq.clone(),
        k: K,
        weight,
        method,
        seed: SEED,
        shards: 5,
        checkpoint_chunks: 2,
    };
    vec![
        ("exact-class", class(JobMethod::Exact, WeightFn::Uniform)),
        ("exact-weighted", class(JobMethod::Exact, WEIGHT)),
        (
            "exact-reg",
            JobSpec {
                task: TaskKind::Reg,
                train: rt,
                test: rq,
                weight: WeightFn::Uniform,
                ..class(JobMethod::Exact, WeightFn::Uniform)
            },
        ),
        (
            "truncated",
            class(JobMethod::Truncated { eps: 0.2 }, WeightFn::Uniform),
        ),
        (
            "mc-baseline",
            class(JobMethod::McBaseline { perms: PERMS }, WeightFn::Uniform),
        ),
        (
            "mc-improved",
            class(JobMethod::McImproved { perms: PERMS }, WEIGHT),
        ),
        (
            "group-testing",
            class(
                JobMethod::GroupTesting { tests: GT_TESTS },
                WeightFn::Uniform,
            ),
        ),
    ]
}

/// The unsharded reference for a family, computed straight through core.
fn reference(spec: &JobSpec) -> ShapleyValues {
    let threads = knnshap_parallel::current_threads();
    match spec.task {
        TaskKind::Reg => {
            let train = knnshap_datasets::io::load_reg_csv(&spec.train).unwrap();
            let test = knnshap_datasets::io::load_reg_csv(&spec.test).unwrap();
            knnshap_core::exact_regression::knn_reg_shapley_with_threads(
                &train, &test, spec.k, threads,
            )
        }
        TaskKind::Class => {
            let train = knnshap_datasets::io::load_class_csv(&spec.train).unwrap();
            let test = knnshap_datasets::io::load_class_csv(&spec.test).unwrap();
            match spec.method {
                JobMethod::Exact => match spec.weight {
                    WeightFn::Uniform => {
                        knnshap_core::exact_unweighted::knn_class_shapley_with_threads(
                            &train, &test, spec.k, threads,
                        )
                    }
                    w => knnshap_core::exact_weighted::weighted_knn_class_shapley(
                        &train, &test, spec.k, w, threads,
                    ),
                },
                JobMethod::Truncated { eps } => {
                    knnshap_core::truncated::truncated_class_shapley_with_threads(
                        &train, &test, spec.k, eps, threads,
                    )
                }
                JobMethod::McBaseline { perms } => {
                    let u = KnnClassUtility::new(&train, &test, spec.k, spec.weight);
                    knnshap_core::mc::mc_shapley_baseline(
                        &u,
                        StoppingRule::Fixed(perms),
                        spec.seed,
                        None,
                    )
                    .values
                }
                JobMethod::McImproved { perms } => {
                    let mut u = IncKnnUtility::classification(&train, &test, spec.k, spec.weight);
                    knnshap_core::mc::mc_shapley_improved(
                        &mut u,
                        StoppingRule::Fixed(perms),
                        spec.seed,
                        None,
                    )
                    .values
                }
                JobMethod::GroupTesting { tests } => {
                    let u = KnnClassUtility::new(&train, &test, spec.k, spec.weight);
                    knnshap_core::group_testing::group_testing_shapley(&u, tests, spec.seed).values
                }
            }
        }
    }
}

fn assert_bitwise(got: &ShapleyValues, want: &ShapleyValues, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: lengths differ");
    for i in 0..want.len() {
        assert_eq!(
            got.get(i).to_bits(),
            want.get(i).to_bits(),
            "{what}: point {i}: {} vs {}",
            got.get(i),
            want.get(i),
        );
    }
}

/// Acceptance-criterion battery: every family × worker counts {1, 2, 4},
/// supervised end to end, merged output bitwise vs the unsharded run.
#[test]
fn all_seven_families_match_unsharded_at_every_worker_count() {
    let ws = Workspace::new("families");
    for (name, spec) in families(&ws) {
        let want = reference(&spec);
        for workers in [1usize, 2, 4] {
            let dirs = ws.job_dirs(&format!("job-{name}-{workers}"));
            plan_job(&spec).unwrap().save(&dirs).unwrap();
            let outcome = run_job(
                &dirs,
                SupervisorOptions {
                    workers,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_bitwise(
                &outcome.values,
                &want,
                &format!("{name} × {workers} workers"),
            );
            assert!(outcome.spawned >= 1);
            assert_eq!(outcome.worker_failures, 0, "{name}");
            // The job directory afterwards is clean: no leases, no
            // checkpoints, all shards published.
            assert!(dirs.missing_shards(spec.shards).is_empty());
            assert!((0..spec.shards).all(|i| !dirs.lease_path(i).exists()));
        }
    }
}

/// Satellite: kill a worker at **every** kill point between checkpoint
/// writes — after computing a chunk (its work is lost) and after
/// checkpointing it (its work survives) — restart, and require the merged
/// output to be bitwise-identical to the clean run. Also checks the resume
/// actually used the checkpoint (no full recompute) for post-checkpoint
/// kills past the first chunk.
#[test]
fn crash_and_resume_at_every_kill_point_is_bitwise_clean() {
    let ws = Workspace::new("crash");
    let (t, q) = ws.class_csvs();
    let spec = JobSpec {
        task: TaskKind::Class,
        train: t,
        test: q,
        k: K,
        weight: WeightFn::Uniform,
        method: JobMethod::Truncated { eps: 0.2 },
        seed: SEED,
        shards: 2,
        checkpoint_chunks: 4,
    };
    let want = reference(&spec);
    let plan = plan_job(&spec).unwrap();

    let kill_points: Vec<FaultPoint> = (0..spec.checkpoint_chunks)
        .flat_map(|c| {
            [
                FaultPoint::AfterChunk { shard: 0, chunk: c },
                FaultPoint::AfterCheckpoint { shard: 0, chunk: c },
            ]
        })
        .collect();

    for (ki, kill) in kill_points.into_iter().enumerate() {
        let dirs = ws.job_dirs(&format!("job-kill-{ki}"));
        plan.save(&dirs).unwrap();

        // Worker 1 crashes at the kill point, leaving lease + checkpoint.
        let err = run_worker(
            &dirs,
            WorkerOptions {
                worker_id: "victim".into(),
                fault: Some(Box::new(move |at| at == kill)),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, JobError::Crashed(_)), "{err}");
        assert!(
            dirs.lease_path(0).exists(),
            "a crashed worker must leave its lease behind"
        );

        // While the (dead) lease is still fresh, the shard is not claimable:
        // a second worker completes everything else and exits.
        let partial = run_worker(&dirs, WorkerOptions::default()).unwrap();
        assert!(!partial.completed.contains(&0), "shard 0 is leased");
        assert!(!dirs.missing_shards(spec.shards).contains(&1));

        // TTL recovery (what the supervisor does), then a successor worker.
        queue::expire_stale(&dirs, spec.shards, Duration::ZERO).unwrap();
        let report = run_worker(
            &dirs,
            WorkerOptions {
                worker_id: "successor".into(),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.completed.contains(&0));
        if matches!(kill, FaultPoint::AfterCheckpoint { chunk, .. } if chunk > 0)
            || matches!(kill, FaultPoint::AfterChunk { chunk, .. } if chunk > 0)
        {
            assert_eq!(report.resumed, 1, "kill point {kill:?} must resume");
            assert!(
                report.chunks_computed < spec.checkpoint_chunks,
                "resume must skip checkpointed chunks (computed {})",
                report.chunks_computed
            );
        }

        let merged = merge_job(&dirs, &plan).unwrap();
        assert_bitwise(&merged.values, &want, &format!("kill point {kill:?}"));
    }
}

/// The supervisor end of the same story: a worker that crashes mid-job is
/// detected, its lease expires, a respawned worker resumes, and the merged
/// output is untouched.
#[test]
fn supervisor_reassigns_after_crash_and_respawns() {
    let ws = Workspace::new("respawn");
    let (t, q) = ws.class_csvs();
    let spec = JobSpec {
        task: TaskKind::Class,
        train: t,
        test: q,
        k: K,
        weight: WeightFn::Uniform,
        method: JobMethod::Exact,
        seed: SEED,
        shards: 4,
        checkpoint_chunks: 2,
    };
    let want = reference(&spec);
    let dirs = ws.job_dirs("job");
    plan_job(&spec).unwrap().save(&dirs).unwrap();

    // The first spawned worker dies right after its first computed chunk
    // (one worker, so it deterministically gets work); every later spawn
    // runs clean and inherits the checkpoint.
    let outcome = run_job(
        &dirs,
        SupervisorOptions {
            workers: 1,
            lease_ttl: Duration::from_millis(200),
            poll: Duration::from_millis(25),
            launcher: Launcher::InProcess {
                fault_factory: Some(Box::new(|seq| {
                    (seq == 0).then(|| {
                        let hits = AtomicUsize::new(0);
                        Box::new(move |_at| hits.fetch_add(1, Ordering::Relaxed) == 0)
                            as knnshap_runtime::worker::FaultHook
                    })
                })),
            },
            ..Default::default()
        },
    )
    .unwrap();
    assert_bitwise(&outcome.values, &want, "respawn");
    assert_eq!(outcome.worker_failures, 1, "the crash must be observed");
    assert!(outcome.spawned >= 2, "a replacement worker must be spawned");
    assert!(outcome.reassigned >= 1, "the stale lease must be reclaimed");
}

/// Corrupt checkpoints — truncated bytes or a different job's checkpoint —
/// are discarded (clean recompute), never merged.
#[test]
fn corrupt_or_foreign_checkpoints_are_ignored() {
    let ws = Workspace::new("ckpt");
    let (t, q) = ws.class_csvs();
    let spec = JobSpec {
        task: TaskKind::Class,
        train: t.clone(),
        test: q.clone(),
        k: K,
        weight: WeightFn::Uniform,
        method: JobMethod::McImproved { perms: PERMS },
        seed: SEED,
        shards: 2,
        checkpoint_chunks: 2,
    };
    let want = reference(&spec);
    let plan = plan_job(&spec).unwrap();

    // Garbage bytes.
    let dirs = ws.job_dirs("garbage");
    plan.save(&dirs).unwrap();
    std::fs::write(dirs.checkpoint_path(0), b"not a shard file").unwrap();
    let report = run_worker(&dirs, WorkerOptions::default()).unwrap();
    assert_eq!(report.resumed, 0, "garbage must not count as a resume");
    assert_bitwise(
        &merge_job(&dirs, &plan).unwrap().values,
        &want,
        "garbage ckpt",
    );

    // A different job's (valid!) checkpoint: same shape, different seed ⇒
    // different fingerprint ⇒ ignored.
    let foreign_spec = JobSpec {
        seed: SEED + 1,
        ..spec.clone()
    };
    let foreign_plan = plan_job(&foreign_spec).unwrap();
    let fdirs = ws.job_dirs("foreign-src");
    foreign_plan.save(&fdirs).unwrap();
    run_worker(&fdirs, WorkerOptions::default()).unwrap();

    let dirs = ws.job_dirs("foreign");
    plan.save(&dirs).unwrap();
    std::fs::copy(fdirs.shard_path(0), dirs.checkpoint_path(0)).unwrap();
    let report = run_worker(&dirs, WorkerOptions::default()).unwrap();
    assert_eq!(report.resumed, 0, "foreign checkpoint must not resume");
    assert_bitwise(
        &merge_job(&dirs, &plan).unwrap().values,
        &want,
        "foreign ckpt",
    );
}

/// A worker pointed at datasets that changed since `shard-plan` refuses to
/// compute (fingerprint mismatch), and a plan for one job refuses to merge
/// another job's shards.
#[test]
fn dataset_drift_and_wrong_job_fail_loudly() {
    let ws = Workspace::new("drift");
    let (t, q) = ws.class_csvs();
    let spec = JobSpec {
        task: TaskKind::Class,
        train: t.clone(),
        test: q,
        k: K,
        weight: WeightFn::Uniform,
        method: JobMethod::Exact,
        seed: SEED,
        shards: 2,
        checkpoint_chunks: 1,
    };
    let plan = plan_job(&spec).unwrap();
    let dirs = ws.job_dirs("job");
    plan.save(&dirs).unwrap();

    // Flip one label in the training CSV after planning.
    let text = std::fs::read_to_string(&t).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let flipped = if lines[0].ends_with('0') {
        lines[0].trim_end_matches('0').to_string() + "1"
    } else {
        lines[0].trim_end_matches('1').to_string() + "0"
    };
    lines[0] = flipped;
    std::fs::write(&t, lines.join("\n") + "\n").unwrap();

    let err = run_worker(&dirs, WorkerOptions::default()).unwrap_err();
    assert!(matches!(err, JobError::FingerprintMismatch { .. }), "{err}");
    // Restore and complete normally.
    std::fs::write(&t, &text).unwrap();
    run_worker(&dirs, WorkerOptions::default()).unwrap();

    // A hand-edited plan fingerprint no longer matches the datasets: the
    // merge's own content re-verification rejects it (this is the only
    // check that runs when no worker needs to spawn).
    let mut wrong = plan.clone();
    wrong.fingerprint ^= 1;
    let err = merge_job(&dirs, &wrong).unwrap_err();
    assert!(matches!(err, JobError::FingerprintMismatch { .. }), "{err}");

    // A *consistent* plan for a different job (k = 3) over the same
    // datasets passes the content check but must reject this directory's
    // k = 2 shards.
    let other_plan = plan_job(&JobSpec {
        k: K + 1,
        ..spec.clone()
    })
    .unwrap();
    let err = merge_job(&dirs, &other_plan).unwrap_err();
    assert!(err.to_string().contains("another job"), "{err}");
}

/// Over-sharding is an operational no-op: more shards (and chunks) than
/// items still merges to the identical bits.
#[test]
fn oversharded_jobs_merge_identically() {
    let ws = Workspace::new("overshard");
    let (t, q) = ws.class_csvs();
    let spec = JobSpec {
        task: TaskKind::Class,
        train: t,
        test: q,
        k: K,
        weight: WeightFn::Uniform,
        method: JobMethod::Exact,
        seed: SEED,
        shards: 11, // > 7 test points: several empty shards
        checkpoint_chunks: 3,
    };
    let want = reference(&spec);
    let dirs = ws.job_dirs("job");
    plan_job(&spec).unwrap().save(&dirs).unwrap();
    let outcome = run_job(
        &dirs,
        SupervisorOptions {
            workers: 3,
            ..Default::default()
        },
    )
    .unwrap();
    assert_bitwise(&outcome.values, &want, "oversharded");
}

/// The published artifacts are canonical: running the same job in two
/// directories yields byte-identical shard files — the property that makes
/// duplicated work (stale-lease races) harmless and artifacts checksummable.
#[test]
fn shard_files_are_canonical_across_runs_and_worker_counts() {
    let ws = Workspace::new("canon");
    let (t, q) = ws.class_csvs();
    let spec = JobSpec {
        task: TaskKind::Class,
        train: t,
        test: q,
        k: K,
        weight: WeightFn::Uniform,
        method: JobMethod::GroupTesting { tests: GT_TESTS },
        seed: SEED,
        shards: 3,
        checkpoint_chunks: 2,
    };
    let plan = plan_job(&spec).unwrap();
    let (a, b) = (ws.job_dirs("a"), ws.job_dirs("b"));
    for (dirs, workers) in [(&a, 1usize), (&b, 4usize)] {
        plan.save(dirs).unwrap();
        run_job(
            dirs,
            SupervisorOptions {
                workers,
                ..Default::default()
            },
        )
        .unwrap();
    }
    for i in 0..spec.shards {
        assert_eq!(
            std::fs::read(a.shard_path(i)).unwrap(),
            std::fs::read(b.shard_path(i)).unwrap(),
            "shard {i} must be canonical"
        );
    }
    assert_eq!(plan.kind, ShardKind::GroupTesting);
}
