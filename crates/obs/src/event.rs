//! Structured JSONL event emission through per-thread buffers.
//!
//! [`emit`] renders the event into a thread-local buffer — no locks, no
//! cross-thread synchronization the instrumented code could come to depend
//! on — and [`flush`] drains the calling thread's buffer to the process
//! sink at fold boundaries (a buffer that outgrows [`BUFFER_LINES`] drains
//! itself, and a thread's buffer drains on thread exit). The sink is
//! stderr by default, a file when `KNNSHAP_LOG=level:path` asks for one,
//! or an in-memory capture for tests.

use crate::json::{escape, fmt_f64};
use crate::Level;
use std::cell::RefCell;
use std::io::Write;
use std::sync::Mutex;

/// Lines a thread buffers before draining on its own.
pub const BUFFER_LINES: usize = 64;

/// One event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

fn push_field(out: &mut String, key: &str, v: &FieldValue) {
    out.push_str(&format!(",\"{}\":", escape(key)));
    match v {
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::I64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(n) => out.push_str(&fmt_f64(*n)),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => out.push_str(&format!("\"{}\"", escape(s))),
    }
}

/// Render one event line (no trailing newline). Shared with callers that
/// write their own streams (the runtime's job-directory event log).
pub fn render_line(
    level: Level,
    target: &str,
    name: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    let mut line = String::with_capacity(96);
    line.push_str(&format!(
        "{{\"ts\":{},\"lvl\":\"{}\",\"target\":\"{}\",\"ev\":\"{}\"",
        fmt_f64(crate::now_secs()),
        level.as_str(),
        escape(target),
        escape(name),
    ));
    for (k, v) in fields {
        push_field(&mut line, k, v);
    }
    line.push('}');
    line
}

enum SinkTarget {
    Stderr,
    File(std::fs::File),
    Capture(Vec<String>),
}

static SINK: Mutex<Option<SinkTarget>> = Mutex::new(None);

fn with_sink<R>(f: impl FnOnce(&mut SinkTarget) -> R) -> R {
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert(SinkTarget::Stderr))
}

/// Route events to `path` (append). Called by env init for
/// `KNNSHAP_LOG=level:path`.
pub(crate) fn set_file_sink(path: std::path::PathBuf) {
    if let Ok(f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(SinkTarget::File(f));
    }
}

/// Route events into an in-memory buffer readable via [`take_captured`]
/// (tests and the determinism battery).
pub fn set_capture_sink() {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(SinkTarget::Capture(Vec::new()));
}

/// Drain the capture sink. Empty unless [`set_capture_sink`] is active.
pub fn take_captured() -> Vec<String> {
    with_sink(|s| match s {
        SinkTarget::Capture(lines) => std::mem::take(lines),
        _ => Vec::new(),
    })
}

fn drain_to_sink(lines: &mut Vec<String>) {
    if lines.is_empty() {
        return;
    }
    with_sink(|sink| match sink {
        SinkTarget::Capture(out) => out.append(lines),
        SinkTarget::File(f) => {
            let mut buf = String::new();
            for l in lines.drain(..) {
                buf.push_str(&l);
                buf.push('\n');
            }
            let _ = f.write_all(buf.as_bytes());
        }
        SinkTarget::Stderr => {
            let mut buf = String::new();
            for l in lines.drain(..) {
                buf.push_str(&l);
                buf.push('\n');
            }
            let _ = std::io::stderr().write_all(buf.as_bytes());
        }
    });
}

/// The per-thread buffer; drains any leftovers when the thread exits.
struct ThreadBuf(RefCell<Vec<String>>);

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        drain_to_sink(&mut self.0.borrow_mut());
    }
}

thread_local! {
    static BUF: ThreadBuf = const { ThreadBuf(RefCell::new(Vec::new())) };
}

/// Emit one structured event. A no-op (one atomic load) unless
/// `KNNSHAP_LOG` enables `level`.
pub fn emit(level: Level, target: &str, name: &str, fields: &[(&str, FieldValue)]) {
    if !crate::log_enabled(level) {
        return;
    }
    let line = render_line(level, target, name, fields);
    let _ = BUF.try_with(|b| {
        let mut buf = b.0.borrow_mut();
        buf.push(line);
        if buf.len() >= BUFFER_LINES {
            drain_to_sink(&mut buf);
        }
    });
}

/// Drain the calling thread's event buffer to the sink. Instrumented code
/// calls this at fold boundaries (end of a pool run, end of an estimator
/// round) so events become visible without any mid-fold locking.
pub fn flush() {
    let _ = BUF.try_with(|b| drain_to_sink(&mut b.0.borrow_mut()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_event_line;

    #[test]
    fn disabled_emit_is_a_no_op() {
        let _g = crate::test_lock();
        crate::set_log(None);
        set_capture_sink();
        emit(Level::Info, "t", "nothing", &[]);
        flush();
        assert!(take_captured().is_empty());
    }

    #[test]
    fn emitted_lines_validate_against_the_schema() {
        let _g = crate::test_lock();
        crate::set_log(Some(Level::Debug));
        set_capture_sink();
        emit(
            Level::Debug,
            "pool",
            "steal",
            &[
                ("victim", 3usize.into()),
                ("ratio", 0.5.into()),
                ("note", "a\"b".into()),
                ("ok", true.into()),
            ],
        );
        emit(Level::Info, "mc", "round", &[("t", 128usize.into())]);
        flush();
        crate::set_log(None);
        let lines = take_captured();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            validate_event_line(l).unwrap();
        }
        assert!(lines[0].contains("\"ev\":\"steal\""));
        assert!(lines[0].contains("\"note\":\"a\\\"b\""));
    }

    #[test]
    fn info_level_suppresses_debug_events() {
        let _g = crate::test_lock();
        crate::set_log(Some(Level::Info));
        set_capture_sink();
        emit(Level::Debug, "t", "hidden", &[]);
        emit(Level::Info, "t", "shown", &[]);
        flush();
        crate::set_log(None);
        let lines = take_captured();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("shown"));
    }

    #[test]
    fn buffers_self_drain_past_the_cap_and_on_thread_exit() {
        let _g = crate::test_lock();
        crate::set_log(Some(Level::Debug));
        set_capture_sink();
        // A worker thread that never calls flush(): its buffer must drain
        // once past BUFFER_LINES and again when the thread exits.
        std::thread::spawn(|| {
            for i in 0..BUFFER_LINES + 5 {
                emit(Level::Debug, "t", "spin", &[("i", i.into())]);
            }
        })
        .join()
        .unwrap();
        crate::set_log(None);
        let lines = take_captured();
        assert_eq!(lines.len(), BUFFER_LINES + 5);
        for l in &lines {
            validate_event_line(l).unwrap();
        }
    }
}
