//! Minimal JSON: escaping and number formatting for the writers, and a
//! small recursive-descent parser for validating emitted JSONL (the
//! workspace has no serde — telemetry must stay dependency-free).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(kv) => Some(kv),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escape a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (non-finite values have no JSON
/// representation and degrade to 0 — telemetry must never emit unparseable
/// lines).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    // `{}` on a whole float prints without a decimal point; keep it — JSON
    // accepts integer literals as numbers.
    s
}

/// Parse one JSON document. Numbers are f64; objects preserve key order.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Value, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(b'"') => Ok(Value::Str(parse_string(b, i)?)),
        Some(b't') => parse_lit(b, i, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, i, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, i, "null", Value::Null),
        Some(_) => parse_number(b, i),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at {i}"))
    }
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<Value, String> {
    let start = *i;
    if matches!(b.get(*i), Some(b'-')) {
        *i += 1;
    }
    while matches!(b.get(*i), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    let text = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number '{text}' at {start}"))
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    let mut out = String::new();
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .ok_or_else(|| "short \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at {i}")),
                }
                *i += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&b[*i..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *i += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], i: &mut usize) -> Result<Value, String> {
    *i += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, i);
    if matches!(b.get(*i), Some(b']')) {
        *i += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at {i}")),
        }
    }
}

fn parse_object(b: &[u8], i: &mut usize) -> Result<Value, String> {
    *i += 1; // '{'
    let mut kv = Vec::new();
    skip_ws(b, i);
    if matches!(b.get(*i), Some(b'}')) {
        *i += 1;
        return Ok(Value::Obj(kv));
    }
    loop {
        skip_ws(b, i);
        if !matches!(b.get(*i), Some(b'"')) {
            return Err(format!("expected object key at {i}"));
        }
        let key = parse_string(b, i)?;
        skip_ws(b, i);
        if !matches!(b.get(*i), Some(b':')) {
            return Err(format!("expected ':' at {i}"));
        }
        *i += 1;
        let val = parse_value(b, i)?;
        kv.push((key, val));
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Value::Obj(kv));
            }
            _ => return Err(format!("expected ',' or '}}' at {i}")),
        }
    }
}

/// Validate one emitted event line against the crate's schema (see the
/// crate docs): a JSON object whose reserved keys `ts` (number), `lvl`
/// (`"info"`/`"debug"`), `target` (string) and `ev` (string) are present,
/// and whose remaining values are scalars.
pub fn validate_event_line(line: &str) -> Result<(), String> {
    let v = parse(line)?;
    let obj = v
        .as_object()
        .ok_or_else(|| "event line is not a JSON object".to_string())?;
    v.get("ts")
        .and_then(Value::as_f64)
        .ok_or_else(|| "missing numeric 'ts'".to_string())?;
    let lvl = v
        .get("lvl")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string 'lvl'".to_string())?;
    if lvl != "info" && lvl != "debug" {
        return Err(format!("bad lvl '{lvl}'"));
    }
    v.get("target")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string 'target'".to_string())?;
    v.get("ev")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string 'ev'".to_string())?;
    let mut seen = Vec::with_capacity(obj.len());
    for (k, val) in obj {
        if seen.contains(&k) {
            return Err(format!("duplicate key '{k}'"));
        }
        seen.push(k);
        if matches!(val, Value::Arr(_) | Value::Obj(_)) {
            return Err(format!("field '{k}' is not a scalar"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":false}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Value::Bool(false)));
        match v.get("a") {
            Some(Value::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ nl\n tab\t ctl\u{1} unicode é";
        let line = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&line).unwrap(), Value::Str(nasty.to_string()));
    }

    #[test]
    fn fmt_f64_never_produces_unparseable_numbers() {
        for v in [0.0, -1.5, 1e300, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let s = fmt_f64(v);
            assert!(parse(&s).is_ok(), "{v} -> {s}");
        }
    }

    #[test]
    fn validates_the_event_schema() {
        validate_event_line(r#"{"ts":1.5,"lvl":"debug","target":"pool","ev":"steal","n":3}"#)
            .unwrap();
        for bad in [
            r#"{"lvl":"debug","target":"pool","ev":"steal"}"#, // no ts
            r#"{"ts":1,"lvl":"loud","target":"pool","ev":"x"}"#, // bad level
            r#"{"ts":1,"lvl":"info","target":"pool"}"#,        // no ev
            r#"{"ts":1,"lvl":"info","target":"pool","ev":"x","deep":{"a":1}}"#, // nested
            r#"{"ts":1,"lvl":"info","target":"pool","ev":"x","ts":2}"#, // duplicate
            r#"[1,2,3]"#,
        ] {
            assert!(validate_event_line(bad).is_err(), "{bad}");
        }
    }
}
