//! # knnshap_obs — structured telemetry that cannot move a bit
//!
//! Every layer of the workspace promises bitwise-deterministic output: the
//! merged/parallel/resumed/served vector is byte-identical to the serial
//! unsharded run. Telemetry therefore has one hard design constraint before
//! any feature: **observing a run must never change it**. This crate holds
//! that line structurally:
//!
//! * nothing here feeds back into computation — counters, histograms and
//!   events are write-only from the instrumented code's point of view;
//! * everything is **off by default** and gated behind one relaxed atomic
//!   load, so the disabled hot path costs a branch and nothing else;
//! * event emission buffers into **per-thread buffers** (no locks, no
//!   cross-thread ordering the instrumented code could accidentally rely
//!   on), drained to the sink at fold boundaries via [`flush`];
//! * the sink is stderr or a file — never stdout, which belongs to reports
//!   whose bytes are under test.
//!
//! `tests/obs_determinism.rs` (workspace root) enforces the contract the
//! hard way: estimator/shard/serve suites re-run with telemetry fully
//! enabled and byte-compare against telemetry-off output at 1 and 8
//! threads.
//!
//! ## Env switches
//!
//! | variable | values | effect |
//! |---|---|---|
//! | `KNNSHAP_LOG` | `off` (default), `info`, `debug`, `LEVEL:PATH` | JSONL event log to stderr, or to `PATH` |
//! | `KNNSHAP_METRICS` | unset/`0` (default), `1`, `PATH` | enable counters/gauges/histograms; with `PATH`, [`dump_metrics`] appends snapshots there |
//!
//! ## Event schema
//!
//! One JSON object per line. Reserved keys, always present:
//! `ts` (f64 seconds since the Unix epoch), `lvl` (`"info"`/`"debug"`),
//! `target` (the subsystem, e.g. `"pool"`), `ev` (the event name). All
//! remaining keys are event-specific scalars (number/string/bool).
//! [`json::validate_event_line`] checks exactly this shape.

pub mod event;
pub mod json;
pub mod metrics;

pub use event::{emit, flush, set_capture_sink, take_captured, FieldValue};
pub use metrics::{
    snapshot, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, SpanGuard,
};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Event severity. `Info` is operator-facing milestones; `Debug` adds
/// per-round/per-chunk progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Info,
    Debug,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

const FLAG_METRICS: u8 = 1 << 0;
const FLAG_LOG_INFO: u8 = 1 << 1;
const FLAG_LOG_DEBUG: u8 = 1 << 2;

static STATE: AtomicU8 = AtomicU8::new(0);
static INIT: Once = Once::new();

/// Where `KNNSHAP_METRICS=PATH` asked snapshots to go (None: env gave a
/// boolean or nothing).
static METRICS_PATH: OnceLock<Option<PathBuf>> = OnceLock::new();

fn init_from_env() {
    let mut flags = 0u8;
    let mut metrics_path = None;
    if let Ok(v) = std::env::var("KNNSHAP_METRICS") {
        let v = v.trim();
        if !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off")) {
            flags |= FLAG_METRICS;
            if v != "1" && !v.eq_ignore_ascii_case("on") {
                metrics_path = Some(PathBuf::from(v));
            }
        }
    }
    if let Ok(v) = std::env::var("KNNSHAP_LOG") {
        let v = v.trim();
        let (level, path) = match v.split_once(':') {
            Some((l, p)) if !p.is_empty() => (l, Some(PathBuf::from(p))),
            _ => (v, None),
        };
        match level.to_ascii_lowercase().as_str() {
            "info" => flags |= FLAG_LOG_INFO,
            "debug" | "trace" => flags |= FLAG_LOG_INFO | FLAG_LOG_DEBUG,
            _ => {}
        }
        if flags & FLAG_LOG_INFO != 0 {
            if let Some(p) = path {
                event::set_file_sink(p);
            }
        }
    }
    let _ = METRICS_PATH.set(metrics_path);
    STATE.store(flags, Ordering::Release);
}

#[inline]
fn state() -> u8 {
    INIT.call_once(init_from_env);
    STATE.load(Ordering::Relaxed)
}

/// Is the metrics registry live? One relaxed atomic load; every counter /
/// gauge / histogram / span operation early-returns on `false`.
#[inline]
pub fn metrics_enabled() -> bool {
    state() & FLAG_METRICS != 0
}

/// Would an event at `level` be emitted?
#[inline]
pub fn log_enabled(level: Level) -> bool {
    let s = state();
    match level {
        Level::Info => s & FLAG_LOG_INFO != 0,
        Level::Debug => s & FLAG_LOG_DEBUG != 0,
    }
}

/// Programmatically enable/disable the metrics registry (benches and the
/// determinism battery; production uses `KNNSHAP_METRICS`).
pub fn set_metrics(enabled: bool) {
    INIT.call_once(init_from_env);
    if enabled {
        STATE.fetch_or(FLAG_METRICS, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!FLAG_METRICS, Ordering::Relaxed);
    }
}

/// Programmatically set the event-log level (`None` = off).
pub fn set_log(level: Option<Level>) {
    INIT.call_once(init_from_env);
    let flags = match level {
        None => 0,
        Some(Level::Info) => FLAG_LOG_INFO,
        Some(Level::Debug) => FLAG_LOG_INFO | FLAG_LOG_DEBUG,
    };
    let keep = STATE.load(Ordering::Relaxed) & FLAG_METRICS;
    STATE.store(keep | flags, Ordering::Relaxed);
}

/// `KNNSHAP_METRICS=PATH`'s path, if any — where [`dump_metrics`] appends.
pub fn metrics_path() -> Option<PathBuf> {
    INIT.call_once(init_from_env);
    METRICS_PATH.get().cloned().flatten()
}

/// Append one JSONL snapshot of every registered metric to `path`. Called
/// by long-running surfaces (CLI exit, serve-daemon snapshot loop) when
/// `KNNSHAP_METRICS` names a file.
pub fn dump_metrics(path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write;
    static DUMP_LOCK: Mutex<()> = Mutex::new(());
    let _g = DUMP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = snapshot().to_json();
    line.push('\n');
    f.write_all(line.as_bytes())
}

/// Wall-clock seconds since the Unix epoch, as the `ts` field of every
/// event. Telemetry-only — nothing downstream of a computation reads it.
pub fn now_secs() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Tests toggle the process-global switches; serialize them so the default
/// multi-threaded test harness can't interleave toggles.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_fully_off() {
        let _g = crate::test_lock();
        // The test binary runs without the env vars (CI never sets them for
        // plain `cargo test`); everything must read disabled.
        if std::env::var("KNNSHAP_METRICS").is_err() && std::env::var("KNNSHAP_LOG").is_err() {
            set_metrics(false);
            set_log(None);
            assert!(!metrics_enabled());
            assert!(!log_enabled(Level::Info));
            assert!(!log_enabled(Level::Debug));
        }
    }

    #[test]
    fn programmatic_switches_toggle_both_axes() {
        let _g = crate::test_lock();
        set_metrics(true);
        assert!(metrics_enabled());
        set_metrics(false);
        assert!(!metrics_enabled());

        set_log(Some(Level::Info));
        assert!(log_enabled(Level::Info) && !log_enabled(Level::Debug));
        set_log(Some(Level::Debug));
        assert!(log_enabled(Level::Info) && log_enabled(Level::Debug));
        set_log(None);
        assert!(!log_enabled(Level::Info));
    }

    #[test]
    fn dump_metrics_appends_one_json_line_per_call() {
        let p = std::env::temp_dir().join(format!("knnshap-obs-dump-{}.jsonl", std::process::id()));
        std::fs::remove_file(&p).ok();
        dump_metrics(&p).unwrap();
        dump_metrics(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            json::parse(line).unwrap();
        }
        std::fs::remove_file(&p).ok();
    }
}
