//! Monotonic counters, gauges, power-of-two histograms and span timers
//! behind a global registry.
//!
//! Call sites own `static` instruments (`static STEALS: Counter =
//! Counter::new("pool.steals")`); the first recorded sample registers the
//! instrument into the process-wide registry, so [`snapshot`] sees exactly
//! the instruments that were ever touched while metrics were enabled. Every
//! mutation is a relaxed atomic — cheap, lock-free, and invisible to the
//! computation being measured.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static GAUGES: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonic counter. `add` is a no-op unless metrics are enabled.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&COUNTERS).push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (bit-cast into an atomic u64).
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            bits: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    pub fn set(&'static self, v: f64) {
        if !crate::metrics_enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&GAUGES).push(self);
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets. Bucket 0 holds the value 0; bucket `b`
/// (1 ≤ b < BUCKETS−1) holds `[2^(b−1), 2^b)`; the last bucket is the
/// overflow tail.
pub const BUCKETS: usize = 32;

/// A lock-free histogram over `u64` samples (latencies in µs, batch sizes…):
/// power-of-two buckets plus exact count/sum/min/max.
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    registered: AtomicBool,
}

const fn zero_buckets() -> [AtomicU64; BUCKETS] {
    const Z: AtomicU64 = AtomicU64::new(0);
    [Z; BUCKETS]
}

/// Which bucket a sample lands in.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: zero_buckets(),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    pub fn record(&'static self, v: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&HISTOGRAMS).push(self);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Time a span and record its duration in microseconds. The guard
    /// carries no timer at all when metrics are disabled.
    pub fn span(&'static self) -> SpanGuard {
        SpanGuard {
            hist: self,
            start: crate::metrics_enabled().then(std::time::Instant::now),
        }
    }

    pub fn read(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: self.name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// RAII span timer; dropping records elapsed µs into its histogram.
pub struct SpanGuard {
    hist: &'static Histogram,
    start: Option<std::time::Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_micros() as u64);
        }
    }
}

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything the registry knows, in registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// One JSON object: `{"ts":…,"counters":{…},"gauges":{…},"histograms":{…}}`.
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"ts\":{}",
            crate::json::fmt_f64(crate::now_secs())
        ));
        s.push_str(",\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{v}", escape(n)));
        }
        s.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", escape(n), crate::json::fmt_f64(*v)));
        }
        s.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                escape(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
        }
        s.push_str("}}");
        s
    }
}

/// Read every registered instrument. Instruments never touched while
/// metrics were enabled are absent (they never registered).
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: lock(&COUNTERS)
            .iter()
            .map(|c| (c.name.to_string(), c.get()))
            .collect(),
        gauges: lock(&GAUGES)
            .iter()
            .map(|g| (g.name.to_string(), g.get()))
            .collect(),
        histograms: lock(&HISTOGRAMS).iter().map(|h| h.read()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instruments_record_nothing_and_stay_unregistered() {
        let _g = crate::test_lock();
        static C: Counter = Counter::new("test.disabled.counter");
        static H: Histogram = Histogram::new("test.disabled.hist");
        crate::set_metrics(false);
        C.add(5);
        H.record(9);
        drop(H.span());
        assert_eq!(C.get(), 0);
        assert_eq!(H.read().count, 0);
        assert!(snapshot().counter("test.disabled.counter").is_none());
    }

    #[test]
    fn enabled_counter_accumulates_and_snapshots() {
        let _g = crate::test_lock();
        static C: Counter = Counter::new("test.counter");
        crate::set_metrics(true);
        C.add(3);
        C.incr();
        assert_eq!(C.get(), 4);
        assert_eq!(snapshot().counter("test.counter"), Some(4));
        crate::set_metrics(false);
        C.add(100); // ignored again once disabled
        assert_eq!(C.get(), 4);
    }

    #[test]
    fn gauge_holds_last_f64() {
        let _g = crate::test_lock();
        static G: Gauge = Gauge::new("test.gauge");
        crate::set_metrics(true);
        G.set(1.25);
        G.set(-2.5);
        assert_eq!(G.get(), -2.5);
        assert_eq!(snapshot().gauge("test.gauge"), Some(-2.5));
        crate::set_metrics(false);
    }

    #[test]
    fn histogram_buckets_cover_powers_of_two() {
        let _g = crate::test_lock();
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Exhaustive bucket invariant: bucket b>0 starts at 2^(b-1).
        for b in 1..BUCKETS - 1 {
            assert_eq!(bucket_index(1u64 << (b - 1)), b);
            assert_eq!(bucket_index((1u64 << b) - 1), b);
        }

        static H: Histogram = Histogram::new("test.hist");
        crate::set_metrics(true);
        for v in [0u64, 1, 3, 100, 100] {
            H.record(v);
        }
        let s = H.read();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 204);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
        assert!((s.mean() - 40.8).abs() < 1e-12);
        crate::set_metrics(false);
    }

    #[test]
    fn span_records_a_duration() {
        let _g = crate::test_lock();
        static H: Histogram = Histogram::new("test.span");
        crate::set_metrics(true);
        {
            let _g = H.span();
            std::hint::black_box(0u64);
        }
        assert_eq!(H.read().count, 1);
        crate::set_metrics(false);
    }

    #[test]
    fn snapshot_serializes_to_parseable_json() {
        let _g = crate::test_lock();
        static C: Counter = Counter::new("test.json.counter");
        static G: Gauge = Gauge::new("test.json.gauge");
        static H: Histogram = Histogram::new("test.json.hist");
        crate::set_metrics(true);
        C.incr();
        G.set(0.5);
        H.record(7);
        let js = snapshot().to_json();
        crate::set_metrics(false);
        let v = crate::json::parse(&js).expect("snapshot JSON parses");
        let obj = v.as_object().unwrap();
        assert!(obj.iter().any(|(k, _)| k == "counters"));
        assert!(obj.iter().any(|(k, _)| k == "histograms"));
    }
}
