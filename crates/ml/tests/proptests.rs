//! Property-based tests for the logistic-regression comparator: structural
//! invariants that must hold for any training data and query, independent of
//! convergence quality.

use knnshap_datasets::{ClassDataset, Features};
use knnshap_ml::logreg::{LogRegConfig, LogisticRegression};
use proptest::prelude::*;

/// Random small classification instances (features bounded, labels valid).
fn instance() -> impl Strategy<Value = (ClassDataset, Vec<f32>)> {
    (2usize..30, 1u32..4, any::<u64>()).prop_map(|(n, classes, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 3;
        let feats: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
        let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        (
            ClassDataset::new(Features::new(feats, dim), labels, classes),
            query,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Predicted probabilities are a distribution for any model state.
    #[test]
    fn probabilities_form_a_distribution((train, query) in instance()) {
        let m = LogisticRegression::fit(&train, &LogRegConfig {
            epochs: 20, learning_rate: 0.3, l2: 1e-3,
        });
        let p = m.predict_proba(&query);
        prop_assert_eq!(p.len(), train.n_classes as usize);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // argmax consistency
        let pred = m.predict(&query) as usize;
        prop_assert!(p.iter().all(|&v| v <= p[pred] + 1e-15));
    }

    /// Training is deterministic: same data, same config, same weights —
    /// the property the Fig. 16 retraining utility depends on (ν(S) must be
    /// a *function* of S).
    #[test]
    fn fit_is_deterministic((train, query) in instance()) {
        let cfg = LogRegConfig { epochs: 15, learning_rate: 0.5, l2: 1e-4 };
        let a = LogisticRegression::fit(&train, &cfg);
        let b = LogisticRegression::fit(&train, &cfg);
        prop_assert_eq!(a.predict_proba(&query), b.predict_proba(&query));
    }

    /// Accuracy is always a valid frequency, and perfect on the training set
    /// of a single-class problem.
    #[test]
    fn accuracy_is_a_frequency((train, _q) in instance()) {
        let m = LogisticRegression::fit(&train, &LogRegConfig {
            epochs: 10, learning_rate: 0.3, l2: 1e-3,
        });
        let acc = m.accuracy(&train);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// Label permutation equivariance: relabeling classes consistently
    /// permutes the predicted distribution (zero-initialized GD has no
    /// class-order bias).
    #[test]
    fn class_relabeling_permutes_probabilities((train, query) in instance()) {
        prop_assume!(train.n_classes == 2);
        let swapped = ClassDataset::new(
            train.x.clone(),
            train.y.iter().map(|&l| 1 - l).collect(),
            2,
        );
        let cfg = LogRegConfig { epochs: 25, learning_rate: 0.4, l2: 1e-3 };
        let m1 = LogisticRegression::fit(&train, &cfg);
        let m2 = LogisticRegression::fit(&swapped, &cfg);
        let p1 = m1.predict_proba(&query);
        let p2 = m2.predict_proba(&query);
        prop_assert!((p1[0] - p2[1]).abs() < 1e-9, "{p1:?} vs {p2:?}");
        prop_assert!((p1[1] - p2[0]).abs() < 1e-9);
    }
}
