//! KNN-as-surrogate calibration (paper §7).
//!
//! "For calculating the SV for general deep neural networks, we can take the
//! deep features [...] and train a KNN classifier on the deep features. We
//! calibrate K such that the resulting KNN mimics the performance of the
//! original \[model\]." This module implements exactly that calibration: pick
//! the `K` whose KNN test accuracy is closest to a target accuracy.

use knnshap_datasets::ClassDataset;
use knnshap_knn::classifier::KnnClassifier;

/// Choose `K` from `candidates` whose unweighted-KNN accuracy on `test` is
/// closest to `target_accuracy`. Ties prefer the smaller `K` (cheaper
/// valuation). Returns `(k, accuracy_at_k)`.
pub fn calibrate_k(
    train: &ClassDataset,
    test: &ClassDataset,
    candidates: &[usize],
    target_accuracy: f64,
) -> (usize, f64) {
    assert!(!candidates.is_empty(), "need at least one candidate K");
    let threads = knnshap_parallel::current_threads();
    let mut best: Option<(usize, f64, f64)> = None; // (k, acc, gap)
    for &k in candidates {
        assert!(k >= 1, "K must be at least 1");
        let acc = KnnClassifier::unweighted(train, k).accuracy(test, threads);
        let gap = (acc - target_accuracy).abs();
        let better = match best {
            None => true,
            Some((bk, _, bgap)) => gap < bgap - 1e-12 || (gap < bgap + 1e-12 && k < bk),
        };
        if better {
            best = Some((k, acc, gap));
        }
    }
    let (k, acc, _) = best.expect("candidates nonempty");
    (k, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knnshap_datasets::synth::blobs::{self, BlobConfig};

    #[test]
    fn picks_k_matching_target() {
        let cfg = BlobConfig {
            n: 400,
            dim: 6,
            n_classes: 4,
            cluster_std: 1.2,
            center_scale: 2.0,
            seed: 5,
        };
        let train = blobs::generate(&cfg);
        let test = blobs::queries(&cfg, 80, 11);
        // calibrate to the best achievable accuracy: must return a K whose
        // accuracy is within the candidate set's achievable range
        let accs: Vec<f64> = [1usize, 3, 5, 9]
            .iter()
            .map(|&k| KnnClassifier::unweighted(&train, k).accuracy(&test, 2))
            .collect();
        let target = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (k, acc) = calibrate_k(&train, &test, &[1, 3, 5, 9], target);
        assert!((acc - target).abs() < 1e-12);
        assert!([1usize, 3, 5, 9].contains(&k));
    }

    #[test]
    fn tie_prefers_smaller_k() {
        let cfg = BlobConfig {
            n: 100,
            dim: 4,
            n_classes: 2,
            cluster_std: 0.1,
            center_scale: 5.0,
            seed: 6,
        };
        let train = blobs::generate(&cfg);
        let test = blobs::queries(&cfg, 30, 12);
        // perfectly separable: every K achieves accuracy 1.0 => pick smallest
        let (k, acc) = calibrate_k(&train, &test, &[5, 1, 3], 1.0);
        assert_eq!(k, 1);
        assert_eq!(acc, 1.0);
    }
}
