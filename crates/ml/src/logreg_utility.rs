//! A retraining Shapley utility over logistic regression.
//!
//! `ν(S)` = test accuracy of a logistic regression trained on coalition `S`
//! (`ν(∅) = 0`: no data, no model). This is the expensive general-model path
//! the paper contrasts its KNN algorithms against — every evaluation is a
//! full training run — and the subject of the Fig. 16 proxy experiment.

use crate::logreg::{LogRegConfig, LogisticRegression};
use knnshap_core::utility::Utility;
use knnshap_datasets::ClassDataset;

/// How a retrained model is scored on the test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scoring {
    /// 0/1 test accuracy.
    Accuracy,
    /// Mean predicted probability of the correct label — the smooth analogue
    /// of the KNN utility (eq. 5 is itself a correct-label likelihood), which
    /// avoids the 1/N_test quantization noise of 0/1 accuracy.
    CorrectLabelLikelihood,
}

/// Retrains a logistic regression per coalition and scores it on a test set.
pub struct LogRegUtility<'a> {
    train: &'a ClassDataset,
    test: &'a ClassDataset,
    cfg: LogRegConfig,
    scoring: Scoring,
}

impl<'a> LogRegUtility<'a> {
    /// Accuracy-scored utility (the conventional model performance measure).
    pub fn new(train: &'a ClassDataset, test: &'a ClassDataset, cfg: LogRegConfig) -> Self {
        Self::with_scoring(train, test, cfg, Scoring::Accuracy)
    }

    pub fn with_scoring(
        train: &'a ClassDataset,
        test: &'a ClassDataset,
        cfg: LogRegConfig,
        scoring: Scoring,
    ) -> Self {
        assert_eq!(train.dim(), test.dim(), "train/test dimension mismatch");
        assert!(!test.is_empty(), "need at least one test point");
        Self {
            train,
            test,
            cfg,
            scoring,
        }
    }
}

impl Utility for LogRegUtility<'_> {
    fn n(&self) -> usize {
        self.train.len()
    }

    fn eval(&self, subset: &[usize]) -> f64 {
        if subset.is_empty() {
            return 0.0;
        }
        let coalition = self.train.gather(subset);
        let model = LogisticRegression::fit(&coalition, &self.cfg);
        match self.scoring {
            Scoring::Accuracy => model.accuracy(self.test),
            Scoring::CorrectLabelLikelihood => {
                let mut acc = 0.0;
                for j in 0..self.test.len() {
                    acc += model.predict_proba(self.test.x.row(j))[self.test.y[j] as usize];
                }
                acc / self.test.len() as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knnshap_core::exact_enum::shapley_enumeration;
    use knnshap_datasets::Features;

    fn tiny() -> (ClassDataset, ClassDataset) {
        // Two separable clusters on a line.
        let train = ClassDataset::new(
            Features::new(vec![-1.2, -1.0, -0.8, 0.8, 1.0, 1.2], 1),
            vec![0, 0, 0, 1, 1, 1],
            2,
        );
        let test = ClassDataset::new(
            Features::new(vec![-1.1, -0.9, 0.9, 1.1], 1),
            vec![0, 0, 1, 1],
            2,
        );
        (train, test)
    }

    #[test]
    fn full_coalition_is_accurate() {
        let (train, test) = tiny();
        let u = LogRegUtility::new(&train, &test, LogRegConfig::default());
        assert!((u.grand() - 1.0).abs() < 1e-9);
        assert_eq!(u.eval(&[]), 0.0);
    }

    #[test]
    fn shapley_values_favor_informative_points() {
        let (train, test) = tiny();
        let cfg = LogRegConfig {
            epochs: 60,
            ..Default::default()
        };
        let u = LogRegUtility::new(&train, &test, cfg);
        let sv = shapley_enumeration(&u);
        // every training point is helpful here; total = ν(I) = 1
        assert!((sv.total() - 1.0).abs() < 1e-9);
        assert!(sv.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn single_class_coalitions_at_least_cover_their_class() {
        let (train, test) = tiny();
        let u = LogRegUtility::new(&train, &test, LogRegConfig::default());
        // Training on class-0 data only must classify the class-0 test
        // points correctly (half the test set); depending on how the learned
        // direction extrapolates it may also get class 1 right.
        let v = u.eval(&[0, 1, 2]);
        assert!(v >= 0.5 - 1e-9, "accuracy {v}");
    }
}
