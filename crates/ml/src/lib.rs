//! Comparator models for the `knnshap` workspace.
//!
//! The paper benchmarks KNN against logistic regression twice: Fig. 8
//! (prediction accuracy of 1/2/5-NN vs. logistic regression on deep
//! features) and Fig. 16 (KNN Shapley values as a cheap *proxy* for logistic
//! regression Shapley values on Iris). This crate supplies the from-scratch
//! multinomial logistic regression those experiments need ([`logreg`]), a
//! retraining [`knnshap_core::Utility`] over it ([`logreg_utility`]) so the
//! Monte Carlo estimators can value data w.r.t. the logistic model, and the
//! §7 KNN-surrogate calibration ([`surrogate`]).
//!
//! ### Determinism contract
//!
//! Training is full-batch gradient descent from a zero initialization — no
//! minibatch RNG — so a fit (and therefore [`LogRegUtility`]'s ν values, and
//! any Monte Carlo run over them) is a pure function of the data and
//! hyperparameters.

pub mod logreg;
pub mod logreg_utility;
pub mod surrogate;

pub use logreg::{LogRegConfig, LogisticRegression};
pub use logreg_utility::LogRegUtility;
pub use surrogate::calibrate_k;
