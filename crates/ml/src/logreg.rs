//! Multinomial (softmax) logistic regression trained by full-batch gradient
//! descent with L2 regularization.
//!
//! Deliberately dependency-free and deterministic: weights start at zero and
//! the loss is convex, so a fixed-step descent converges to the same model
//! every run — a requirement for reproducible Shapley utilities that retrain
//! per coalition (Fig. 16).

use knnshap_datasets::ClassDataset;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LogRegConfig {
    pub learning_rate: f64,
    pub epochs: usize,
    /// L2 penalty strength λ (applied to weights, not biases).
    pub l2: f64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.5,
            epochs: 200,
            l2: 1e-4,
        }
    }
}

/// A trained softmax classifier: `c × d` weights plus `c` biases.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>, // row-major c × d
    bias: Vec<f64>,
    dim: usize,
    n_classes: usize,
}

impl LogisticRegression {
    /// Fit on a dataset. Classes absent from the sample simply keep zero
    /// scores, so training on single-class coalitions (common in Shapley
    /// evaluation) is well defined.
    pub fn fit(train: &ClassDataset, cfg: &LogRegConfig) -> Self {
        assert!(!train.is_empty(), "cannot fit on an empty dataset");
        let n = train.len();
        let d = train.dim();
        let c = train.n_classes as usize;
        let mut w = vec![0.0f64; c * d];
        let mut b = vec![0.0f64; c];
        let mut logits = vec![0.0f64; c];
        let mut grad_w = vec![0.0f64; c * d];
        let mut grad_b = vec![0.0f64; c];
        let inv_n = 1.0 / n as f64;
        for _ in 0..cfg.epochs {
            grad_w.iter_mut().for_each(|g| *g = 0.0);
            grad_b.iter_mut().for_each(|g| *g = 0.0);
            for i in 0..n {
                let x = train.x.row(i);
                softmax_logits(&w, &b, x, &mut logits);
                let y = train.y[i] as usize;
                for (k, &p) in logits.iter().enumerate() {
                    let err = p - f64::from(k == y);
                    let gw = &mut grad_w[k * d..(k + 1) * d];
                    for (g, &xf) in gw.iter_mut().zip(x) {
                        *g += err * xf as f64 * inv_n;
                    }
                    grad_b[k] += err * inv_n;
                }
            }
            for (wi, gi) in w.iter_mut().zip(&grad_w) {
                *wi -= cfg.learning_rate * (gi + cfg.l2 * *wi);
            }
            for (bi, gi) in b.iter_mut().zip(&grad_b) {
                *bi -= cfg.learning_rate * gi;
            }
        }
        Self {
            weights: w,
            bias: b,
            dim: d,
            n_classes: c,
        }
    }

    /// Class probabilities for a query.
    pub fn predict_proba(&self, x: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let mut p = vec![0.0f64; self.n_classes];
        softmax_logits(&self.weights, &self.bias, x, &mut p);
        p
    }

    /// Predicted class (argmax probability, ties toward smaller label).
    pub fn predict(&self, x: &[f32]) -> u32 {
        let p = self.predict_proba(x);
        let mut best = 0usize;
        for (k, &v) in p.iter().enumerate() {
            if v > p[best] {
                best = k;
            }
        }
        best as u32
    }

    /// 0/1 accuracy on a test set.
    pub fn accuracy(&self, test: &ClassDataset) -> f64 {
        assert_eq!(test.dim(), self.dim, "dimension mismatch");
        if test.is_empty() {
            return 0.0;
        }
        let hits = (0..test.len())
            .filter(|&i| self.predict(test.x.row(i)) == test.y[i])
            .count();
        hits as f64 / test.len() as f64
    }
}

/// In-place softmax of `wᵀx + b` (numerically stabilized by max-shift).
fn softmax_logits(w: &[f64], b: &[f64], x: &[f32], out: &mut [f64]) {
    let c = b.len();
    let d = x.len();
    for k in 0..c {
        let row = &w[k * d..(k + 1) * d];
        let mut dot = b[k];
        for (&wi, &xi) in row.iter().zip(x) {
            dot += wi * xi as f64;
        }
        out[k] = dot;
    }
    let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in out.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in out.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knnshap_datasets::synth::blobs::{self, BlobConfig};
    use knnshap_datasets::synth::iris::iris_like;
    use knnshap_datasets::Features;

    #[test]
    fn separable_clusters_reach_high_accuracy() {
        let cfg = BlobConfig {
            n: 300,
            dim: 4,
            n_classes: 3,
            cluster_std: 0.4,
            center_scale: 3.0,
            seed: 1,
        };
        let train = blobs::generate(&cfg);
        let test = blobs::queries(&cfg, 60, 9);
        let m = LogisticRegression::fit(&train, &LogRegConfig::default());
        let acc = m.accuracy(&test);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn iris_like_accuracy_reasonable() {
        let d = iris_like(50, 4);
        let (train, test) = knnshap_datasets::split::train_test_split(&d, 0.3, 1);
        let m = LogisticRegression::fit(
            &train,
            &LogRegConfig {
                // The unnormalized iris feature scales need a longer descent
                // than the blob tests; 400 epochs plateaus around 0.8-0.9.
                epochs: 2000,
                ..Default::default()
            },
        );
        let acc = m.accuracy(&test);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let train = ClassDataset::new(Features::new(vec![0.0, 0.0, 1.0, 1.0], 2), vec![0, 1], 2);
        let m = LogisticRegression::fit(&train, &LogRegConfig::default());
        let p = m.predict_proba(&[0.3, 0.7]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn single_class_training_predicts_that_class() {
        let train = ClassDataset::new(Features::new(vec![0.0, 0.5, 1.0, 1.5], 2), vec![1, 1], 3);
        let m = LogisticRegression::fit(&train, &LogRegConfig::default());
        assert_eq!(m.predict(&[10.0, -3.0]), 1);
    }

    #[test]
    fn deterministic_fit() {
        let cfg = BlobConfig {
            n: 60,
            dim: 3,
            n_classes: 2,
            ..Default::default()
        };
        let train = blobs::generate(&cfg);
        let a = LogisticRegression::fit(&train, &LogRegConfig::default());
        let b = LogisticRegression::fit(&train, &LogRegConfig::default());
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_rejected() {
        let empty = ClassDataset::new(Features::new(vec![], 2), vec![], 2);
        LogisticRegression::fit(&empty, &LogRegConfig::default());
    }
}
