//! `KNNSHAP_THREADS=1` must degrade the global pool to fully serial
//! execution. This lives in its own integration-test binary (= its own
//! process) so the env var is set before anything touches
//! `ThreadPool::global()`, which reads it exactly once.

use knnshap_parallel::{current_threads, par_map, par_map_reduce, ThreadPool};

#[test]
fn env_var_forces_global_pool_serial() {
    std::env::set_var("KNNSHAP_THREADS", "1");

    assert_eq!(current_threads(), 1);
    assert_eq!(ThreadPool::global().threads(), 1);

    // Every closure runs on the calling thread, whatever cap the call asks for.
    let caller = std::thread::current().id();
    let ids = par_map(512, 8, |_| std::thread::current().id());
    assert!(ids.into_iter().all(|id| id == caller));

    // And the blocked reduction still produces the canonical serial tree.
    let total = par_map_reduce(777, 8, || 0.0f64, |a, i| *a += i as f64, |a, b| *a += b);
    assert_eq!(total, (0..777).map(|i| i as f64).sum::<f64>());
}
