//! Stress and edge-case battery for the work-stealing pool: the satellite
//! checklist of ISSUE 2 — empty input, one item, items ≫ workers, panic
//! propagation, nested regions, and determinism of the blocked reduction.

use knnshap_parallel::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn empty_input_on_every_entry_point() {
    let pool = ThreadPool::new(4);
    assert_eq!(pool.par_map(0, 4, |i| i), Vec::<usize>::new());
    let folded = pool.par_map_reduce(0, 4, || -1i32, |_, _| panic!("no items"), |_, _| ());
    assert_eq!(folded, -1);
    let mut nothing: [u8; 0] = [];
    pool.par_chunks(&mut nothing, 3, 4, |_, _| panic!("no chunks"));
}

#[test]
fn one_item() {
    let pool = ThreadPool::new(8);
    assert_eq!(pool.par_map(1, 8, |i| i + 1), vec![1]);
    let one = pool.par_map_reduce(1, 8, || 0u64, |a, i| *a += i as u64 + 10, |a, b| *a += b);
    assert_eq!(one, 10);
}

#[test]
fn many_items_few_workers() {
    // Items ≫ workers ≫ blocks-per-worker: everything must still be mapped
    // exactly once and land in its own slot.
    let pool = ThreadPool::new(3);
    let n = 100_000usize;
    let calls = AtomicUsize::new(0);
    let out = pool.par_map(n, 3, |i| {
        calls.fetch_add(1, Ordering::Relaxed);
        i as u64 * 2
    });
    assert_eq!(calls.load(Ordering::Relaxed), n);
    assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
}

#[test]
fn panic_in_task_propagates_and_pool_survives() {
    let pool = ThreadPool::new(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.par_map(1024, 4, |i| {
            if i == 517 {
                panic!("boom at {i}");
            }
            i
        })
    }));
    let payload = result.expect_err("panic must reach the submitting thread");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("boom at 517"), "unexpected payload: {msg}");

    // The pool must stay fully usable after a panicked region.
    assert_eq!(pool.par_map(5, 4, |i| i * i), vec![0, 1, 4, 9, 16]);
}

#[test]
fn panic_in_reduce_region_propagates() {
    let pool = ThreadPool::new(2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.par_map_reduce(
            600,
            2,
            || 0usize,
            |_, i| {
                if i == 300 {
                    panic!("step panic");
                }
            },
            |a, b| *a += b,
        )
    }));
    assert!(result.is_err());
}

#[test]
fn nested_par_map_does_not_deadlock() {
    // Every outer item runs a nested region on the same pool; waiting is
    // implemented as helping, so this must complete even though the outer
    // region already occupies every worker.
    let pool = ThreadPool::new(4);
    let table = pool.par_map(16, 4, |i| pool.par_map(16, 4, move |j| i * j));
    for (i, row) in table.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            assert_eq!(v, i * j);
        }
    }
}

#[test]
fn doubly_nested_regions() {
    let pool = ThreadPool::new(2);
    let sums = pool.par_map(4, 2, |i| {
        pool.par_map_reduce(64, 2, || 0usize, |a, j| *a += i + j, |a, b| *a += b)
    });
    for (i, &s) in sums.iter().enumerate() {
        assert_eq!(s, 64 * i + (0..64).sum::<usize>());
    }
}

#[test]
fn single_thread_pool_degrades_to_serial() {
    // `ThreadPool::new(1)` is the `KNNSHAP_THREADS=1` configuration of the
    // global pool (see tests/env_serial.rs for the env-var half): no worker
    // threads, every closure runs on the caller.
    let pool = ThreadPool::new(1);
    let caller = std::thread::current().id();
    let ids = pool.par_map(256, 8, |_| std::thread::current().id());
    assert!(ids.into_iter().all(|id| id == caller));
}

#[test]
fn reduction_is_bitwise_identical_across_thread_counts() {
    // Floating-point accumulation in a pathological order-sensitive setup:
    // magnitudes spanning ~16 decades, so any reordering of the reduction
    // tree would flip low bits.
    let pool = ThreadPool::new(8);
    let n = 10_000usize;
    let value = |i: usize| (i as f64 + 0.5) * 1e-8_f64.powi((i % 5) as i32 - 2);
    let run = |threads: usize| {
        pool.par_map_reduce(n, threads, || 0.0f64, |a, i| *a += value(i), |a, b| *a += b)
    };
    let serial = run(1);
    for threads in [2usize, 3, 4, 8] {
        // Repeat so nondeterministic scheduling would get many chances to
        // change a stealing pattern — the answer must never move.
        for _ in 0..5 {
            assert_eq!(
                run(threads).to_bits(),
                serial.to_bits(),
                "threads={threads}"
            );
        }
    }
}

#[test]
fn skewed_workloads_balance_and_stay_ordered() {
    // Cost ∝ item index: the tail blocks are far heavier than the head —
    // the static-chunking worst case that motivated stealing.
    let pool = ThreadPool::new(4);
    let n = 4_000usize;
    let out = pool.par_map(n, 4, |i| {
        let mut acc = 0u64;
        for j in 0..(i % 97) * 50 {
            acc = acc.wrapping_add((j as u64).wrapping_mul(2654435761));
        }
        (i, acc)
    });
    assert!(out.iter().enumerate().all(|(i, &(j, _))| i == j));
}

#[test]
fn concurrent_submitters_share_the_pool() {
    // Two OS threads submitting regions to one pool at once: regions must
    // not cross wires.
    let pool = ThreadPool::new(4);
    std::thread::scope(|scope| {
        let pool = &pool;
        let a = scope.spawn(move || pool.par_map(2_000, 4, |i| i as u64 + 1));
        let b = scope.spawn(move || pool.par_map(2_000, 4, |i| i as u64 * 3));
        let a = a.join().unwrap();
        let b = b.join().unwrap();
        assert!(a.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
        assert!(b.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    });
}
