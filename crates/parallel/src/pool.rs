//! The work-stealing thread pool.
//!
//! A [`ThreadPool`] owns `threads − 1` background workers; the thread that
//! submits a parallel region always participates as the region's first
//! worker, so a pool of size 1 spawns no threads at all and every operation
//! degrades to a plain serial loop on the caller.
//!
//! A *region* is one `par_map` / `par_chunks` / `par_map_reduce` call: the
//! item range is cut into [`Block`]s (boundaries depend only on the item
//! count — see `partition_with`), the blocks are dealt round-robin onto
//! per-participant deques, and each participant pops from the front of its
//! own deque and steals from the back of the others when it runs dry. The
//! submitting caller blocks until every block has finished — by working, not
//! by sleeping — which is also what makes nested regions deadlock-free: a
//! worker that starts a nested region drains it itself if nobody helps.
//!
//! Panics inside a task are caught per block; the first payload is stashed
//! and re-thrown on the submitting thread once the region completes, so a
//! panicking `par_map` behaves like a panicking serial loop (and the pool
//! stays usable afterwards).

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

// Telemetry instruments (no-ops unless `KNNSHAP_METRICS`/`KNNSHAP_LOG`
// enable them — `knnshap_obs` is write-only from here, so the counters can
// observe scheduling without being able to influence it). Utilization is
// derived downstream as `pool.busy_micros / pool.capacity_micros`:
// capacity accrues `workers × wall` per region, busy accrues actual
// block-execution time.
static POOL_STEALS: knnshap_obs::Counter = knnshap_obs::Counter::new("pool.steals");
static POOL_BLOCKS: knnshap_obs::Counter = knnshap_obs::Counter::new("pool.blocks");
static POOL_REGIONS: knnshap_obs::Counter = knnshap_obs::Counter::new("pool.regions");
static POOL_BUSY_MICROS: knnshap_obs::Counter = knnshap_obs::Counter::new("pool.busy_micros");
static POOL_CAPACITY_MICROS: knnshap_obs::Counter =
    knnshap_obs::Counter::new("pool.capacity_micros");
static POOL_QUEUE_DEPTH: knnshap_obs::Gauge = knnshap_obs::Gauge::new("pool.queue_depth");

/// A contiguous run of item indices `[start, end)` — the unit of scheduling
/// and of reduction. Block boundaries are a function of the item count
/// alone, never of the thread count, which is what makes
/// [`ThreadPool::par_map_reduce`] bitwise-deterministic.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Block {
    /// Position of this block in the fixed partition (reduction order).
    pub(crate) index: usize,
    pub(crate) start: usize,
    pub(crate) end: usize,
}

/// Upper bound on scheduling units per region: enough slack for stealing to
/// balance very skewed per-item costs, few enough that per-block overhead is
/// invisible next to any real valuation workload.
const MAX_BLOCKS: usize = 256;

/// Tighter bound for reductions: every reduce block materializes a full
/// accumulator (for the Shapley drivers, a vector the size of the training
/// set) that stays live until the final fold, so the block count directly
/// multiplies peak memory. 32 still leaves 4-to-1 stealing slack at 8
/// workers while keeping the worst case at 32 accumulators.
const MAX_REDUCE_BLOCKS: usize = 32;

/// Fixed tiling of `0..n` into `size`-item blocks (the last may be short).
/// Depends only on the arguments — never on the thread count — preserving
/// the Block invariants (contiguous, `index` = position) the determinism
/// contract rests on.
fn tile_with_size(n: usize, size: usize) -> Vec<Block> {
    let size = size.max(1);
    (0..n.div_ceil(size))
        .map(|b| Block {
            index: b,
            start: b * size,
            end: ((b + 1) * size).min(n),
        })
        .collect()
}

/// Fixed partition of `0..n` into at most `max_blocks` equal blocks (the
/// last may be short).
fn partition_with(n: usize, max_blocks: usize) -> Vec<Block> {
    tile_with_size(n, n.div_ceil(max_blocks))
}

/// One in-flight parallel region.
struct Region {
    /// The borrowed task, lifetime-erased to a raw pointer (not a `&'static`
    /// reference: workers may briefly hold the `Region` Arc after the
    /// submitting caller returns and the closure dies, and a dangling
    /// reference would be invalid even if never dereferenced). Only
    /// dereferenced while executing a popped block; the submitting caller
    /// does not return from [`ThreadPool::run_blocks`] until `pending` hits
    /// zero, so the pointee outlives every dereference.
    func: *const (dyn Fn(Block) + Sync),
    /// Per-participant block queues. Owner pops the front, thieves steal
    /// from the back.
    deques: Vec<Mutex<VecDeque<Block>>>,
    /// Blocks not yet finished executing.
    pending: AtomicUsize,
    /// Participants that have ever joined (caller claims slot 0 before the
    /// region is published). Monotonic; capped by `deques.len()`.
    joined: AtomicUsize,
    /// Set on the first task panic; later blocks are skipped (but still
    /// drained and counted) so the region winds down quickly.
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: every field but `func` is Send + Sync; `func` points at a `Sync`
// closure on the submitting caller's stack that outlives all dereferences
// (see the field docs).
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    fn new(blocks: Vec<Block>, slots: usize, func: *const (dyn Fn(Block) + Sync)) -> Self {
        let pending = blocks.len();
        let mut deques: Vec<VecDeque<Block>> = (0..slots).map(|_| VecDeque::new()).collect();
        for (i, b) in blocks.into_iter().enumerate() {
            deques[i % slots].push_back(b);
        }
        Region {
            func,
            deques: deques.into_iter().map(Mutex::new).collect(),
            pending: AtomicUsize::new(pending),
            joined: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    /// Does any deque still hold an unclaimed block?
    fn has_queued_work(&self) -> bool {
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }

    /// Pop from our own deque, else steal from the others (scanning from our
    /// right-hand neighbor so thieves spread out).
    fn pop_or_steal(&self, slot: usize) -> Option<Block> {
        if let Some(b) = self.deques[slot].lock().unwrap().pop_front() {
            return Some(b);
        }
        let n = self.deques.len();
        for off in 1..n {
            let stolen = self.deques[(slot + off) % n].lock().unwrap().pop_back();
            if stolen.is_some() {
                POOL_STEALS.incr();
                return stolen;
            }
        }
        None
    }

    /// Run blocks until none can be claimed. Returns when the participant
    /// has nothing left to do (other participants may still be executing).
    fn participate(&self, slot: usize) {
        while let Some(block) = self.pop_or_steal(slot) {
            if !self.panicked.load(Ordering::Acquire) {
                POOL_BLOCKS.incr();
                let timer = knnshap_obs::metrics_enabled().then(std::time::Instant::now);
                // SAFETY: we hold an unexecuted block, so the submitting
                // caller is still inside `run_blocks` and the closure is
                // alive.
                let func = unsafe { &*self.func };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| func(block))) {
                    self.panicked.store(true, Ordering::Release);
                    let mut first = self.panic.lock().unwrap();
                    if first.is_none() {
                        *first = Some(payload);
                    }
                }
                if let Some(t) = timer {
                    POOL_BUSY_MICROS.add(t.elapsed().as_micros() as u64);
                }
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = self.done.lock().unwrap();
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }
}

/// State shared between the pool handle and its background workers.
struct Shared {
    /// Regions with (possibly) unclaimed blocks. The submitting caller
    /// pushes on entry and removes on completion.
    regions: Mutex<Vec<Arc<Region>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let claimed: (Arc<Region>, usize) = {
            let mut regions = shared.regions.lock().unwrap();
            'wait: loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                for r in regions.iter() {
                    if r.has_queued_work() {
                        let slot = r.joined.fetch_add(1, Ordering::AcqRel);
                        if slot < r.deques.len() {
                            break 'wait (Arc::clone(r), slot);
                        }
                        // Concurrency cap reached; leave it to the joined
                        // participants (the increment is harmless — `joined`
                        // is monotonic and only compared against the cap).
                    }
                }
                regions = shared.work_cv.wait(regions).unwrap();
            }
        };
        claimed.0.participate(claimed.1);
    }
}

/// A work-stealing pool of `threads` workers (including every caller that
/// submits work). See the [crate docs](crate) for the API contract.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

impl ThreadPool {
    /// A dedicated pool with `threads` total workers (`threads − 1`
    /// background threads; the caller is always the first worker). A pool of
    /// size ≤ 1 spawns nothing and runs everything serially inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            regions: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("knnshap-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            threads,
            workers,
        }
    }

    /// The process-wide pool. Built on first use; `KNNSHAP_THREADS` is read
    /// once.
    ///
    /// Sizing: when `KNNSHAP_THREADS` is set it pins the pool exactly (so
    /// `=1` forces fully serial execution no matter what individual calls
    /// request). Otherwise the pool holds `max(cores, 8)` workers — the
    /// *default* concurrency of every API is still [`crate::current_threads`]
    /// (= the core count), but an explicit per-call `threads` above the core
    /// count gets real threads, matching the old `thread::scope` behavior
    /// and keeping the cross-thread-count determinism suites meaningful on
    /// small machines. Idle workers park on a condvar and cost nothing.
    pub fn global() -> &'static ThreadPool {
        GLOBAL.get_or_init(|| ThreadPool::new(crate::global_pool_threads()))
    }

    /// Total worker count (background workers + the submitting caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `func` once per block. Serial (caller thread, block order)
    /// when the effective concurrency is 1; otherwise submits a region and
    /// helps until it completes. Panics from `func` propagate to the caller
    /// either way.
    fn run_blocks(&self, blocks: Vec<Block>, threads: usize, func: &(dyn Fn(Block) + Sync)) {
        if blocks.is_empty() {
            return;
        }
        let cap = threads.max(1).min(self.threads).min(blocks.len());
        if cap <= 1 || self.workers.is_empty() {
            POOL_BLOCKS.add(blocks.len() as u64);
            let timer = knnshap_obs::metrics_enabled().then(std::time::Instant::now);
            for b in blocks {
                func(b);
            }
            if let Some(t) = timer {
                // Serial execution: one worker, fully busy.
                let us = t.elapsed().as_micros() as u64;
                POOL_BUSY_MICROS.add(us);
                POOL_CAPACITY_MICROS.add(us);
            }
            return;
        }
        POOL_REGIONS.incr();
        POOL_QUEUE_DEPTH.set(blocks.len() as f64);
        knnshap_obs::emit(
            knnshap_obs::Level::Debug,
            "pool",
            "region",
            &[("blocks", blocks.len().into()), ("workers", cap.into())],
        );
        let region_timer = knnshap_obs::metrics_enabled().then(std::time::Instant::now);
        // SAFETY: lifetime erasure of the borrowed closure. Every
        // dereference of the pointer is confined to this call — we help
        // until `pending == 0` and only then return, and participants never
        // touch it after their last block.
        let func = unsafe {
            std::mem::transmute::<*const (dyn Fn(Block) + Sync + '_), *const (dyn Fn(Block) + Sync)>(
                func,
            )
        };
        let region = Arc::new(Region::new(blocks, cap, func));
        let slot = region.joined.fetch_add(1, Ordering::AcqRel);
        debug_assert_eq!(slot, 0, "caller claims slot 0 before publication");
        {
            let mut regions = self.shared.regions.lock().unwrap();
            regions.push(Arc::clone(&region));
            self.shared.work_cv.notify_all();
        }
        region.participate(slot);
        let mut done = region.done.lock().unwrap();
        while !*done {
            done = region.done_cv.wait(done).unwrap();
        }
        drop(done);
        self.shared
            .regions
            .lock()
            .unwrap()
            .retain(|r| !Arc::ptr_eq(r, &region));
        if let Some(t) = region_timer {
            POOL_CAPACITY_MICROS.add((t.elapsed().as_micros() as u64).saturating_mul(cap as u64));
        }
        // Fold boundary: the region is fully reduced, so drain this thread's
        // event buffer (no-op when logging is off).
        knnshap_obs::flush();
        let payload = region.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Order-preserving parallel map: `(0..n).map(f)` with at most `threads`
    /// workers. Output `i` is exactly `f(i)` regardless of thread count.
    ///
    /// Implemented on [`ThreadPool::par_chunks`] over the output buffer with
    /// the standard 256-block granularity.
    pub fn par_map<U, F>(&self, n: usize, threads: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let mut slots: Vec<Option<U>> = Vec::new();
        slots.resize_with(n, || None);
        let chunk_size = n.div_ceil(MAX_BLOCKS).max(1);
        self.par_chunks(&mut slots, chunk_size, threads, |offset, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(offset + j));
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every index computed"))
            .collect()
    }

    /// Parallel iteration over disjoint `chunk_size`-sized sub-slices of
    /// `items`; `f` receives the chunk's offset into `items` and the chunk.
    /// Chunk boundaries are caller-fixed, so results cannot depend on the
    /// thread count.
    pub fn par_chunks<T, F>(&self, items: &mut [T], chunk_size: usize, threads: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = items.len();
        let base = SendPtr(items.as_mut_ptr());
        let blocks = tile_with_size(n, chunk_size);
        self.run_blocks(blocks, threads, &|b: Block| {
            // SAFETY: blocks tile `0..n` disjointly, so each element is
            // visible to exactly one participant at a time.
            let sub = unsafe { std::slice::from_raw_parts_mut(base.at(b.start), b.end - b.start) };
            f(b.start, sub);
        });
    }

    /// Deterministic parallel fold: `0..n` is cut into a fixed partition (at
    /// most `MAX_REDUCE_BLOCKS` (= 32) blocks, a function of `n` alone), each
    /// block folds its items (in order) into a fresh `init()` accumulator
    /// via `step`, and the per-block accumulators are combined **in block
    /// order on the calling thread** via `reduce`. The reduction tree
    /// therefore depends only on `n` — never on `threads` or on scheduling —
    /// so floating-point results are bitwise-identical for every thread
    /// count, including 1.
    pub fn par_map_reduce<A, I, S, R>(
        &self,
        n: usize,
        threads: usize,
        init: I,
        step: S,
        reduce: R,
    ) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        S: Fn(&mut A, usize) + Sync,
        R: Fn(&mut A, A),
    {
        self.par_indexed_map_reduce(n, threads, |_| init(), step, reduce)
    }

    /// [`ThreadPool::par_map_reduce`] whose `init` receives the block's index
    /// range, for accumulators that carry block-scoped scratch (a forked
    /// utility, a stream-offset table, a reusable permutation buffer). The
    /// partition and reduction order are exactly those of `par_map_reduce`,
    /// so the same bitwise-determinism contract holds — provided `init`
    /// derives state only from the given range (which is a function of `n`
    /// alone), never from the executing thread.
    pub fn par_indexed_map_reduce<A, I, S, R>(
        &self,
        n: usize,
        threads: usize,
        init: I,
        step: S,
        reduce: R,
    ) -> A
    where
        A: Send,
        I: Fn(std::ops::Range<usize>) -> A + Sync,
        S: Fn(&mut A, usize) + Sync,
        R: Fn(&mut A, A),
    {
        let blocks = partition_with(n, MAX_REDUCE_BLOCKS);
        if blocks.is_empty() {
            return init(0..0);
        }
        let mut partials: Vec<Option<A>> = Vec::new();
        partials.resize_with(blocks.len(), || None);
        let out = SendPtr(partials.as_mut_ptr());
        self.run_blocks(blocks, threads, &|b: Block| {
            let mut acc = init(b.start..b.end);
            for i in b.start..b.end {
                step(&mut acc, i);
            }
            // SAFETY: one writer per block index; `partials` outlives the
            // region.
            unsafe { *out.at(b.index) = Some(acc) };
        });
        let mut parts = partials.into_iter().map(|p| p.expect("every block folded"));
        let mut total = parts.next().expect("at least one block");
        for p in parts {
            reduce(&mut total, p);
        }
        total
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.regions.lock().unwrap();
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Raw-pointer wrapper asserting that the wrapped writes are disjoint across
/// participants (see the SAFETY comments at each use). Accessed only through
/// [`SendPtr::at`] so closures capture the `Sync` wrapper, not the bare
/// pointer (edition-2021 disjoint capture would otherwise grab the field).
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to element `i` of the wrapped buffer.
    ///
    /// # Safety
    /// `i` must be in bounds of the allocation the wrapper was built from,
    /// and the caller must be the only participant touching that element.
    unsafe fn at(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_tiles_the_range_exactly() {
        for max_blocks in [MAX_BLOCKS, MAX_REDUCE_BLOCKS] {
            for n in [0usize, 1, 2, 255, 256, 257, 1000, 100_000] {
                let blocks = partition_with(n, max_blocks);
                assert!(blocks.len() <= max_blocks);
                let mut next = 0usize;
                for (i, b) in blocks.iter().enumerate() {
                    assert_eq!(b.index, i);
                    assert_eq!(b.start, next);
                    assert!(b.end > b.start);
                    next = b.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn partition_is_thread_count_free() {
        // The partition takes no thread-count input at all; pin the shape so
        // a future "optimization" that sneaks one in breaks loudly.
        let blocks = partition_with(1000, MAX_BLOCKS);
        assert_eq!(blocks.len(), 250);
        assert!(blocks.iter().all(|b| b.end - b.start == 4));
    }

    #[test]
    fn pool_of_one_spawns_no_workers() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        let caller = std::thread::current().id();
        let ids = pool.par_map(64, 8, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.par_map(3, 0, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn stealing_pool_uses_background_workers() {
        let pool = ThreadPool::new(4);
        // Every block sleeps, so a worker that gets any CPU time within the
        // ~100ms a serial drain would take will steal something. Scheduling
        // on a loaded one-core machine can still starve the workers for a
        // whole region, so allow a few attempts before declaring failure;
        // correctness (order preservation) is asserted on every attempt.
        let mut stolen = false;
        for _ in 0..5 {
            let ids = pool.par_map(64, 4, |i| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                (i, std::thread::current().id())
            });
            assert!(ids.iter().enumerate().all(|(i, &(j, _))| i == j));
            let distinct: std::collections::HashSet<_> = ids.iter().map(|&(_, id)| id).collect();
            if distinct.len() > 1 {
                stolen = true;
                break;
            }
        }
        assert!(stolen, "no work was stolen in any attempt");
    }

    #[test]
    fn telemetry_counts_work_without_changing_results() {
        let pool = ThreadPool::new(4);
        let off: Vec<u64> = pool
            .par_map(257, 4, |i| (i as f64).sqrt())
            .iter()
            .map(|v| v.to_bits())
            .collect();
        knnshap_obs::set_metrics(true);
        let before = knnshap_obs::snapshot().counter("pool.blocks").unwrap_or(0);
        let on: Vec<u64> = pool
            .par_map(257, 4, |i| (i as f64).sqrt())
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let after = knnshap_obs::snapshot().counter("pool.blocks").unwrap_or(0);
        knnshap_obs::set_metrics(false);
        assert!(after > before, "enabled run must count blocks");
        assert_eq!(off, on, "telemetry must not move a bit");
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(3);
        let _ = pool.par_map(10, 3, |i| i);
        drop(pool); // must not hang
    }
}
