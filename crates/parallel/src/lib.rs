//! # knnshap_parallel — work-stealing runtime with a determinism contract
//!
//! Every hot path in the workspace used to shard work with one-off
//! `std::thread::scope` blocks and fixed even chunking. That loses exactly
//! where the paper's extended estimators hurt most: per-item cost is highly
//! non-uniform (weighted Shapley recursions, LSH table builds, skewed query
//! batches), so static shards finish at very different times. This crate
//! replaces all of them with one hand-rolled work-stealing pool.
//!
//! ## API
//!
//! * [`current_threads`] — the workspace-wide worker-count policy: the
//!   `KNNSHAP_THREADS` env var when set to a positive integer, else one
//!   worker per available core. Every default that used to read
//!   `available_parallelism` directly now routes through here.
//! * [`par_map`]`(n, threads, f)` — order-preserving `(0..n).map(f)`.
//! * [`par_chunks`]`(items, chunk_size, threads, f)` — disjoint mutable
//!   chunks of a slice, chunk boundaries fixed by the caller.
//! * [`par_map_reduce`]`(n, threads, init, step, reduce)` — blocked fold
//!   whose reduction order is a function of `n` alone.
//! * [`par_indexed_map_reduce`] — the same fold, but `init` sees the block's
//!   index range so accumulators can set up block-scoped scratch (how the
//!   Monte Carlo estimators seat a forked utility per block).
//! * [`ThreadPool`] — the pool itself, for dedicated pools in tests or
//!   embedders; the free functions above run on a lazily-built global pool
//!   sized by [`current_threads`].
//!
//! ## Determinism contract
//!
//! Parallel results are **bitwise-identical across thread counts**,
//! including the serial case:
//!
//! * `par_map` writes `f(i)` into slot `i` — scheduling cannot reorder it.
//! * `par_map_reduce` cuts `0..n` into a fixed partition (a function of `n`
//!   only), folds each block in index order into a fresh accumulator, and
//!   combines the per-block accumulators in block order on the calling
//!   thread. The floating-point reduction tree is therefore invariant under
//!   the thread count and under scheduling, and `threads = 1` executes the
//!   *same* tree serially.
//!
//! This is what lets the estimator suites assert that Shapley vectors from
//! 1-, 2- and 8-thread runs agree to the last bit (see
//! `tests/parallel_determinism.rs` at the workspace root).
//!
//! ## Scheduling
//!
//! Blocks are dealt round-robin onto per-participant deques; owners pop the
//! front, idle participants steal from the back of their neighbors. The
//! submitting thread always participates (a pool of size 1 spawns no
//! threads), panics in tasks are caught and re-thrown on the submitter, and
//! nested regions are deadlock-free because waiting is implemented as
//! helping.
//!
//! ```
//! // Order-preserving map, deterministic blocked reduction.
//! let squares = knnshap_parallel::par_map(8, 4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let sum: f64 = knnshap_parallel::par_map_reduce(
//!     1_000,
//!     4,
//!     || 0.0f64,
//!     |acc, i| *acc += (i as f64).sqrt(),
//!     |a, b| *a += b,
//! );
//! let serial = knnshap_parallel::par_map_reduce(
//!     1_000,
//!     1,
//!     || 0.0f64,
//!     |acc, i| *acc += (i as f64).sqrt(),
//!     |a, b| *a += b,
//! );
//! assert_eq!(sum.to_bits(), serial.to_bits()); // bitwise, not approximately
//! ```

mod pool;

pub use pool::ThreadPool;

/// Worker-count policy for the whole workspace: `KNNSHAP_THREADS` when set
/// to a positive integer, else one worker per available core (1 if the
/// hardware count is unavailable). `0`, empty, or garbage values fall back
/// to the hardware count.
///
/// The global pool reads this once, on first use.
pub fn current_threads() -> usize {
    threads_from(std::env::var("KNNSHAP_THREADS").ok().as_deref())
}

/// The one place the `KNNSHAP_THREADS` value is interpreted: a positive
/// integer wins; `0`, empty, or garbage count as unset.
fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |t| t.get())
}

/// The parsing half of [`current_threads`], split out so the env-var policy
/// is testable without mutating the process environment.
pub fn threads_from(var: Option<&str>) -> usize {
    parse_threads(var).unwrap_or_else(hardware_threads)
}

/// Worker floor for the global pool when `KNNSHAP_THREADS` is unset: callers
/// that explicitly ask for up to this many threads get them even on machines
/// with fewer cores (see [`ThreadPool::global`] for the rationale).
const MIN_GLOBAL_POOL: usize = 8;

/// Size of the global pool: `KNNSHAP_THREADS` exactly when set, else
/// `max(cores, MIN_GLOBAL_POOL)`.
pub(crate) fn global_pool_threads() -> usize {
    match parse_threads(std::env::var("KNNSHAP_THREADS").ok().as_deref()) {
        Some(n) => n,
        None => hardware_threads().max(MIN_GLOBAL_POOL),
    }
}

/// Order-preserving parallel map over `0..n` on the global pool, capped at
/// `threads` workers. Output `i` is exactly `f(i)` for every thread count.
pub fn par_map<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    ThreadPool::global().par_map(n, threads, f)
}

/// Parallel iteration over disjoint `chunk_size` chunks of `items` on the
/// global pool; `f` gets each chunk's offset and the mutable chunk.
pub fn par_chunks<T, F>(items: &mut [T], chunk_size: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    ThreadPool::global().par_chunks(items, chunk_size, threads, f)
}

/// Deterministic parallel fold on the global pool: per-block accumulators
/// (`init` + `step` over each block's indices in order) combined in block
/// order via `reduce`. Bitwise-identical results for every `threads` value;
/// returns `init()` when `n == 0`. See the [crate docs](crate) for the full
/// contract.
pub fn par_map_reduce<A, I, S, R>(n: usize, threads: usize, init: I, step: S, reduce: R) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    S: Fn(&mut A, usize) + Sync,
    R: Fn(&mut A, A),
{
    ThreadPool::global().par_map_reduce(n, threads, init, step, reduce)
}

/// [`par_map_reduce`] whose `init` receives the block's index range, so
/// accumulators can carry block-scoped scratch (forked utilities, stream
/// tables, reusable permutation buffers). Same fixed partition and block-order
/// reduction — and therefore the same bitwise-determinism contract — as
/// [`par_map_reduce`]; the parallel Monte Carlo estimators in `knnshap_core`
/// are built on this entry point.
pub fn par_indexed_map_reduce<A, I, S, R>(
    n: usize,
    threads: usize,
    init: I,
    step: S,
    reduce: R,
) -> A
where
    A: Send,
    I: Fn(std::ops::Range<usize>) -> A + Sync,
    S: Fn(&mut A, usize) + Sync,
    R: Fn(&mut A, A),
{
    ThreadPool::global().par_indexed_map_reduce(n, threads, init, step, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_from_env_policy() {
        let hw = std::thread::available_parallelism().map_or(1, |t| t.get());
        assert_eq!(threads_from(Some("1")), 1);
        assert_eq!(threads_from(Some("8")), 8);
        assert_eq!(threads_from(Some(" 3 ")), 3);
        assert_eq!(threads_from(Some("0")), hw);
        assert_eq!(threads_from(Some("not-a-number")), hw);
        assert_eq!(threads_from(None), hw);
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn par_map_reduce_empty_returns_init() {
        let v = par_map_reduce(0, 8, || 7i64, |_, _| unreachable!(), |_, _| unreachable!());
        assert_eq!(v, 7);
    }

    #[test]
    fn par_indexed_map_reduce_sees_block_ranges() {
        // Each block's accumulator starts at its range start; folding the
        // starts plus the per-item steps must cover 0..n exactly once, and
        // the result must be thread-count-free.
        let run = |threads: usize| -> (u64, usize) {
            par_indexed_map_reduce(
                1000,
                threads,
                |range| (0u64, range.start),
                |acc, i| {
                    assert!(i >= acc.1, "item before block start");
                    acc.0 += i as u64;
                },
                |a, b| a.0 += b.0,
            )
        };
        let serial = run(1);
        assert_eq!(serial.0, (0..1000u64).sum::<u64>());
        for threads in [2, 8] {
            assert_eq!(run(threads), serial);
        }
    }

    #[test]
    fn par_indexed_map_reduce_empty_gets_empty_range() {
        let v = par_indexed_map_reduce(
            0,
            4,
            |range| {
                assert!(range.is_empty());
                3i32
            },
            |_, _| unreachable!(),
            |_, _| unreachable!(),
        );
        assert_eq!(v, 3);
    }

    #[test]
    fn par_chunks_empty_and_offsets() {
        let mut empty: Vec<u32> = Vec::new();
        par_chunks(&mut empty, 4, 8, |_, _| panic!("no chunks for no items"));

        let mut data = vec![0usize; 103];
        par_chunks(&mut data, 10, 4, |offset, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = offset + j;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }
}
