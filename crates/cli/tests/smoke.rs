//! End-to-end smoke tests for the `knnshap` CLI: `synth` a tiny dataset to
//! CSV, `value` it back through the exact pipeline, and check that the
//! emitted Shapley values are non-empty and finite. Everything runs through
//! `knnshap_cli::run` (the same code path as `main`), no subprocess needed.

use std::path::PathBuf;

/// Unique-ish temp paths per test so parallel test threads don't collide.
fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("knnshap_smoke_{}_{}", std::process::id(), name));
    p
}

struct TempFiles(Vec<PathBuf>);

impl Drop for TempFiles {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[test]
fn synth_then_value_produces_finite_shapley_values() {
    let train = temp_path("train.csv");
    let test = temp_path("test.csv");
    let values = temp_path("values.csv");
    let _cleanup = TempFiles(vec![train.clone(), test.clone(), values.clone()]);

    let synth_report = knnshap_cli::run([
        "synth",
        "--kind",
        "blobs",
        "--n",
        "60",
        "--dim",
        "4",
        "--classes",
        "2",
        "--seed",
        "5",
        "--out",
        train.to_str().unwrap(),
        "--queries",
        "8",
        "--queries-out",
        test.to_str().unwrap(),
    ])
    .expect("synth should succeed");
    assert!(!synth_report.trim().is_empty());
    assert!(train.exists(), "train CSV written");
    assert!(test.exists(), "test CSV written");

    let value_report = knnshap_cli::run([
        "value",
        "--train",
        train.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "3",
        "--method",
        "exact",
        "--out",
        values.to_str().unwrap(),
    ])
    .expect("value should succeed");
    assert!(!value_report.trim().is_empty());

    // The CSV side effect holds one finite value per training point, and the
    // efficiency axiom keeps them inside [-1, 1] for a 0/1-utility game.
    let csv = std::fs::read_to_string(&values).expect("values CSV written");
    let mut n_rows = 0usize;
    let mut sum = 0.0f64;
    for line in csv.lines().skip(1) {
        let value: f64 = line
            .rsplit(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("non-numeric value in '{line}': {e}"));
        assert!(value.is_finite(), "non-finite Shapley value: {value}");
        assert!(value.abs() <= 1.0 + 1e-9, "implausible magnitude: {value}");
        sum += value;
        n_rows += 1;
    }
    assert_eq!(n_rows, 60, "one Shapley value per training point");
    // Efficiency: values sum to v(N) − v(∅) ∈ [−1, 1], and for a dataset
    // where KNN beats the empty predictor the sum is strictly positive.
    assert!(
        sum.is_finite() && sum.abs() <= 1.0 + 1e-9,
        "efficiency violated: {sum}"
    );
}

#[test]
fn value_reports_summary_on_stdout_path() {
    let train = temp_path("t2_train.csv");
    let test = temp_path("t2_test.csv");
    let _cleanup = TempFiles(vec![train.clone(), test.clone()]);

    knnshap_cli::run([
        "synth",
        "--kind",
        "blobs",
        "--n",
        "30",
        "--dim",
        "3",
        "--classes",
        "3",
        "--seed",
        "11",
        "--out",
        train.to_str().unwrap(),
        "--queries",
        "5",
        "--queries-out",
        test.to_str().unwrap(),
    ])
    .expect("synth should succeed");

    let report = knnshap_cli::run([
        "value",
        "--train",
        train.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "1",
        "--method",
        "truncated",
        "--eps",
        "0.1",
    ])
    .expect("value (truncated) should succeed");
    assert!(!report.trim().is_empty(), "empty report");
}

#[test]
fn bad_flags_are_rejected_not_ignored() {
    let err = knnshap_cli::run(["synth", "--frobnicate", "yes", "--out", "/dev/null"])
        .expect_err("unknown flag must error");
    assert!(err.to_string().contains("frobnicate"), "got: {err}");
}

#[test]
fn sharded_value_round_trip_is_byte_identical() {
    // The full operator workflow from docs/sharding.md, end to end through
    // the public CLI: synth → unsharded value → `--shards 3` → per-process
    // shard/merge — every route must produce the same bytes.
    let train = temp_path("sh_train.csv");
    let test = temp_path("sh_test.csv");
    let direct = temp_path("sh_direct.csv");
    let inproc = temp_path("sh_inproc.csv");
    let merged = temp_path("sh_merged.csv");
    let shards: Vec<_> = (0..3)
        .map(|i| temp_path(&format!("sh_{i}.shard")))
        .collect();
    let mut cleanup = vec![
        train.clone(),
        test.clone(),
        direct.clone(),
        inproc.clone(),
        merged.clone(),
    ];
    cleanup.extend(shards.iter().cloned());
    let _cleanup = TempFiles(cleanup);

    knnshap_cli::run([
        "synth",
        "--kind",
        "blobs",
        "--n",
        "50",
        "--dim",
        "4",
        "--classes",
        "2",
        "--seed",
        "3",
        "--out",
        train.to_str().unwrap(),
        "--queries",
        "7",
        "--queries-out",
        test.to_str().unwrap(),
    ])
    .expect("synth should succeed");
    let base = |out: &std::path::Path| -> Vec<String> {
        vec![
            "value".into(),
            "--train".into(),
            train.to_str().unwrap().into(),
            "--test".into(),
            test.to_str().unwrap().into(),
            "--k".into(),
            "3".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ]
    };

    let direct_report = knnshap_cli::run(base(&direct)).expect("unsharded value");
    let mut sharded_args = base(&inproc);
    sharded_args.extend(["--shards".into(), "3".into()]);
    let sharded_report = knnshap_cli::run(sharded_args).expect("value --shards 3");

    // `value --shards 3` is indistinguishable from the unsharded run:
    // same report text, byte-identical CSV (full-precision round-trip
    // formatting makes CSV equality bitwise Shapley equality).
    assert_eq!(
        direct_report.replace(direct.to_str().unwrap(), "X"),
        sharded_report.replace(inproc.to_str().unwrap(), "X"),
        "reports differ only in the --out path"
    );
    assert_eq!(
        std::fs::read(&direct).unwrap(),
        std::fs::read(&inproc).unwrap(),
        "value --shards 3 CSV must match unsharded CSV byte for byte"
    );

    // Multi-process style: one `shard` invocation per shard file, then `merge`.
    for (i, p) in shards.iter().enumerate() {
        knnshap_cli::run([
            "shard",
            "--train",
            train.to_str().unwrap(),
            "--test",
            test.to_str().unwrap(),
            "--k",
            "3",
            "--shard-index",
            &i.to_string(),
            "--shard-count",
            "3",
            "--out",
            p.to_str().unwrap(),
        ])
        .expect("shard should succeed");
    }
    let inputs = shards
        .iter()
        .map(|p| p.to_str().unwrap())
        .collect::<Vec<_>>()
        .join(",");
    knnshap_cli::run([
        "merge",
        "--train",
        train.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "3",
        "--inputs",
        &inputs,
        "--out",
        merged.to_str().unwrap(),
    ])
    .expect("merge should succeed");
    assert_eq!(
        std::fs::read(&direct).unwrap(),
        std::fs::read(&merged).unwrap(),
        "shard/merge CSV must match unsharded CSV byte for byte"
    );
}
