//! End-to-end smoke tests for the `knnshap` CLI: `synth` a tiny dataset to
//! CSV, `value` it back through the exact pipeline, and check that the
//! emitted Shapley values are non-empty and finite. Everything runs through
//! `knnshap_cli::run` (the same code path as `main`), no subprocess needed.

use std::path::PathBuf;

/// Unique-ish temp paths per test so parallel test threads don't collide.
fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("knnshap_smoke_{}_{}", std::process::id(), name));
    p
}

struct TempFiles(Vec<PathBuf>);

impl Drop for TempFiles {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[test]
fn synth_then_value_produces_finite_shapley_values() {
    let train = temp_path("train.csv");
    let test = temp_path("test.csv");
    let values = temp_path("values.csv");
    let _cleanup = TempFiles(vec![train.clone(), test.clone(), values.clone()]);

    let synth_report = knnshap_cli::run([
        "synth",
        "--kind",
        "blobs",
        "--n",
        "60",
        "--dim",
        "4",
        "--classes",
        "2",
        "--seed",
        "5",
        "--out",
        train.to_str().unwrap(),
        "--queries",
        "8",
        "--queries-out",
        test.to_str().unwrap(),
    ])
    .expect("synth should succeed");
    assert!(!synth_report.trim().is_empty());
    assert!(train.exists(), "train CSV written");
    assert!(test.exists(), "test CSV written");

    let value_report = knnshap_cli::run([
        "value",
        "--train",
        train.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "3",
        "--method",
        "exact",
        "--out",
        values.to_str().unwrap(),
    ])
    .expect("value should succeed");
    assert!(!value_report.trim().is_empty());

    // The CSV side effect holds one finite value per training point, and the
    // efficiency axiom keeps them inside [-1, 1] for a 0/1-utility game.
    let csv = std::fs::read_to_string(&values).expect("values CSV written");
    let mut n_rows = 0usize;
    let mut sum = 0.0f64;
    for line in csv.lines().skip(1) {
        let value: f64 = line
            .rsplit(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("non-numeric value in '{line}': {e}"));
        assert!(value.is_finite(), "non-finite Shapley value: {value}");
        assert!(value.abs() <= 1.0 + 1e-9, "implausible magnitude: {value}");
        sum += value;
        n_rows += 1;
    }
    assert_eq!(n_rows, 60, "one Shapley value per training point");
    // Efficiency: values sum to v(N) − v(∅) ∈ [−1, 1], and for a dataset
    // where KNN beats the empty predictor the sum is strictly positive.
    assert!(
        sum.is_finite() && sum.abs() <= 1.0 + 1e-9,
        "efficiency violated: {sum}"
    );
}

#[test]
fn value_reports_summary_on_stdout_path() {
    let train = temp_path("t2_train.csv");
    let test = temp_path("t2_test.csv");
    let _cleanup = TempFiles(vec![train.clone(), test.clone()]);

    knnshap_cli::run([
        "synth",
        "--kind",
        "blobs",
        "--n",
        "30",
        "--dim",
        "3",
        "--classes",
        "3",
        "--seed",
        "11",
        "--out",
        train.to_str().unwrap(),
        "--queries",
        "5",
        "--queries-out",
        test.to_str().unwrap(),
    ])
    .expect("synth should succeed");

    let report = knnshap_cli::run([
        "value",
        "--train",
        train.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "1",
        "--method",
        "truncated",
        "--eps",
        "0.1",
    ])
    .expect("value (truncated) should succeed");
    assert!(!report.trim().is_empty(), "empty report");
}

#[test]
fn bad_flags_are_rejected_not_ignored() {
    let err = knnshap_cli::run(["synth", "--frobnicate", "yes", "--out", "/dev/null"])
        .expect_err("unknown flag must error");
    assert!(err.to_string().contains("frobnicate"), "got: {err}");
}
