//! Process-level serve smoke through the real `knnshap` binary: spawn the
//! daemon as a subprocess, run a mutation script through `knnshap client`,
//! and byte-compare the served dump against an unsharded `knnshap value`
//! run on the final dataset — the exact drill CI's "serve smoke" step
//! performs from shell, kept here as a debuggable test.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_knnshap")
}

fn run(args: &[&str]) -> String {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn knnshap");
    assert!(
        out.status.success(),
        "knnshap {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("knnshap-servecli-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn synth(train: &Path, test: &Path) {
    run(&[
        "synth",
        "--kind",
        "blobs",
        "--n",
        "40",
        "--dim",
        "4",
        "--classes",
        "2",
        "--seed",
        "19",
        "--out",
        train.to_str().unwrap(),
        "--queries",
        "6",
        "--queries-out",
        test.to_str().unwrap(),
    ]);
}

/// A daemon subprocess on an ephemeral port. The constructor blocks until
/// the readiness banner names the actual endpoint, and `Drop` kills the
/// child if a test dies before the clean shutdown path runs.
struct Daemon {
    child: Child,
    addr: String,
    // Keeps the stdout pipe open for the daemon's lifetime — dropping it
    // would make the daemon's final status line fail with EPIPE.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(train: &Path, test: &Path) -> Self {
        let mut child = Command::new(bin())
            .args([
                "serve",
                "--train",
                train.to_str().unwrap(),
                "--test",
                test.to_str().unwrap(),
                "--k",
                "3",
                "--addr",
                "127.0.0.1:0",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn daemon");
        // The banner is printed (and flushed) before the accept loop blocks.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read readiness banner");
        let addr = line
            .split("tcp://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no endpoint in banner: {line:?}"))
            .to_string();
        assert!(line.contains("n_train = 40"), "banner: {line:?}");
        Daemon {
            child,
            addr,
            _stdout: reader,
        }
    }

    fn client(&self, args: &[&str]) -> String {
        let mut argv = vec!["client", "--addr", self.addr.as_str()];
        argv.extend_from_slice(args);
        run(&argv)
    }

    /// Clean shutdown: ask via the protocol, then reap the process and
    /// assert it exited successfully.
    fn shutdown(mut self) {
        self.client(&["--op", "shutdown"]);
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exited with {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn mutation_script_dump_matches_cold_value_run_bytewise() {
    let dir = Scratch::new("e2e");
    let (train, test) = (dir.path("train.csv"), dir.path("test.csv"));
    synth(&train, &test);

    let daemon = Daemon::spawn(&train, &test);

    // A mutation script exercising insert (fresh + duplicate-ish), delete
    // at both ends, and a what-if (which must NOT mutate).
    let script = dir.path("mutations.txt");
    std::fs::write(
        &script,
        "# serve smoke script\n\
         insert 0.25,-1.5,2.0,0.125 1\n\
         delete 3\n\
         insert 0.25,-1.5,2.0,0.125 0\n\
         what-if 1.0,1.0,1.0,1.0 1\n\
         delete 0\n\
         insert -2.0,0.5,0.5,3.25 1\n",
    )
    .unwrap();
    let out = daemon.client(&["--op", "script", "--script", script.to_str().unwrap()]);
    assert!(out.contains("5 mutations applied"), "{out}");
    assert!(out.contains("version 5"), "{out}");

    // Export the daemon's current training set and its served vector.
    let (final_csv, served_csv) = (dir.path("final-train.csv"), dir.path("served.csv"));
    daemon.client(&["--op", "train-csv", "--out", final_csv.to_str().unwrap()]);
    let out = daemon.client(&["--op", "dump", "--out", served_csv.to_str().unwrap()]);
    assert!(out.contains("version 5"), "{out}");

    // Cold one-shot run on the exported dataset.
    let cold_csv = dir.path("cold.csv");
    run(&[
        "value",
        "--train",
        final_csv.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "3",
        "--out",
        cold_csv.to_str().unwrap(),
    ]);

    let served = std::fs::read(&served_csv).unwrap();
    let cold = std::fs::read(&cold_csv).unwrap();
    assert!(
        served == cold,
        "served dump differs from the cold value run:\nserved:\n{}\ncold:\n{}",
        String::from_utf8_lossy(&served),
        String::from_utf8_lossy(&cold)
    );

    // Spot-check the interactive ops end-to-end too.
    let out = daemon.client(&["--op", "stat"]);
    assert!(out.contains("version 5"), "{out}");
    let out = daemon.client(&["--op", "top", "--count", "3"]);
    assert!(out.contains("3 most valuable"), "{out}");
    let out = daemon.client(&["--op", "get", "--index", "0"]);
    assert!(out.contains("value[0]"), "{out}");

    daemon.shutdown();
}

/// ISSUE 8 satellite: a server-side rejection mid-script must stop the
/// client **at the failing line, with its line number**, leave everything
/// before it applied and everything after it unapplied — and fail the
/// process so shell pipelines notice.
#[test]
fn script_failure_stops_at_the_failing_line_with_its_number() {
    let dir = Scratch::new("scriptfail");
    let (train, test) = (dir.path("train.csv"), dir.path("test.csv"));
    synth(&train, &test);
    let daemon = Daemon::spawn(&train, &test);

    let script = dir.path("bad.txt");
    std::fs::write(
        &script,
        "# line 1 is a comment\n\
         insert 0.5,0.5,0.5,0.5 1\n\
         delete 9999\n\
         insert 1.0,1.0,1.0,1.0 0\n",
    )
    .unwrap();

    let out = Command::new(bin())
        .args([
            "client",
            "--addr",
            &daemon.addr,
            "--op",
            "script",
            "--script",
            script.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "failing script must fail the client");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("script line 3"),
        "stderr must name the failing line: {stderr}"
    );
    assert!(
        stderr.contains("delete 9999") && stderr.contains("out of range"),
        "stderr must quote the line and the server's reason: {stderr}"
    );
    // Line 2 applied before the failure; line 4 was never sent.
    let stat = daemon.client(&["--op", "stat"]);
    assert!(stat.contains("version 1"), "{stat}");
    assert!(stat.contains("n_train 41"), "{stat}");

    daemon.shutdown();
}

/// Batched replay (`--batch`) at the process level: same script, two
/// daemons, one replay coalesced and one per-line — stdout transcripts
/// and dumped vectors must match byte for byte (the same drill CI's
/// batched smoke performs with `cmp`).
#[test]
fn batched_script_replay_matches_sequential_bytewise() {
    let dir = Scratch::new("batchrep");
    let (train, test) = (dir.path("train.csv"), dir.path("test.csv"));
    synth(&train, &test);

    let script = dir.path("mutations.txt");
    std::fs::write(
        &script,
        "insert 0.25,-1.5,2.0,0.125 1\n\
         insert -0.75,0.5,1.0,2.0 0\n\
         delete 3\n\
         what-if 1.0,1.0,1.0,1.0 1\n\
         insert 0.25,-1.5,2.0,0.125 0\n\
         delete 0\n",
    )
    .unwrap();

    let mut transcripts = Vec::new();
    let mut dumps = Vec::new();
    for batch in [None, Some("3")] {
        let daemon = Daemon::spawn(&train, &test);
        let mut args = vec!["--op", "script", "--script", script.to_str().unwrap()];
        if let Some(n) = batch {
            args.extend_from_slice(&["--batch", n]);
        }
        transcripts.push(daemon.client(&args));
        let dump = dir.path(if batch.is_some() { "b.csv" } else { "s.csv" });
        daemon.client(&["--op", "dump", "--out", dump.to_str().unwrap()]);
        dumps.push(std::fs::read(&dump).unwrap());
        daemon.shutdown();
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "batched transcript must match sequential"
    );
    assert!(
        transcripts[0].contains("5 mutations applied"),
        "{}",
        transcripts[0]
    );
    assert!(
        dumps[0] == dumps[1],
        "batched dump differs from sequential:\nseq:\n{}\nbatched:\n{}",
        String::from_utf8_lossy(&dumps[0]),
        String::from_utf8_lossy(&dumps[1])
    );
}

#[test]
fn daemon_survives_failed_client_operations() {
    let dir = Scratch::new("badops");
    let (train, test) = (dir.path("train.csv"), dir.path("test.csv"));
    synth(&train, &test);
    let daemon = Daemon::spawn(&train, &test);

    // Out-of-range delete: the client process fails, the daemon must not.
    let out = Command::new(bin())
        .args([
            "client",
            "--addr",
            &daemon.addr,
            "--op",
            "delete",
            "--index",
            "10000",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "bad delete must fail the client");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("out of range"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Daemon unharmed and unmutated.
    let out = daemon.client(&["--op", "stat"]);
    assert!(out.contains("version 0"), "{out}");

    daemon.shutdown();
}
