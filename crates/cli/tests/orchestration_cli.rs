//! Process-level orchestration round trip through the real `knnshap`
//! binary: `shard-plan` → `run-job` (which spawns actual `knnshap worker`
//! child processes) → auto-merge, byte-compared against an unsharded
//! `value` run — including a worker killed mid-run by the
//! `KNNSHAP_FAULT_AFTER_CHUNKS` switch and resumed by the supervisor.
//!
//! This is the same drill CI's "orchestration smoke" step performs from
//! shell; having it as a test keeps it debuggable locally.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_knnshap")
}

fn run(args: &[&str]) -> String {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn knnshap");
    assert!(
        out.status.success(),
        "knnshap {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("knnshap-orchcli-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn synth(train: &Path, test: &Path) {
    run(&[
        "synth",
        "--kind",
        "blobs",
        "--n",
        "60",
        "--dim",
        "4",
        "--classes",
        "2",
        "--seed",
        "5",
        "--out",
        train.to_str().unwrap(),
        "--queries",
        "9",
        "--queries-out",
        test.to_str().unwrap(),
    ]);
}

#[test]
fn plan_fleet_merge_is_byte_identical_to_value() {
    let ws = Scratch::new("clean");
    let (train, test) = (ws.path("train.csv"), ws.path("test.csv"));
    synth(&train, &test);
    let direct = ws.path("direct.csv");
    run(&[
        "value",
        "--train",
        train.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "3",
        "--out",
        direct.to_str().unwrap(),
    ]);

    let job = ws.path("job");
    run(&[
        "shard-plan",
        "--train",
        train.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "3",
        "--shards",
        "4",
        "--job",
        job.to_str().unwrap(),
    ]);
    let merged = ws.path("merged.csv");
    let report = run(&[
        "run-job",
        "--job",
        job.to_str().unwrap(),
        "--workers",
        "3",
        "--out",
        merged.to_str().unwrap(),
    ]);
    assert!(report.contains("job complete"), "{report}");
    assert_eq!(
        std::fs::read(&direct).unwrap(),
        std::fs::read(&merged).unwrap(),
        "fleet-merged CSV must equal the unsharded value CSV byte for byte"
    );
}

#[test]
fn killed_worker_resumes_and_merge_stays_byte_identical() {
    let ws = Scratch::new("kill");
    let (train, test) = (ws.path("train.csv"), ws.path("test.csv"));
    synth(&train, &test);
    let direct = ws.path("direct.csv");
    run(&[
        "value",
        "--train",
        train.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "3",
        "--method",
        "mc-improved",
        "--perms",
        "48",
        "--seed",
        "7",
        "--out",
        direct.to_str().unwrap(),
    ]);

    let job = ws.path("job");
    run(&[
        "shard-plan",
        "--train",
        train.to_str().unwrap(),
        "--test",
        test.to_str().unwrap(),
        "--k",
        "3",
        "--method",
        "mc-improved",
        "--perms",
        "48",
        "--seed",
        "7",
        "--shards",
        "3",
        "--checkpoint-chunks",
        "4",
        "--job",
        job.to_str().unwrap(),
    ]);

    // A doomed worker: crashes after two computed chunks, leaving its lease
    // and a checkpoint behind (unit exit status, lease file intact).
    let out = Command::new(bin())
        .args([
            "worker",
            "--job",
            job.to_str().unwrap(),
            "--worker-id",
            "victim",
        ])
        .env("KNNSHAP_FAULT_AFTER_CHUNKS", "2")
        .output()
        .expect("spawn doomed worker");
    assert!(!out.status.success(), "the doomed worker must crash");
    let leases: Vec<_> = std::fs::read_dir(job.join("leases"))
        .unwrap()
        .filter_map(|e| e.ok())
        .collect();
    assert!(!leases.is_empty(), "crash must leave its lease behind");

    // The supervisor expires the dead lease (short TTL), respawns, resumes
    // from the checkpoint, and merges.
    let merged = ws.path("merged.csv");
    std::thread::sleep(std::time::Duration::from_millis(300));
    let report = run(&[
        "run-job",
        "--job",
        job.to_str().unwrap(),
        "--workers",
        "2",
        "--lease-ttl",
        "0.2",
        "--out",
        merged.to_str().unwrap(),
    ]);
    assert!(report.contains("job complete"), "{report}");
    assert_eq!(
        std::fs::read(&direct).unwrap(),
        std::fs::read(&merged).unwrap(),
        "kill + resume must not change a single CSV byte"
    );
}
