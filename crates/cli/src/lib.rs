//! # knnshap-cli — data valuation from the command line
//!
//! A thin, scriptable front end over the workspace: bring a training and a
//! test CSV (features…, integer label — the `knnshap_datasets::io` format),
//! get per-point Shapley values, audits and LSH feasibility reports back.
//!
//! ```text
//! knnshap synth    --kind blobs --n 2000 --out train.csv --queries 100 --queries-out test.csv
//! knnshap value    --train train.csv --test test.csv --k 3 --method exact --out values.csv
//! knnshap value    --train train.csv --test test.csv --k 3 --revenue 10000 --base-fee 500
//! knnshap audit    --train train.csv --test test.csv --k 3 --inspect 25
//! knnshap contrast --train train.csv --test test.csv --k 1 --eps 0.1
//! ```
//!
//! Every command is a pure function from parsed arguments to a report
//! string (plus optional CSV side effects), so the whole surface is unit-
//! tested without spawning processes.

pub mod args;
pub mod commands;
pub mod report;

use args::{ArgError, Args};

/// Top-level CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Dataset file problems.
    Io(knnshap_datasets::io::IoError),
    /// Valuation pipeline configuration problems.
    Pipeline(knnshap_core::pipeline::PipelineError),
    /// Shard-file or shard-merge problems (`shard`/`merge`/`--shards`).
    Shard(knnshap_core::sharding::ShardError),
    /// Job-orchestration problems (`shard-plan`/`worker`/`run-job`).
    Runtime(knnshap_runtime::JobError),
    /// Daemon/client problems (`serve`/`client`: bind, connect, protocol).
    Serve(String),
    /// Anything command-specific (bad enum value, inconsistent datasets…).
    Invalid(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(
                    f,
                    "unknown command '{c}' (try: value, audit, contrast, synth, build-graph, \
                     shard, merge, shard-plan, run-job, watch, worker, serve, client)"
                )
            }
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::Shard(e) => write!(f, "{e}"),
            CliError::Runtime(e) => write!(f, "{e}"),
            CliError::Serve(m) => write!(f, "{m}"),
            CliError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<knnshap_datasets::io::IoError> for CliError {
    fn from(e: knnshap_datasets::io::IoError) -> Self {
        CliError::Io(e)
    }
}

impl From<knnshap_core::pipeline::PipelineError> for CliError {
    fn from(e: knnshap_core::pipeline::PipelineError) -> Self {
        CliError::Pipeline(e)
    }
}

impl From<knnshap_runtime::JobError> for CliError {
    fn from(e: knnshap_runtime::JobError) -> Self {
        CliError::Runtime(e)
    }
}

/// Usage text printed on `help` or argument errors.
pub const USAGE: &str = "\
knnshap — efficient task-specific data valuation for nearest neighbors
         (Jia et al., VLDB 2019)

USAGE: knnshap <command> [--option value]...

COMMANDS
  value     compute per-point Shapley values of a training CSV
            --train FILE --test FILE [--k 1] [--method exact|truncated|lsh|
            mc-baseline|mc-improved] [--eps 0.1] [--delta 0.1]
            [--weight uniform|inverse|exponential] [--weight-param X]
            [--threads N] [--shards N] [--perms N] [--top 10] [--out FILE]
            [--graph FILE]               (skip the distance pass; bitwise-
                                          identical output — see build-graph)
            [--revenue A --base-fee B]   (affine §7 payout mapping)
  audit     rank suspicious (lowest-value) points; optionally score the
            ranking against known-bad indices
            --train FILE --test FILE [--k 1] [--method ...] [--eps 0.1]
            [--shards N] [--perms N] [--inspect 20] [--flagged FILE]
            [--graph FILE]
  build-graph  precompute the KNN graph artifact every other command can
            reuse via --graph: per-test-point neighbor lists in the exact
            tie-broken order the estimators sort into, stamped with
            dataset-content fingerprints (label-free — one graph serves
            classification and regression over the same features)
            --train FILE --test FILE --out FILE [--task class|reg]
            [--threads N]
  shard     compute ONE shard of a valuation job and write its partial sums
            to a self-describing binary file (see docs/sharding.md)
            --train FILE --test FILE --shard-index I --shard-count N
            --out FILE [--k 1] [--method exact|truncated|mc-baseline|
            mc-improved] [--perms N] [--seed 42] [--eps 0.1] [--threads N]
            [--graph FILE]
  merge     merge a full set of shard files; bitwise-identical to the
            unsharded `value` run (same report, same --out CSV). Repeat the
            job-defining options the shards were built with — the merge
            cross-checks them against the shard headers
            --inputs A,B,C --train FILE --test FILE [--k 1] [--method ...]
            [--seed 42] [--eps 0.1] [--weight ...] [--top 10] [--out FILE]
            [--revenue A --base-fee B]
  shard-plan  plan a multi-process valuation job: write the versioned job
            plan + directory a worker fleet executes (docs/operations.md)
            --train FILE --test FILE --shards N --job DIR [--task class|reg]
            [--k 1] [--method exact|truncated|mc-baseline|mc-improved|
            group-testing] [--perms N] [--seed 42] [--eps 0.1]
            [--weight ...] [--checkpoint-chunks 4]
  run-job   supervise a planned job to completion: spawn local workers,
            expire stale leases, respawn after crashes, auto-merge; report
            and --out CSV match the unsharded `value` run byte for byte
            --job DIR [--workers 2] [--threads N] [--lease-ttl 30]
            [--max-spawns N] [--top 10] [--out FILE] [--graph FILE]
            [--revenue A --base-fee B]
            [--watch]                    (stream live shard x chunk progress
                                          lines while the fleet runs)
  watch     follow a job directory's event stream (events.jsonl) from any
            process sharing its path: one progress line per change, exits
            when the job merges (docs/observability.md)
            --job DIR [--poll MS] [--timeout SECS]
  worker    one fleet member: claim shards from a job directory (lease
            files), compute with checkpoints, publish, exit when nothing is
            claimable. Run any number, on any machines sharing the path
            --job DIR [--threads N] [--worker-id ID] [--graph FILE]
  serve     long-lived valuation daemon: load the dataset once, keep rank
            state resident, answer socket requests (docs/serving.md);
            insert/delete mutations revalue incrementally and the served
            vector stays bitwise-identical to a cold `value` run
            --train FILE --test FILE (--addr HOST:PORT | --socket PATH)
            [--k 1] [--threads N] [--graph FILE]
  client    one-shot client for a running daemon
            (--addr HOST:PORT | --socket PATH) --op stat|get|dump|top|
            bottom|what-if|insert|delete|train-csv|script|metrics|shutdown
            [--index I] [--count N] [--point F1,F2,...] [--label L]
            [--script FILE] [--out FILE]
  contrast  estimate relative contrast C_K* and the LSH feasibility report
            --train FILE --test FILE [--k 1] [--eps 0.1] [--delta 0.1]
  synth     generate synthetic datasets (see DESIGN.md substitutions)
            --kind blobs|dogfish|iris|deep|gist|mnist --out FILE
            [--n 1000] [--dim 16] [--classes 3] [--std 0.6] [--seed 7]
            [--queries N --queries-out FILE]
  help      print this text

Dataset format: CSV, one point per row, features then integer label last.
";

/// Parses `argv` (without program name) and runs the matching command,
/// returning the printable report.
pub fn run<I, S>(argv: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args = Args::parse(argv)?;
    match args.subcommand() {
        "value" => commands::value::run(&args),
        "audit" => commands::audit::run(&args),
        "contrast" => commands::contrast::run(&args),
        "synth" => commands::synth::run(&args),
        "build-graph" => commands::graph::run(&args),
        "shard" => commands::shard::run_shard(&args),
        "merge" => commands::shard::run_merge(&args),
        "shard-plan" => commands::job::run_shard_plan(&args),
        "worker" => commands::job::run_worker_cmd(&args),
        "run-job" => commands::job::run_run_job(&args),
        "watch" => commands::watch::run_watch(&args),
        "serve" => commands::serve::run_serve(&args),
        "client" => commands::serve::run_client(&args),
        "help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_command_is_reported() {
        let err = run(["frobnicate"]).unwrap_err();
        assert!(matches!(err, CliError::UnknownCommand(_)));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("contrast"));
    }

    #[test]
    fn arg_errors_bubble_up() {
        assert!(matches!(
            run(Vec::<String>::new()).unwrap_err(),
            CliError::Args(ArgError::MissingSubcommand)
        ));
    }
}
