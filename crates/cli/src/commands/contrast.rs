//! `knnshap contrast` — the LSH feasibility report.
//!
//! Estimates the K\*-th relative contrast C_K\* (Theorem 3), the complexity
//! exponent g(C_K\*) at the optimal projection width, and the index
//! parameters the paper's §6.1 recipe would pick — then renders the verdict
//! the paper's "Remarks" paragraph gives in prose: LSH pays off when the
//! error budget is moderate and the contrast is healthy (g < 1); otherwise
//! use the exact algorithm.

use crate::args::Args;
use crate::commands::load_pair;
use crate::report::fmt_f64;
use crate::CliError;
use knnshap_core::lsh_approx::plan_index_params;
use knnshap_core::truncated::k_star;
use knnshap_datasets::{contrast, normalize};
use knnshap_lsh::theory;

const ALLOWED: &[&str] = &["train", "test", "k", "eps", "delta", "max-tables", "seed"];

pub fn run(args: &Args) -> Result<String, CliError> {
    args.expect_only(ALLOWED)?;
    let (mut train, mut test) = load_pair(args)?;
    let k = args.usize_or("k", 1)?;
    let eps = args.f64_or("eps", 0.1)?;
    let delta = args.f64_or("delta", 0.1)?;
    let seed = args.u64_or("seed", 17)?;
    let max_tables = args.usize_or("max-tables", 64)?;
    let ks = k_star(k, eps).min(train.len());

    // The theory assumes D_mean = 1; normalize a working copy.
    let factor = normalize::scale_to_unit_dmean(&mut train.x, 2000, seed);
    normalize::apply_scale(&mut test.x, factor);

    let est = contrast::estimate(
        &train.x,
        &test.x,
        ks,
        32.min(test.len()),
        128,
        seed.wrapping_add(1),
    );
    let (width, g) = theory::optimal_width(est.c_k, 0.5, 8.0, 40);
    let params = plan_index_params(train.len(), &est, k, eps, delta, 1.0, max_tables, seed);
    let cost = theory::query_cost_estimate(train.len(), g);

    let verdict = if g < 1.0 {
        format!(
            "SUBLINEAR: g(C_K*) = {} < 1 — LSH retrieval should beat the exact \
             O(N log N) scan as N grows (estimated candidate work ∝ N^g ≈ {}).",
            fmt_f64(g),
            fmt_f64(cost),
        )
    } else {
        format!(
            "NOT WORTH IT: g(C_K*) = {} ≥ 1 — the ε/K budget makes K* too deep \
             for this dataset's contrast; use the exact algorithm (paper §6.2 \
             Remarks).",
            fmt_f64(g),
        )
    };

    Ok(format!(
        "LSH feasibility report (N = {}, K = {k}, ε = {eps}, δ = {delta})\n\
         \n\
         K* = max(K, ⌈1/ε⌉)           : {ks}\n\
         D_mean (normalized)          : {}\n\
         D_K*                         : {}\n\
         relative contrast C_K*       : {}\n\
         optimal projection width r   : {}\n\
         complexity exponent g(C_K*)  : {}\n\
         planned projections m        : {}\n\
         planned tables l             : {}\n\
         \n\
         {verdict}\n",
        train.len(),
        fmt_f64(est.d_mean),
        fmt_f64(est.d_k),
        fmt_f64(est.c_k),
        fmt_f64(width),
        fmt_f64(g),
        params.projections,
        params.tables,
    ))
}

#[cfg(test)]
mod tests {
    use crate::commands::testutil::csv_pair;

    fn argv(t: &std::path::Path, q: &std::path::Path, extra: &[&str]) -> Vec<String> {
        let mut v = vec![
            "contrast".to_string(),
            "--train".into(),
            t.to_str().unwrap().into(),
            "--test".into(),
            q.to_str().unwrap().into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    }

    #[test]
    fn report_contains_all_quantities() {
        let (t, q) = csv_pair("contrast-basic", 200, 20);
        let out = crate::run(argv(&t, &q, &["--k", "1", "--eps", "0.5"])).unwrap();
        assert!(out.contains("relative contrast C_K*"));
        assert!(out.contains("complexity exponent g(C_K*)"));
        assert!(out.contains("planned tables"));
        assert!(out.contains("SUBLINEAR") || out.contains("NOT WORTH IT"));
    }

    #[test]
    fn tight_eps_deepens_k_star() {
        let (t, q) = csv_pair("contrast-eps", 150, 15);
        let loose = crate::run(argv(&t, &q, &["--eps", "0.5"])).unwrap();
        let tight = crate::run(argv(&t, &q, &["--eps", "0.02"])).unwrap();
        assert!(loose.contains(": 2\n"), "K* = 2 for eps = 0.5:\n{loose}");
        assert!(tight.contains(": 50\n"), "K* = 50 for eps = 0.02:\n{tight}");
    }

    #[test]
    fn unknown_option_rejected() {
        let (t, q) = csv_pair("contrast-typo", 30, 5);
        let err = crate::run(argv(&t, &q, &["--epz", "0.5"])).unwrap_err();
        assert!(err.to_string().contains("unknown option"));
    }
}
