//! `knnshap shard-plan` / `worker` / `run-job` — the job-orchestration
//! runtime's command-line surface (`knnshap_runtime`; operator's handbook in
//! `docs/operations.md`).
//!
//! ```text
//! knnshap shard-plan --train t.csv --test q.csv --k 3 --shards 8 --job jobdir
//! knnshap run-job --job jobdir --workers 4 --out values.csv
//! # or, by hand / on other machines sharing jobdir's filesystem:
//! knnshap worker --job jobdir &
//! knnshap worker --job jobdir &
//! ```
//!
//! `shard-plan` derives and writes the versioned job plan (datasets are read
//! once to fingerprint their contents). `worker` is one fleet member:
//! claim → compute → checkpoint → publish until nothing is claimable.
//! `run-job` supervises: spawns local `worker` processes, expires stale
//! leases, respawns after crashes, auto-merges, and prints the same report
//! `value` would — with a byte-identical `--out` CSV for classification
//! jobs, whatever the fleet went through on the way.

use crate::args::Args;
use crate::commands::parse_weight;
use crate::CliError;
use knnshap_runtime::layout::JobDirs;
use knnshap_runtime::spec::{absolutize, plan_job, JobMethod, JobPlan, JobSpec, TaskKind};
use knnshap_runtime::supervisor::{run_job, Launcher, SupervisorOptions};
use knnshap_runtime::worker::{run_worker, FaultHook, FaultPoint, WorkerOptions};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Parse `--method` for job planning. Unlike `value`'s parser this knows
/// `group-testing`, and it rejects `lsh` with the full explanation (the
/// satellite of `docs/sharding.md`'s "Why LSH does not shard yet").
fn parse_job_method(args: &Args) -> Result<JobMethod, CliError> {
    let eps = args.f64_or("eps", 0.1)?;
    let perms = args.usize_or("perms", 0)?;
    match args.str("method").unwrap_or("exact") {
        "exact" => Ok(JobMethod::Exact),
        "truncated" => Ok(JobMethod::Truncated { eps }),
        "mc-baseline" => Ok(JobMethod::McBaseline { perms }),
        "mc-improved" => Ok(JobMethod::McImproved { perms }),
        "group-testing" => Ok(JobMethod::GroupTesting { tests: perms }),
        "lsh" => Err(CliError::Invalid(super::shard::LSH_UNSHARDABLE.into())),
        other => Err(CliError::Invalid(format!(
            "unknown method '{other}' (exact, truncated, mc-baseline, mc-improved, \
             group-testing)"
        ))),
    }
}

fn parse_task(args: &Args) -> Result<TaskKind, CliError> {
    match args.str("task").unwrap_or("class") {
        "class" => Ok(TaskKind::Class),
        "reg" => Ok(TaskKind::Reg),
        other => Err(CliError::Invalid(format!(
            "unknown task '{other}' (class, reg)"
        ))),
    }
}

const SHARD_PLAN_ALLOWED: &[&str] = &[
    "job",
    "train",
    "test",
    "task",
    "k",
    "method",
    "eps",
    "weight",
    "weight-param",
    "seed",
    "perms",
    "shards",
    "checkpoint-chunks",
    "auto",
];

/// When `--auto` caps are unset, how many shards the cost model may suggest
/// at most — one per worker of a generously sized fleet.
const AUTO_SHARD_CAP: usize = 64;

/// `knnshap shard-plan`: derive and write a job plan into `--job DIR`.
///
/// With `--auto`, the shard count is derived from a measured cost model
/// instead of being required: the datasets are loaded once, two one-item
/// chunks are timed (the first pays the lazy distance-matrix build — the
/// per-shard overhead every worker process repeats; the second is the
/// steady-state per-item cost), and `knnshap_core::schedule::suggest_shards`
/// picks the largest count that still amortizes the overhead. `--shards`
/// then acts as an optional cap. Sharding never changes results (the merge
/// is bitwise-deterministic), so the suggestion is purely a wall-clock call.
pub fn run_shard_plan(args: &Args) -> Result<String, CliError> {
    args.expect_only(SHARD_PLAN_ALLOWED)?;
    let job = PathBuf::from(args.require("job")?);
    args.require("train")?;
    args.require("test")?;
    let auto = args.flag("auto");
    if !auto {
        args.require("shards")?;
    }
    let requested = args.usize_or("shards", 0)?;
    let mut spec = JobSpec {
        task: parse_task(args)?,
        train: absolutize(Path::new(args.require("train")?)),
        test: absolutize(Path::new(args.require("test")?)),
        k: args.usize_or("k", 1)?,
        weight: parse_weight(args)?,
        method: parse_job_method(args)?,
        seed: args.u64_or("seed", 42)?,
        shards: if auto { 1 } else { requested },
        checkpoint_chunks: args.usize_or("checkpoint-chunks", 4)?,
    };
    let mut auto_line = None;
    if auto {
        let probe = plan_job(&spec).map_err(CliError::Runtime)?;
        let cap = if requested > 0 {
            requested
        } else {
            AUTO_SHARD_CAP
        };
        let (suggested, line) = probe_shard_count(probe, cap)?;
        spec.shards = suggested;
        auto_line = Some(line);
    }
    let plan = plan_job(&spec).map_err(CliError::Runtime)?;
    let dirs = JobDirs::new(&job);
    plan.save(&dirs).map_err(CliError::Runtime)?;

    let mut out = String::new();
    if let Some(line) = auto_line {
        out.push_str(&line);
    }
    out += &format!(
        "planned {} job {:016x}: {} training points, {} items across {} shards \
         ({} checkpoint chunks each)\n",
        plan.kind.name(),
        plan.fingerprint,
        plan.n_train,
        plan.total_items,
        spec.shards,
        spec.checkpoint_chunks,
    );
    out.push_str(&format!(
        "plan written to {}\n\nshard ranges:\n",
        dirs.plan_path().display()
    ));
    for i in 0..spec.shards {
        let r = plan.shard_range(i);
        out.push_str(&format!("  s{i}: items {}..{}\n", r.start, r.end));
    }
    out.push_str(&format!(
        "\nrun it:  knnshap run-job --job {0} --workers N [--out values.csv]\n\
         or join workers by hand (same or other machines sharing this path):\n\
         \x20        knnshap worker --job {0}\n",
        job.display(),
    ));
    Ok(out)
}

/// Measure the `--auto` cost model on a probe plan and return the suggested
/// shard count plus a report line. The probes are ordinary one-item chunk
/// computations whose partials are discarded — nothing is written, so the
/// measurement cannot perturb the job the final plan describes.
fn probe_shard_count(probe: JobPlan, max_shards: usize) -> Result<(usize, String), CliError> {
    use knnshap_core::sharding::ShardSpec;
    use knnshap_runtime::dispatch::PreparedJob;
    let total = probe.total_items as usize;
    let t0 = std::time::Instant::now();
    let prepared = PreparedJob::from_plan(probe).map_err(CliError::Runtime)?;
    let load_secs = t0.elapsed().as_secs_f64();
    // The first one-item chunk pays the lazy utility build (distance
    // matrices) — a cost every shard-owning worker process repeats. The
    // second reuses it and times the steady state.
    let t1 = std::time::Instant::now();
    prepared.compute_chunk(ShardSpec::new(0, total.max(1)), 1);
    let first_secs = t1.elapsed().as_secs_f64();
    let (per_item, overhead) = if total >= 2 {
        let t2 = std::time::Instant::now();
        prepared.compute_chunk(ShardSpec::new(1, total), 1);
        let per = t2.elapsed().as_secs_f64();
        (per, load_secs + (first_secs - per).max(0.0))
    } else {
        (first_secs, load_secs)
    };
    let suggested = knnshap_core::schedule::suggest_shards(per_item, overhead, total, max_shards);
    Ok((
        suggested,
        format!(
            "auto-sharding: measured {:.3} ms/item, {:.3} ms/shard overhead over {} items \
             => {} shard(s) (cap {})\n",
            per_item * 1e3,
            overhead * 1e3,
            total,
            suggested,
            max_shards,
        ),
    ))
}

const WORKER_ALLOWED: &[&str] = &["job", "threads", "worker-id", "graph"];

/// `knnshap worker`: one fleet member against a planned job directory.
pub fn run_worker_cmd(args: &Args) -> Result<String, CliError> {
    args.expect_only(WORKER_ALLOWED)?;
    let dirs = JobDirs::new(args.require("job")?);
    let opts = WorkerOptions {
        worker_id: args
            .str("worker-id")
            .map(String::from)
            .unwrap_or_else(|| format!("pid{}", std::process::id())),
        threads: args.usize_or("threads", 0)?,
        fault: fault_from_env(),
        graph: args.str("graph").map(PathBuf::from),
    };
    let report = run_worker(&dirs, opts).map_err(CliError::Runtime)?;
    Ok(format!(
        "worker done: completed {} shard(s) {:?}, computed {} chunk(s), resumed {} \
         from checkpoints\n",
        report.completed.len(),
        report.completed,
        report.chunks_computed,
        report.resumed,
    ))
}

/// `KNNSHAP_FAULT_AFTER_CHUNKS=N` makes the worker crash after computing
/// its Nth micro-chunk, **before** that chunk's checkpoint is written —
/// the process-level kill switch CI's orchestration smoke uses to rehearse
/// worker death and resume. Unset (production): no hook, zero overhead.
fn fault_from_env() -> Option<FaultHook> {
    let n: usize = std::env::var("KNNSHAP_FAULT_AFTER_CHUNKS")
        .ok()?
        .parse()
        .ok()?;
    Some(fault_after_chunks(n))
}

/// The hook behind [`fault_from_env`]: crash after the `n`th computed
/// chunk, before its checkpoint lands.
fn fault_after_chunks(n: usize) -> FaultHook {
    let mut computed = 0usize;
    Box::new(move |at| {
        if matches!(at, FaultPoint::AfterChunk { .. }) {
            computed += 1;
            computed >= n.max(1)
        } else {
            false
        }
    })
}

const RUN_JOB_ALLOWED: &[&str] = &[
    "job",
    "workers",
    "threads",
    "lease-ttl",
    "max-spawns",
    "worker-bin",
    "graph",
    "top",
    "out",
    "revenue",
    "base-fee",
    "watch",
];

/// `knnshap run-job`: supervise a local fleet to completion and report.
pub fn run_run_job(args: &Args) -> Result<String, CliError> {
    args.expect_only(RUN_JOB_ALLOWED)?;
    let job = args.require("job")?.to_string();
    let dirs = JobDirs::new(&job);
    let plan = JobPlan::load(&dirs).map_err(CliError::Runtime)?;
    let workers = args.usize_or("workers", 2)?;
    let threads = args.usize_or("threads", 0)?;
    let lease_ttl = Duration::from_secs_f64(args.f64_or("lease-ttl", 30.0)?.max(0.0));
    let max_spawns = args.usize_or("max-spawns", workers.saturating_mul(8).max(8))?;

    // The supervisor respawns this very binary as `knnshap worker`;
    // `--worker-bin` overrides for tests and exotic deployments.
    let program = match args.str("worker-bin") {
        Some(p) => PathBuf::from(p),
        None => std::env::current_exe().map_err(|e| {
            CliError::Invalid(format!("cannot locate own binary for worker spawns: {e}"))
        })?,
    };
    let mut worker_args = vec!["worker".to_string(), "--job".into(), job.clone()];
    if threads > 0 {
        worker_args.push("--threads".into());
        worker_args.push(threads.to_string());
    }
    if let Some(graph) = args.str("graph") {
        worker_args.push("--graph".into());
        worker_args.push(graph.to_string());
    }

    // `--watch` streams live progress lines from a side thread while the
    // supervisor works. The watcher only tails events.jsonl (read-only), so
    // it cannot perturb the job; the stop flag covers the failure path,
    // where no job_done event would ever release it.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = if args.flag("watch") {
        let (dirs, plan, stop) = (JobDirs::new(&job), plan.clone(), stop.clone());
        Some(std::thread::spawn(move || {
            super::watch::stream_progress(&dirs, &plan, Duration::from_millis(200), &stop);
        }))
    } else {
        None
    };

    let started = std::time::Instant::now();
    let outcome = run_job(
        &dirs,
        SupervisorOptions {
            workers,
            threads,
            lease_ttl,
            poll: Duration::from_millis(50),
            max_spawns,
            launcher: Launcher::Command {
                program,
                args: worker_args,
            },
        },
    );
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(h) = watcher {
        h.join().ok();
    }
    let outcome = outcome.map_err(CliError::Runtime)?;
    let secs = started.elapsed().as_secs_f64();

    let mut out = format!(
        "job complete: {} shards via {} worker(s) ({} spawned, {} reassigned, {} \
         worker failure(s)) in {secs:.3} s\n\n",
        plan.spec.shards, workers, outcome.spawned, outcome.reassigned, outcome.worker_failures,
    );
    let sv = outcome.values;
    let top = args.usize_or("top", 10)?;
    let payout = match args.f64_opt("revenue")? {
        Some(revenue) => {
            let base = args.f64_or("base-fee", 0.0)?;
            Some(knnshap_core::analysis::monetary_payout(&sv, revenue, base))
        }
        None => None,
    };

    match plan.spec.task {
        TaskKind::Class => {
            // Same renderer and CSV writer as `value`/`merge`: the report
            // tail and the --out CSV are byte-identical to the unsharded run
            // (for the deterministic methods; MC reports differ only in the
            // wall-clock throughput line `value` prints).
            let train = knnshap_datasets::io::load_class_csv(&plan.spec.train)?;
            let test = knnshap_datasets::io::load_class_csv(&plan.spec.test)?;
            if let Some(path) = args.str("out") {
                super::value::write_csv(Path::new(path), &train, &sv, payout.as_deref())
                    .map_err(knnshap_datasets::io::IoError::Io)?;
            }
            out.push_str(&super::value::render(
                &train,
                &test,
                plan.spec.k,
                &sv,
                payout.as_deref(),
                top,
                None,
                plan.spec.method.name(),
                args.str("out"),
            ));
        }
        TaskKind::Reg => {
            let train = knnshap_datasets::io::load_reg_csv(&plan.spec.train)?;
            out.push_str(&format!(
                "Valued {} training points against {} test points (K = {}, method = \
                 exact-reg).\ntotal value: {}\n",
                plan.n_train,
                plan.total_items,
                plan.spec.k,
                crate::report::fmt_f64(sv.total()),
            ));
            if let Some(path) = args.str("out") {
                write_reg_csv(Path::new(path), &train, &sv, payout.as_deref())
                    .map_err(knnshap_datasets::io::IoError::Io)?;
                out.push_str(&format!("\nfull values written to {path}\n"));
            }
        }
    }
    Ok(out)
}

/// The regression counterpart of `value::write_csv` (target instead of
/// label; same full-precision value formatting).
fn write_reg_csv(
    path: &Path,
    train: &knnshap_datasets::RegDataset,
    sv: &knnshap_core::ShapleyValues,
    payout: Option<&[f64]>,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    match payout {
        Some(_) => writeln!(w, "index,target,shapley_value,payout")?,
        None => writeln!(w, "index,target,shapley_value")?,
    }
    for i in 0..sv.len() {
        match payout {
            Some(p) => writeln!(w, "{i},{},{},{}", train.y[i], sv.get(i), p[i])?,
            None => writeln!(w, "{i},{},{}", train.y[i], sv.get(i))?,
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::csv_pair;
    use std::path::PathBuf;

    fn job_dir(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("knnshap-cli-job-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn plan_argv(t: &Path, q: &Path, job: &Path, extra: &[&str]) -> Vec<String> {
        let mut v = vec![
            "shard-plan".to_string(),
            "--train".into(),
            t.to_str().unwrap().into(),
            "--test".into(),
            q.to_str().unwrap().into(),
            "--shards".into(),
            "3".into(),
            "--job".into(),
            job.to_str().unwrap().into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    }

    #[test]
    fn shard_plan_writes_a_loadable_plan_with_ranges() {
        let (t, q) = csv_pair("plan-ok", 30, 6);
        let job = job_dir("plan-ok");
        let report = crate::run(plan_argv(&t, &q, &job, &["--k", "2"])).unwrap();
        assert!(report.contains("planned exact-class job"), "{report}");
        assert!(report.contains("s2: items"), "{report}");
        let plan = JobPlan::load(&JobDirs::new(&job)).unwrap();
        assert_eq!(plan.spec.shards, 3);
        assert_eq!(plan.total_items, 6);
        std::fs::remove_dir_all(&job).ok();
    }

    #[test]
    fn shard_plan_auto_derives_a_count_and_respects_the_cap() {
        let (t, q) = csv_pair("plan-auto", 40, 8);
        let job = job_dir("plan-auto");
        // --auto with --shards as a cap: the suggestion may never exceed it.
        let report = crate::run([
            "shard-plan",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--job",
            job.to_str().unwrap(),
            "--auto",
            "--shards",
            "4",
            "--k",
            "2",
        ])
        .unwrap();
        assert!(report.contains("auto-sharding: measured"), "{report}");
        let plan = JobPlan::load(&JobDirs::new(&job)).unwrap();
        assert!(
            (1..=4).contains(&plan.spec.shards),
            "suggested {} shards",
            plan.spec.shards
        );
        std::fs::remove_dir_all(&job).ok();

        // --auto alone: --shards is no longer required.
        let job2 = job_dir("plan-auto-free");
        crate::run([
            "shard-plan",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--job",
            job2.to_str().unwrap(),
            "--auto",
        ])
        .unwrap();
        let plan2 = JobPlan::load(&JobDirs::new(&job2)).unwrap();
        assert!(plan2.spec.shards >= 1);
        std::fs::remove_dir_all(&job2).ok();
    }

    #[test]
    fn shard_plan_rejects_lsh_with_the_full_explanation() {
        let (t, q) = csv_pair("plan-lsh", 20, 4);
        let job = job_dir("plan-lsh");
        let err = crate::run(plan_argv(&t, &q, &job, &["--method", "lsh"])).unwrap_err();
        assert!(err.to_string().contains("whole-test-set"), "{err}");
        assert!(err.to_string().contains("OnlineValuator"), "{err}");
        std::fs::remove_dir_all(&job).ok();
    }

    #[test]
    fn shard_plan_requires_perms_for_stochastic_methods() {
        let (t, q) = csv_pair("plan-mc", 20, 4);
        let job = job_dir("plan-mc");
        for m in ["mc-baseline", "mc-improved", "group-testing"] {
            let err = crate::run(plan_argv(&t, &q, &job, &["--method", m])).unwrap_err();
            assert!(err.to_string().contains("--perms"), "{m}: {err}");
        }
        crate::run(plan_argv(
            &t,
            &q,
            &job,
            &["--method", "mc-improved", "--perms", "40"],
        ))
        .unwrap();
        std::fs::remove_dir_all(&job).ok();
    }

    #[test]
    fn worker_completes_a_planned_job_in_process() {
        let (t, q) = csv_pair("worker-run", 25, 5);
        let job = job_dir("worker-run");
        crate::run(plan_argv(&t, &q, &job, &["--k", "2"])).unwrap();
        let report = crate::run([
            "worker",
            "--job",
            job.to_str().unwrap(),
            "--worker-id",
            "t1",
        ])
        .unwrap();
        assert!(report.contains("completed 3 shard(s)"), "{report}");
        // Everything published; a second worker finds nothing to do.
        let again = crate::run(["worker", "--job", job.to_str().unwrap()]).unwrap();
        assert!(again.contains("completed 0 shard(s)"), "{again}");
        std::fs::remove_dir_all(&job).ok();
    }

    #[test]
    fn run_job_report_and_csv_match_value_for_class_jobs() {
        let (t, q) = csv_pair("runjob", 30, 6);
        let job = job_dir("runjob");
        let merged_csv = std::env::temp_dir().join(format!(
            "knnshap-cli-job-{}-runjob-merged.csv",
            std::process::id()
        ));
        let direct_csv = std::env::temp_dir().join(format!(
            "knnshap-cli-job-{}-runjob-direct.csv",
            std::process::id()
        ));
        crate::run(plan_argv(&t, &q, &job, &["--k", "2"])).unwrap();
        // In-process completion (worker), then supervise-merge via run-job:
        // with all shards done, run-job just merges and reports — this keeps
        // the unit test free of subprocess spawning (the process path is
        // covered by crates/cli/tests/orchestration_cli.rs and CI).
        crate::run(["worker", "--job", job.to_str().unwrap()]).unwrap();
        let report = crate::run([
            "run-job",
            "--job",
            job.to_str().unwrap(),
            "--workers",
            "1",
            "--out",
            merged_csv.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("job complete"), "{report}");
        assert!(report.contains("total value"), "{report}");
        let direct = crate::run([
            "value",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--k",
            "2",
            "--out",
            direct_csv.to_str().unwrap(),
        ])
        .unwrap();
        // The report tail (after the orchestration summary) is the `value`
        // report, modulo the --out path lines.
        let tail = report.split_once("\n\n").unwrap().1;
        assert_eq!(
            tail.replace(merged_csv.to_str().unwrap(), "X"),
            direct.replace(direct_csv.to_str().unwrap(), "X"),
            "run-job must render the value report"
        );
        assert_eq!(
            std::fs::read(&merged_csv).unwrap(),
            std::fs::read(&direct_csv).unwrap(),
            "run-job CSV must be byte-identical to value's"
        );
        std::fs::remove_file(&merged_csv).ok();
        std::fs::remove_file(&direct_csv).ok();
        std::fs::remove_dir_all(&job).ok();
    }

    #[test]
    fn reg_jobs_plan_run_and_export() {
        // Build a tiny regression CSV pair by hand.
        let dir = std::env::temp_dir();
        let t = dir.join(format!(
            "knnshap-cli-job-{}-reg-train.csv",
            std::process::id()
        ));
        let q = dir.join(format!(
            "knnshap-cli-job-{}-reg-test.csv",
            std::process::id()
        ));
        let cfg = knnshap_datasets::synth::regression::RegressionConfig {
            n: 20,
            dim: 2,
            ..Default::default()
        };
        let train = knnshap_datasets::synth::regression::generate(&cfg);
        let test = knnshap_datasets::synth::regression::queries(&cfg, 4);
        knnshap_datasets::io::save_reg_csv(&t, &train).unwrap();
        knnshap_datasets::io::save_reg_csv(&q, &test).unwrap();

        let job = job_dir("reg");
        crate::run(plan_argv(&t, &q, &job, &["--task", "reg", "--k", "2"])).unwrap();
        crate::run(["worker", "--job", job.to_str().unwrap()]).unwrap();
        let out_csv = dir.join(format!(
            "knnshap-cli-job-{}-reg-values.csv",
            std::process::id()
        ));
        let report = crate::run([
            "run-job",
            "--job",
            job.to_str().unwrap(),
            "--out",
            out_csv.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("method = exact-reg"), "{report}");
        let csv = std::fs::read_to_string(&out_csv).unwrap();
        assert!(csv.starts_with("index,target,shapley_value"));
        assert_eq!(csv.lines().count(), 21);

        // Bitwise vs the library's unsharded regression estimator.
        let want = knnshap_core::exact_regression::knn_reg_shapley_with_threads(
            &train,
            &test,
            2,
            knnshap_parallel::current_threads(),
        );
        for (line, i) in csv.lines().skip(1).zip(0..) {
            let got: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert_eq!(got.to_bits(), want.get(i).to_bits(), "point {i}");
        }
        for p in [&t, &q, &out_csv] {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_dir_all(&job).ok();
    }

    #[test]
    fn worker_fault_env_crashes_and_leaves_resume_state() {
        let (t, q) = csv_pair("fault", 24, 6);
        let job = job_dir("fault");
        crate::run(plan_argv(&t, &q, &job, &["--checkpoint-chunks", "3"])).unwrap();
        // Same hook the KNNSHAP_FAULT_AFTER_CHUNKS env switch installs
        // (CI's kill-and-restart smoke and orchestration_cli.rs exercise the
        // env route on real subprocesses; mutating the env here would race
        // sibling tests running workers in this process).
        let hook = Some(super::fault_after_chunks(2));
        let dirs = JobDirs::new(&job);
        let err = run_worker(
            &dirs,
            WorkerOptions {
                worker_id: "env-fault".into(),
                fault: hook,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, knnshap_runtime::JobError::Crashed(_)),
            "{err}"
        );
        // Lease left behind, checkpoint present: exactly the crash scene a
        // successor resumes from.
        assert!(dirs.lease_path(0).exists());
        assert!(dirs.checkpoint_path(0).exists());
        std::fs::remove_dir_all(&job).ok();
    }
}
