//! `knnshap synth` — generate the DESIGN.md stand-in datasets as CSV.

use crate::args::Args;
use crate::CliError;
use knnshap_datasets::synth::blobs::{self, BlobConfig};
use knnshap_datasets::synth::deepfeat::EmbeddingSpec;
use knnshap_datasets::synth::dogfish::{self, DogFishConfig};
use knnshap_datasets::synth::iris::iris_like;
use knnshap_datasets::ClassDataset;
use std::path::Path;

const ALLOWED: &[&str] = &[
    "kind",
    "out",
    "n",
    "dim",
    "classes",
    "std",
    "seed",
    "queries",
    "queries-out",
];

pub fn run(args: &Args) -> Result<String, CliError> {
    args.expect_only(ALLOWED)?;
    let kind = args.str("kind").unwrap_or("blobs");
    let out = Path::new(args.require("out")?);
    let n = args.usize_or("n", 1000)?;
    let seed = args.u64_or("seed", 7)?;
    let n_queries = args.usize_or("queries", 0)?;

    let (train, queries) = match kind {
        "blobs" => {
            let cfg = BlobConfig {
                n,
                dim: args.usize_or("dim", 16)?,
                n_classes: args.usize_or("classes", 3)? as u32,
                cluster_std: args.f64_or("std", 0.6)?,
                center_scale: 3.0,
                seed,
            };
            let q = (n_queries > 0).then(|| blobs::queries(&cfg, n_queries, seed ^ 0x9E37));
            (blobs::generate(&cfg), q)
        }
        "dogfish" => {
            let cfg = DogFishConfig {
                n_train_per_class: n / 2,
                n_test_per_class: (n_queries / 2).max(1),
                seed,
                ..Default::default()
            };
            let (train, test) = dogfish::generate(&cfg);
            (train, (n_queries > 0).then_some(test))
        }
        "iris" => {
            let d = iris_like(n / 3, seed);
            let q = (n_queries > 0).then(|| iris_like(n_queries.div_ceil(3), seed ^ 0x51));
            (d, q)
        }
        "deep" | "gist" | "mnist" => {
            let spec = match kind {
                "deep" => EmbeddingSpec::deep_like(n),
                "gist" => EmbeddingSpec::gist_like(n),
                _ => EmbeddingSpec::mnist_like(n),
            };
            let q = (n_queries > 0).then(|| spec.queries(n_queries));
            (spec.generate(), q)
        }
        other => {
            return Err(CliError::Invalid(format!(
                "unknown kind '{other}' (blobs, dogfish, iris, deep, gist, mnist)"
            )))
        }
    };

    knnshap_datasets::io::save_class_csv(out, &train)?;
    let mut report = format!(
        "wrote {} ({} points × {} features, {} classes)\n",
        out.display(),
        train.len(),
        train.dim(),
        train.n_classes
    );
    if let Some(q) = queries {
        let qpath =
            Path::new(args.require("queries-out").map_err(|_| {
                CliError::Invalid("--queries given but --queries-out missing".into())
            })?);
        save_queries(qpath, &q)?;
        report.push_str(&format!(
            "wrote {} ({} query points)\n",
            qpath.display(),
            q.len()
        ));
    }
    Ok(report)
}

fn save_queries(path: &Path, q: &ClassDataset) -> Result<(), CliError> {
    knnshap_datasets::io::save_class_csv(path, q)?;
    Ok(())
}

#[cfg(test)]
mod tests {

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("knnshap-cli-{}-{name}", std::process::id()))
    }

    #[test]
    fn blobs_roundtrip_through_csv() {
        let out = tmp("synth-blobs.csv");
        let report = crate::run([
            "synth",
            "--kind",
            "blobs",
            "--n",
            "60",
            "--dim",
            "5",
            "--classes",
            "2",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("60 points × 5 features"));
        let back = knnshap_datasets::io::load_class_csv(&out).unwrap();
        assert_eq!(back.len(), 60);
        assert_eq!(back.dim(), 5);
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn queries_require_queries_out() {
        let out = tmp("synth-noq.csv");
        let err = crate::run([
            "synth",
            "--kind",
            "blobs",
            "--n",
            "20",
            "--queries",
            "5",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("queries-out"));
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn dogfish_writes_both_files() {
        let out = tmp("synth-df-train.csv");
        let qout = tmp("synth-df-test.csv");
        let report = crate::run([
            "synth",
            "--kind",
            "dogfish",
            "--n",
            "40",
            "--queries",
            "10",
            "--out",
            out.to_str().unwrap(),
            "--queries-out",
            qout.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("query points"));
        assert!(out.exists() && qout.exists());
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&qout).ok();
    }

    #[test]
    fn iris_and_embedding_kinds_generate() {
        for kind in ["iris", "deep", "gist", "mnist"] {
            let out = tmp(&format!("synth-{kind}.csv"));
            let report = crate::run([
                "synth",
                "--kind",
                kind,
                "--n",
                "90",
                "--out",
                out.to_str().unwrap(),
            ])
            .unwrap();
            assert!(report.contains("points ×"), "{kind}: {report}");
            std::fs::remove_file(&out).ok();
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let err = crate::run(["synth", "--kind", "martian", "--out", "/tmp/x.csv"]).unwrap_err();
        assert!(err.to_string().contains("unknown kind"));
    }
}
