//! `knnshap value` — compute per-point values, optionally price them.

use crate::args::Args;
use crate::commands::{load_pair, parse_method, parse_weight};
use crate::report::{fmt_f64, Table};
use crate::CliError;
use knnshap_core::analysis::monetary_payout;
use knnshap_core::pipeline::KnnShapley;
use knnshap_core::ShapleyValues;
use knnshap_datasets::ClassDataset;
use knnshap_numerics::stats::Summary;
use std::io::Write;
use std::path::Path;

const ALLOWED: &[&str] = &[
    "train",
    "test",
    "k",
    "method",
    "eps",
    "delta",
    "max-tables",
    "weight",
    "weight-param",
    "threads",
    "shards",
    "perms",
    "top",
    "out",
    "revenue",
    "base-fee",
    "seed",
    "graph",
    "adaptive",
];

pub fn run(args: &Args) -> Result<String, CliError> {
    args.expect_only(ALLOWED)?;
    let (train, test) = load_pair(args)?;
    let k = args.usize_or("k", 1)?;
    let method = parse_method(args)?;
    let weight = parse_weight(args)?;
    let threads = args.usize_or("threads", knnshap_parallel::current_threads())?;
    let top = args.usize_or("top", 10)?;
    let shards = args.usize_or("shards", 0)?;
    let adaptive = args.flag("adaptive");

    let graph = super::load_graph(args, &train.x, &test.x)?;

    let started = std::time::Instant::now();
    let (sv, permutations) = if shards > 0 {
        // In-process sharded run: N partials through the wire format, then
        // the deterministic merge — bitwise-identical to the unsharded path.
        super::shard::run_sharded(
            &train,
            &test,
            k,
            method,
            weight,
            graph.as_ref(),
            shards,
            threads,
        )?
    } else {
        let mut builder = KnnShapley::new(&train, &test)
            .k(k)
            .weight(weight)
            .method(method)
            .threads(threads)
            .adaptive(adaptive);
        if let Some(g) = &graph {
            builder = builder.graph(g);
        }
        let report = builder.run_report()?;
        (report.values, report.permutations)
    };
    let secs = started.elapsed().as_secs_f64();

    // Per-permutation throughput of the (parallel) MC paths — the number to
    // watch when tuning --threads.
    let mc_line =
        permutations.map(|perms| crate::commands::mc_throughput_line(perms, secs, threads));

    let payout = match args.f64_opt("revenue")? {
        Some(revenue) => {
            let base = args.f64_or("base-fee", 0.0)?;
            Some(monetary_payout(&sv, revenue, base))
        }
        None => None,
    };

    if let Some(out) = args.str("out") {
        write_csv(Path::new(out), &train, &sv, payout.as_deref())
            .map_err(knnshap_datasets::io::IoError::Io)?;
    }

    Ok(render(
        &train,
        &test,
        k,
        &sv,
        payout.as_deref(),
        top,
        mc_line.as_deref(),
        args.str("method").unwrap_or("exact"),
        args.str("out"),
    ))
}

pub(crate) fn write_csv(
    path: &Path,
    train: &ClassDataset,
    sv: &ShapleyValues,
    payout: Option<&[f64]>,
) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    match payout {
        Some(_) => writeln!(w, "index,label,shapley_value,payout")?,
        None => writeln!(w, "index,label,shapley_value")?,
    }
    for i in 0..sv.len() {
        match payout {
            Some(p) => writeln!(w, "{i},{},{},{}", train.y[i], sv.get(i), p[i])?,
            None => writeln!(w, "{i},{},{}", train.y[i], sv.get(i))?,
        }
    }
    w.flush()
}

/// Renders the `value` report. Also used verbatim by `merge`, so a sharded
/// run's report is byte-identical to the unsharded one (for the
/// deterministic methods — the MC throughput line carries wall-clock time).
#[allow(clippy::too_many_arguments)]
pub(crate) fn render(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    sv: &ShapleyValues,
    payout: Option<&[f64]>,
    top: usize,
    mc_line: Option<&str>,
    method_label: &str,
    out_path: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Valued {} training points against {} test points (K = {k}, method = {method_label}).\n",
        train.len(),
        test.len(),
    ));
    if let Some(line) = mc_line {
        out.push_str(line);
    }
    let s = Summary::of(sv.as_slice());
    out.push_str(&format!(
        "total value (= utility of the full set): {}\n\
         per-point: mean {}  std {}  min {}  max {}\n\n",
        fmt_f64(sv.total()),
        fmt_f64(s.mean),
        fmt_f64(s.std_dev),
        fmt_f64(s.min),
        fmt_f64(s.max),
    ));
    if let Some(p) = payout {
        out.push_str(&format!(
            "payout: revenue×value + equal base-fee split; total paid {}\n\n",
            fmt_f64(p.iter().sum::<f64>()),
        ));
    }

    let mut table = Table::new(if payout.is_some() {
        vec!["rank", "index", "label", "value", "payout"]
    } else {
        vec!["rank", "index", "label", "value"]
    });
    let ranking = sv.ranking();
    for (rank, &i) in ranking.iter().take(top).enumerate() {
        let mut row = vec![
            format!("{}", rank + 1),
            format!("{i}"),
            format!("{}", train.y[i]),
            fmt_f64(sv.get(i)),
        ];
        if let Some(p) = payout {
            row.push(fmt_f64(p[i]));
        }
        table.row(row);
    }
    out.push_str(&format!("top {top} most valuable points:\n"));
    out.push_str(&table.render());
    if let Some(path) = out_path {
        out.push_str(&format!("\nfull values written to {path}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::csv_pair;

    fn argv(tpath: &std::path::Path, qpath: &std::path::Path, extra: &[&str]) -> Vec<String> {
        let mut v = vec![
            "value".to_string(),
            "--train".into(),
            tpath.to_str().unwrap().into(),
            "--test".into(),
            qpath.to_str().unwrap().into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    }

    #[test]
    fn exact_value_report_contains_summary_and_top_table() {
        let (t, q) = csv_pair("value-exact", 60, 8);
        let out = crate::run(argv(&t, &q, &["--k", "3"])).unwrap();
        assert!(out.contains("Valued 60 training points"));
        assert!(out.contains("total value"));
        assert!(out.contains("rank  index  label  value"));
    }

    #[test]
    fn revenue_adds_payout_column_and_conserves_money() {
        let (t, q) = csv_pair("value-pay", 40, 5);
        let out = crate::run(argv(&t, &q, &["--revenue", "1000", "--base-fee", "100"])).unwrap();
        assert!(out.contains("payout"));
        assert!(out.contains("total paid"));
    }

    #[test]
    fn out_writes_csv_with_header() {
        let (t, q) = csv_pair("value-out", 30, 4);
        let out_path =
            std::env::temp_dir().join(format!("knnshap-cli-{}-values.csv", std::process::id()));
        crate::run(argv(&t, &q, &["--out", out_path.to_str().unwrap()])).unwrap();
        let contents = std::fs::read_to_string(&out_path).unwrap();
        let mut lines = contents.lines();
        assert_eq!(lines.next().unwrap(), "index,label,shapley_value");
        assert_eq!(contents.lines().count(), 31);
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn truncated_and_mc_methods_run_end_to_end() {
        let (t, q) = csv_pair("value-methods", 50, 5);
        for m in ["truncated", "mc-improved"] {
            let out = crate::run(argv(&t, &q, &["--method", m, "--eps", "0.2"])).unwrap();
            assert!(out.contains("total value"), "{m}");
        }
    }

    #[test]
    fn mc_methods_report_permutation_throughput() {
        let (t, q) = csv_pair("value-mc-tput", 40, 4);
        for m in ["mc-baseline", "mc-improved"] {
            let out = crate::run(argv(
                &t,
                &q,
                &["--method", m, "--eps", "0.3", "--threads", "2"],
            ))
            .unwrap();
            assert!(out.contains("permutations/s"), "{m}: {out}");
            assert!(out.contains("threads = 2"), "{m}");
        }
        // Deterministic methods stay silent about permutations.
        let out = crate::run(argv(&t, &q, &["--method", "exact"])).unwrap();
        assert!(!out.contains("permutations/s"));
    }

    #[test]
    fn adaptive_flag_is_bitwise_identical_to_static() {
        let (t, q) = csv_pair("value-adaptive", 50, 5);
        let mut csvs = Vec::new();
        for variant in [&["--method", "mc-improved", "--eps", "0.25"][..], {
            &["--method", "mc-improved", "--eps", "0.25", "--adaptive"][..]
        }] {
            let out_path = std::env::temp_dir().join(format!(
                "knnshap-cli-{}-adaptive-{}.csv",
                std::process::id(),
                csvs.len()
            ));
            let mut extra: Vec<&str> = variant.to_vec();
            let path_str = out_path.to_str().unwrap().to_string();
            extra.push("--out");
            extra.push(&path_str);
            crate::run(argv(&t, &q, &extra)).unwrap();
            csvs.push(std::fs::read_to_string(&out_path).unwrap());
            std::fs::remove_file(&out_path).ok();
        }
        assert_eq!(csvs[0], csvs[1], "adaptive scheduling changed the values");
    }

    #[test]
    fn typo_in_option_is_rejected() {
        let (t, q) = csv_pair("value-typo", 20, 3);
        let err = crate::run(argv(&t, &q, &["--kay", "3"])).unwrap_err();
        assert!(err.to_string().contains("unknown option"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = crate::run([
            "value",
            "--train",
            "/nonexistent/knnshap.csv",
            "--test",
            "/nonexistent/knnshap.csv",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
