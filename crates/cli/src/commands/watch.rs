//! `knnshap watch` — live shard × chunk progress for a planned job.
//!
//! Tails the job directory's `events.jsonl` (see `knnshap_runtime::progress`)
//! and renders one machine-greppable progress line per change:
//!
//! ```text
//! progress: chunks 5/12 (41.7%) | shards 1/3 done | spawned 2 | eta 1.4s
//! ```
//!
//! The watcher is a pure consumer: it opens the event stream read-only and
//! never touches plan, lease or shard files, so attaching or detaching one
//! cannot perturb a running job (the determinism battery holds the merged
//! bytes identical either way). It exits cleanly when the `job_done` event
//! lands; `--timeout SECS` bounds the wait for CI smokes watching a job
//! that might stall.
//!
//! The same state machine powers `run-job --watch`, which runs
//! [`stream_progress`] on a side thread while the supervisor works.

use crate::args::Args;
use crate::CliError;
use knnshap_obs::json::{self, Value};
use knnshap_runtime::layout::JobDirs;
use knnshap_runtime::progress::{self, EventCursor};
use knnshap_runtime::spec::JobPlan;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const WATCH_ALLOWED: &[&str] = &["job", "poll", "timeout"];

/// Progress of one shard, folded from its `claim`/`chunk`/`shard_done`
/// events.
#[derive(Debug, Clone)]
pub struct ShardView {
    /// Checkpoint chunks finished (monotone: a resumed shard re-announces
    /// earlier chunks, which must never move this backwards).
    pub chunks_done: u64,
    /// Total chunks this shard splits into (from the plan, corrected by the
    /// first `chunk` event, which carries the authoritative count).
    pub chunks_total: u64,
    /// Worker currently (or last) holding the lease.
    pub owner: Option<String>,
    /// Shard published — counts as all chunks done even if checkpoint
    /// events were skipped by a resume.
    pub done: bool,
}

/// The fold over a job's event stream: feed lines in, read progress out.
pub struct WatchState {
    pub shards: Vec<ShardView>,
    pub spawned: u64,
    pub reassigned: u64,
    pub job_done: bool,
}

impl WatchState {
    pub fn new(plan: &JobPlan) -> Self {
        let per_shard = plan.spec.checkpoint_chunks.max(1) as u64;
        WatchState {
            shards: vec![
                ShardView {
                    chunks_done: 0,
                    chunks_total: per_shard,
                    owner: None,
                    done: false,
                };
                plan.spec.shards
            ],
            spawned: 0,
            reassigned: 0,
            job_done: false,
        }
    }

    /// Fold one event line in; returns whether anything user-visible
    /// changed. Unknown events and malformed lines are skipped — the
    /// watcher must survive stream versions it does not know.
    pub fn apply(&mut self, line: &str) -> bool {
        let Ok(v) = json::parse(line) else {
            return false;
        };
        let field = |key: &str| v.get(key).and_then(Value::as_f64).map(|n| n as u64);
        let shard = || {
            field("shard")
                .map(|s| s as usize)
                .filter(|s| *s < self.shards.len())
        };
        match v.get("ev").and_then(Value::as_str) {
            Some("claim") => {
                let Some(s) = shard() else { return false };
                self.shards[s].owner = v.get("worker").and_then(Value::as_str).map(str::to_string);
                true
            }
            Some("chunk") => {
                let Some(s) = shard() else { return false };
                let sv = &mut self.shards[s];
                if let Some(total) = field("chunks") {
                    sv.chunks_total = total.max(1);
                }
                if let Some(c) = field("chunk") {
                    sv.chunks_done = sv.chunks_done.max((c + 1).min(sv.chunks_total));
                }
                true
            }
            Some("shard_done") => {
                let Some(s) = shard() else { return false };
                let sv = &mut self.shards[s];
                sv.done = true;
                sv.chunks_done = sv.chunks_total;
                true
            }
            Some("spawn") => {
                self.spawned += 1;
                true
            }
            Some("reassign") => {
                self.reassigned += 1;
                true
            }
            Some("job_done") => {
                self.job_done = true;
                true
            }
            _ => false,
        }
    }

    pub fn chunks_done(&self) -> u64 {
        self.shards.iter().map(|s| s.chunks_done).sum()
    }

    pub fn chunks_total(&self) -> u64 {
        self.shards.iter().map(|s| s.chunks_total).sum()
    }

    pub fn shards_done(&self) -> usize {
        self.shards.iter().filter(|s| s.done).count()
    }

    /// The one-line progress report. `elapsed` is time since the watcher
    /// attached; the ETA extrapolates the chunk completion rate observed
    /// *by this watcher* (a late attach sees a burst and a short ETA —
    /// fine, the line is advisory).
    pub fn render(&self, elapsed: Duration) -> String {
        let (done, total) = (self.chunks_done(), self.chunks_total());
        let pct = 100.0 * done as f64 / total.max(1) as f64;
        let mut line = format!(
            "progress: chunks {done}/{total} ({pct:.1}%) | shards {}/{} done | spawned {}",
            self.shards_done(),
            self.shards.len(),
            self.spawned,
        );
        if self.reassigned > 0 {
            line.push_str(&format!(" | reassigned {}", self.reassigned));
        }
        if self.job_done {
            line.push_str(" | merged");
        } else if done > 0 && done < total {
            let eta = elapsed.as_secs_f64() / done as f64 * (total - done) as f64;
            line.push_str(&format!(" | eta {eta:.1}s"));
        }
        line
    }
}

/// Tail a job's event stream, printing a progress line on every change,
/// until the job completes or `stop` is raised. In-process appends (the
/// supervisor of `run-job --watch`) wake the loop instantly via the
/// `progress` notifier; out-of-process workers are covered by the bounded
/// `poll` sleep. Returns the final state.
pub fn stream_progress(
    dirs: &JobDirs,
    plan: &JobPlan,
    poll: Duration,
    stop: &AtomicBool,
) -> WatchState {
    let mut state = WatchState::new(plan);
    let mut cursor = EventCursor::new(dirs);
    let started = Instant::now();
    let mut seen = progress::generation();
    loop {
        let mut changed = false;
        for line in cursor.read_new() {
            changed |= state.apply(&line);
        }
        if changed {
            println!("{}", state.render(started.elapsed()));
            std::io::stdout().flush().ok();
        }
        if state.job_done || stop.load(Ordering::SeqCst) {
            return state;
        }
        seen = progress::wait_for_event(seen, poll);
    }
}

/// `knnshap watch`: follow a job directory until its `job_done` event.
pub fn run_watch(args: &Args) -> Result<String, CliError> {
    args.expect_only(WATCH_ALLOWED)?;
    let dirs = JobDirs::new(args.require("job")?);
    let plan = JobPlan::load(&dirs).map_err(CliError::Runtime)?;
    let poll = Duration::from_millis(args.u64_or("poll", 200)?.max(10));
    let timeout = args.f64_or("timeout", 0.0)?;

    println!(
        "watching {} job {:016x}: {} shards x {} checkpoint chunks",
        plan.kind.name(),
        plan.fingerprint,
        plan.spec.shards,
        plan.spec.checkpoint_chunks,
    );
    let mut state = WatchState::new(&plan);
    let mut cursor = EventCursor::new(&dirs);
    let started = Instant::now();
    let mut seen = progress::generation();
    loop {
        let mut changed = false;
        for line in cursor.read_new() {
            changed |= state.apply(&line);
        }
        if changed {
            println!("{}", state.render(started.elapsed()));
            std::io::stdout().flush().ok();
        }
        if state.job_done {
            return Ok(format!(
                "watch: job complete ({} shards, {} chunks, {} worker spawn(s), \
                 {} reassignment(s))",
                state.shards.len(),
                state.chunks_total(),
                state.spawned,
                state.reassigned,
            ));
        }
        if timeout > 0.0 && started.elapsed().as_secs_f64() >= timeout {
            return Err(CliError::Invalid(format!(
                "watch: job not complete after {timeout} s \
                 ({}/{} chunks done) — is a supervisor or worker running?",
                state.chunks_done(),
                state.chunks_total(),
            )));
        }
        seen = progress::wait_for_event(seen, poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::csv_pair;
    use knnshap_runtime::progress::append_event;
    use std::path::PathBuf;

    fn planned_job(tag: &str) -> (JobDirs, JobPlan, PathBuf) {
        let (t, q) = csv_pair(tag, 24, 6);
        let job =
            std::env::temp_dir().join(format!("knnshap-cli-watch-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&job).ok();
        crate::run([
            "shard-plan",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--shards",
            "3",
            "--checkpoint-chunks",
            "2",
            "--job",
            job.to_str().unwrap(),
        ])
        .unwrap();
        let dirs = JobDirs::new(&job);
        let plan = JobPlan::load(&dirs).unwrap();
        (dirs, plan, job)
    }

    #[test]
    fn state_folds_events_monotonically() {
        let (dirs, plan, job) = planned_job("fold");
        let mut st = WatchState::new(&plan);
        assert_eq!(st.chunks_total(), 6);
        assert_eq!(st.chunks_done(), 0);

        append_event(
            &dirs,
            "claim",
            &[("shard", 1usize.into()), ("worker", "w1".into())],
        );
        append_event(
            &dirs,
            "chunk",
            &[
                ("shard", 1usize.into()),
                ("chunk", 0usize.into()),
                ("chunks", 2usize.into()),
                ("item_hi", 4usize.into()),
            ],
        );
        let mut cur = EventCursor::new(&dirs);
        for l in cur.read_new() {
            assert!(st.apply(&l), "{l}");
        }
        assert_eq!(st.chunks_done(), 1);
        assert_eq!(st.shards[1].owner.as_deref(), Some("w1"));

        // A resume re-announces chunk 0 — progress must not move backwards.
        append_event(
            &dirs,
            "chunk",
            &[
                ("shard", 1usize.into()),
                ("chunk", 1usize.into()),
                ("chunks", 2usize.into()),
                ("item_hi", 8usize.into()),
            ],
        );
        append_event(
            &dirs,
            "chunk",
            &[
                ("shard", 1usize.into()),
                ("chunk", 0usize.into()),
                ("chunks", 2usize.into()),
                ("item_hi", 4usize.into()),
            ],
        );
        for l in cur.read_new() {
            st.apply(&l);
        }
        assert_eq!(st.chunks_done(), 2, "replayed chunk must not regress");

        append_event(
            &dirs,
            "shard_done",
            &[("shard", 0usize.into()), ("worker", "w1".into())],
        );
        append_event(&dirs, "job_done", &[("shards", 3usize.into())]);
        for l in cur.read_new() {
            st.apply(&l);
        }
        assert_eq!(st.shards_done(), 1);
        assert_eq!(st.shards[0].chunks_done, 2, "published shard counts full");
        assert!(st.job_done);
        let line = st.render(Duration::from_secs(1));
        assert!(line.starts_with("progress: chunks 4/6"), "{line}");
        assert!(line.contains("merged"), "{line}");
        std::fs::remove_dir_all(&job).ok();
    }

    #[test]
    fn state_survives_garbage_and_unknown_events() {
        let (_, plan, job) = planned_job("garbage");
        let mut st = WatchState::new(&plan);
        for junk in [
            "not json at all",
            r#"{"ts":1,"lvl":"info","target":"job","ev":"novel_event"}"#,
            r#"{"ts":1,"lvl":"info","target":"job","ev":"chunk","shard":99,"chunk":0}"#,
        ] {
            assert!(!st.apply(junk), "{junk}");
        }
        assert_eq!(st.chunks_done(), 0);
        std::fs::remove_dir_all(&job).ok();
    }

    #[test]
    fn watch_command_follows_a_job_to_completion() {
        let (_, _, job) = planned_job("follow");
        // Run the whole job first; the watcher then replays the recorded
        // stream and exits on the job_done line — the same code path a live
        // tail takes, without cross-thread timing in the test.
        crate::run(["worker", "--job", job.to_str().unwrap()]).unwrap();
        crate::run(["run-job", "--job", job.to_str().unwrap()]).unwrap();
        let out = crate::run(["watch", "--job", job.to_str().unwrap(), "--timeout", "30"]).unwrap();
        assert!(out.contains("watch: job complete"), "{out}");
        std::fs::remove_dir_all(&job).ok();
    }

    #[test]
    fn watch_times_out_on_a_stalled_job() {
        let (_, _, job) = planned_job("stall");
        let err = crate::run([
            "watch",
            "--job",
            job.to_str().unwrap(),
            "--poll",
            "20",
            "--timeout",
            "0.2",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("not complete"), "{err}");
        std::fs::remove_dir_all(&job).ok();
    }
}
