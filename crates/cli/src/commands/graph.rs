//! `knnshap build-graph` — precompute the KNN graph artifact.
//!
//! Runs the blocked distance kernel over the train × test pair once and
//! writes a versioned `KNNGRAPH` file: per-test-point neighbor lists in
//! argsort-identical tie-broken order, stamped with dataset-content
//! fingerprints. Every consumer (`value --graph`, `shard --graph`,
//! `worker --graph`, `serve --graph`) skips its distance pass and produces
//! byte-identical output to the brute-force run, because the graph stores
//! the exact bits the brute-force path would have computed.
//!
//! The graph is **label-free** (features only), so one artifact serves both
//! classification and regression valuation over the same feature matrix —
//! `--task` only selects which CSV format to parse.
//!
//! ```text
//! knnshap build-graph --train t.csv --test q.csv --out g.knngraph
//! knnshap value --train t.csv --test q.csv --k 3 --graph g.knngraph
//! ```

use crate::args::Args;
use crate::CliError;
use knnshap_knn::graph::KnnGraph;
use std::path::Path;

const ALLOWED: &[&str] = &["train", "test", "out", "task", "threads"];

pub fn run(args: &Args) -> Result<String, CliError> {
    args.expect_only(ALLOWED)?;
    let train_path = args.require("train")?;
    let test_path = args.require("test")?;
    let out = args.require("out")?.to_string();
    let threads = args.usize_or("threads", knnshap_parallel::current_threads())?;

    // The artifact only involves features; --task picks the CSV parser.
    let (train_x, test_x) = match args.str("task").unwrap_or("class") {
        "class" => (
            knnshap_datasets::io::load_class_csv(Path::new(train_path))?.x,
            knnshap_datasets::io::load_class_csv(Path::new(test_path))?.x,
        ),
        "reg" => (
            knnshap_datasets::io::load_reg_csv(Path::new(train_path))?.x,
            knnshap_datasets::io::load_reg_csv(Path::new(test_path))?.x,
        ),
        other => {
            return Err(CliError::Invalid(format!(
                "unknown task '{other}' (class, reg)"
            )))
        }
    };
    if train_x.dim() != test_x.dim() {
        return Err(CliError::Invalid(format!(
            "train has {} features but test has {}",
            train_x.dim(),
            test_x.dim()
        )));
    }
    if train_x.is_empty() || test_x.is_empty() {
        return Err(CliError::Invalid(
            "need at least one training and one test point".into(),
        ));
    }

    let started = std::time::Instant::now();
    let graph = KnnGraph::build(&train_x, &test_x, threads);
    let secs = started.elapsed().as_secs_f64();
    graph
        .save(Path::new(&out))
        .map_err(|e| CliError::Invalid(format!("{out}: {e}")))?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or_default();

    Ok(format!(
        "built KNN graph: {} train x {} test points, dim {} in {secs:.3} s \
         (threads = {threads})\n\
         train fingerprint {:016x} | test fingerprint {:016x}\n\
         wrote {bytes} bytes to {out}\n",
        graph.n_train(),
        graph.n_test(),
        graph.dim(),
        graph.train_hash(),
        graph.test_hash(),
    ))
}

#[cfg(test)]
mod tests {
    use crate::commands::testutil::csv_pair;

    fn build_argv(t: &std::path::Path, q: &std::path::Path, out: &std::path::Path) -> Vec<String> {
        vec![
            "build-graph".to_string(),
            "--train".into(),
            t.to_str().unwrap().into(),
            "--test".into(),
            q.to_str().unwrap().into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ]
    }

    #[test]
    fn build_graph_then_value_graph_matches_plain_value_bytes() {
        let (t, q) = csv_pair("buildgraph", 40, 6);
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let gpath = dir.join(format!("knnshap-cli-{pid}-bg.knngraph"));
        let report = crate::run(build_argv(&t, &q, &gpath)).unwrap();
        assert!(
            report.contains("built KNN graph: 40 train x 6 test"),
            "{report}"
        );
        assert!(report.contains("fingerprint"), "{report}");

        let direct_csv = dir.join(format!("knnshap-cli-{pid}-bg-direct.csv"));
        let graph_csv = dir.join(format!("knnshap-cli-{pid}-bg-graph.csv"));
        let base = |out: &std::path::Path| {
            vec![
                "value".to_string(),
                "--train".into(),
                t.to_str().unwrap().into(),
                "--test".into(),
                q.to_str().unwrap().into(),
                "--k".into(),
                "3".into(),
                "--out".into(),
                out.to_str().unwrap().into(),
            ]
        };
        crate::run(base(&direct_csv)).unwrap();
        let mut with_graph = base(&graph_csv);
        with_graph.extend(["--graph".to_string(), gpath.to_str().unwrap().into()]);
        crate::run(with_graph).unwrap();
        // Full-precision CSVs: byte equality is bitwise equality of values.
        assert_eq!(
            std::fs::read(&direct_csv).unwrap(),
            std::fs::read(&graph_csv).unwrap(),
            "value --graph must reproduce value byte for byte"
        );
        for p in [&gpath, &direct_csv, &graph_csv] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn value_rejects_a_graph_built_from_other_data() {
        let (t, q) = csv_pair("graphdrift", 30, 5);
        let (t2, _) = csv_pair("graphdrift2", 31, 5);
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let gpath = dir.join(format!("knnshap-cli-{pid}-drift.knngraph"));
        crate::run(build_argv(&t2, &q, &gpath)).unwrap();
        let err = crate::run([
            "value",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--graph",
            gpath.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(
            err.to_string().contains("graph"),
            "drifted graph must be refused: {err}"
        );
        std::fs::remove_file(&gpath).ok();
    }

    #[test]
    fn sharded_value_with_graph_matches_plain_value() {
        let (t, q) = csv_pair("graphshards", 30, 7);
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let gpath = dir.join(format!("knnshap-cli-{pid}-gs.knngraph"));
        crate::run(build_argv(&t, &q, &gpath)).unwrap();
        let plain = crate::run([
            "value",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--k",
            "2",
        ])
        .unwrap();
        let sharded = crate::run([
            "value",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--k",
            "2",
            "--shards",
            "3",
            "--graph",
            gpath.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(plain, sharded);
        std::fs::remove_file(&gpath).ok();
    }

    #[test]
    fn build_graph_validates_inputs() {
        let (t, q) = csv_pair("graphargs", 10, 2);
        let out = std::env::temp_dir().join(format!(
            "knnshap-cli-{}-graphargs.knngraph",
            std::process::id()
        ));
        // missing --out
        let err = crate::run([
            "build-graph",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("out"), "{err}");
        // bad --task
        let mut argv = build_argv(&t, &q, &out);
        argv.extend(["--task".to_string(), "frob".into()]);
        let err = crate::run(argv).unwrap_err();
        assert!(err.to_string().contains("unknown task"), "{err}");
        std::fs::remove_file(&out).ok();
    }
}
