//! `knnshap shard` / `knnshap merge` — the out-of-process half of the
//! sharded valuation runtime.
//!
//! `shard` computes one canonical shard of a valuation job and writes its
//! partial sums to a self-describing binary file
//! (`knnshap_core::sharding::ShardPartial::to_bytes`; format spec in
//! `docs/sharding.md`). `merge` reads a full set of shard files, validates
//! that they belong to one job and tile it exactly, and prints the same
//! report `value` would — **byte-identical** to an unsharded `value` run
//! for the deterministic methods, because the partial sums are exact and
//! finalized once.
//!
//! ```text
//! knnshap shard --train t.csv --test q.csv --k 3 --shard-index 0 --shard-count 3 --out s0.shard
//! knnshap shard --train t.csv --test q.csv --k 3 --shard-index 1 --shard-count 3 --out s1.shard
//! knnshap shard --train t.csv --test q.csv --k 3 --shard-index 2 --shard-count 3 --out s2.shard
//! knnshap merge --train t.csv --test q.csv --k 3 --inputs s0.shard,s1.shard,s2.shard
//! ```

use crate::args::Args;
use crate::commands::{load_pair, parse_method, parse_weight};
use crate::CliError;
use knnshap_core::mc::{IncKnnUtility, StoppingRule};
use knnshap_core::pipeline::{Method, PipelineError};
use knnshap_core::sharding::{merge_partials, ShardKind, ShardPartial, ShardSpec};
use knnshap_core::utility::KnnClassUtility;
use knnshap_datasets::ClassDataset;
use knnshap_knn::graph::KnnGraph;
use knnshap_knn::weights::WeightFn;
use std::path::Path;

/// Computes one shard's partial for a classification valuation job — the
/// single dispatch used by `shard`, `value --shards` and `audit --shards`,
/// so in-process and multi-process sharding cannot diverge. When a
/// precomputed `graph` is given the shard skips the distance pass; the
/// partial's kind, fingerprint and bytes are identical either way, so
/// graph-backed and brute-force shards of one job inter-merge freely.
pub(crate) fn compute_partial(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    method: Method,
    weight: WeightFn,
    graph: Option<&KnnGraph>,
    spec: ShardSpec,
    threads: usize,
) -> Result<ShardPartial, CliError> {
    let uniform = matches!(weight, WeightFn::Uniform);
    match method {
        Method::Exact => {
            if uniform {
                Ok(match graph {
                    Some(g) => knnshap_core::exact_unweighted::knn_class_shapley_graph_shard(
                        train, test, k, g, spec, threads,
                    ),
                    None => knnshap_core::exact_unweighted::knn_class_shapley_shard(
                        train, test, k, spec, threads,
                    ),
                })
            } else {
                Ok(match graph {
                    Some(g) => {
                        knnshap_core::exact_weighted::weighted_knn_class_shapley_graph_shard(
                            train, test, k, weight, g, spec, threads,
                        )
                    }
                    None => knnshap_core::exact_weighted::weighted_knn_class_shapley_shard(
                        train, test, k, weight, spec, threads,
                    ),
                })
            }
        }
        Method::Truncated { eps } => {
            if !uniform {
                return Err(CliError::Pipeline(PipelineError::WeightedUnsupported(
                    "Truncated",
                )));
            }
            Ok(match graph {
                Some(g) => knnshap_core::truncated::truncated_class_shapley_graph_shard(
                    train, test, k, eps, g, spec, threads,
                ),
                None => knnshap_core::truncated::truncated_class_shapley_shard(
                    train, test, k, eps, spec, threads,
                ),
            })
        }
        Method::McBaseline { rule, seed } => {
            let budget = fixed_budget(rule)?;
            let u = match graph {
                Some(g) => KnnClassUtility::from_graph(train, test, k, weight, g),
                None => KnnClassUtility::new(train, test, k, weight),
            };
            Ok(knnshap_core::mc::mc_shapley_baseline_shard(
                &u, budget, seed, spec, threads,
            ))
        }
        Method::McImproved { rule, seed } => {
            let budget = fixed_budget(rule)?;
            let inc = match graph {
                Some(g) => IncKnnUtility::classification_from_graph(train, test, k, weight, g),
                None => IncKnnUtility::classification(train, test, k, weight),
            };
            Ok(knnshap_core::mc::mc_shapley_improved_shard(
                &inc, budget, seed, spec, threads,
            ))
        }
        Method::Lsh { .. } => Err(CliError::Invalid(LSH_UNSHARDABLE.into())),
        Method::TruncatedTree { .. } => Err(CliError::Invalid(
            "sharding supports exact, truncated, mc-baseline and mc-improved".into(),
        )),
    }
}

/// Why `--method lsh` is rejected by `shard`, `shard-plan` and the job
/// runtime — the full explanation, not a generic "unsupported" line, because
/// the obvious workaround (build a per-shard index) silently breaks the
/// determinism contract. The planned sharding design for LSH is documented
/// in `docs/sharding.md` ("Why LSH does not shard yet").
pub(crate) const LSH_UNSHARDABLE: &str =
    "the LSH method cannot shard by test range: its index needs whole-test-set \
     statistics (the relative-contrast estimate that picks hash width, table \
     count and probe schedule), so independently built per-shard indexes would \
     answer queries differently and the merged values would not match the \
     unsharded run. Planned design: build the index once, then stream query \
     ranges through OnlineValuator workers — see docs/sharding.md";

/// Sharded Monte Carlo needs an a-priori stream budget: the heuristic rule
/// stops on a *sequential* criterion no shard can evaluate alone. The CLI
/// builds `Fixed` rules whenever `--perms N` is given.
fn fixed_budget(rule: StoppingRule) -> Result<usize, CliError> {
    match rule {
        StoppingRule::Fixed(t) => Ok(t),
        _ => Err(CliError::Invalid(
            "sharded Monte Carlo needs a fixed permutation budget: pass --perms N \
             (the §6.2.2 heuristic stop is sequential and cannot be sharded)"
                .into(),
        )),
    }
}

/// In-process sharded run for `value --shards N` / `audit --shards N`:
/// computes each shard (round-tripping it through the wire format so the
/// in-process path exercises exactly what lands on disk) and merges.
/// Returns the values plus the consumed permutation count for MC methods.
pub(crate) fn run_sharded(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    method: Method,
    weight: WeightFn,
    graph: Option<&KnnGraph>,
    shards: usize,
    threads: usize,
) -> Result<(knnshap_core::ShapleyValues, Option<usize>), CliError> {
    let parts: Vec<ShardPartial> = (0..shards)
        .map(|i| {
            let p = compute_partial(
                train,
                test,
                k,
                method,
                weight,
                graph,
                ShardSpec::new(i, shards),
                threads,
            )?;
            ShardPartial::from_bytes(&p.to_bytes()).map_err(CliError::Shard)
        })
        .collect::<Result<_, _>>()?;
    let merged = merge_partials(&parts).map_err(CliError::Shard)?;
    let perms = matches!(
        parts[0].meta.kind,
        ShardKind::McBaseline | ShardKind::McImproved
    )
    .then_some(merged.items as usize);
    Ok((merged.values, perms))
}

const SHARD_ALLOWED: &[&str] = &[
    "train",
    "test",
    "k",
    "method",
    "eps",
    "delta",
    "weight",
    "weight-param",
    "threads",
    "seed",
    "perms",
    "shard-index",
    "shard-count",
    "out",
    "graph",
];

/// `knnshap shard`: compute one shard and write it to `--out`.
pub fn run_shard(args: &Args) -> Result<String, CliError> {
    args.expect_only(SHARD_ALLOWED)?;
    let (train, test) = load_pair(args)?;
    let k = args.usize_or("k", 1)?;
    args.require("shard-index")?;
    args.require("shard-count")?;
    let index = args.usize_or("shard-index", 0)?;
    let count = args.usize_or("shard-count", 0)?;
    if count == 0 || index >= count {
        return Err(CliError::Invalid(format!(
            "--shard-index {index} / --shard-count {count}: need 0 <= index < count"
        )));
    }
    let out = args.require("out")?.to_string();
    let threads = args.usize_or("threads", knnshap_parallel::current_threads())?;
    let method = parse_method(args)?;
    let weight = parse_weight(args)?;
    let graph = super::load_graph(args, &train.x, &test.x)?;

    let partial = compute_partial(
        &train,
        &test,
        k,
        method,
        weight,
        graph.as_ref(),
        ShardSpec::new(index, count),
        threads,
    )?;
    let bytes = partial.to_bytes();
    std::fs::write(Path::new(&out), &bytes).map_err(knnshap_datasets::io::IoError::Io)?;

    let m = &partial.meta;
    Ok(format!(
        "shard {index}/{count} of {} job {:016x}: items {}..{} of {} \
         ({} training points)\nwrote {} bytes to {out}\n",
        m.kind.name(),
        m.fingerprint,
        m.item_lo,
        m.item_hi,
        m.total_items,
        m.n_train,
        bytes.len(),
    ))
}

/// The shard kind and job fingerprint the given datasets + arguments WOULD
/// produce — `merge` compares this against what the shard files claim.
/// `None` for methods that cannot shard (their kind check would already have
/// failed at shard time).
fn expected_job(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    method: Method,
    weight: WeightFn,
) -> Result<Option<(ShardKind, u64)>, CliError> {
    Ok(match method {
        Method::Exact => Some((
            ShardKind::ExactClass,
            if matches!(weight, WeightFn::Uniform) {
                knnshap_core::exact_unweighted::class_fingerprint(train, test, k)
            } else {
                knnshap_core::exact_weighted::weighted_class_fingerprint(train, test, k, weight)
            },
        )),
        Method::Truncated { eps } => Some((
            ShardKind::Truncated,
            knnshap_core::truncated::truncated_fingerprint(train, test, k, eps),
        )),
        // Dataset-content fingerprints: cross-checking an MC merge no longer
        // rebuilds the O(N · N_test) distance matrix (the utilities hash the
        // dataset contents the matrix is derived from).
        Method::McBaseline { seed, .. } => Some((
            ShardKind::McBaseline,
            knnshap_core::mc::mc_baseline_class_fingerprint(train, test, k, weight, seed),
        )),
        Method::McImproved { seed, .. } => Some((
            ShardKind::McImproved,
            knnshap_core::mc::mc_improved_class_fingerprint(train, test, k, weight, seed),
        )),
        Method::TruncatedTree { .. } | Method::Lsh { .. } => None,
    })
}

const MERGE_ALLOWED: &[&str] = &[
    "inputs",
    "train",
    "test",
    "k",
    "method",
    "eps",
    "delta",
    "weight",
    "weight-param",
    "threads",
    "seed",
    "perms",
    "top",
    "out",
    "revenue",
    "base-fee",
];

/// `knnshap merge`: read `--inputs a,b,c`, merge, and print the `value`
/// report (byte-identical to an unsharded `value` run for the deterministic
/// methods).
pub fn run_merge(args: &Args) -> Result<String, CliError> {
    args.expect_only(MERGE_ALLOWED)?;
    let (train, test) = load_pair(args)?;
    let k = args.usize_or("k", 1)?;
    let top = args.usize_or("top", 10)?;

    let inputs = args.require("inputs")?;
    let mut parts = Vec::new();
    for path in inputs.split(',').filter(|p| !p.is_empty()) {
        let bytes = std::fs::read(Path::new(path)).map_err(knnshap_datasets::io::IoError::Io)?;
        parts.push(ShardPartial::from_bytes(&bytes).map_err(CliError::Shard)?);
    }
    if let Some(p) = parts.first() {
        if p.meta.n_train != train.len() as u64 {
            return Err(CliError::Invalid(format!(
                "shards value {} training points but --train has {}",
                p.meta.n_train,
                train.len()
            )));
        }
        let per_test = matches!(
            p.meta.kind,
            ShardKind::ExactClass | ShardKind::ExactReg | ShardKind::Truncated
        );
        if per_test && p.meta.total_items != test.len() as u64 {
            return Err(CliError::Invalid(format!(
                "shards cover {} test points but --test has {}",
                p.meta.total_items,
                test.len()
            )));
        }
        // Recompute the job identity from THIS invocation's datasets and
        // arguments and require it to match the shards', so a `merge` run
        // with a different --k/--method/--seed/--weight (or a swapped CSV of
        // the same size) fails loudly instead of rendering a mislabeled
        // report over someone else's numbers.
        if let Some((kind, fingerprint)) =
            expected_job(&train, &test, k, parse_method(args)?, parse_weight(args)?)?
        {
            if p.meta.kind != kind {
                return Err(CliError::Invalid(format!(
                    "shards were produced by the {} estimator but merge was invoked \
                     for {} — pass the same --method the shards were built with",
                    p.meta.kind.name(),
                    kind.name(),
                )));
            }
            if p.meta.fingerprint != fingerprint {
                return Err(CliError::Invalid(format!(
                    "shards carry job fingerprint {:016x} but these datasets and \
                     arguments produce {fingerprint:016x} — the merge invocation \
                     disagrees with the shard invocations on --k, --seed, --eps, \
                     --weight, or the train/test CSV contents",
                    p.meta.fingerprint,
                )));
            }
        }
    }
    let is_mc = parts
        .first()
        .is_some_and(|p| matches!(p.meta.kind, ShardKind::McBaseline | ShardKind::McImproved));
    let started = std::time::Instant::now();
    let merged = merge_partials(&parts).map_err(CliError::Shard)?;
    let secs = started.elapsed().as_secs_f64();
    let sv = merged.values;
    let threads = args.usize_or("threads", knnshap_parallel::current_threads())?;
    let mc_line =
        is_mc.then(|| crate::commands::mc_throughput_line(merged.items as usize, secs, threads));

    let payout = match args.f64_opt("revenue")? {
        Some(revenue) => {
            let base = args.f64_or("base-fee", 0.0)?;
            Some(knnshap_core::analysis::monetary_payout(&sv, revenue, base))
        }
        None => None,
    };
    if let Some(out) = args.str("out") {
        super::value::write_csv(Path::new(out), &train, &sv, payout.as_deref())
            .map_err(knnshap_datasets::io::IoError::Io)?;
    }
    Ok(super::value::render(
        &train,
        &test,
        k,
        &sv,
        payout.as_deref(),
        top,
        mc_line.as_deref(),
        args.str("method").unwrap_or("exact"),
        args.str("out"),
    ))
}

#[cfg(test)]
mod tests {
    use crate::commands::testutil::csv_pair;
    use std::path::Path;

    fn shard_argv(
        t: &Path,
        q: &Path,
        out: &Path,
        i: usize,
        n: usize,
        extra: &[&str],
    ) -> Vec<String> {
        let mut v = vec![
            "shard".to_string(),
            "--train".into(),
            t.to_str().unwrap().into(),
            "--test".into(),
            q.to_str().unwrap().into(),
            "--shard-index".into(),
            i.to_string(),
            "--shard-count".into(),
            n.to_string(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    }

    #[test]
    fn shard_then_merge_reproduces_value_bytes() {
        let (t, q) = csv_pair("shardcmd", 40, 6);
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let shard_paths: Vec<_> = (0..3)
            .map(|i| dir.join(format!("knnshap-cli-{pid}-s{i}.shard")))
            .collect();
        for (i, p) in shard_paths.iter().enumerate() {
            let report = crate::run(shard_argv(&t, &q, p, i, 3, &["--k", "2"])).unwrap();
            assert!(report.contains(&format!("shard {i}/3")), "{report}");
        }
        let inputs = shard_paths
            .iter()
            .map(|p| p.to_str().unwrap())
            .collect::<Vec<_>>()
            .join(",");
        let merged = crate::run([
            "merge",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--k",
            "2",
            "--inputs",
            &inputs,
        ])
        .unwrap();
        let unsharded = crate::run([
            "value",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--k",
            "2",
        ])
        .unwrap();
        assert_eq!(merged, unsharded, "merge report must be byte-identical");
        for p in &shard_paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn merge_rejects_incomplete_and_tampered_sets() {
        let (t, q) = csv_pair("shardbad", 30, 5);
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let s0 = dir.join(format!("knnshap-cli-{pid}-bad0.shard"));
        let s1 = dir.join(format!("knnshap-cli-{pid}-bad1.shard"));
        crate::run(shard_argv(&t, &q, &s0, 0, 2, &[])).unwrap();
        crate::run(shard_argv(&t, &q, &s1, 1, 2, &[])).unwrap();
        let merge = |inputs: &str| {
            crate::run([
                "merge",
                "--train",
                t.to_str().unwrap(),
                "--test",
                q.to_str().unwrap(),
                "--inputs",
                inputs,
            ])
        };
        // Gap: only one shard of two.
        let err = merge(s0.to_str().unwrap()).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        // Merging with a different --k than the shards were built with is a
        // fingerprint mismatch, not a silently mislabeled report.
        let err = crate::run([
            "merge",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--k",
            "3",
            "--inputs",
            &format!("{},{}", s0.to_str().unwrap(), s1.to_str().unwrap()),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        // Version tampering fails loudly.
        let mut bytes = std::fs::read(&s1).unwrap();
        bytes[8] = 42;
        std::fs::write(&s1, &bytes).unwrap();
        let err = merge(&format!(
            "{},{}",
            s0.to_str().unwrap(),
            s1.to_str().unwrap()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(&s0).ok();
        std::fs::remove_file(&s1).ok();
    }

    #[test]
    fn shard_validates_its_arguments() {
        let (t, q) = csv_pair("shardargs", 20, 3);
        let dir = std::env::temp_dir();
        let out = dir.join(format!("knnshap-cli-{}-argcheck.shard", std::process::id()));
        // index >= count
        let err = crate::run(shard_argv(&t, &q, &out, 5, 2, &[])).unwrap_err();
        assert!(err.to_string().contains("index"), "{err}");
        // lsh is not shardable, and the error says exactly why.
        let err = crate::run(shard_argv(&t, &q, &out, 0, 2, &["--method", "lsh"])).unwrap_err();
        assert!(err.to_string().contains("whole-test-set"), "{err}");
        assert!(err.to_string().contains("docs/sharding.md"), "{err}");
        // mc without --perms is not shardable
        let err =
            crate::run(shard_argv(&t, &q, &out, 0, 2, &["--method", "mc-improved"])).unwrap_err();
        assert!(err.to_string().contains("--perms"), "{err}");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn mc_shard_merge_matches_unsharded_csv() {
        let (t, q) = csv_pair("shardmc", 25, 4);
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let paths: Vec<_> = (0..2)
            .map(|i| dir.join(format!("knnshap-cli-{pid}-mc{i}.shard")))
            .collect();
        let mc_args = ["--method", "mc-improved", "--perms", "60", "--seed", "9"];
        for (i, p) in paths.iter().enumerate() {
            crate::run(shard_argv(&t, &q, p, i, 2, &mc_args)).unwrap();
        }
        let inputs = paths
            .iter()
            .map(|p| p.to_str().unwrap())
            .collect::<Vec<_>>()
            .join(",");
        let merged_csv = dir.join(format!("knnshap-cli-{pid}-mc-merged.csv"));
        let direct_csv = dir.join(format!("knnshap-cli-{pid}-mc-direct.csv"));
        // `merge` must repeat the job-defining arguments (here --seed): the
        // fingerprint cross-check rejects a mismatched invocation.
        crate::run([
            "merge",
            "--train",
            t.to_str().unwrap(),
            "--test",
            q.to_str().unwrap(),
            "--method",
            "mc-improved",
            "--seed",
            "9",
            "--inputs",
            &inputs,
            "--out",
            merged_csv.to_str().unwrap(),
        ])
        .unwrap();
        let mut value_args = vec![
            "value".to_string(),
            "--train".into(),
            t.to_str().unwrap().into(),
            "--test".into(),
            q.to_str().unwrap().into(),
            "--out".into(),
            direct_csv.to_str().unwrap().into(),
        ];
        value_args.extend(mc_args.iter().map(|s| s.to_string()));
        crate::run(value_args).unwrap();
        // CSV artifacts carry full-precision values: byte equality here is
        // bitwise equality of the Shapley vector.
        assert_eq!(
            std::fs::read(&merged_csv).unwrap(),
            std::fs::read(&direct_csv).unwrap()
        );
        for p in paths.iter().chain([&merged_csv, &direct_csv]) {
            std::fs::remove_file(p).ok();
        }
    }
}
