//! `knnshap serve` / `knnshap client` — the valuation daemon and its
//! one-shot command-line client.
//!
//! `serve` loads a train/test CSV pair once, computes the initial exact
//! valuation, and answers protocol requests until a client sends
//! `--op shutdown`. `client` performs one operation per invocation (plus a
//! `--script` mode that replays a mutation script over one connection),
//! which keeps the CLI stateless and shell-scriptable; long-lived callers
//! should use `knnshap_serve::Client` directly.
//!
//! The `--op dump --out FILE` CSV is byte-identical to what
//! `knnshap value --out FILE` writes for the same dataset — that equality
//! (after an arbitrary mutation script) is exactly what the CI serve smoke
//! asserts.

use crate::args::Args;
use crate::CliError;
use knnshap_serve::client::Client;
use knnshap_serve::protocol::{BatchMutation, BatchOutcome};
use knnshap_serve::server::{bind, Endpoint, ValuationServer, DEFAULT_QUEUE_BOUND};
use knnshap_serve::store::DEFAULT_WHATIF_CAPACITY;
use std::io::Write;
use std::path::{Path, PathBuf};

const SERVE_ALLOWED: &[&str] = &[
    "train",
    "test",
    "k",
    "threads",
    "addr",
    "socket",
    "graph",
    "queue-bound",
    "whatif-cache",
];
const CLIENT_ALLOWED: &[&str] = &[
    "addr", "socket", "op", "index", "count", "point", "label", "script", "out", "batch",
];

/// Default mutations per `Batch` frame in `--op script --batch` mode.
const DEFAULT_SCRIPT_BATCH: usize = 16;

/// `--addr HOST:PORT` or `--socket PATH` (exactly one) → [`Endpoint`].
fn parse_endpoint(args: &Args) -> Result<Endpoint, CliError> {
    match (args.str("addr"), args.str("socket")) {
        (Some(addr), None) => Ok(Endpoint::Tcp(addr.to_string())),
        (None, Some(path)) => Ok(Endpoint::Unix(PathBuf::from(path))),
        (Some(_), Some(_)) => Err(CliError::Invalid(
            "--addr and --socket are mutually exclusive".into(),
        )),
        (None, None) => Err(CliError::Invalid(
            "need an endpoint: --addr HOST:PORT or --socket PATH".into(),
        )),
    }
}

/// Comma-separated feature list (`"0.5,1,-2.25"`) → `Vec<f32>`.
fn parse_point(spec: &str) -> Result<Vec<f32>, CliError> {
    spec.split(',')
        .map(|t| {
            let t = t.trim();
            t.parse::<f32>()
                .map_err(|_| CliError::Invalid(format!("bad feature value '{t}' in --point")))
        })
        .collect()
}

pub fn run_serve(args: &Args) -> Result<String, CliError> {
    args.expect_only(SERVE_ALLOWED)?;
    let endpoint = parse_endpoint(args)?;
    let (train, test) = super::load_pair(args)?;
    let k = args.usize_or("k", 1)?;
    let threads = args.usize_or("threads", knnshap_parallel::current_threads())?;

    let graph = super::load_graph(args, &train.x, &test.x)?;
    let server = match &graph {
        Some(g) => ValuationServer::with_graph(train, test, k, threads, g),
        None => ValuationServer::new(train, test, k, threads),
    }
    .map_err(|e| CliError::Invalid(format!("cannot load dataset into the engine: {e}")))?;
    // Admission bound on queued mutations (0 = read-only daemon) and
    // what-if cache capacity (0 = caching off).
    server.set_queue_bound(args.usize_or("queue-bound", DEFAULT_QUEUE_BOUND)?);
    server.set_whatif_capacity(args.usize_or("whatif-cache", DEFAULT_WHATIF_CAPACITY)?);
    let stat = server.handle(&knnshap_serve::Request::Stat);

    // With `KNNSHAP_METRICS=PATH` in the environment, a side thread appends
    // one JSONL metrics snapshot (the obs event schema — same validator as
    // the log) per second until shutdown, plus a final line so short-lived
    // daemons still leave a record. Strictly write-only: served values are
    // bitwise-identical with and without the recorder.
    let recorder = knnshap_obs::metrics_path().map(|path| {
        let server = server.clone();
        std::thread::spawn(move || {
            let append = |line: String| {
                let _ = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| writeln!(f, "{line}"));
            };
            while !server.shutting_down() {
                append(server.metrics_jsonl_line());
                // Nap in short steps so shutdown is never held up by a
                // full snapshot period.
                for _ in 0..10 {
                    if server.shutting_down() {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            }
            append(server.metrics_jsonl_line());
        })
    });

    let bound = bind(server, &endpoint).map_err(|e| CliError::Serve(e.to_string()))?;

    // The daemon announces readiness on stdout *before* blocking in the
    // accept loop, so wrappers can wait for this line instead of polling.
    if let knnshap_serve::Response::Stat {
        version,
        n_train,
        n_test,
        k,
        dim,
        ..
    } = stat
    {
        println!(
            "knnshap serve: listening on {} (n_train = {n_train}, n_test = {n_test}, \
             k = {k}, dim = {dim}, version = {version}, threads = {threads})",
            bound.local_endpoint()
        );
        std::io::stdout().flush().ok();
    }

    // On an accept-loop error the shutdown flag may never rise, so the
    // recorder is only joined on the clean path (the process is about to
    // exit either way — an unjoined recorder cannot outlive it).
    bound.run().map_err(|e| CliError::Serve(e.to_string()))?;
    if let Some(h) = recorder {
        h.join().ok();
    }
    Ok("knnshap serve: shut down cleanly".to_string())
}

pub fn run_client(args: &Args) -> Result<String, CliError> {
    args.expect_only(CLIENT_ALLOWED)?;
    let endpoint = parse_endpoint(args)?;
    let mut client = Client::connect(&endpoint)
        .map_err(|e| CliError::Serve(format!("cannot connect to {endpoint}: {e}")))?;
    let op = args.str("op").unwrap_or("stat");
    match op {
        "stat" => {
            let s = client.stat().map_err(serve_err)?;
            Ok(format!(
                "version {} | n_train {} | n_test {} | k {} | dim {} | \
                 protocol {} | checksum {:016x}",
                s.version, s.n_train, s.n_test, s.k, s.dim, s.protocol, s.checksum
            ))
        }
        "get" => {
            let index = args.u64_or("index", u64::MAX)?;
            if index == u64::MAX {
                return Err(CliError::Invalid("--op get needs --index I".into()));
            }
            let (version, value) = client.get(index).map_err(serve_err)?;
            Ok(format!("version {version} | value[{index}] = {value}"))
        }
        "dump" => {
            let dump = client.dump().map_err(serve_err)?;
            let out = args
                .str("out")
                .ok_or_else(|| CliError::Invalid("--op dump needs --out FILE".into()))?;
            write_dump_csv(Path::new(out), &dump).map_err(|e| CliError::Serve(e.to_string()))?;
            Ok(format!(
                "version {} | wrote {} values to {out}",
                dump.version,
                dump.values.len()
            ))
        }
        "top" | "bottom" => {
            let count = args.u64_or("count", 10)?;
            let (version, entries) = client.ranked(count, op == "top").map_err(serve_err)?;
            let mut out = format!(
                "version {version} | {} {} valuable points:\n",
                entries.len(),
                if op == "top" { "most" } else { "least" }
            );
            for (i, v) in &entries {
                out.push_str(&format!("  {i}: {v}\n"));
            }
            Ok(out)
        }
        "what-if" | "insert" => {
            let point = parse_point(args.require("point")?)?;
            let label = args.u64_or("label", 0)? as u32;
            if op == "what-if" {
                let (version, value) = client.what_if(&point, label).map_err(serve_err)?;
                Ok(format!("version {version} | hypothetical value = {value}"))
            } else {
                let (version, index) = client.insert(&point, label).map_err(serve_err)?;
                Ok(format!("version {version} | inserted as index {index}"))
            }
        }
        "delete" => {
            let index = args.u64_or("index", u64::MAX)?;
            if index == u64::MAX {
                return Err(CliError::Invalid("--op delete needs --index I".into()));
            }
            let (version, _) = client.delete(index).map_err(serve_err)?;
            Ok(format!("version {version} | deleted index {index}"))
        }
        "train-csv" => {
            let (version, csv) = client.train_csv().map_err(serve_err)?;
            let out = args
                .str("out")
                .ok_or_else(|| CliError::Invalid("--op train-csv needs --out FILE".into()))?;
            std::fs::write(out, &csv).map_err(|e| CliError::Serve(e.to_string()))?;
            Ok(format!(
                "version {version} | wrote the training set ({} bytes) to {out}",
                csv.len()
            ))
        }
        "script" => {
            let path = args
                .str("script")
                .ok_or_else(|| CliError::Invalid("--op script needs --script FILE".into()))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Serve(format!("cannot read {path}: {e}")))?;
            // `--batch` (bare) or `--batch N` turns on batched replay:
            // consecutive mutations are coalesced into `Batch` frames of
            // up to N (default 16); what-if lines flush the group first.
            let batch = if args.flag("batch") {
                Some(DEFAULT_SCRIPT_BATCH)
            } else {
                args.str("batch")
                    .map(|_| args.usize_or("batch", DEFAULT_SCRIPT_BATCH))
                    .transpose()?
            };
            match batch {
                Some(0) => Err(CliError::Invalid("--batch needs a group size >= 1".into())),
                batch => run_script(&mut client, &text, batch),
            }
        }
        "metrics" => {
            let m = client.metrics().map_err(serve_err)?;
            Ok(format!(
                "version {} | protocol {} | uptime {:.1} s | requests {}\n\
                 queue: {} pending / bound {}\n\
                 what-if cache: {} hits, {} misses, {} evictions, {} resident\n\
                 latency: {} timed, mean {:.1} us, max {} us\n\
                 batches: {} drained, mean {:.1} mutations, max {}",
                m.version,
                m.protocol,
                m.uptime_secs,
                m.requests,
                m.queue_depth,
                m.queue_bound,
                m.whatif_hits,
                m.whatif_misses,
                m.whatif_evictions,
                m.whatif_len,
                m.latency_micros.count,
                m.latency_micros.mean(),
                m.latency_micros.max,
                m.batch_sizes.count,
                m.batch_sizes.mean(),
                m.batch_sizes.max,
            ))
        }
        "shutdown" => {
            client.shutdown().map_err(serve_err)?;
            Ok("daemon is shutting down".to_string())
        }
        other => Err(CliError::Invalid(format!(
            "unknown --op '{other}' (stat, get, dump, top, bottom, what-if, insert, \
             delete, train-csv, script, metrics, shutdown)"
        ))),
    }
}

/// One parsed script line, with its 1-based line number and raw text for
/// error reporting.
struct ScriptLine {
    lineno: usize,
    text: String,
    op: ScriptOp,
}

enum ScriptOp {
    Insert { features: Vec<f32>, label: u32 },
    Delete { index: u64 },
    WhatIf { features: Vec<f32>, label: u32 },
}

/// Parse the whole script up front, so a syntax error fails the run
/// *before anything is sent* — no partial application on a bad script.
fn parse_script(text: &str) -> Result<Vec<ScriptLine>, CliError> {
    let mut ops = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad =
            |what: &str| CliError::Invalid(format!("script line {}: {what}: '{line}'", lineno + 1));
        let mut tokens = line.split_whitespace();
        let verb = tokens.next().expect("non-empty line");
        let op = match verb {
            "insert" | "what-if" => {
                let features = parse_point(tokens.next().ok_or_else(|| bad("missing features"))?)?;
                let label = tokens
                    .next()
                    .ok_or_else(|| bad("missing label"))?
                    .parse::<u32>()
                    .map_err(|_| bad("bad label"))?;
                if tokens.next().is_some() {
                    return Err(bad("trailing tokens"));
                }
                if verb == "insert" {
                    ScriptOp::Insert { features, label }
                } else {
                    ScriptOp::WhatIf { features, label }
                }
            }
            "delete" => {
                let index = tokens
                    .next()
                    .ok_or_else(|| bad("missing index"))?
                    .parse::<u64>()
                    .map_err(|_| bad("bad index"))?;
                if tokens.next().is_some() {
                    return Err(bad("trailing tokens"));
                }
                ScriptOp::Delete { index }
            }
            _ => return Err(bad("unknown verb (insert, delete, what-if)")),
        };
        ops.push(ScriptLine {
            lineno: lineno + 1,
            text: line.to_string(),
            op,
        });
    }
    Ok(ops)
}

/// A server-side failure pinned to the script line that caused it. The
/// replay stops here; the trailer says what was (not) applied.
fn script_err(line: &ScriptLine, detail: &str, trailer: &str) -> CliError {
    CliError::Serve(format!(
        "script line {} ('{}'): {detail}; stopping — {trailer}",
        line.lineno, line.text
    ))
}

/// Replay a mutation script over one connection. Line format (blank lines
/// and `#` comments ignored):
///
/// ```text
/// insert  F1,F2,...  LABEL
/// delete  INDEX
/// what-if F1,F2,...  LABEL
/// ```
///
/// With `batch = Some(n)`, consecutive insert/delete lines are coalesced
/// into `Batch` frames of up to `n` mutations (a what-if flushes the
/// pending group first, so it sees every earlier mutation applied). The
/// per-mutation acks carry the same versions and indices sequential replay
/// would produce, so stdout is identical in both modes for a script that
/// fully applies.
///
/// Any server-side rejection stops the replay at the failing line, with
/// the line number in the error. In sequential mode no later mutation has
/// been sent; in batched mode later mutations of the *same group* were
/// already applied (the error says so) — later groups are never sent.
fn run_script(client: &mut Client, text: &str, batch: Option<usize>) -> Result<String, CliError> {
    let lines = parse_script(text)?;
    let mut out = String::new();
    let mut applied = 0usize;
    let mut pending: Vec<&ScriptLine> = Vec::new();

    let flush = |client: &mut Client,
                 pending: &mut Vec<&ScriptLine>,
                 out: &mut String,
                 applied: &mut usize|
     -> Result<(), CliError> {
        if pending.is_empty() {
            return Ok(());
        }
        let muts: Vec<BatchMutation> = pending
            .iter()
            .map(|l| match &l.op {
                ScriptOp::Insert { features, label } => BatchMutation::Insert {
                    features: features.clone(),
                    label: *label,
                },
                ScriptOp::Delete { index } => BatchMutation::Delete { index: *index },
                ScriptOp::WhatIf { .. } => unreachable!("what-if lines are never queued"),
            })
            .collect();
        let (_, outcomes) = client.apply_batch(&muts).map_err(|e| {
            script_err(
                pending[0],
                &e.to_string(),
                "no mutation of this group was applied",
            )
        })?;
        for (line, outcome) in pending.drain(..).zip(outcomes) {
            match outcome {
                BatchOutcome::Applied { version, index } => {
                    *applied += 1;
                    match &line.op {
                        ScriptOp::Insert { .. } => {
                            out.push_str(&format!("insert -> index {index} (version {version})\n"))
                        }
                        ScriptOp::Delete { .. } => {
                            out.push_str(&format!("delete {index} (version {version})\n"))
                        }
                        ScriptOp::WhatIf { .. } => unreachable!(),
                    }
                }
                BatchOutcome::Rejected { message, .. } => {
                    return Err(script_err(
                        line,
                        &format!("server rejected: {message}"),
                        "mutations after it in the same batch group may already be applied; \
                         later groups were not sent",
                    ));
                }
            }
        }
        Ok(())
    };

    for line in &lines {
        match &line.op {
            ScriptOp::WhatIf { features, label } => {
                // A what-if must observe every earlier mutation: flush.
                flush(client, &mut pending, &mut out, &mut applied)?;
                let (version, value) = client
                    .what_if(features, *label)
                    .map_err(|e| script_err(line, &e.to_string(), "no later line was applied"))?;
                out.push_str(&format!("what-if -> {value} (version {version})\n"));
            }
            ScriptOp::Insert { features, label } if batch.is_none() => {
                let (version, index) = client
                    .insert(features, *label)
                    .map_err(|e| script_err(line, &e.to_string(), "no later line was applied"))?;
                applied += 1;
                out.push_str(&format!("insert -> index {index} (version {version})\n"));
            }
            ScriptOp::Delete { index } if batch.is_none() => {
                let (version, _) = client
                    .delete(*index)
                    .map_err(|e| script_err(line, &e.to_string(), "no later line was applied"))?;
                applied += 1;
                out.push_str(&format!("delete {index} (version {version})\n"));
            }
            ScriptOp::Insert { .. } | ScriptOp::Delete { .. } => {
                pending.push(line);
                if pending.len() >= batch.expect("batched arm") {
                    flush(client, &mut pending, &mut out, &mut applied)?;
                }
            }
        }
    }
    flush(client, &mut pending, &mut out, &mut applied)?;

    let stat = client.stat().map_err(serve_err)?;
    out.push_str(&format!(
        "script done: {applied} mutations applied, dataset at version {} \
         with {} training points",
        stat.version, stat.n_train
    ));
    Ok(out)
}

/// The dump CSV — the exact format (header and `f64` `Display` rendering)
/// of `knnshap value --out`, so the two artifacts are byte-comparable.
fn write_dump_csv(path: &Path, dump: &knnshap_serve::Dump) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "index,label,shapley_value")?;
    for (i, (label, value)) in dump.labels.iter().zip(&dump.values).enumerate() {
        writeln!(w, "{i},{label},{value}")?;
    }
    w.flush()
}

fn serve_err(e: knnshap_serve::ClientError) -> CliError {
    CliError::Serve(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::csv_pair;

    fn spawn_daemon(tag: &str) -> (Endpoint, std::thread::JoinHandle<std::io::Result<()>>) {
        let (train, test) = csv_pair(tag, 25, 5);
        let train = knnshap_datasets::io::load_class_csv(&train).unwrap();
        let test = knnshap_datasets::io::load_class_csv(&test).unwrap();
        let server = ValuationServer::new(train, test, 3, 1).unwrap();
        let bound = bind(server, &Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let endpoint = bound.local_endpoint().clone();
        (endpoint, std::thread::spawn(move || bound.run()))
    }

    fn client_args(endpoint: &Endpoint, rest: &[&str]) -> Args {
        let Endpoint::Tcp(addr) = endpoint else {
            panic!("tcp endpoint expected")
        };
        let mut argv = vec!["client", "--addr", addr];
        argv.extend_from_slice(rest);
        Args::parse(argv).unwrap()
    }

    #[test]
    fn client_round_trip_through_a_live_daemon() {
        let (endpoint, daemon) = spawn_daemon("client-rt");
        let out = run_client(&client_args(&endpoint, &["--op", "stat"])).unwrap();
        assert!(out.contains("n_train 25"), "{out}");

        let out = run_client(&client_args(
            &endpoint,
            &[
                "--op",
                "insert",
                "--point",
                "0.5,0.5,0.5,0.5",
                "--label",
                "1",
            ],
        ))
        .unwrap();
        assert!(out.contains("inserted as index 25"), "{out}");

        let out = run_client(&client_args(&endpoint, &["--op", "get", "--index", "25"])).unwrap();
        assert!(out.contains("version 1"), "{out}");

        let out = run_client(&client_args(&endpoint, &["--op", "top", "--count", "3"])).unwrap();
        assert!(out.contains("3 most valuable"), "{out}");

        let out = run_client(&client_args(&endpoint, &["--op", "metrics"])).unwrap();
        assert!(out.contains("protocol 3"), "{out}");
        assert!(out.contains("what-if cache:"), "{out}");
        assert!(out.contains("queue: 0 pending"), "{out}");

        run_client(&client_args(&endpoint, &["--op", "shutdown"])).unwrap();
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn script_mode_applies_mutations_in_order() {
        let (endpoint, daemon) = spawn_daemon("client-script");
        let dir = std::env::temp_dir();
        let script = dir.join(format!("knnshap-cli-{}-script.txt", std::process::id()));
        std::fs::write(
            &script,
            "# comment\n\ninsert 1,2,3,4 1\ndelete 0\nwhat-if 0,0,0,0 0\n",
        )
        .unwrap();
        let out = run_client(&client_args(
            &endpoint,
            &["--op", "script", "--script", script.to_str().unwrap()],
        ))
        .unwrap();
        assert!(out.contains("2 mutations applied"), "{out}");
        assert!(out.contains("version 2"), "{out}");
        assert!(out.contains("what-if ->"), "{out}");
        std::fs::remove_file(&script).ok();
        run_client(&client_args(&endpoint, &["--op", "shutdown"])).unwrap();
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn batched_script_replay_prints_the_same_transcript() {
        // Two daemons, same dataset; one replays the script unbatched, the
        // other batched with a group size that forces mid-script flushes.
        // The printed transcript (versions, indices, what-if values) must
        // be identical — the CI smoke asserts the same for dumped CSVs.
        let script = "insert 1,2,3,4 1\ninsert 4,3,2,1 0\nwhat-if 0,0,0,0 0\n\
                      delete 0\ninsert 0.5,0.5,0.5,0.5 2\ndelete 3\ndelete 1\n";
        let mut transcripts = Vec::new();
        for batch in ["seq", "batched"] {
            let (endpoint, daemon) = spawn_daemon(&format!("client-batch-{batch}"));
            let dir = std::env::temp_dir();
            let path = dir.join(format!(
                "knnshap-cli-{}-{batch}-script.txt",
                std::process::id()
            ));
            std::fs::write(&path, script).unwrap();
            let mut argv = vec!["--op", "script", "--script", path.to_str().unwrap()];
            if batch == "batched" {
                argv.extend_from_slice(&["--batch", "2"]);
            }
            let out = run_client(&client_args(&endpoint, &argv)).unwrap();
            std::fs::remove_file(&path).ok();
            run_client(&client_args(&endpoint, &["--op", "shutdown"])).unwrap();
            daemon.join().unwrap().unwrap();
            assert!(out.contains("6 mutations applied"), "{batch}: {out}");
            transcripts.push(out);
        }
        assert_eq!(
            transcripts[0], transcripts[1],
            "batched and sequential replay must print identical transcripts"
        );
    }

    #[test]
    fn script_stops_at_the_failing_line_with_its_number() {
        // Server-side rejection (delete out of range) mid-script: the
        // error names the line, and the insert after it was never applied.
        let (endpoint, daemon) = spawn_daemon("client-script-fail");
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "knnshap-cli-{}-fail-script.txt",
            std::process::id()
        ));
        std::fs::write(
            &path,
            "# leading comment\ninsert 1,2,3,4 1\ndelete 9999\ninsert 9,9,9,9 0\n",
        )
        .unwrap();
        let err = run_client(&client_args(
            &endpoint,
            &["--op", "script", "--script", path.to_str().unwrap()],
        ))
        .unwrap_err();
        std::fs::remove_file(&path).ok();
        let msg = err.to_string();
        assert!(msg.contains("script line 3"), "{msg}");
        assert!(msg.contains("out of range"), "{msg}");
        assert!(msg.contains("no later line was applied"), "{msg}");
        // Line 2 applied (version 1, n_train 26); line 4 did not.
        let out = run_client(&client_args(&endpoint, &["--op", "stat"])).unwrap();
        assert!(out.contains("version 1 | n_train 26"), "{out}");
        run_client(&client_args(&endpoint, &["--op", "shutdown"])).unwrap();
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn script_rejects_batch_group_size_zero() {
        let (endpoint, daemon) = spawn_daemon("client-batch-zero");
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "knnshap-cli-{}-zero-script.txt",
            std::process::id()
        ));
        std::fs::write(&path, "delete 0\n").unwrap();
        let err = run_client(&client_args(
            &endpoint,
            &[
                "--op",
                "script",
                "--script",
                path.to_str().unwrap(),
                "--batch",
                "0",
            ],
        ))
        .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("group size"), "{err}");
        run_client(&client_args(&endpoint, &["--op", "shutdown"])).unwrap();
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn endpoint_and_point_parsing_reject_garbage() {
        let args = Args::parse(["client"]).unwrap();
        assert!(matches!(parse_endpoint(&args), Err(CliError::Invalid(_))));
        let args = Args::parse(["client", "--addr", "h:1", "--socket", "/s"]).unwrap();
        assert!(matches!(parse_endpoint(&args), Err(CliError::Invalid(_))));
        assert!(parse_point("1.5, 2,-3").is_ok());
        assert!(parse_point("1.5,two").is_err());
    }

    #[test]
    fn client_ops_validate_their_required_options() {
        let (endpoint, daemon) = spawn_daemon("client-validate");
        for argv in [
            vec!["--op", "get"],
            vec!["--op", "delete"],
            vec!["--op", "dump"],
            vec!["--op", "train-csv"],
            vec!["--op", "script"],
            vec!["--op", "frobnicate"],
        ] {
            let err = run_client(&client_args(&endpoint, &argv)).unwrap_err();
            assert!(matches!(err, CliError::Invalid(_)), "{argv:?}: {err}");
        }
        run_client(&client_args(&endpoint, &["--op", "shutdown"])).unwrap();
        daemon.join().unwrap().unwrap();
    }
}
