//! `knnshap audit` — surface the lowest-valued (most suspicious) points.
//!
//! The paper's §7 observation that mislabeled/poisoned points receive low
//! values, operationalized: rank ascending, show the inspection list, and —
//! when ground truth is available via `--flagged` — score the ranking with
//! recall/precision/AUC.

use crate::args::Args;
use crate::commands::{load_pair, parse_method, parse_weight};
use crate::report::{fmt_f64, Table};
use crate::CliError;
use knnshap_core::analysis::{per_class_summary, DetectionCurve};
use knnshap_core::pipeline::KnnShapley;
use std::path::Path;

const ALLOWED: &[&str] = &[
    "train",
    "test",
    "k",
    "method",
    "eps",
    "delta",
    "max-tables",
    "weight",
    "weight-param",
    "threads",
    "shards",
    "perms",
    "inspect",
    "flagged",
    "seed",
    "graph",
    "adaptive",
];

pub fn run(args: &Args) -> Result<String, CliError> {
    args.expect_only(ALLOWED)?;
    let (train, test) = load_pair(args)?;
    let k = args.usize_or("k", 1)?;
    let inspect = args.usize_or("inspect", 20)?.min(train.len());

    let threads = args.usize_or("threads", knnshap_parallel::current_threads())?;
    let shards = args.usize_or("shards", 0)?;
    let graph = super::load_graph(args, &train.x, &test.x)?;
    let started = std::time::Instant::now();
    let (sv, permutations) = if shards > 0 {
        super::shard::run_sharded(
            &train,
            &test,
            k,
            parse_method(args)?,
            parse_weight(args)?,
            graph.as_ref(),
            shards,
            threads,
        )?
    } else {
        let mut builder = KnnShapley::new(&train, &test)
            .k(k)
            .weight(parse_weight(args)?)
            .method(parse_method(args)?)
            .threads(threads)
            .adaptive(args.flag("adaptive"));
        if let Some(g) = &graph {
            builder = builder.graph(g);
        }
        let report = builder.run_report()?;
        (report.values, report.permutations)
    };
    let secs = started.elapsed().as_secs_f64();

    let mut out = String::new();
    out.push_str(&format!(
        "Audited {} training points against {} test points (K = {k}).\n",
        train.len(),
        test.len()
    ));
    if let Some(perms) = permutations {
        out.push_str(&crate::commands::mc_throughput_line(perms, secs, threads));
    }
    out.push('\n');

    // Inspection list: ascending value.
    let mut order = sv.ranking();
    order.reverse();
    let mut table = Table::new(["inspect#", "index", "label", "value"]);
    for (pos, &i) in order.iter().take(inspect).enumerate() {
        table.row([
            format!("{}", pos + 1),
            format!("{i}"),
            format!("{}", train.y[i]),
            fmt_f64(sv.get(i)),
        ]);
    }
    out.push_str(&format!(
        "{inspect} most suspicious (lowest-value) points:\n"
    ));
    out.push_str(&table.render());

    // Per-class aggregation (the Fig 14(b) analysis).
    let mut cls = Table::new(["class", "count", "total value", "mean value"]);
    for s in per_class_summary(&sv, &train.y, train.n_classes) {
        cls.row([
            format!("{}", s.class),
            format!("{}", s.count),
            fmt_f64(s.total),
            fmt_f64(s.mean),
        ]);
    }
    out.push_str("\nvalue by class:\n");
    out.push_str(&cls.render());

    // Optional scoring against ground truth.
    if let Some(flagged_path) = args.str("flagged") {
        let is_bad = load_flagged(Path::new(flagged_path), train.len())?;
        let curve = DetectionCurve::new(&sv, &is_bad);
        out.push_str(&format!(
            "\ndetection against {} flagged points:\n\
             recall@{inspect}: {}\n\
             precision@{inspect}: {}\n\
             AUC: {} (1.0 = perfect, 0.5 = random)\n",
            curve.n_bad(),
            fmt_f64(curve.recall_at(inspect)),
            fmt_f64(curve.precision_at(inspect)),
            fmt_f64(curve.auc()),
        ));
    }
    Ok(out)
}

/// Reads one training-point index per line (blank lines and `#` comments
/// skipped) into a boolean mask.
fn load_flagged(path: &Path, n: usize) -> Result<Vec<bool>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(knnshap_datasets::io::IoError::Io(e)))?;
    let mut mask = vec![false; n];
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let idx: usize = line.parse().map_err(|_| {
            CliError::Invalid(format!(
                "{}:{}: '{line}' is not a training-point index",
                path.display(),
                lineno + 1
            ))
        })?;
        if idx >= n {
            return Err(CliError::Invalid(format!(
                "{}:{}: index {idx} out of range (N = {n})",
                path.display(),
                lineno + 1
            )));
        }
        mask[idx] = true;
    }
    if !mask.iter().any(|&b| b) {
        return Err(CliError::Invalid(format!(
            "{}: no indices found",
            path.display()
        )));
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use crate::commands::testutil::csv_pair;

    fn argv(t: &std::path::Path, q: &std::path::Path, extra: &[&str]) -> Vec<String> {
        let mut v = vec![
            "audit".to_string(),
            "--train".into(),
            t.to_str().unwrap().into(),
            "--test".into(),
            q.to_str().unwrap().into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    }

    #[test]
    fn audit_lists_suspicious_points_and_class_totals() {
        let (t, q) = csv_pair("audit-basic", 50, 6);
        let out = crate::run(argv(&t, &q, &["--k", "2", "--inspect", "5"])).unwrap();
        assert!(out.contains("5 most suspicious"));
        assert!(out.contains("value by class:"));
        assert!(out.contains("inspect#"));
    }

    #[test]
    fn flagged_file_produces_detection_metrics() {
        let (t, q) = csv_pair("audit-flag", 40, 5);
        let flagged =
            std::env::temp_dir().join(format!("knnshap-cli-{}-flagged.txt", std::process::id()));
        std::fs::write(&flagged, "# known-bad\n3\n17\n\n25\n").unwrap();
        let out = crate::run(argv(
            &t,
            &q,
            &["--flagged", flagged.to_str().unwrap(), "--inspect", "10"],
        ))
        .unwrap();
        assert!(out.contains("detection against 3 flagged points"));
        assert!(out.contains("AUC:"));
        std::fs::remove_file(&flagged).ok();
    }

    #[test]
    fn flagged_index_out_of_range_is_rejected() {
        let (t, q) = csv_pair("audit-range", 10, 3);
        let flagged = std::env::temp_dir().join(format!(
            "knnshap-cli-{}-flagged-bad.txt",
            std::process::id()
        ));
        std::fs::write(&flagged, "99\n").unwrap();
        let err = crate::run(argv(&t, &q, &["--flagged", flagged.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        std::fs::remove_file(&flagged).ok();
    }

    #[test]
    fn empty_flagged_file_is_rejected() {
        let (t, q) = csv_pair("audit-empty", 10, 3);
        let flagged = std::env::temp_dir().join(format!(
            "knnshap-cli-{}-flagged-empty.txt",
            std::process::id()
        ));
        std::fs::write(&flagged, "# nothing here\n").unwrap();
        let err = crate::run(argv(&t, &q, &["--flagged", flagged.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("no indices"));
        std::fs::remove_file(&flagged).ok();
    }

    #[test]
    fn mc_audit_reports_permutation_throughput() {
        let (t, q) = csv_pair("audit-mc-tput", 30, 4);
        let out = crate::run(argv(
            &t,
            &q,
            &["--method", "mc-improved", "--eps", "0.3", "--threads", "2"],
        ))
        .unwrap();
        assert!(out.contains("permutations/s"), "{out}");
        assert!(out.contains("threads = 2"));
    }

    #[test]
    fn inspect_clamps_to_dataset_size() {
        let (t, q) = csv_pair("audit-clamp", 8, 2);
        let out = crate::run(argv(&t, &q, &["--inspect", "1000"])).unwrap();
        assert!(out.contains("8 most suspicious"));
    }
}
