//! One module per subcommand; each exposes `run(&Args) -> Result<String, CliError>`.

pub mod audit;
pub mod contrast;
pub mod graph;
pub mod job;
pub mod serve;
pub mod shard;
pub mod synth;
pub mod value;
pub mod watch;

use crate::args::Args;
use crate::CliError;
use knnshap_core::mc::StoppingRule;
use knnshap_core::pipeline::Method;
use knnshap_datasets::ClassDataset;
use knnshap_knn::graph::KnnGraph;
use knnshap_knn::weights::WeightFn;
use std::path::Path;

/// Loads the `--train`/`--test` CSV pair shared by value/audit/contrast.
pub(crate) fn load_pair(args: &Args) -> Result<(ClassDataset, ClassDataset), CliError> {
    let train = knnshap_datasets::io::load_class_csv(Path::new(args.require("train")?))?;
    let test = knnshap_datasets::io::load_class_csv(Path::new(args.require("test")?))?;
    if train.dim() != test.dim() {
        return Err(CliError::Invalid(format!(
            "train has {} features but test has {}",
            train.dim(),
            test.dim()
        )));
    }
    Ok((train, test))
}

/// Resolves `--method`/`--eps`/`--delta`/`--seed`/`--perms` into a pipeline
/// [`Method`]. The MC methods default to the §6.2.2 heuristic stop; an
/// explicit `--perms N` pins a fixed N-permutation budget instead — the
/// form the sharded runtime requires (a shard cannot evaluate a sequential
/// stopping criterion).
pub(crate) fn parse_method(args: &Args) -> Result<Method, CliError> {
    let eps = args.f64_or("eps", 0.1)?;
    let delta = args.f64_or("delta", 0.1)?;
    let seed = args.u64_or("seed", 42)?;
    let perms = args.usize_or("perms", 0)?;
    let mc_rule = |heuristic_max: usize| match perms {
        0 => StoppingRule::Heuristic {
            threshold: knnshap_core::bounds::heuristic_threshold(eps),
            max: heuristic_max,
        },
        t => StoppingRule::Fixed(t),
    };
    match args.str("method").unwrap_or("exact") {
        "exact" => Ok(Method::Exact),
        "truncated" => Ok(Method::Truncated { eps }),
        "lsh" => Ok(Method::Lsh {
            eps,
            delta,
            max_tables: args.usize_or("max-tables", 64)?,
        }),
        "mc-baseline" => Ok(Method::McBaseline {
            rule: mc_rule(50_000),
            seed,
        }),
        "mc-improved" => Ok(Method::McImproved {
            rule: mc_rule(200_000),
            seed,
        }),
        other => Err(CliError::Invalid(format!(
            "unknown method '{other}' (exact, truncated, lsh, mc-baseline, mc-improved)"
        ))),
    }
}

/// The per-permutation throughput line the MC paths of `value` and `audit`
/// both print: permutations consumed, wall-clock, permutations/s, threads.
pub(crate) fn mc_throughput_line(permutations: usize, secs: f64, threads: usize) -> String {
    format!(
        "monte carlo: {permutations} permutations in {secs:.3} s \
         ({:.1} permutations/s, threads = {threads})\n",
        permutations as f64 / secs.max(1e-9),
    )
}

/// Loads the optional `--graph FILE` artifact (`knnshap build-graph`) and
/// fingerprint-checks it against the datasets it is about to value, so a
/// graph built from drifted CSVs is refused up front with a CLI error
/// instead of a panic deep inside an estimator.
pub(crate) fn load_graph(
    args: &Args,
    train: &knnshap_datasets::Features,
    test: &knnshap_datasets::Features,
) -> Result<Option<KnnGraph>, CliError> {
    let Some(path) = args.str("graph") else {
        return Ok(None);
    };
    let graph =
        KnnGraph::load(Path::new(path)).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    graph
        .validate_against(train, test)
        .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    Ok(Some(graph))
}

/// Resolves `--weight`/`--weight-param` into a [`WeightFn`].
pub(crate) fn parse_weight(args: &Args) -> Result<WeightFn, CliError> {
    match args.str("weight").unwrap_or("uniform") {
        "uniform" => Ok(WeightFn::Uniform),
        "inverse" => Ok(WeightFn::InverseDistance {
            eps: args.f64_or("weight-param", 1e-3)? as f32,
        }),
        "exponential" => Ok(WeightFn::Exponential {
            beta: args.f64_or("weight-param", 1.0)? as f32,
        }),
        other => Err(CliError::Invalid(format!(
            "unknown weight '{other}' (uniform, inverse, exponential)"
        ))),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use knnshap_datasets::synth::blobs::{self, BlobConfig};
    use std::path::PathBuf;

    /// Writes a small train/test CSV pair into the temp dir; returns paths.
    pub fn csv_pair(tag: &str, n: usize, n_test: usize) -> (PathBuf, PathBuf) {
        let cfg = BlobConfig {
            n,
            dim: 4,
            n_classes: 2,
            cluster_std: 0.5,
            center_scale: 3.0,
            seed: 11,
        };
        let train = blobs::generate(&cfg);
        let test = blobs::queries(&cfg, n_test, 23);
        let dir = std::env::temp_dir();
        let tpath = dir.join(format!(
            "knnshap-cli-{}-{tag}-train.csv",
            std::process::id()
        ));
        let qpath = dir.join(format!("knnshap-cli-{}-{tag}-test.csv", std::process::id()));
        knnshap_datasets::io::save_class_csv(&tpath, &train).unwrap();
        knnshap_datasets::io::save_class_csv(&qpath, &test).unwrap();
        (tpath, qpath)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_parsing_covers_all_variants() {
        for (name, ok) in [
            ("exact", true),
            ("truncated", true),
            ("lsh", true),
            ("mc-baseline", true),
            ("mc-improved", true),
            ("bogus", false),
        ] {
            let args = Args::parse(["value", "--method", name]).unwrap();
            assert_eq!(parse_method(&args).is_ok(), ok, "{name}");
        }
    }

    #[test]
    fn weight_parsing_covers_all_variants() {
        let args = Args::parse(["value", "--weight", "inverse", "--weight-param", "0.01"]).unwrap();
        assert!(matches!(
            parse_weight(&args).unwrap(),
            WeightFn::InverseDistance { .. }
        ));
        let args = Args::parse(["value", "--weight", "nope"]).unwrap();
        assert!(parse_weight(&args).is_err());
        let args = Args::parse(["value"]).unwrap();
        assert!(matches!(parse_weight(&args).unwrap(), WeightFn::Uniform));
    }

    #[test]
    fn load_pair_validates_dimensions() {
        let (tpath, _) = testutil::csv_pair("dim-a", 20, 5);
        let dir = std::env::temp_dir();
        let bad = dir.join(format!("knnshap-cli-{}-dim-bad.csv", std::process::id()));
        std::fs::write(&bad, "1.0,2.0,0\n3.0,4.0,1\n").unwrap();
        let args = Args::parse([
            "value",
            "--train",
            tpath.to_str().unwrap(),
            "--test",
            bad.to_str().unwrap(),
        ])
        .unwrap();
        let err = load_pair(&args).unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)), "{err}");
        std::fs::remove_file(&bad).ok();
    }
}
