//! Plain-text report building: aligned tables and key/value sections.

/// A column-aligned text table (right-aligned numeric feel, left-aligned
/// header rule), rendered with `render`.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row; panics if the cell count differs from the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "cell count mismatch");
        self.rows.push(row);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with two-space gutters and a dashed rule under the header.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..*w {
                    out.push(' ');
                }
            }
            // trim trailing pad
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: Vec<String> = (0..ncol).map(|i| "-".repeat(widths[i])).collect();
        emit(&mut out, &rule);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a float for reports: fixed 6 decimals for ordinary magnitudes,
/// scientific for very small/large non-zero values.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e-4 && v.abs() < 1e7 {
        format!("{v:.6}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["idx", "value"]);
        t.row(["1", "0.5"]).row(["10", "-0.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "idx  value");
        assert_eq!(lines[1], "---  -----");
        assert_eq!(lines[2], "1    0.5");
        assert_eq!(lines[3], "10   -0.25");
    }

    #[test]
    fn wide_cells_stretch_columns() {
        let mut t = Table::new(["a"]);
        t.row(["longer-than-header"]);
        let s = t.render();
        assert!(s.lines().nth(1).unwrap().len() >= "longer-than-header".len());
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn float_formatting_modes() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.5), "0.500000");
        assert_eq!(fmt_f64(-3.25e-7), "-3.250e-7");
        assert_eq!(fmt_f64(1.0e9), "1.000e9");
    }
}
