use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = knnshap_cli::run(argv);
    // `KNNSHAP_METRICS=PATH`: append one final counter snapshot for the
    // whole invocation (JSONL, one line per dump) and drain any buffered
    // log events before the process exits.
    if let Some(path) = knnshap_obs::metrics_path() {
        knnshap_obs::dump_metrics(&path).ok();
    }
    knnshap_obs::flush();
    match result {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            // The full usage text only helps when the command line itself
            // was wrong; operational failures (timeouts, IO, daemon errors)
            // get the one-line message alone.
            match e {
                knnshap_cli::CliError::Args(_) | knnshap_cli::CliError::UnknownCommand(_) => {
                    eprintln!("error: {e}\n\n{}", knnshap_cli::USAGE)
                }
                _ => eprintln!("error: {e}"),
            }
            ExitCode::FAILURE
        }
    }
}
