use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match knnshap_cli::run(argv) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", knnshap_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
