//! Minimal `--key value` argument parsing.
//!
//! The workspace's allowed dependency set has no argument-parsing crate, so
//! the CLI rolls the small subset it needs: one positional subcommand
//! followed by `--key value` options and bare `--flag` switches. Every
//! command validates its option names against an allowlist so typos fail
//! loudly instead of silently falling back to defaults.

use std::collections::BTreeMap;

/// Parsed command line: subcommand plus options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    sub: String,
    kv: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors produced while parsing or typing option values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingSubcommand,
    /// Token didn't look like `--key`.
    UnexpectedToken(String),
    /// Required option absent.
    Missing(String),
    /// Option value failed to parse as the requested type.
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
    /// Option name not in the command's allowlist.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingSubcommand => write!(f, "missing subcommand"),
            ArgError::UnexpectedToken(t) => write!(f, "unexpected token '{t}' (expected --key)"),
            ArgError::Missing(k) => write!(f, "missing required option --{k}"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} {value}: expected {expected}")
            }
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `tokens` (argv without the program name).
    pub fn parse<I, S>(tokens: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = tokens.into_iter().map(Into::into).peekable();
        let sub = it.next().ok_or(ArgError::MissingSubcommand)?;
        if sub.starts_with("--") {
            return Err(ArgError::UnexpectedToken(sub));
        }
        let mut kv = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError::UnexpectedToken(tok.clone()))?
                .to_string();
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    let val = it.next().expect("peeked");
                    kv.insert(key, val);
                }
                _ => flags.push(key),
            }
        }
        Ok(Self { sub, kv, flags })
    }

    /// The positional subcommand.
    pub fn subcommand(&self) -> &str {
        &self.sub
    }

    /// Raw string option.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.str(key).ok_or_else(|| ArgError::Missing(key.into()))
    }

    fn typed<T: std::str::FromStr>(
        &self,
        key: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgError> {
        match self.kv.get(key) {
            None => Ok(None),
            Some(v) => v.parse::<T>().map(Some).map_err(|_| ArgError::BadValue {
                key: key.into(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// `usize` option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        Ok(self
            .typed::<usize>(key, "an unsigned integer")?
            .unwrap_or(default))
    }

    /// `u64` option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        Ok(self
            .typed::<u64>(key, "an unsigned integer")?
            .unwrap_or(default))
    }

    /// `f64` option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        Ok(self.typed::<f64>(key, "a number")?.unwrap_or(default))
    }

    /// Optional `f64` (present/absent matters, e.g. `--revenue`).
    pub fn f64_opt(&self, key: &str) -> Result<Option<f64>, ArgError> {
        self.typed::<f64>(key, "a number")
    }

    /// Bare switch (`--verbose`).
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Rejects any option or flag not in `allowed` — catches misspellings.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.kv.keys().chain(self.flags.iter()) {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::Unknown(k.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_options_and_flags() {
        let a = Args::parse(["value", "--train", "t.csv", "--k", "3", "--verbose"]).unwrap();
        assert_eq!(a.subcommand(), "value");
        assert_eq!(a.str("train"), Some("t.csv"));
        assert_eq!(a.usize_or("k", 1).unwrap(), 3);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(["synth"]).unwrap();
        assert_eq!(a.usize_or("n", 100).unwrap(), 100);
        assert_eq!(a.f64_or("eps", 0.1).unwrap(), 0.1);
        assert_eq!(a.u64_or("seed", 7).unwrap(), 7);
        assert_eq!(a.f64_opt("revenue").unwrap(), None);
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = Args::parse(["synth", "--shift", "-1.5"]).unwrap();
        assert_eq!(a.f64_or("shift", 0.0).unwrap(), -1.5);
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert_eq!(
            Args::parse(Vec::<String>::new()).unwrap_err(),
            ArgError::MissingSubcommand
        );
        assert!(matches!(
            Args::parse(["--k", "3"]).unwrap_err(),
            ArgError::UnexpectedToken(_)
        ));
    }

    #[test]
    fn required_and_badly_typed_options() {
        let a = Args::parse(["value", "--k", "three"]).unwrap();
        assert_eq!(
            a.require("train").unwrap_err(),
            ArgError::Missing("train".into())
        );
        assert!(matches!(a.usize_or("k", 1), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn allowlist_rejects_typos() {
        let a = Args::parse(["value", "--trian", "x.csv"]).unwrap();
        assert_eq!(
            a.expect_only(&["train", "test"]).unwrap_err(),
            ArgError::Unknown("trian".into())
        );
        let ok = Args::parse(["value", "--train", "x.csv", "--fast"]).unwrap();
        assert!(ok.expect_only(&["train", "fast"]).is_ok());
    }

    #[test]
    fn positional_after_flag_becomes_its_value() {
        // `--flag sub` style ambiguity is resolved toward key/value; callers
        // that want switches put them last or use dedicated names.
        let a = Args::parse(["audit", "--verbose", "--inspect", "5"]).unwrap();
        assert!(a.flag("verbose"));
        assert_eq!(a.usize_or("inspect", 0).unwrap(), 5);
    }
}
