//! Property-based tests for the KNN substrate.

use knnshap_datasets::Features;
use knnshap_knn::block::{blocked_squared_l2_with_tiles, naive_squared_l2};
use knnshap_knn::distance::Metric;
use knnshap_knn::graph::KnnGraph;
use knnshap_knn::heap::KnnHeap;
use knnshap_knn::kdtree::KdTree;
use knnshap_knn::neighbors::{argsort_by_distance, partial_k_nearest, top_k};
use proptest::prelude::*;

fn features(n: usize, dim: usize, vals: &[f32]) -> Features {
    Features::new(vals[..n * dim].to_vec(), dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn retrieval_backends_agree(
        vals in prop::collection::vec(-10.0f32..10.0, 60),
        q in prop::collection::vec(-10.0f32..10.0, 2),
        k in 1usize..12,
    ) {
        let data = features(30, 2, &vals);
        let full = argsort_by_distance(&data, &q, Metric::SquaredL2);
        let partial = partial_k_nearest(&data, &q, k, Metric::SquaredL2);
        let heap = top_k(&data, &q, k, Metric::SquaredL2);
        let tree = KdTree::build(&data);
        let via_tree = tree.k_nearest(&q, k);
        let kk = k.min(30);
        for backend in [&partial, &heap, &via_tree] {
            prop_assert_eq!(backend.len(), kk);
            for (a, b) in backend.iter().zip(&full[..kk]) {
                prop_assert_eq!(a.index, b.index);
            }
        }
    }

    #[test]
    fn argsort_is_a_sorted_permutation(
        vals in prop::collection::vec(-5.0f32..5.0, 40),
        q in prop::collection::vec(-5.0f32..5.0, 4),
    ) {
        let data = features(10, 4, &vals);
        let ranked = argsort_by_distance(&data, &q, Metric::SquaredL2);
        prop_assert!(ranked.windows(2).all(|w| w[0].dist <= w[1].dist));
        let mut idx: Vec<u32> = ranked.iter().map(|n| n.index).collect();
        idx.sort_unstable();
        prop_assert_eq!(idx, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn heap_tracks_k_smallest(
        dists in prop::collection::vec(0.0f32..100.0, 1..60),
        k in 1usize..10,
    ) {
        let mut h = KnnHeap::new(k);
        for (i, &d) in dists.iter().enumerate() {
            h.insert(d, i as u32);
        }
        let mut sorted = dists.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<f32> = h.sorted().iter().map(|&(d, _)| d).collect();
        prop_assert_eq!(got, sorted[..k.min(dists.len())].to_vec());
    }

    #[test]
    fn heap_change_detection_is_consistent(
        dists in prop::collection::vec(0.0f32..100.0, 1..40),
        k in 1usize..6,
    ) {
        // `changed` must be true exactly when the sorted contents change.
        let mut h = KnnHeap::new(k);
        let mut prev = h.sorted();
        for (i, &d) in dists.iter().enumerate() {
            let changed = h.insert(d, i as u32).changed();
            let now = h.sorted();
            prop_assert_eq!(changed, prev != now);
            prev = now;
        }
    }

    #[cfg(not(feature = "fast-accum"))]
    #[test]
    fn blocked_kernel_bitwise_equals_naive_for_any_tiling(
        vals in prop::collection::vec(-10.0f32..10.0, 120),
        qvals in prop::collection::vec(-10.0f32..10.0, 21),
        n in 1usize..40,
        // Random tile shapes spanning every edge case: tile 1, tiles that do
        // not divide n, and tiles larger than the whole data (n < tile).
        q_tile in 1usize..12,
        t_tile in 1usize..64,
        threads in 1usize..5,
    ) {
        let dim = 3;
        let train = features(n, dim, &vals);
        let queries = features(7, dim, &qvals);
        let naive = naive_squared_l2(&train, &queries);
        let blocked = blocked_squared_l2_with_tiles(&train, &queries, q_tile, t_tile, threads);
        prop_assert_eq!(blocked.len(), naive.len());
        for (br, nr) in blocked.iter().zip(&naive) {
            prop_assert_eq!(br.len(), nr.len());
            for (x, y) in br.iter().zip(nr) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[cfg(not(feature = "fast-accum"))]
    #[test]
    fn graph_build_matches_argsort_and_survives_round_trip(
        vals in prop::collection::vec(-5.0f32..5.0, 48),
        qvals in prop::collection::vec(-5.0f32..5.0, 8),
        n in 1usize..24,
        threads in 1usize..4,
    ) {
        let train = features(n, 2, &vals);
        let queries = features(4, 2, &qvals);
        let g = KnnGraph::build(&train, &queries, threads);
        let g2 = KnnGraph::from_bytes(&g.to_bytes()).unwrap();
        prop_assert!(g2.validate_against(&train, &queries).is_ok());
        for j in 0..queries.len() {
            let want = argsort_by_distance(&train, queries.row(j), Metric::SquaredL2);
            let got = g2.list(j);
            prop_assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                prop_assert_eq!(a.index, b.index);
                prop_assert_eq!(a.dist.to_bits(), b.dist.to_bits());
            }
        }
    }

    #[test]
    fn metrics_nonnegative_and_symmetric(
        a in prop::collection::vec(-3.0f32..3.0, 6),
        b in prop::collection::vec(-3.0f32..3.0, 6),
    ) {
        for m in [Metric::SquaredL2, Metric::L2, Metric::Cosine] {
            let ab = m.eval(&a, &b);
            let ba = m.eval(&b, &a);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - ba).abs() < 1e-5);
        }
    }
}
