//! Blocked, cache-tiled batch distance kernel.
//!
//! The brute-force distance pass behind every estimator streams the whole
//! training matrix once per query: at paper scale (N = 10⁶, d = 16 ⇒ 64 MB of
//! features) each query evicts the previous one's working set, and
//! `BENCH_mc.json`'s flat thread scaling shows the pass is memory-bound, not
//! compute-bound. This module restructures the loop the way a GPU kernel
//! tiles shared memory: queries are processed in blocks of [`QUERY_TILE`]
//! rows and the training matrix in blocks of [`TRAIN_TILE`] rows, so one
//! train tile is loaded from memory once and reused against every query in
//! the query tile while it is still cache-hot.
//!
//! ### Bitwise neutrality
//!
//! Tiling only reorders *which pair is computed when*. Every output slot
//! `(q, t)` is an independent pure function of the two rows — exactly
//! [`squared_l2`], the same arithmetic the
//! per-query [`argsort_by_distance`](crate::neighbors::argsort_by_distance)
//! path uses — and the parallel fan-out is an order-preserving
//! [`knnshap_parallel::par_map`] over disjoint query tiles. Tile shape and
//! thread count therefore cannot change a single bit of the output, which is
//! what lets `KNNGRAPH` artifacts built by this kernel feed estimators that
//! promise bitwise equality with the brute-force path
//! (`tests/graph_determinism.rs` holds it to that).
//!
//! The optional `fast-accum` cargo feature swaps the per-pair arithmetic for
//! a wider 8-lane accumulation. It is OFF by default and nothing in CI
//! enables it: turning it on trades the bitwise contract for throughput, and
//! the graph loaders will refuse artifacts whose distances no longer match
//! the brute-force recompute fingerprints.

use crate::distance::squared_l2;
use knnshap_datasets::Features;

/// Number of query rows per tile. Small: the tile of partial result rows
/// (QUERY_TILE × TRAIN_TILE distances) must stay resident in L1/L2 alongside
/// the feature rows.
pub const QUERY_TILE: usize = 8;

/// Number of training rows per tile. 256 rows × 16-dim f32 = 16 KB — half an
/// L1d on typical x86 parts, leaving room for the query rows and outputs.
pub const TRAIN_TILE: usize = 256;

/// Per-pair squared-L2 under the default (bitwise) accumulation.
#[cfg(not(feature = "fast-accum"))]
#[inline]
fn pair_dist(a: &[f32], b: &[f32]) -> f32 {
    squared_l2(a, b)
}

/// Per-pair squared-L2 with 8 independent accumulators (`fast-accum`):
/// wider vectorization, different rounding order — NOT bitwise-equal to
/// [`squared_l2`].
#[cfg(feature = "fast-accum")]
#[inline]
fn pair_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let j = i * 8;
        for l in 0..8 {
            let d = a[j + l] - b[j + l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        let d = a[i] - b[i];
        tail += d * d;
    }
    acc.iter().sum::<f32>() + tail
}

/// All pairwise squared-L2 distances, one `Vec` per query row (each of
/// length `train.len()`), computed with the fixed [`QUERY_TILE`] ×
/// [`TRAIN_TILE`] partition and fanned out over `threads` workers.
///
/// Bitwise-identical to [`naive_squared_l2`] at every thread count (default
/// build; see the module docs for the `fast-accum` caveat).
pub fn blocked_squared_l2(train: &Features, queries: &Features, threads: usize) -> Vec<Vec<f32>> {
    blocked_squared_l2_with_tiles(train, queries, QUERY_TILE, TRAIN_TILE, threads)
}

/// Tile-parameterized variant of [`blocked_squared_l2`], exposed so the
/// property suite can prove the output is invariant to the tile partition
/// (any `q_tile`, `t_tile` ≥ 1, including tiles larger than the data).
pub fn blocked_squared_l2_with_tiles(
    train: &Features,
    queries: &Features,
    q_tile: usize,
    t_tile: usize,
    threads: usize,
) -> Vec<Vec<f32>> {
    assert!(q_tile >= 1 && t_tile >= 1, "tile sizes must be >= 1");
    assert_eq!(
        train.dim(),
        queries.dim(),
        "train/query dimension mismatch: {} vs {}",
        train.dim(),
        queries.dim()
    );
    let n_train = train.len();
    let n_queries = queries.len();
    let n_qtiles = n_queries.div_ceil(q_tile).max(1);
    if n_queries == 0 {
        return Vec::new();
    }
    // Order-preserving fan-out over disjoint query tiles: worker assignment
    // cannot reorder or interleave writes to any output row.
    let tiles: Vec<Vec<Vec<f32>>> = knnshap_parallel::par_map(n_qtiles, threads, |qt| {
        let q_lo = qt * q_tile;
        let q_hi = (q_lo + q_tile).min(n_queries);
        let mut rows: Vec<Vec<f32>> = (q_lo..q_hi).map(|_| vec![0.0f32; n_train]).collect();
        // Walk the training matrix in tiles; each tile's rows stay cache-hot
        // across all queries of this query tile.
        let mut t_lo = 0;
        while t_lo < n_train {
            let t_hi = (t_lo + t_tile).min(n_train);
            for (row, q) in rows.iter_mut().zip(q_lo..q_hi) {
                let qrow = queries.row(q);
                for t in t_lo..t_hi {
                    row[t] = pair_dist(qrow, train.row(t));
                }
            }
            t_lo = t_hi;
        }
        rows
    });
    tiles.into_iter().flatten().collect()
}

/// Reference kernel: the untiled row-major double loop, one
/// [`squared_l2`] call per pair. The property
/// suite pins [`blocked_squared_l2_with_tiles`] bitwise to this for random
/// tile shapes.
pub fn naive_squared_l2(train: &Features, queries: &Features) -> Vec<Vec<f32>> {
    assert_eq!(train.dim(), queries.dim(), "train/query dimension mismatch");
    (0..queries.len())
        .map(|q| {
            let qrow = queries.row(q);
            (0..train.len())
                .map(|t| squared_l2(qrow, train.row(t)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(n: usize, dim: usize, seed: u32) -> Features {
        // Cheap deterministic pseudo-data; values vary per (row, col, seed).
        let mut f = Features::with_capacity(n, dim);
        for i in 0..n {
            let row: Vec<f32> = (0..dim)
                .map(|j| {
                    let x = (i * dim + j) as f32 + seed as f32 * 0.37;
                    (x * 0.618_034).sin() * 3.0
                })
                .collect();
            f.push_row(&row);
        }
        f
    }

    fn assert_bitwise(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: row count");
        for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
            assert_eq!(ra.len(), rb.len(), "{what}: row {i} length");
            for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: slot ({i}, {j})");
            }
        }
    }

    #[cfg(not(feature = "fast-accum"))]
    #[test]
    fn fixed_partition_matches_naive_bitwise() {
        let train = features(523, 7, 1); // not divisible by TRAIN_TILE
        let queries = features(19, 7, 2); // not divisible by QUERY_TILE
        let naive = naive_squared_l2(&train, &queries);
        for threads in [1, 4] {
            let blocked = blocked_squared_l2(&train, &queries, threads);
            assert_bitwise(&blocked, &naive, &format!("threads={threads}"));
        }
    }

    #[cfg(not(feature = "fast-accum"))]
    #[test]
    fn degenerate_tiles_match_naive_bitwise() {
        let train = features(37, 3, 3);
        let queries = features(5, 3, 4);
        let naive = naive_squared_l2(&train, &queries);
        for (qt, tt) in [(1, 1), (1, 1000), (1000, 1), (5, 37), (6, 38), (2, 10)] {
            let blocked = blocked_squared_l2_with_tiles(&train, &queries, qt, tt, 2);
            assert_bitwise(&blocked, &naive, &format!("tiles=({qt}, {tt})"));
        }
    }

    #[test]
    fn empty_query_set() {
        let train = features(10, 2, 5);
        let queries = Features::new(Vec::new(), 2);
        assert!(blocked_squared_l2(&train, &queries, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        let train = features(4, 2, 6);
        let queries = features(4, 3, 7);
        blocked_squared_l2(&train, &queries, 1);
    }
}
