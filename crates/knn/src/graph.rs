//! Precomputed KNN-graph artifacts: the `KNNGRAPH` wire format.
//!
//! The paper's complexity headline — exact KNN Shapley in O(N log N) per test
//! point (Theorem 1) — counts *valuation* work, not the O(N · N_test · d)
//! distance pass every estimator in this repo used to pay on each run. A
//! `KNNGRAPH` file cuts the pipeline at the natural seam: it stores, for
//! every test point, the complete training-set ranking in the exact
//! tie-broken order [`argsort_by_distance`](crate::neighbors::argsort_by_distance)
//! produces (ascending
//! `(distance, index)` under squared L2), so any estimator can start from
//! rank lists and skip the distance pass entirely. Build once with
//! `knnshap build-graph` (which uses the blocked kernel in [`crate::block`]),
//! then feed the artifact to `value --graph`, `shard`, `run-job` or `serve`.
//!
//! ### Integrity contract (mirrors `KNNSHARD`)
//!
//! * **Versioned strict decode** — magic, version and metric are checked
//!   first; the expected payload size is computed with checked arithmetic
//!   from the header counts and compared against the actual buffer *before
//!   any allocation*, so a corrupt header cannot request an absurd
//!   allocation; trailing bytes are rejected.
//! * **Dataset-content fingerprints** — the header stores feature-content
//!   hashes of the exact train/test matrices the graph was built from
//!   ([`hash_features`]); loaders call [`KnnGraph::validate_against`] and
//!   refuse a graph whose datasets drifted. (Feature-only hashes, so one
//!   graph serves classification and regression over the same features.)
//! * **Structural validation** — every rank list must be a permutation of
//!   `0..n_train` in strictly ascending `(distance, index)` order with
//!   finite distances; [`KnnGraph::from_bytes`] re-checks all of it, so a
//!   hand-corrupted payload cannot smuggle a non-argsort order into the
//!   estimators.
//!
//! Because the stored distances are bitwise-identical to what
//! [`squared_l2`](crate::distance::squared_l2) computes (the blocked kernel
//! is bitwise-neutral), graph-backed valuation is bitwise-identical to the
//! brute-force path — including weighted estimators that take `sqrt` of
//! these entries. `tests/graph_determinism.rs` proves this across estimator
//! families × shard counts × thread counts.

use crate::block::blocked_squared_l2;
use crate::neighbors::{cmp_dist_idx, Neighbor};
use knnshap_datasets::Features;
use knnshap_numerics::fingerprint::Fingerprint;

/// On-disk format version written/required by
/// [`KnnGraph::to_bytes`]/[`from_bytes`](KnnGraph::from_bytes).
pub const GRAPH_FORMAT_VERSION: u32 = 1;

/// Magic prefix of every graph file.
pub const GRAPH_MAGIC: [u8; 8] = *b"KNNGRAPH";

/// Metric code stored in the header. Only squared L2 (code 0) is defined in
/// format version 1 — it is the metric every estimator in the workspace
/// ranks by.
const METRIC_SQUARED_L2: u8 = 0;

/// Header: magic (8) + version (4) + metric (1) + reserved (3) + dim (4)
/// + n_train (8) + n_test (8) + train_hash (8) + test_hash (8).
const HEADER_LEN: usize = 52;

/// Bytes per rank-list entry: index `u32` LE + distance `f32` bits LE.
const ENTRY_LEN: usize = 8;

/// Content hash of a feature matrix (dimension + every value's bits).
///
/// Deliberately label-free: the graph depends only on geometry, so one
/// artifact serves classification and regression over the same features.
pub fn hash_features(f: &Features) -> u64 {
    Fingerprint::new("knngraph-features")
        .u64(f.dim() as u64)
        .f32s(f.as_slice())
        .finish()
}

/// Errors from decoding or validating a graph artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Magic prefix is not `KNNGRAPH`.
    BadMagic,
    /// Header version differs from [`GRAPH_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// Unknown metric code.
    UnsupportedMetric(u8),
    /// Reserved header bytes are non-zero.
    ReservedNonZero,
    /// Header counts overflow the expected-size computation.
    Overflow,
    /// Buffer length does not equal the header-implied length (covers both
    /// truncated payloads and trailing garbage; checked before allocating).
    SizeMismatch { expected: u64, actual: u64 },
    /// A rank list is not strictly ascending in `(distance, index)`.
    NotAscending { row: usize, pos: usize },
    /// A stored distance is NaN or infinite.
    NonFiniteDistance { row: usize, pos: usize },
    /// A neighbor index is `>= n_train`.
    IndexOutOfRange { row: usize, pos: usize },
    /// A rank list repeats (and therefore also omits) a training index.
    NotPermutation { row: usize },
    /// The artifact's dataset fingerprints do not match the datasets the
    /// caller is valuing (`which` names the offending matrix).
    DatasetMismatch { which: &'static str },
    /// Dataset shape differs from the header (dimension or row counts).
    ShapeMismatch { which: &'static str },
    /// Filesystem error from [`KnnGraph::load`]/[`save`](KnnGraph::save).
    Io(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Truncated => write!(f, "graph file truncated (shorter than header)"),
            GraphError::BadMagic => write!(f, "not a KNNGRAPH file (bad magic)"),
            GraphError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported KNNGRAPH version {v} (expected {GRAPH_FORMAT_VERSION})"
                )
            }
            GraphError::UnsupportedMetric(m) => write!(f, "unsupported metric code {m}"),
            GraphError::ReservedNonZero => write!(f, "reserved header bytes are non-zero"),
            GraphError::Overflow => write!(f, "header counts overflow the expected file size"),
            GraphError::SizeMismatch { expected, actual } => write!(
                f,
                "file size {actual} does not match header-implied size {expected}"
            ),
            GraphError::NotAscending { row, pos } => write!(
                f,
                "rank list {row} is not strictly ascending in (distance, index) at position {pos}"
            ),
            GraphError::NonFiniteDistance { row, pos } => {
                write!(
                    f,
                    "rank list {row} has a non-finite distance at position {pos}"
                )
            }
            GraphError::IndexOutOfRange { row, pos } => {
                write!(
                    f,
                    "rank list {row} has an out-of-range index at position {pos}"
                )
            }
            GraphError::NotPermutation { row } => {
                write!(
                    f,
                    "rank list {row} is not a permutation of the training indices"
                )
            }
            GraphError::DatasetMismatch { which } => write!(
                f,
                "graph was built from a different {which} set (content fingerprint mismatch)"
            ),
            GraphError::ShapeMismatch { which } => {
                write!(f, "graph {which} shape does not match the supplied dataset")
            }
            GraphError::Io(e) => write!(f, "graph i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A precomputed KNN graph: for every test point, the complete training-set
/// ranking in ascending `(squared-L2 distance, index)` order — byte-for-byte
/// the list [`argsort_by_distance`] would produce.
///
/// [`argsort_by_distance`]: crate::neighbors::argsort_by_distance
#[derive(Debug, Clone, PartialEq)]
pub struct KnnGraph {
    dim: u32,
    n_train: u64,
    train_hash: u64,
    test_hash: u64,
    lists: Vec<Vec<Neighbor>>,
}

impl KnnGraph {
    /// Build the graph with the blocked kernel ([`blocked_squared_l2`]) and a
    /// per-row `(distance, index)` sort.
    ///
    /// The comparator is a total order (ties broken by index), so any correct
    /// sort of the bitwise-identical distance rows reproduces exactly the
    /// ranking of [`argsort_by_distance`](crate::neighbors::argsort_by_distance):
    /// the result is bitwise-independent of tiles and `threads`.
    pub fn build(train: &Features, test: &Features, threads: usize) -> KnnGraph {
        assert_eq!(train.dim(), test.dim(), "train/test dimension mismatch");
        let rows = blocked_squared_l2(train, test, threads);
        let lists: Vec<Vec<Neighbor>> = knnshap_parallel::par_map(rows.len(), threads, |j| {
            let mut list: Vec<Neighbor> = rows[j]
                .iter()
                .enumerate()
                .map(|(i, &dist)| Neighbor {
                    index: i as u32,
                    dist,
                })
                .collect();
            list.sort_unstable_by(cmp_dist_idx);
            list
        });
        KnnGraph {
            dim: train.dim() as u32,
            n_train: train.len() as u64,
            train_hash: hash_features(train),
            test_hash: hash_features(test),
            lists,
        }
    }

    /// Feature dimension the graph was built over.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Number of training points ranked in every list.
    pub fn n_train(&self) -> usize {
        self.n_train as usize
    }

    /// Number of test points (rank lists).
    pub fn n_test(&self) -> usize {
        self.lists.len()
    }

    /// Content hash of the training features the graph was built from.
    pub fn train_hash(&self) -> u64 {
        self.train_hash
    }

    /// Content hash of the test features the graph was built from.
    pub fn test_hash(&self) -> u64 {
        self.test_hash
    }

    /// The rank list of test point `j` (ascending `(distance, index)`).
    pub fn list(&self, j: usize) -> &[Neighbor] {
        &self.lists[j]
    }

    /// All rank lists, in test-point order.
    pub fn lists(&self) -> &[Vec<Neighbor>] {
        &self.lists
    }

    /// Refuse the graph unless it was built from exactly these feature
    /// matrices (shape check, then content-fingerprint check).
    pub fn validate_against(&self, train: &Features, test: &Features) -> Result<(), GraphError> {
        if train.dim() != self.dim() || train.len() != self.n_train() {
            return Err(GraphError::ShapeMismatch { which: "train" });
        }
        if test.dim() != self.dim() || test.len() != self.n_test() {
            return Err(GraphError::ShapeMismatch { which: "test" });
        }
        if hash_features(train) != self.train_hash {
            return Err(GraphError::DatasetMismatch { which: "train" });
        }
        if hash_features(test) != self.test_hash {
            return Err(GraphError::DatasetMismatch { which: "test" });
        }
        Ok(())
    }

    /// Canonical serialization: fixed header, then the rank lists in test
    /// order, each entry as `(index u32 LE, distance f32 bits LE)`. The
    /// encoding has no optional parts, so equal graphs produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n_test = self.lists.len() as u64;
        let payload = (self.n_train as usize) * ENTRY_LEN * (n_test as usize);
        let mut out = Vec::with_capacity(HEADER_LEN + payload);
        out.extend_from_slice(&GRAPH_MAGIC);
        out.extend_from_slice(&GRAPH_FORMAT_VERSION.to_le_bytes());
        out.push(METRIC_SQUARED_L2);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.extend_from_slice(&self.n_train.to_le_bytes());
        out.extend_from_slice(&n_test.to_le_bytes());
        out.extend_from_slice(&self.train_hash.to_le_bytes());
        out.extend_from_slice(&self.test_hash.to_le_bytes());
        for list in &self.lists {
            for n in list {
                out.extend_from_slice(&n.index.to_le_bytes());
                out.extend_from_slice(&n.dist.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Strict decode. Validates the header, checks the exact expected length
    /// *before allocating anything* (checked arithmetic, so oversized header
    /// counts fail cleanly), then re-validates every rank list: finite
    /// distances, strictly ascending `(distance, index)`, and a permutation
    /// of `0..n_train`.
    pub fn from_bytes(bytes: &[u8]) -> Result<KnnGraph, GraphError> {
        if bytes.len() < HEADER_LEN {
            return Err(GraphError::Truncated);
        }
        if bytes[..8] != GRAPH_MAGIC {
            return Err(GraphError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != GRAPH_FORMAT_VERSION {
            return Err(GraphError::UnsupportedVersion(version));
        }
        if bytes[12] != METRIC_SQUARED_L2 {
            return Err(GraphError::UnsupportedMetric(bytes[12]));
        }
        if bytes[13..16] != [0u8; 3] {
            return Err(GraphError::ReservedNonZero);
        }
        let dim = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        let n_train = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        let n_test = u64::from_le_bytes(bytes[28..36].try_into().unwrap());
        let train_hash = u64::from_le_bytes(bytes[36..44].try_into().unwrap());
        let test_hash = u64::from_le_bytes(bytes[44..52].try_into().unwrap());

        // Size gate BEFORE any allocation: a corrupt header declaring 2^60
        // rank entries dies here on checked arithmetic / length comparison,
        // never in the allocator.
        let entries = n_train.checked_mul(n_test).ok_or(GraphError::Overflow)?;
        let payload = entries
            .checked_mul(ENTRY_LEN as u64)
            .ok_or(GraphError::Overflow)?;
        let expected = payload
            .checked_add(HEADER_LEN as u64)
            .ok_or(GraphError::Overflow)?;
        let actual = bytes.len() as u64;
        if expected != actual {
            return Err(GraphError::SizeMismatch { expected, actual });
        }

        let n_train_us = n_train as usize;
        let n_test_us = n_test as usize;
        let mut lists: Vec<Vec<Neighbor>> = Vec::with_capacity(n_test_us);
        let mut seen = vec![false; n_train_us];
        let mut off = HEADER_LEN;
        for row in 0..n_test_us {
            let mut list: Vec<Neighbor> = Vec::with_capacity(n_train_us);
            seen.iter_mut().for_each(|s| *s = false);
            for pos in 0..n_train_us {
                let index = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
                let dist = f32::from_bits(u32::from_le_bytes(
                    bytes[off + 4..off + 8].try_into().unwrap(),
                ));
                off += ENTRY_LEN;
                if !dist.is_finite() {
                    return Err(GraphError::NonFiniteDistance { row, pos });
                }
                if (index as usize) >= n_train_us {
                    return Err(GraphError::IndexOutOfRange { row, pos });
                }
                if seen[index as usize] {
                    return Err(GraphError::NotPermutation { row });
                }
                seen[index as usize] = true;
                let n = Neighbor { index, dist };
                if let Some(prev) = list.last() {
                    if !cmp_dist_idx(prev, &n).is_lt() {
                        return Err(GraphError::NotAscending { row, pos });
                    }
                }
                list.push(n);
            }
            lists.push(list);
        }
        Ok(KnnGraph {
            dim,
            n_train,
            train_hash,
            test_hash,
            lists,
        })
    }

    /// Write the canonical bytes to `path`.
    pub fn save(&self, path: &std::path::Path) -> Result<(), GraphError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| GraphError::Io(e.to_string()))
    }

    /// Read and strictly decode `path`.
    pub fn load(path: &std::path::Path) -> Result<KnnGraph, GraphError> {
        let bytes = std::fs::read(path).map_err(|e| GraphError::Io(e.to_string()))?;
        KnnGraph::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;
    use crate::neighbors::argsort_by_distance;

    fn features(n: usize, dim: usize, seed: u32) -> Features {
        let mut f = Features::with_capacity(n, dim);
        for i in 0..n {
            let row: Vec<f32> = (0..dim)
                .map(|j| {
                    let x = (i * dim + j) as f32 + seed as f32 * 0.43;
                    (x * 0.618_034).sin() * 2.5
                })
                .collect();
            f.push_row(&row);
        }
        f
    }

    fn graph() -> (Features, Features, KnnGraph) {
        let train = features(41, 5, 1);
        let test = features(7, 5, 2);
        let g = KnnGraph::build(&train, &test, 2);
        (train, test, g)
    }

    #[test]
    fn build_matches_argsort_bitwise() {
        let (train, test, g) = graph();
        for j in 0..test.len() {
            let want = argsort_by_distance(&train, test.row(j), Metric::SquaredL2);
            let got = g.list(j);
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.index, b.index, "row {j}");
                assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "row {j}");
            }
        }
    }

    #[test]
    fn duplicate_points_tie_break_by_index() {
        // All-identical training points: every distance ties; the ranking
        // must be 0..n by the index tiebreak, same as argsort.
        let train = Features::new(vec![1.0; 12], 2);
        let test = Features::new(vec![0.5, -0.5], 2);
        let g = KnnGraph::build(&train, &test, 3);
        let idx: Vec<u32> = g.list(0).iter().map(|n| n.index).collect();
        assert_eq!(idx, (0..6).collect::<Vec<u32>>());
    }

    #[test]
    fn round_trip_is_canonical() {
        let (_, _, g) = graph();
        let bytes = g.to_bytes();
        let g2 = KnnGraph::from_bytes(&bytes).unwrap();
        assert_eq!(g2.to_bytes(), bytes);
        assert_eq!(g2.n_train(), g.n_train());
        assert_eq!(g2.n_test(), g.n_test());
        assert_eq!(g2.train_hash(), g.train_hash());
    }

    #[test]
    fn validate_against_accepts_builders_and_refuses_drift() {
        let (train, test, g) = graph();
        assert!(g.validate_against(&train, &test).is_ok());

        // One bit of feature drift must be refused.
        let mut drifted = train.clone();
        drifted.row_mut(3)[1] += 1e-3;
        assert_eq!(
            g.validate_against(&drifted, &test),
            Err(GraphError::DatasetMismatch { which: "train" })
        );
        let mut tdrift = test.clone();
        tdrift.row_mut(0)[0] = -9.0;
        assert_eq!(
            g.validate_against(&train, &tdrift),
            Err(GraphError::DatasetMismatch { which: "test" })
        );
        // Shape mismatch reported before fingerprints.
        let short = features(40, 5, 1);
        assert_eq!(
            g.validate_against(&short, &test),
            Err(GraphError::ShapeMismatch { which: "train" })
        );
    }

    #[test]
    fn truncated_header_rejected() {
        let (_, _, g) = graph();
        let bytes = g.to_bytes();
        for cut in [0usize, 4, 8, 16, HEADER_LEN - 1] {
            assert_eq!(
                KnnGraph::from_bytes(&bytes[..cut]),
                Err(GraphError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn truncated_payload_and_trailing_bytes_rejected() {
        let (_, _, g) = graph();
        let bytes = g.to_bytes();
        let short = &bytes[..bytes.len() - ENTRY_LEN];
        assert!(matches!(
            KnnGraph::from_bytes(short),
            Err(GraphError::SizeMismatch { .. })
        ));
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            KnnGraph::from_bytes(&long),
            Err(GraphError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_version_metric_reserved_rejected() {
        let (_, _, g) = graph();
        let bytes = g.to_bytes();

        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        assert_eq!(KnnGraph::from_bytes(&b), Err(GraphError::BadMagic));

        let mut b = bytes.clone();
        b[8] = 99;
        assert_eq!(
            KnnGraph::from_bytes(&b),
            Err(GraphError::UnsupportedVersion(99))
        );

        let mut b = bytes.clone();
        b[12] = 7;
        assert_eq!(
            KnnGraph::from_bytes(&b),
            Err(GraphError::UnsupportedMetric(7))
        );

        let mut b = bytes.clone();
        b[14] = 1;
        assert_eq!(KnnGraph::from_bytes(&b), Err(GraphError::ReservedNonZero));
    }

    #[test]
    fn oversized_counts_rejected_before_allocation() {
        let (_, _, g) = graph();
        let mut bytes = g.to_bytes();
        // Declare ~10¹² training points; the size gate must reject long
        // before any Vec::with_capacity sees the number.
        bytes[20..28].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(
            KnnGraph::from_bytes(&bytes),
            Err(GraphError::SizeMismatch { .. })
        ));
        // And counts whose product overflows u64 entirely.
        bytes[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        bytes[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(KnnGraph::from_bytes(&bytes), Err(GraphError::Overflow));
    }

    #[test]
    fn corrupt_payload_rejected() {
        let (_, _, g) = graph();
        let bytes = g.to_bytes();
        let n_train = g.n_train() as u32;

        // Out-of-range index.
        let mut b = bytes.clone();
        b[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&n_train.to_le_bytes());
        assert_eq!(
            KnnGraph::from_bytes(&b),
            Err(GraphError::IndexOutOfRange { row: 0, pos: 0 })
        );

        // Duplicate index (copy entry 0 over entry 1) breaks both ascending
        // order and the permutation property; ascending is checked per-entry.
        let mut b = bytes.clone();
        let (e0, e1) = (HEADER_LEN, HEADER_LEN + ENTRY_LEN);
        let entry0: Vec<u8> = b[e0..e0 + ENTRY_LEN].to_vec();
        b[e1..e1 + ENTRY_LEN].copy_from_slice(&entry0);
        assert!(matches!(
            KnnGraph::from_bytes(&b),
            Err(GraphError::NotPermutation { row: 0 } | GraphError::NotAscending { row: 0, pos: 1 })
        ));

        // NaN distance.
        let mut b = bytes.clone();
        b[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
        assert_eq!(
            KnnGraph::from_bytes(&b),
            Err(GraphError::NonFiniteDistance { row: 0, pos: 0 })
        );

        // Descending distances (swap the first two whole entries).
        let mut b = bytes.clone();
        let (head, rest) = b[HEADER_LEN..].split_at_mut(ENTRY_LEN);
        head.swap_with_slice(&mut rest[..ENTRY_LEN]);
        assert!(matches!(
            KnnGraph::from_bytes(&b),
            Err(GraphError::NotAscending { row: 0, .. })
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let (train, test, g) = graph();
        let dir = std::env::temp_dir().join("knngraph-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.knngraph");
        g.save(&path).unwrap();
        let loaded = KnnGraph::load(&path).unwrap();
        assert!(loaded.validate_against(&train, &test).is_ok());
        assert_eq!(loaded.to_bytes(), g.to_bytes());
        std::fs::remove_file(&path).ok();
    }
}
