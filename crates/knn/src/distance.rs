//! Distance metrics.
//!
//! Squared L2 is the workhorse: it induces the same neighbor ordering as L2
//! (monotone transform) while skipping the square root, and the paper's KNN
//! utilities depend only on the *ordering* of training points by distance.
//! True L2 is exposed for the LSH theory quantities (`D_mean`, `D_K`), which
//! are defined on actual distances.

/// Supported metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Squared Euclidean distance (order-equivalent to L2, cheapest).
    #[default]
    SquaredL2,
    /// Euclidean distance.
    L2,
    /// Cosine distance `1 − cos(a, b)`; degenerate zero-norm inputs are
    /// treated as maximally distant (distance 1).
    Cosine,
}

/// Squared Euclidean distance with a manually unrolled accumulator.
///
/// Four independent accumulators let LLVM vectorize without violating
/// float-associativity; on 2048-dim paper-scale features this roughly
/// quadruples throughput over the naive loop.
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        for l in 0..4 {
            let d = a[j + l] - b[j + l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        tail += d * d;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Euclidean distance.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    squared_l2(a, b).sqrt()
}

/// Cosine distance `1 − a·b / (‖a‖‖b‖)`.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot / (na.sqrt() * nb.sqrt())
}

impl Metric {
    /// Evaluate the metric on a pair of rows.
    #[inline]
    pub fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::SquaredL2 => squared_l2(a, b),
            Metric::L2 => l2(a, b),
            Metric::Cosine => cosine(a, b),
        }
    }

    /// Convert a distance under this metric to a true L2 distance when
    /// possible (needed by distance-based weight functions which are defined
    /// on real distances). Cosine passes through unchanged.
    #[inline]
    pub fn to_l2(self, d: f32) -> f32 {
        match self {
            Metric::SquaredL2 => d.sqrt(),
            Metric::L2 | Metric::Cosine => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_l2_matches_naive() {
        // exercise both the unrolled body and the tail for several lengths
        for len in [1usize, 3, 4, 7, 8, 17, 64, 129] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.5).cos()).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((squared_l2(&a, &b) - naive).abs() < 1e-4, "len={len}");
        }
    }

    #[test]
    fn metric_axioms_on_samples() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 6.0, 3.0];
        let c = [0.0f32, 0.0, 0.0];
        for m in [Metric::SquaredL2, Metric::L2, Metric::Cosine] {
            assert!(m.eval(&a, &a).abs() < 1e-6, "identity for {m:?}");
            assert!((m.eval(&a, &b) - m.eval(&b, &a)).abs() < 1e-6, "symmetry");
            assert!(m.eval(&a, &b) >= 0.0, "non-negativity");
        }
        // triangle inequality for true L2
        assert!(l2(&a, &b) <= l2(&a, &c) + l2(&c, &b) + 1e-6);
    }

    #[test]
    fn l2_is_sqrt_of_squared() {
        let a = [3.0f32, 0.0];
        let b = [0.0f32, 4.0];
        assert!((squared_l2(&a, &b) - 25.0).abs() < 1e-6);
        assert!((l2(&a, &b) - 5.0).abs() < 1e-6);
        assert!((Metric::SquaredL2.to_l2(25.0) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_basics() {
        let x = [1.0f32, 0.0];
        let y = [0.0f32, 1.0];
        let z = [2.0f32, 0.0];
        assert!((cosine(&x, &y) - 1.0).abs() < 1e-6); // orthogonal
        assert!(cosine(&x, &z).abs() < 1e-6); // parallel, scale-invariant
        assert!((cosine(&x, &[0.0, 0.0]) - 1.0).abs() < 1e-6); // zero-norm guard
        let neg = [-1.0f32, 0.0];
        assert!((cosine(&x, &neg) - 2.0).abs() < 1e-6); // antiparallel
    }

    #[test]
    fn orderings_agree_between_l2_and_squared_l2() {
        let q = [0.5f32, -0.2, 1.0];
        let pts = [
            [1.0f32, 0.0, 0.0],
            [0.4, -0.3, 1.2],
            [5.0, 5.0, 5.0],
            [0.5, -0.2, 1.0],
        ];
        let mut by_sq: Vec<usize> = (0..pts.len()).collect();
        let mut by_l2 = by_sq.clone();
        by_sq.sort_by(|&i, &j| {
            squared_l2(&q, &pts[i])
                .partial_cmp(&squared_l2(&q, &pts[j]))
                .unwrap()
        });
        by_l2.sort_by(|&i, &j| l2(&q, &pts[i]).partial_cmp(&l2(&q, &pts[j])).unwrap());
        assert_eq!(by_sq, by_l2);
    }
}
