//! KNN regression with the paper's utility semantics.
//!
//! The unweighted regressor predicts `ŷ = (1/K) Σ_k y_αk` and the paper's
//! regression utility is the negative squared error
//! `U(S) = −((1/K) Σ y_αk(S) − y_test)²` (eq. 25) — note the `1/K` divisor is
//! used even when `|S| < K`, mirroring the classification utility. The
//! weighted variant uses `ŷ = Σ_k w_αk y_αk` (eq. 27).

use crate::distance::Metric;
use crate::neighbors::{par_map_queries, top_k, Neighbor};
use crate::weights::WeightFn;
use knnshap_datasets::RegDataset;

/// A (lazy, index-free) KNN regressor over a borrowed training set.
#[derive(Debug, Clone, Copy)]
pub struct KnnRegressor<'a> {
    pub train: &'a RegDataset,
    pub k: usize,
    pub metric: Metric,
    pub weight: WeightFn,
}

impl<'a> KnnRegressor<'a> {
    pub fn unweighted(train: &'a RegDataset, k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        Self {
            train,
            k,
            metric: Metric::SquaredL2,
            weight: WeightFn::Uniform,
        }
    }

    pub fn weighted(train: &'a RegDataset, k: usize, weight: WeightFn) -> Self {
        assert!(k >= 1, "K must be at least 1");
        Self {
            train,
            k,
            metric: Metric::SquaredL2,
            weight,
        }
    }

    /// Prediction from already-retrieved neighbors.
    pub fn predict_from_neighbors(&self, neighbors: &[Neighbor]) -> f64 {
        let dists: Vec<f32> = neighbors
            .iter()
            .map(|n| self.metric.to_l2(n.dist))
            .collect();
        let w = self.weight.weights(&dists, self.k.max(dists.len()));
        neighbors
            .iter()
            .zip(&w)
            .map(|(n, &wk)| wk * self.train.y[n.index as usize])
            .sum()
    }

    /// Point prediction for a query.
    pub fn predict(&self, query: &[f32]) -> f64 {
        let neighbors = top_k(&self.train.x, query, self.k, self.metric);
        self.predict_from_neighbors(&neighbors)
    }

    /// The paper's per-test utility: `−(ŷ − y_test)²`.
    pub fn neg_squared_error(&self, query: &[f32], target: f64) -> f64 {
        let e = self.predict(query) - target;
        -(e * e)
    }

    /// Negative mean squared error over a test set.
    pub fn neg_mse(&self, test: &RegDataset, threads: usize) -> f64 {
        assert_eq!(test.dim(), self.train.dim(), "dimension mismatch");
        if test.is_empty() {
            return 0.0;
        }
        let errs = par_map_queries(&test.x, threads, |qi, q| {
            let e = self.predict(q) - test.y[qi];
            e * e
        });
        -errs.iter().sum::<f64>() / test.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knnshap_datasets::Features;

    fn train() -> RegDataset {
        RegDataset::new(
            Features::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], 1),
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn unweighted_averages_neighbors() {
        let t = train();
        let r = KnnRegressor::unweighted(&t, 2);
        // neighbors of 0.6: x=1 and x=0 => mean(1, 0) = 0.5
        assert!((r.predict(&[0.6]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_interpolates_toward_closer() {
        let t = train();
        let r = KnnRegressor::weighted(&t, 2, WeightFn::InverseDistance { eps: 1e-9 });
        // query at 0.9: neighbors y=1 (dist .1) and y=0 (dist .9)
        let p = r.predict(&[0.9]);
        assert!(p > 0.85 && p < 1.0, "{p}");
    }

    #[test]
    fn neg_mse_zero_on_memorized_points() {
        let t = train();
        let r = KnnRegressor::unweighted(&t, 1);
        let test = train();
        assert!((r.neg_mse(&test, 2)).abs() < 1e-12);
    }

    #[test]
    fn neg_squared_error_is_negative_quadratic() {
        let t = train();
        let r = KnnRegressor::unweighted(&t, 1);
        // prediction at 0.1 is y=0; target 2 => -(0-2)^2 = -4
        assert!((r.neg_squared_error(&[0.1], 2.0) + 4.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_with_small_sets_divides_by_k() {
        // 2 points, K=3: eq. (25) semantics => sum(y)/K, not mean.
        let t = RegDataset::new(Features::new(vec![0.0, 1.0], 1), vec![3.0, 6.0]);
        let r = KnnRegressor::unweighted(&t, 3);
        assert!((r.predict(&[0.5]) - 3.0).abs() < 1e-12); // (3+6)/3
    }
}
