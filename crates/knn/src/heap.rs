//! Bounded max-heap with change detection — the core data structure of the
//! improved Monte Carlo estimator (paper Algorithm 2).
//!
//! Algorithm 2 scans a random permutation, inserting each training point into
//! a "length-K max-heap to maintain the KNN" and recomputes the utility only
//! `if H changes` (lines 13–20). This type makes that contract explicit:
//! [`KnnHeap::insert`] returns whether the K-nearest set changed, and exposes
//! the evicted element so utilities can be updated incrementally in O(1)
//! instead of re-evaluated in O(K).

/// Outcome of inserting one element into the bounded heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insertion {
    /// The element entered the heap while it was still below capacity.
    Added,
    /// The element displaced the previous worst; `evicted` carries the old
    /// `(dist, payload)` pair.
    Replaced {
        evicted_dist: f32,
        evicted_payload: u32,
    },
    /// The element was farther than the current worst and was discarded; the
    /// K-nearest set did not change.
    Rejected,
}

impl Insertion {
    /// Did the K-nearest set change (paper: "if H changes")?
    #[inline]
    pub fn changed(self) -> bool {
        !matches!(self, Insertion::Rejected)
    }
}

/// A max-heap holding at most `k` `(dist, payload)` pairs, keyed by `dist`
/// with the *largest* distance at the root.
#[derive(Debug, Clone)]
pub struct KnnHeap {
    k: usize,
    items: Vec<(f32, u32)>,
}

impl KnnHeap {
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "K must be positive");
        Self {
            k,
            items: Vec::with_capacity(k),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.k
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Current worst (largest) distance, if any.
    #[inline]
    pub fn worst_dist(&self) -> Option<f32> {
        self.items.first().map(|&(d, _)| d)
    }

    /// Insert one candidate. O(log K).
    pub fn insert(&mut self, dist: f32, payload: u32) -> Insertion {
        if self.items.len() < self.k {
            self.items.push((dist, payload));
            self.sift_up(self.items.len() - 1);
            Insertion::Added
        } else if dist < self.items[0].0 {
            let (evicted_dist, evicted_payload) = self.items[0];
            self.items[0] = (dist, payload);
            self.sift_down(0);
            Insertion::Replaced {
                evicted_dist,
                evicted_payload,
            }
        } else {
            Insertion::Rejected
        }
    }

    /// Iterate over current contents in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (f32, u32)> + '_ {
        self.items.iter().copied()
    }

    /// Contents sorted ascending by distance.
    pub fn sorted(&self) -> Vec<(f32, u32)> {
        let mut v = Vec::new();
        self.sorted_into(&mut v);
        v
    }

    /// [`sorted`](Self::sorted) into a caller-owned buffer (cleared first) —
    /// the allocation-free variant the MC hot loop reuses across K-set
    /// changes. Same comparator, same ordering, same bits.
    pub fn sorted_into(&self, out: &mut Vec<(f32, u32)>) {
        out.clear();
        out.extend_from_slice(&self.items);
        out.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN dist"));
    }

    /// Remove all contents, keeping capacity (workhorse reuse between
    /// permutations in the MC loop).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].0 > self.items[parent].0 {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < n && self.items[l].0 > self.items[largest].0 {
                largest = l;
            }
            if r < n && self.items[r].0 > self.items[largest].0 {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.items.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_replaces_then_rejects() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.insert(5.0, 0), Insertion::Added);
        assert_eq!(h.insert(3.0, 1), Insertion::Added);
        assert!(h.is_full());
        // 4.0 displaces 5.0
        assert_eq!(
            h.insert(4.0, 2),
            Insertion::Replaced {
                evicted_dist: 5.0,
                evicted_payload: 0
            }
        );
        // 6.0 is worse than the current worst (4.0)
        assert_eq!(h.insert(6.0, 3), Insertion::Rejected);
        assert_eq!(h.sorted(), vec![(3.0, 1), (4.0, 2)]);
    }

    #[test]
    fn changed_flag_matches_semantics() {
        assert!(Insertion::Added.changed());
        assert!(Insertion::Replaced {
            evicted_dist: 0.0,
            evicted_payload: 0
        }
        .changed());
        assert!(!Insertion::Rejected.changed());
    }

    #[test]
    fn tracks_k_smallest_of_stream() {
        // Insert a permuted stream; heap must end with the k smallest.
        let k = 5;
        let mut h = KnnHeap::new(k);
        let stream = [
            9.0f32, 2.0, 7.5, 0.5, 3.3, 8.1, 1.1, 6.6, 4.4, 5.5, 0.1, 2.2,
        ];
        for (i, &d) in stream.iter().enumerate() {
            h.insert(d, i as u32);
        }
        let mut expect: Vec<f32> = stream.to_vec();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<f32> = h.sorted().iter().map(|&(d, _)| d).collect();
        assert_eq!(got, &expect[..k]);
    }

    #[test]
    fn worst_dist_is_root() {
        let mut h = KnnHeap::new(3);
        assert_eq!(h.worst_dist(), None);
        h.insert(1.0, 0);
        h.insert(9.0, 1);
        h.insert(5.0, 2);
        assert_eq!(h.worst_dist(), Some(9.0));
    }

    #[test]
    fn clear_retains_capacity() {
        let mut h = KnnHeap::new(4);
        for i in 0..4 {
            h.insert(i as f32, i);
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.capacity(), 4);
        assert_eq!(h.insert(0.5, 9), Insertion::Added);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        KnnHeap::new(0);
    }
}
