//! KNN classification with the paper's utility semantics.
//!
//! The unweighted classifier outputs `P[x_test → y_test] = (1/K) Σ_k 1[y_αk =
//! y_test]` (paper §3.1); the per-test utility eq. (5) divides by `K` even
//! when fewer than `K` training points are available. The weighted classifier
//! scores classes by `Σ_k w_αk 1[y_αk = c]` (eq. 26).

use crate::distance::Metric;
use crate::neighbors::{par_map_queries, top_k, Neighbor};
use crate::weights::WeightFn;
use knnshap_datasets::ClassDataset;

/// A (lazy, index-free) KNN classifier over a borrowed training set.
#[derive(Debug, Clone, Copy)]
pub struct KnnClassifier<'a> {
    pub train: &'a ClassDataset,
    pub k: usize,
    pub metric: Metric,
    pub weight: WeightFn,
}

impl<'a> KnnClassifier<'a> {
    /// Unweighted K-NN under squared L2.
    pub fn unweighted(train: &'a ClassDataset, k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        Self {
            train,
            k,
            metric: Metric::SquaredL2,
            weight: WeightFn::Uniform,
        }
    }

    /// Weighted K-NN under squared L2.
    pub fn weighted(train: &'a ClassDataset, k: usize, weight: WeightFn) -> Self {
        assert!(k >= 1, "K must be at least 1");
        Self {
            train,
            k,
            metric: Metric::SquaredL2,
            weight,
        }
    }

    /// Class scores for a query given its retrieved neighbors.
    ///
    /// For [`WeightFn::Uniform`] these are the paper's likelihoods
    /// `(1/K) Σ 1[y = c]`; otherwise normalized weighted votes.
    pub fn scores_from_neighbors(&self, neighbors: &[Neighbor]) -> Vec<f64> {
        let dists: Vec<f32> = neighbors
            .iter()
            .map(|n| self.metric.to_l2(n.dist))
            .collect();
        let w = self.weight.weights(&dists, self.k.max(dists.len()));
        let mut scores = vec![0.0f64; self.train.n_classes as usize];
        for (n, &wk) in neighbors.iter().zip(&w) {
            scores[self.train.y[n.index as usize] as usize] += wk;
        }
        scores
    }

    /// Class scores for a raw query point.
    pub fn scores(&self, query: &[f32]) -> Vec<f64> {
        let neighbors = top_k(&self.train.x, query, self.k, self.metric);
        self.scores_from_neighbors(&neighbors)
    }

    /// Predicted class (argmax score; ties broken toward the smaller label).
    pub fn predict(&self, query: &[f32]) -> u32 {
        let scores = self.scores(query);
        let mut best = 0usize;
        for (c, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = c;
            }
        }
        best as u32
    }

    /// The paper's per-test likelihood-of-correct-label utility:
    /// `P[x_test → y_test]`.
    pub fn correct_label_likelihood(&self, query: &[f32], label: u32) -> f64 {
        self.scores(query)[label as usize]
    }

    /// 0/1 accuracy over a test set, computed with `threads` workers.
    pub fn accuracy(&self, test: &ClassDataset, threads: usize) -> f64 {
        assert_eq!(test.dim(), self.train.dim(), "dimension mismatch");
        if test.is_empty() {
            return 0.0;
        }
        let hits = par_map_queries(&test.x, threads, |qi, q| {
            u32::from(self.predict(q) == test.y[qi])
        });
        hits.iter().copied().sum::<u32>() as f64 / test.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knnshap_datasets::Features;

    fn train() -> ClassDataset {
        // class 0 around x=0, class 1 around x=10
        ClassDataset::new(
            Features::new(vec![0.0, 0.5, 1.0, 9.0, 9.5, 10.0], 1),
            vec![0, 0, 0, 1, 1, 1],
            2,
        )
    }

    #[test]
    fn predicts_dominant_cluster() {
        let t = train();
        let clf = KnnClassifier::unweighted(&t, 3);
        assert_eq!(clf.predict(&[0.2]), 0);
        assert_eq!(clf.predict(&[9.7]), 1);
    }

    #[test]
    fn likelihood_matches_eq5() {
        let t = train();
        let clf = KnnClassifier::unweighted(&t, 3);
        // neighbors of 8.0: 9.0, 9.5, 10.0 => all class 1
        assert!((clf.correct_label_likelihood(&[8.0], 1) - 1.0).abs() < 1e-12);
        // neighbors of 5.0: 1.0 (c0), 9.0 (c1), 0.5 (c0) => 2/3 for class 0
        let p0 = clf.correct_label_likelihood(&[5.0], 0);
        assert!((p0 - 2.0 / 3.0).abs() < 1e-12, "{p0}");
    }

    #[test]
    fn k_larger_than_n_divides_by_k() {
        let t = train();
        let clf = KnnClassifier::unweighted(&t, 10);
        // all 6 points retrieved, 3 of class 0, utility = 3/10 (eq. 5 semantics)
        let p0 = clf.correct_label_likelihood(&[5.0], 0);
        assert!((p0 - 0.3).abs() < 1e-12, "{p0}");
    }

    #[test]
    fn weighted_prefers_closest_class() {
        // query between clusters but nearer class 0: inverse-distance weighting
        // should boost class 0 relative to unweighted voting.
        let t = train();
        let wclf = KnnClassifier::weighted(&t, 4, WeightFn::InverseDistance { eps: 1e-6 });
        let scores = wclf.scores(&[2.0]);
        assert!(scores[0] > scores[1]);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_on_separated_clusters_is_one() {
        let t = train();
        let test = ClassDataset::new(
            Features::new(vec![0.3, 0.8, 9.3, 9.9], 1),
            vec![0, 0, 1, 1],
            2,
        );
        let clf = KnnClassifier::unweighted(&t, 1);
        assert_eq!(clf.accuracy(&test, 2), 1.0);
        assert_eq!(clf.accuracy(&test, 1), 1.0);
    }

    #[test]
    fn empty_test_set_accuracy_zero() {
        let t = train();
        let empty = ClassDataset::new(Features::new(vec![], 1), vec![], 2);
        assert_eq!(KnnClassifier::unweighted(&t, 1).accuracy(&empty, 2), 0.0);
    }
}
