//! Weight functions for weighted KNN (paper §4, Appendix E.2).
//!
//! "The weight assigned to a neighbor in the weighted KNN estimate often
//! varies with the neighbor-to-test distance so that the evidence from more
//! nearby neighbors is weighted more heavily \[Dud76\]." The paper's Fig. 14
//! experiment uses inverse-distance weighting; we also provide the uniform
//! weighting (which must recover unweighted KNN exactly — a property test
//! relies on this) and an exponential kernel.

/// A weighting scheme mapping neighbor distances to (normalized) weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightFn {
    /// `w_k = 1/K` — recovers the unweighted estimators of eqs. (5)/(25).
    Uniform,
    /// `w_k ∝ 1/(d_k + eps)` (Dudani-style inverse distance), normalized to
    /// sum to one over the retrieved neighbors.
    InverseDistance {
        /// Additive smoothing to keep weights finite at distance 0.
        eps: f32,
    },
    /// `w_k ∝ exp(−beta · d_k)`, normalized to sum to one.
    Exponential { beta: f32 },
}

impl WeightFn {
    /// The unnormalized weight for one neighbor distance.
    #[inline]
    pub fn raw(&self, dist: f32) -> f64 {
        match *self {
            WeightFn::Uniform => 1.0,
            WeightFn::InverseDistance { eps } => 1.0 / (dist as f64 + eps as f64),
            WeightFn::Exponential { beta } => (-(beta as f64) * dist as f64).exp(),
        }
    }

    /// Normalized weights for a list of neighbor distances.
    ///
    /// For [`WeightFn::Uniform`] the normalizer is the *capacity* `k`, not the
    /// list length: the paper's unweighted utility (eq. 5) divides by `K` even
    /// when `|S| < K`, and weighted KNN must degenerate to it exactly.
    pub fn weights(&self, dists: &[f32], k: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.weights_into(dists, k, &mut out);
        out
    }

    /// [`weights`](Self::weights) into a caller-owned buffer (cleared first)
    /// — the allocation-free variant the MC hot loop reuses across K-set
    /// changes. The arithmetic (raw weights in list order, sequential sum,
    /// per-element divide, the uniform and underflow fallbacks) is identical
    /// to `weights`, so the results are bitwise-equal.
    pub fn weights_into(&self, dists: &[f32], k: usize, out: &mut Vec<f64>) {
        assert!(k >= dists.len(), "more neighbors than capacity");
        out.clear();
        match *self {
            WeightFn::Uniform => out.resize(dists.len(), 1.0 / k as f64),
            _ => {
                out.extend(dists.iter().map(|&d| self.raw(d)));
                let total: f64 = out.iter().sum();
                if total <= 0.0 {
                    // All weights underflowed (e.g. huge beta): fall back to uniform
                    // over the retrieved set to preserve a valid distribution.
                    let uniform = 1.0 / dists.len().max(1) as f64;
                    out.clear();
                    out.resize(dists.len(), uniform);
                    return;
                }
                for w in out.iter_mut() {
                    *w /= total;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_divides_by_capacity() {
        let w = WeightFn::Uniform.weights(&[0.1, 0.2], 5);
        assert_eq!(w, vec![0.2, 0.2]); // 1/K with K=5, not 1/2
    }

    #[test]
    fn inverse_distance_prefers_near() {
        let w = WeightFn::InverseDistance { eps: 1e-6 }.weights(&[0.1, 1.0, 10.0], 3);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_prefers_near_and_normalizes() {
        let w = WeightFn::Exponential { beta: 2.0 }.weights(&[0.0, 0.5, 2.0], 3);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn underflow_falls_back_to_uniform() {
        let w = WeightFn::Exponential { beta: 1e30 }.weights(&[1.0, 2.0], 2);
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    fn zero_distance_is_finite() {
        let w = WeightFn::InverseDistance { eps: 1e-3 }.weights(&[0.0, 1.0], 2);
        assert!(w.iter().all(|x| x.is_finite()));
        assert!(w[0] > w[1]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_overfull_neighbor_list() {
        WeightFn::Uniform.weights(&[0.0; 4], 3);
    }
}
