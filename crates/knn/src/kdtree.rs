//! A kd-tree for exact K-nearest-neighbor queries.
//!
//! The paper (§3.2) names kd-trees as the classic alternative to LSH for
//! nearest-neighbor retrieval ("Various techniques, such as the kd-tree
//! \[MA98\], LSH \[DIIM04\], have been proposed…") while adopting LSH for its
//! high-dimensional behaviour. This implementation provides the other side
//! of that trade-off: **exact** retrieval with branch-and-bound pruning that
//! is very fast in low/moderate dimensions and degrades toward a linear scan
//! as dimensionality grows (the curse of dimensionality the paper cites
//! \[HKC12\]). It slots into the truncated Theorem 2 approximation as a third
//! retrieval backend next to full sort and LSH.
//!
//! Design: median-split on the widest-spread dimension, nodes stored in a
//! flat arena (`Vec`), leaves hold up to `LEAF_SIZE` points; queries use a
//! bounded max-heap and prune subtrees whose splitting slab lies farther
//! than the current K-th distance.

use crate::distance::squared_l2;
use crate::neighbors::Neighbor;
use knnshap_datasets::Features;

const LEAF_SIZE: usize = 16;

enum Node {
    Leaf {
        start: usize,
        end: usize,
    },
    Split {
        dim: usize,
        value: f32,
        left: usize,
        right: usize,
    },
}

/// An immutable kd-tree over a borrowed feature matrix.
pub struct KdTree<'a> {
    data: &'a Features,
    nodes: Vec<Node>,
    /// Point indices, permuted so each leaf owns a contiguous range.
    points: Vec<u32>,
    root: usize,
}

impl<'a> KdTree<'a> {
    /// Build in O(N log² N) (median via sort per level).
    pub fn build(data: &'a Features) -> Self {
        assert!(!data.is_empty(), "cannot build a kd-tree over no points");
        let mut points: Vec<u32> = (0..data.len() as u32).collect();
        let mut nodes = Vec::new();
        let n = points.len();
        let root = build_rec(data, &mut points, 0, n, &mut nodes);
        Self {
            data,
            nodes,
            points,
            root,
        }
    }

    /// Exact K nearest neighbors of `query`, ascending by (distance, index).
    pub fn k_nearest(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.data.dim(), "dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        // Bounded max-heap as a sorted insertion vector (K is small in every
        // valuation use; O(K) insertion beats heap constant factors).
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        self.search(self.root, query, k, &mut best);
        best
    }

    fn search(&self, node: usize, query: &[f32], k: usize, best: &mut Vec<Neighbor>) {
        match &self.nodes[node] {
            Node::Leaf { start, end } => {
                for &p in &self.points[*start..*end] {
                    let d = squared_l2(query, self.data.row(p as usize));
                    let cand = Neighbor { index: p, dist: d };
                    let worse_than_all =
                        best.len() == k && (d, p) >= (best[k - 1].dist, best[k - 1].index);
                    if worse_than_all {
                        continue;
                    }
                    let pos = best
                        .iter()
                        .position(|b| (d, p) < (b.dist, b.index))
                        .unwrap_or(best.len());
                    best.insert(pos, cand);
                    if best.len() > k {
                        best.pop();
                    }
                }
            }
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let delta = query[*dim] - value;
                let (near, far) = if delta <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.search(near, query, k, best);
                // Prune the far side when the slab distance already exceeds
                // the current K-th best.
                let slab = delta * delta;
                if best.len() < k || slab < best[best.len() - 1].dist {
                    self.search(far, query, k, best);
                }
            }
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

fn build_rec(
    data: &Features,
    points: &mut [u32],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let len = end - start;
    if len <= LEAF_SIZE {
        nodes.push(Node::Leaf { start, end });
        return nodes.len() - 1;
    }
    // Split on the dimension with the widest spread in this cell.
    let dim = widest_dim(data, &points[..len]);
    let mid = len / 2;
    let window = &mut points[..len];
    window.select_nth_unstable_by(mid, |&a, &b| {
        data.row(a as usize)[dim]
            .partial_cmp(&data.row(b as usize)[dim])
            .expect("NaN feature")
            .then(a.cmp(&b))
    });
    let value = data.row(window[mid] as usize)[dim];
    // Reserve this node's slot before recursing so the arena layout is
    // parent-before-children.
    nodes.push(Node::Leaf { start: 0, end: 0 });
    let me = nodes.len() - 1;
    let (l, r) = points.split_at_mut(mid);
    let left = build_rec_offset(data, l, start, nodes);
    let right = build_rec_offset(data, r, start + mid, nodes);
    nodes[me] = Node::Split {
        dim,
        value,
        left,
        right,
    };
    me
}

fn build_rec_offset(
    data: &Features,
    window: &mut [u32],
    offset: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let len = window.len();
    build_rec(data, window, offset, offset + len, nodes)
}

fn widest_dim(data: &Features, window: &[u32]) -> usize {
    let d = data.dim();
    let mut best = (0usize, f32::NEG_INFINITY);
    for f in 0..d {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &p in window {
            let v = data.row(p as usize)[f];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let spread = hi - lo;
        if spread > best.1 {
            best = (f, spread);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;
    use crate::neighbors::partial_k_nearest;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_features(n: usize, dim: usize, seed: u64) -> Features {
        let mut rng = StdRng::seed_from_u64(seed);
        Features::new(
            (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            dim,
        )
    }

    #[test]
    fn matches_brute_force_exactly() {
        for (n, dim, seed) in [(100usize, 2usize, 1u64), (500, 4, 2), (1000, 8, 3)] {
            let data = random_features(n, dim, seed);
            let tree = KdTree::build(&data);
            let mut rng = StdRng::seed_from_u64(seed ^ 99);
            for _ in 0..20 {
                let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.2..1.2)).collect();
                for k in [1usize, 5, 17] {
                    let got = tree.k_nearest(&q, k);
                    let want = partial_k_nearest(&data, &q, k, Metric::SquaredL2);
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.index, w.index, "n={n} dim={dim} k={k}");
                        assert!((g.dist - w.dist).abs() < 1e-6);
                    }
                }
            }
        }
    }

    #[test]
    fn k_exceeding_n_returns_all_sorted() {
        let data = random_features(10, 3, 7);
        let tree = KdTree::build(&data);
        let got = tree.k_nearest(&[0.0, 0.0, 0.0], 25);
        assert_eq!(got.len(), 10);
        assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn k_zero_and_duplicates() {
        let mut v = vec![0.5f32; 20 * 2];
        v[0] = -1.0; // one distinct point
        let data = Features::new(v, 2);
        let tree = KdTree::build(&data);
        assert!(tree.k_nearest(&[0.5, 0.5], 0).is_empty());
        // duplicate points: ties broken by index, deterministic
        let got = tree.k_nearest(&[0.5, 0.5], 3);
        assert_eq!(
            got.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn single_point_tree() {
        let data = Features::new(vec![1.0, 2.0], 2);
        let tree = KdTree::build(&data);
        assert_eq!(tree.len(), 1);
        let got = tree.k_nearest(&[0.0, 0.0], 1);
        assert_eq!(got[0].index, 0);
        assert!((got[0].dist - 5.0).abs() < 1e-6);
    }

    #[test]
    fn clustered_data_prunes_but_stays_exact() {
        // Tight clusters: pruning fires aggressively; results must still be
        // identical to brute force.
        let mut rng = StdRng::seed_from_u64(11);
        let mut v = Vec::new();
        for c in 0..5 {
            for _ in 0..200 {
                v.push(c as f32 * 10.0 + rng.gen_range(-0.1f32..0.1));
                v.push(c as f32 * -7.0 + rng.gen_range(-0.1f32..0.1));
            }
        }
        let data = Features::new(v, 2);
        let tree = KdTree::build(&data);
        let q = [20.1f32, -14.2];
        let got = tree.k_nearest(&q, 10);
        let want = partial_k_nearest(&data, &q, 10, Metric::SquaredL2);
        assert_eq!(
            got.iter().map(|n| n.index).collect::<Vec<_>>(),
            want.iter().map(|n| n.index).collect::<Vec<_>>()
        );
    }
}
