//! Brute-force nearest-neighbor retrieval.
//!
//! Three access patterns, matching the three algorithm families in the paper:
//!
//! * [`argsort_by_distance`] — the complete distance ranking, O(N·d + N log N)
//!   per query; consumed by the exact Shapley recursions (Theorems 1 & 6,
//!   Algorithm 1 line 2).
//! * [`partial_k_nearest`] — the `K*` nearest in sorted order via
//!   `select_nth_unstable`, O(N·d + N + K* log K*); consumed by the truncated
//!   (ε, 0)-approximation (Theorem 2), which never needs the full ranking.
//! * [`top_k`] — heap-based top-K used for plain prediction and candidate
//!   re-ranking inside the LSH index.
//!
//! Batched variants fan queries out on the `knnshap_parallel` work-stealing
//! pool; per-test-point valuation is embarrassingly parallel.

use crate::distance::Metric;
use knnshap_datasets::Features;

/// One retrieved neighbor: training-set index plus distance under the metric
/// used for the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub index: u32,
    pub dist: f32,
}

/// Total order on distances with index tiebreak, so every retrieval function
/// produces one deterministic ranking even in the presence of exact ties
/// (duplicated points are common after bootstrap resampling).
#[inline]
pub(crate) fn cmp_dist_idx(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.dist
        .partial_cmp(&b.dist)
        .expect("NaN distance")
        .then(a.index.cmp(&b.index))
}

/// Rank all training rows by ascending distance to `query`.
pub fn argsort_by_distance(train: &Features, query: &[f32], metric: Metric) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = train
        .rows()
        .enumerate()
        .map(|(i, row)| Neighbor {
            index: i as u32,
            dist: metric.eval(query, row),
        })
        .collect();
    all.sort_unstable_by(cmp_dist_idx);
    all
}

/// The `k` nearest rows in ascending order, without sorting the rest.
///
/// Uses `select_nth_unstable` (expected O(N)) and then sorts only the `k`
/// selected entries. When `k >= N` this degenerates to a full sort.
pub fn partial_k_nearest(
    train: &Features,
    query: &[f32],
    k: usize,
    metric: Metric,
) -> Vec<Neighbor> {
    let n = train.len();
    let mut all: Vec<Neighbor> = train
        .rows()
        .enumerate()
        .map(|(i, row)| Neighbor {
            index: i as u32,
            dist: metric.eval(query, row),
        })
        .collect();
    if k >= n {
        all.sort_unstable_by(cmp_dist_idx);
        return all;
    }
    all.select_nth_unstable_by(k, cmp_dist_idx);
    all.truncate(k);
    all.sort_unstable_by(cmp_dist_idx);
    all
}

/// Heap-based top-`k`: maintains a bounded max-heap while streaming the rows.
/// Preferable to [`partial_k_nearest`] when the candidate set is much smaller
/// than the full training set (LSH re-ranking).
pub fn top_k(train: &Features, query: &[f32], k: usize, metric: Metric) -> Vec<Neighbor> {
    top_k_of_candidates(
        train,
        (0..train.len() as u32).collect::<Vec<_>>().as_slice(),
        query,
        k,
        metric,
    )
}

/// Top-`k` restricted to the given candidate indices.
pub fn top_k_of_candidates(
    train: &Features,
    candidates: &[u32],
    query: &[f32],
    k: usize,
    metric: Metric,
) -> Vec<Neighbor> {
    if k == 0 {
        return Vec::new();
    }
    // Bounded max-heap on (dist, index); the root is the current worst.
    let mut heap: Vec<Neighbor> = Vec::with_capacity(k + 1);
    for &c in candidates {
        let n = Neighbor {
            index: c,
            dist: metric.eval(query, train.row(c as usize)),
        };
        if heap.len() < k {
            heap.push(n);
            sift_up(&mut heap);
        } else if cmp_dist_idx(&n, &heap[0]).is_lt() {
            heap[0] = n;
            sift_down(&mut heap);
        }
    }
    heap.sort_unstable_by(cmp_dist_idx);
    heap
}

fn sift_up(heap: &mut [Neighbor]) {
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if cmp_dist_idx(&heap[i], &heap[parent]).is_gt() {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down(heap: &mut [Neighbor]) {
    let n = heap.len();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut largest = i;
        if l < n && cmp_dist_idx(&heap[l], &heap[largest]).is_gt() {
            largest = l;
        }
        if r < n && cmp_dist_idx(&heap[r], &heap[largest]).is_gt() {
            largest = r;
        }
        if largest == i {
            return;
        }
        heap.swap(i, largest);
        i = largest;
    }
}

/// Apply `f` to every query row in parallel (work-stealing, order
/// preserving), collecting results in query order. `f` must be cheap to
/// share (it is called from multiple threads).
pub fn par_map_queries<T, F>(queries: &Features, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[f32]) -> T + Sync,
{
    knnshap_parallel::par_map(queries.len(), threads, |i| f(i, queries.row(i)))
}

/// Default worker count: `KNNSHAP_THREADS`, else one per available core
/// (routed through [`knnshap_parallel::current_threads`]).
pub fn default_threads() -> usize {
    knnshap_parallel::current_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Features {
        // 1-D points 0, 1, 2, ..., 9
        Features::new((0..10).map(|i| i as f32).collect(), 1)
    }

    #[test]
    fn argsort_ranks_correctly() {
        let f = matrix();
        let ranked = argsort_by_distance(&f, &[3.2], Metric::SquaredL2);
        let order: Vec<u32> = ranked.iter().map(|n| n.index).collect();
        assert_eq!(order, vec![3, 4, 2, 5, 1, 6, 0, 7, 8, 9]);
        assert!(ranked.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn ties_break_by_index() {
        let f = Features::new(vec![1.0, 1.0, 1.0, 5.0], 1);
        let ranked = argsort_by_distance(&f, &[1.0], Metric::SquaredL2);
        assert_eq!(
            ranked.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn partial_matches_full_prefix() {
        let f = matrix();
        let full = argsort_by_distance(&f, &[6.7], Metric::SquaredL2);
        for k in [1usize, 3, 5, 10, 15] {
            let part = partial_k_nearest(&f, &[6.7], k, Metric::SquaredL2);
            assert_eq!(part.len(), k.min(10));
            assert_eq!(&full[..part.len()], part.as_slice(), "k={k}");
        }
    }

    #[test]
    fn top_k_matches_argsort_prefix() {
        let f = matrix();
        for k in [0usize, 1, 4, 10, 12] {
            let a = argsort_by_distance(&f, &[2.9], Metric::SquaredL2);
            let t = top_k(&f, &[2.9], k, Metric::SquaredL2);
            assert_eq!(t.len(), k.min(10));
            assert_eq!(&a[..t.len()], t.as_slice(), "k={k}");
        }
    }

    #[test]
    fn top_k_of_candidates_respects_subset() {
        let f = matrix();
        let t = top_k_of_candidates(&f, &[9, 0, 5], &[4.0], 2, Metric::SquaredL2);
        assert_eq!(t.iter().map(|n| n.index).collect::<Vec<_>>(), vec![5, 0]);
    }

    #[test]
    fn par_map_matches_serial() {
        let f = matrix();
        let queries = Features::new(vec![0.1, 3.3, 8.8, 5.0, 2.0], 1);
        let serial: Vec<u32> = (0..queries.len())
            .map(|i| argsort_by_distance(&f, queries.row(i), Metric::SquaredL2)[0].index)
            .collect();
        let par = par_map_queries(&queries, 4, |_, q| {
            argsort_by_distance(&f, q, Metric::SquaredL2)[0].index
        });
        assert_eq!(serial, par);
    }

    #[test]
    fn par_map_single_thread_path() {
        let queries = Features::new(vec![1.0], 1);
        let out = par_map_queries(&queries, 8, |i, _| i);
        assert_eq!(out, vec![0]);
    }
}
