//! K-nearest-neighbor substrate for the `knnshap` workspace.
//!
//! Provides everything the valuation algorithms need from a KNN system:
//!
//! * distance metrics ([`distance`]);
//! * brute-force neighbor retrieval in three flavors ([`neighbors`]):
//!   full argsort (the exact Shapley recursion of Theorem 1 consumes the
//!   complete distance ranking), partial selection of the `K*` nearest (the
//!   truncated approximation of Theorem 2), and heap-based top-K;
//! * a bounded max-heap with change detection ([`heap`]) — the data structure
//!   at the core of the improved Monte Carlo estimator (Algorithm 2), which
//!   only re-evaluates the utility when the K-nearest set actually changes;
//! * unweighted and weighted KNN classifiers/regressors with the exact
//!   utility semantics of the paper's eqs. (5), (25), (26), (27)
//!   ([`classifier`], [`regressor`], [`weights`]);
//! * an exact kd-tree index ([`kdtree`]) — the paper's named alternative to
//!   LSH for neighbor retrieval, effective in low/moderate dimensions;
//! * a blocked, cache-tiled batch distance kernel ([`block`]) and the
//!   versioned `KNNGRAPH` artifact it feeds ([`graph`]) — precomputed
//!   per-test-point rank lists that let estimators skip the O(N·N_test·d)
//!   distance pass entirely, with `KNNSHARD`-style strict decode and
//!   dataset-content fingerprints.
//!
//! ### Determinism contract
//!
//! Every retrieval path breaks distance ties toward the smaller training
//! index, so rankings (and everything the valuation algorithms derive from
//! them) are pure functions of the data — no hashing, no RNG, no
//! thread-count sensitivity.
//!
//! ```
//! use knnshap_knn::heap::KnnHeap;
//!
//! // The bounded max-heap behind Algorithm 2's "did the K-NN set change?"
//! let mut h = KnnHeap::new(2);
//! assert!(h.insert(0.5, 0).changed());
//! assert!(h.insert(0.2, 1).changed());
//! assert!(!h.insert(0.9, 2).changed()); // farther than the current 2-NN set
//! assert_eq!(h.sorted(), vec![(0.2, 1), (0.5, 0)]);
//! ```

pub mod block;
pub mod classifier;
pub mod distance;
pub mod graph;
pub mod heap;
pub mod kdtree;
pub mod neighbors;
pub mod regressor;
pub mod weights;

pub use block::{blocked_squared_l2, naive_squared_l2};
pub use classifier::KnnClassifier;
pub use distance::{squared_l2, Metric};
pub use graph::{GraphError, KnnGraph};
pub use heap::KnnHeap;
pub use kdtree::KdTree;
pub use neighbors::{argsort_by_distance, top_k, Neighbor};
pub use regressor::KnnRegressor;
pub use weights::WeightFn;
