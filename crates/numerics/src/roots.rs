//! Scalar root finding: bisection and Brent's method.
//!
//! Theorem 5 of the paper defines the Bennett permutation budget `T*` as the
//! root of `Σ_i exp(−T(1−q_i²) h(ε/((1−q_i²)r))) − δ/2 = 0` (eq. 32), which is
//! strictly decreasing in `T`, so a bracketing method is guaranteed to
//! converge. Brent's method is used where derivative-free superlinear
//! convergence pays off (LSH width grid refinement).

/// Find a root of `f` in `[a, b]` by bisection.
///
/// Requires `f(a)` and `f(b)` to have opposite signs (or one of them to be
/// zero). Returns the midpoint once the bracket is narrower than `tol` or
/// after `max_iter` halvings.
pub fn bisect<F: Fn(f64) -> f64>(f: F, mut a: f64, mut b: f64, tol: f64, max_iter: u32) -> f64 {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return a;
    }
    if fb == 0.0 {
        return b;
    }
    assert!(
        fa.signum() != fb.signum(),
        "bisect requires a sign change over [{a}, {b}] (f(a)={fa}, f(b)={fb})"
    );
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        if (b - a) < tol {
            return m;
        }
        let fm = f(m);
        if fm == 0.0 {
            return m;
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    0.5 * (a + b)
}

/// Expand `b` geometrically until `f` changes sign, then bisect.
///
/// Convenience for monotonically decreasing objectives like eq. (32) where no
/// a-priori upper bound on `T*` is known.
pub fn bisect_with_growing_bracket<F: Fn(f64) -> f64>(f: F, a: f64, mut b: f64, tol: f64) -> f64 {
    let fa = f(a);
    if fa == 0.0 {
        return a;
    }
    let mut fb = f(b);
    let mut guard = 0;
    while fb.signum() == fa.signum() {
        b *= 2.0;
        fb = f(b);
        guard += 1;
        assert!(
            guard < 200,
            "failed to bracket a root (f may not change sign)"
        );
    }
    bisect(f, a, b, tol, 200)
}

/// Brent's method: inverse-quadratic interpolation with bisection fallback.
pub fn brent<F: Fn(f64) -> f64>(f: F, mut a: f64, mut b: f64, tol: f64, max_iter: u32) -> f64 {
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return a;
    }
    if fb == 0.0 {
        return b;
    }
    assert!(
        fa.signum() != fb.signum(),
        "brent requires a sign change over [{a}, {b}]"
    );
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return b;
        }
        let mut s = if fa != fc && fb != fc {
            // inverse quadratic interpolation
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // secant
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond = !((lo.min(b) < s && s < lo.max(b))
            && (!mflag || (s - b).abs() < (b - c).abs() / 2.0)
            && (mflag || (s - b).abs() < d.abs() / 2.0));
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c - b;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100), 1.0);
    }

    #[test]
    #[should_panic(expected = "sign change")]
    fn bisect_panics_without_bracket() {
        bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9, 50);
    }

    #[test]
    fn growing_bracket_handles_distant_roots() {
        // root at x = 1000, initial bracket [0, 1]
        let r = bisect_with_growing_bracket(|x| 1000.0 - x, 0.0, 1.0, 1e-9);
        assert!((r - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn brent_matches_bisect_but_faster_convergence() {
        let f = |x: f64| x.powi(3) - 2.0 * x - 5.0; // classic Brent test, root ~2.0945514815
        let r = brent(f, 2.0, 3.0, 1e-13, 100);
        assert!((r - 2.0945514815423265).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn brent_on_monotone_exponential() {
        // Shape mirrors the Bennett budget equation: exp(-kT) - target.
        let target = 1e-3;
        let r = brent(|t| (-0.01 * t).exp() - target, 0.0, 1e6, 1e-9, 200);
        assert!((r - (-target.ln()) / 0.01).abs() < 1e-5);
    }
}
