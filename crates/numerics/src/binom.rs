//! Log-space factorials and binomial coefficients.
//!
//! The Shapley recursions for weighted KNN (paper Theorem 7) and
//! multi-data-per-curator games (Theorem 8) evaluate sums of the form
//! `Σ_k C(a, k) / C(b, c + k)`. Both numerator and denominator overflow `f64`
//! around `n ≈ 1030`, so every ratio is computed as `exp(ln C(a,k) − ln C(b,c+k))`.

/// Precomputed table of `ln(n!)` for `0 ≤ n ≤ max_n`.
///
/// Construction is O(max_n); every subsequent query is O(1). The table is the
/// workhorse behind [`LogFactorialTable::ln_binomial`] and
/// [`LogFactorialTable::binomial_ratio`].
#[derive(Debug, Clone)]
pub struct LogFactorialTable {
    ln_fact: Vec<f64>,
}

impl LogFactorialTable {
    /// Build a table covering factorials up to `max_n!`.
    pub fn new(max_n: usize) -> Self {
        let mut ln_fact = Vec::with_capacity(max_n + 1);
        ln_fact.push(0.0); // ln(0!) = 0
        let mut acc = 0.0f64;
        for n in 1..=max_n {
            acc += (n as f64).ln();
            ln_fact.push(acc);
        }
        Self { ln_fact }
    }

    /// Largest `n` for which `ln(n!)` is available.
    pub fn max_n(&self) -> usize {
        self.ln_fact.len() - 1
    }

    /// `ln(n!)`. Panics if `n` exceeds the table size.
    #[inline]
    pub fn ln_factorial(&self, n: usize) -> f64 {
        self.ln_fact[n]
    }

    /// `ln C(n, k)`; returns `f64::NEG_INFINITY` when `k > n` (the binomial
    /// coefficient is zero there, matching the empty-sum convention in the
    /// paper's eq. (84)).
    #[inline]
    pub fn ln_binomial(&self, n: usize, k: usize) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.ln_fact[n] - self.ln_fact[k] - self.ln_fact[n - k]
    }

    /// `C(n, k)` as `f64` (may be `inf` for very large arguments; callers that
    /// need exactness should stay in log space).
    #[inline]
    pub fn binomial(&self, n: usize, k: usize) -> f64 {
        self.ln_binomial(n, k).exp()
    }

    /// `C(an, ak) / C(bn, bk)` evaluated stably in log space.
    #[inline]
    pub fn binomial_ratio(&self, an: usize, ak: usize, bn: usize, bk: usize) -> f64 {
        let num = self.ln_binomial(an, ak);
        if num == f64::NEG_INFINITY {
            return 0.0;
        }
        (num - self.ln_binomial(bn, bk)).exp()
    }
}

/// Exact `C(n, k)` for small arguments using u128 arithmetic.
///
/// Panics on overflow; intended for tests and tiny-N ground-truth paths where
/// exactness matters (the O(2^N) Shapley enumeration).
pub fn binomial_u128(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc
            .checked_mul((n - i) as u128)
            .expect("binomial_u128 overflow");
        acc /= (i + 1) as u128;
    }
    acc
}

/// Iterator over all `k`-subsets of `0..n` in lexicographic order.
///
/// Used by the weighted-KNN exact algorithm (Theorem 7) to enumerate the
/// `B_k(i)` families, and by the brute-force Shapley enumerator. Yields
/// `&[usize]` views into an internal buffer to avoid per-subset allocation.
pub struct Combinations {
    n: usize,
    k: usize,
    indices: Vec<usize>,
    started: bool,
    done: bool,
}

impl Combinations {
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            n,
            k,
            indices: (0..k).collect(),
            started: false,
            done: k > n,
        }
    }

    /// Advance to the next combination, returning a view of it.
    ///
    /// This is a lending iterator (the standard `Iterator` trait cannot return
    /// borrows of the iterator itself), hence the explicit method.
    pub fn next_combination(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.indices);
        }
        // Find the rightmost index that can be incremented.
        let k = self.k;
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return None;
            }
            i -= 1;
            if self.indices[i] != i + self.n - k {
                break;
            }
        }
        self.indices[i] += 1;
        for j in i + 1..k {
            self.indices[j] = self.indices[j - 1] + 1;
        }
        Some(&self.indices)
    }

    /// Collect every combination into owned vectors (test/diagnostic helper).
    pub fn collect_all(mut self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        while let Some(c) = self.next_combination() {
            out.push(c.to_vec());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_matches_direct() {
        let t = LogFactorialTable::new(20);
        let mut fact = 1.0f64;
        for n in 1..=20usize {
            fact *= n as f64;
            assert!((t.ln_factorial(n) - fact.ln()).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn ln_binomial_matches_exact_small() {
        let t = LogFactorialTable::new(60);
        for n in 0..=60u64 {
            for k in 0..=n {
                let exact = binomial_u128(n, k) as f64;
                let approx = t.binomial(n as usize, k as usize);
                assert!(
                    (approx - exact).abs() / exact.max(1.0) < 1e-9,
                    "C({n},{k}): {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn binomial_out_of_range_is_zero() {
        let t = LogFactorialTable::new(10);
        assert_eq!(t.binomial(5, 6), 0.0);
        assert_eq!(t.ln_binomial(5, 6), f64::NEG_INFINITY);
        assert_eq!(binomial_u128(5, 6), 0);
    }

    #[test]
    fn binomial_ratio_is_stable_for_large_n() {
        // C(2000, 1000) overflows f64 but the ratio C(2000,1000)/C(2000,999)
        // equals (2000-999)/1000 = 1001/1000.
        let t = LogFactorialTable::new(2000);
        let r = t.binomial_ratio(2000, 1000, 2000, 999);
        assert!((r - 1001.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_identity_pascal() {
        let t = LogFactorialTable::new(100);
        for n in 1..40usize {
            for k in 1..n {
                let lhs = t.binomial(n, k);
                let rhs = t.binomial(n - 1, k - 1) + t.binomial(n - 1, k);
                assert!((lhs - rhs).abs() / lhs < 1e-9);
            }
        }
    }

    #[test]
    fn combinations_enumerates_all() {
        let all = Combinations::new(5, 3).collect_all();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0], vec![0, 1, 2]);
        assert_eq!(all[9], vec![2, 3, 4]);
        // lexicographic & strictly increasing inside each subset
        for c in &all {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(
            Combinations::new(4, 0).collect_all(),
            vec![Vec::<usize>::new()]
        );
        assert_eq!(Combinations::new(0, 0).collect_all().len(), 1);
        assert!(Combinations::new(3, 4).collect_all().is_empty());
        assert_eq!(
            Combinations::new(4, 4).collect_all(),
            vec![vec![0, 1, 2, 3]]
        );
    }

    #[test]
    fn combinations_count_matches_binomial() {
        for n in 0..9usize {
            for k in 0..=n {
                let cnt = Combinations::new(n, k).collect_all().len() as u128;
                assert_eq!(cnt, binomial_u128(n as u64, k as u64), "n={n} k={k}");
            }
        }
    }
}
