//! Exact (error-free) floating-point accumulation with an order- and
//! grouping-invariant merge — the numerical substrate of the sharded
//! valuation runtime.
//!
//! ## Why compensated sums are not enough for sharding
//!
//! The parallel runtime's blocked Neumaier folds ([`crate::compensated`])
//! are bitwise-reproducible because the *reduction tree is fixed*: a pure
//! function of the item count. Sharding breaks that premise — a job split
//! into 7 shard files and merged must produce the same bits as the same job
//! split into 2, or not split at all, so the reduction tree now depends on
//! an operator's deployment choice. No rounded partial sum survives that:
//! `fl(fl(a+b)+c) ≠ fl(a+fl(b+c))` in general, so Neumaier partials merged
//! in shard order drift by a few ulps as the shard count changes.
//!
//! [`ExactSum`] removes rounding from the accumulation entirely. It is a
//! fixed-point *superaccumulator* (Kulisch-style): a 2176-bit signed
//! fixed-point register, held as 68 × 32-bit limbs inside `i64`s so carries
//! can be deferred, spanning every bit position an `f64` can occupy
//! (2⁻¹⁰⁷⁴ … 2¹⁰²³) plus 78 bits of carry headroom. Adding an `f64` deposits
//! its 53-bit significand into at most three limbs — *exactly*, no rounding.
//! The represented value is therefore the true real-number sum of everything
//! deposited, and:
//!
//! * [`merge`](ExactSum::merge) (limb-wise addition) is exact, hence
//!   mathematically associative and commutative — **any** partition of a
//!   summand multiset into shards, merged in **any** order, reproduces the
//!   single accumulator state;
//! * [`value`](ExactSum::value) rounds the exact sum to the nearest `f64`
//!   (ties to even) once, so the returned bits are a pure function of the
//!   summand multiset — never of thread counts, block sizes, or shard
//!   boundaries.
//!
//! That is the determinism contract the `knnshap_core::sharding` module
//! builds on. The register is stored as a **lazily-sized window**: a fresh
//! accumulator holds no limbs at all (~56 bytes), and deposits grow the
//! window only over the limb positions their magnitudes actually touch —
//! summands of similar magnitude keep it at a handful of limbs, so a
//! per-training-point vector ([`ExactVec`]) costs tens of bytes per point
//! in practice instead of the full register's ~0.5 KiB (the worst case if
//! a single accumulator really mixes 2⁻¹⁰⁷⁴ with 2¹⁰²³). Callers holding
//! one accumulator per training point should still keep the number of
//! simultaneous partial vectors bounded, as `knnshap_core::sharding`'s
//! eager block fold does. The extra ALU ops per deposit are dwarfed by the
//! valuation work producing each summand.
//!
//! ```
//! use knnshap_numerics::exact::ExactSum;
//!
//! // Catastrophic cancellation, grouped two different ways.
//! let xs = [1.0, 1e100, 1.0, -1e100];
//! let mut whole = ExactSum::new();
//! for &x in &xs {
//!     whole.add(x);
//! }
//! let (mut left, mut right) = (ExactSum::new(), ExactSum::new());
//! left.add(xs[0]);
//! left.add(xs[1]);
//! right.add(xs[2]);
//! right.add(xs[3]);
//! left.merge(&right);
//! assert_eq!(whole.value(), 2.0);
//! assert_eq!(whole.value().to_bits(), left.value().to_bits());
//! ```

/// Bits per limb window. Limbs are kept in `i64`s so up to
/// [`PENDING_MAX`] deposits can accumulate before a carry sweep.
const LIMB_BITS: u32 = 32;

/// Number of limbs: bit positions `p ∈ 0..68·32` with weight `2^(p − 1074)`,
/// i.e. 2⁻¹⁰⁷⁴ (the least subnormal) up to 2¹¹⁰¹ — 78 bits of headroom above
/// the largest finite `f64` (< 2¹⁰²⁴), so ~2⁷⁸ maximal-magnitude deposits
/// would be needed to overflow the register.
const LIMBS: usize = 68;

/// Carry sweep threshold. Each deposit moves a limb by `< 2³²`, so limbs stay
/// well inside `i64` as long as at most `2²⁹` deposits (or merges of swept
/// accumulators) happen between sweeps: `2²⁹ · 2³² = 2⁶¹ < 2⁶³`, and a merge
/// of two accumulators each below the threshold stays `< 2⁶²`.
const PENDING_MAX: u32 = 1 << 29;

const LIMB_MASK: i64 = 0xFFFF_FFFF;

/// An exact accumulator for `f64` summands.
///
/// ### Determinism contract
///
/// The state represents the *exact* real sum of every finite summand ever
/// [`add`](Self::add)ed (plus an `f64`-semantics side channel for nonfinite
/// summands). [`merge`](Self::merge) is exact, so the state — and therefore
/// [`value`](Self::value), the correctly-rounded (nearest, ties-to-even)
/// `f64` — depends only on the **multiset** of summands: any grouping of the
/// summands into partial accumulators, merged in any order, yields
/// bitwise-identical results.
///
/// Nonfinite summands (`±inf`, NaN) are folded through ordinary `f64`
/// addition in a side register and dominate [`value`](Self::value), so
/// overflow/invalid propagation matches what a plain `f64` loop would report.
///
/// ### Windowed storage
///
/// Only the contiguous limb window the deposits have touched is
/// materialized: `limbs[i]` carries weight `2^(32·(start + i) − 1074)`, and
/// positions outside `start .. start + limbs.len()` are implicitly zero. A
/// fresh accumulator allocates nothing; the window grows (and, after carry
/// sweeps, shrinks back) to the magnitude range actually in use. The value
/// represented is independent of the window bounds, so none of the
/// determinism contract depends on them.
#[derive(Debug, Clone, Default)]
pub struct ExactSum {
    /// Limb index (in the full 68-limb register) of `limbs[0]`.
    start: usize,
    /// Signed limb window; entry `i` carries `limbs[i] · 2^(32·(start+i) − 1074)`.
    limbs: Vec<i64>,
    /// Carry out of the top limb (kept separately so sweeps never lose bits).
    top: i64,
    /// Deposits/merges since the last carry sweep.
    pending: u32,
    /// `f64`-folded nonfinite summands; meaningful iff `has_special`.
    special: f64,
    has_special: bool,
}

/// Decoding failures for [`ExactSum::decode_from`] /
/// [`ExactVec::decode_from`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exact-accumulator decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl ExactSum {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit one summand. Exact for finite `x` (including subnormals);
    /// `±0.0` is a no-op; nonfinite `x` folds into the special register.
    #[inline]
    pub fn add(&mut self, x: f64) {
        if x == 0.0 {
            return;
        }
        if !x.is_finite() {
            self.special = if self.has_special {
                self.special + x
            } else {
                x
            };
            self.has_special = true;
            return;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7FF) as u32;
        let frac = bits & ((1u64 << 52) - 1);
        // value = ±m · 2^(shift − 1074)
        let (m, shift) = if exp == 0 {
            (frac, 0u32)
        } else {
            (frac | (1u64 << 52), exp - 1)
        };
        let li = (shift / LIMB_BITS) as usize;
        let bo = shift % LIMB_BITS;
        // 53 significand bits shifted by < 32 span at most 85 bits = 3 limbs.
        let wide = (m as u128) << bo;
        let c0 = (wide as u64 & LIMB_MASK as u64) as i64;
        let c1 = ((wide >> 32) as u64 & LIMB_MASK as u64) as i64;
        let c2 = (wide >> 64) as i64;
        let o = self.ensure_window(li, li + 3);
        if bits >> 63 == 0 {
            self.limbs[o] += c0;
            self.limbs[o + 1] += c1;
            self.limbs[o + 2] += c2;
        } else {
            self.limbs[o] -= c0;
            self.limbs[o + 1] -= c1;
            self.limbs[o + 2] -= c2;
        }
        self.bump_pending(1);
    }

    /// Grow the window (if needed) to cover limb positions `lo..hi` of the
    /// full register, returning `lo`'s offset inside the window.
    fn ensure_window(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi && hi <= LIMBS);
        if self.limbs.is_empty() {
            self.start = lo;
            self.limbs.resize(hi - lo, 0);
            return 0;
        }
        if lo < self.start {
            let grow = self.start - lo;
            self.limbs.splice(0..0, std::iter::repeat(0).take(grow));
            self.start = lo;
        }
        if hi > self.start + self.limbs.len() {
            self.limbs.resize(hi - self.start, 0);
        }
        lo - self.start
    }

    /// Number of limbs currently materialized — the lazily-sized window's
    /// footprint (each limb is 8 bytes). A fresh accumulator reports 0; the
    /// full register would be 68.
    pub fn window_limbs(&self) -> usize {
        self.limbs.len()
    }

    /// Fold another accumulator in. Exact: limb-wise integer addition over
    /// the union of the two windows, so the result represents the sum of
    /// both exact states regardless of how the summands were originally
    /// grouped.
    pub fn merge(&mut self, other: &ExactSum) {
        if !other.limbs.is_empty() {
            let o = self.ensure_window(other.start, other.start + other.limbs.len());
            for (i, &b) in other.limbs.iter().enumerate() {
                self.limbs[o + i] += b;
            }
        }
        self.top += other.top;
        if other.has_special {
            self.special = if self.has_special {
                self.special + other.special
            } else {
                other.special
            };
            self.has_special = true;
        }
        self.bump_pending(other.pending.saturating_add(1));
    }

    #[inline]
    fn bump_pending(&mut self, by: u32) {
        self.pending = self.pending.saturating_add(by);
        if self.pending >= PENDING_MAX {
            self.sweep_carries();
        }
    }

    /// Bound the window's limbs again: each becomes a **signed** residue in
    /// `(−2³¹, 2³¹)` with the quotient carried upward, so a negative sum
    /// stays local to its window instead of rippling borrow limbs across the
    /// whole register (the strict nonnegative form is only materialized
    /// transiently, in [`canonical`](Self::canonical)). A carry past the
    /// window's top extends the window; one past the register goes to `top`.
    /// Trailing/leading zero limbs are trimmed, so sweeps also *shrink*
    /// windows that cancellation has emptied.
    fn sweep_carries(&mut self) {
        let mut carry = 0i64;
        for l in &mut self.limbs {
            let v = *l + carry;
            let mut r = v & LIMB_MASK;
            if r >= 1 << 31 {
                r -= 1 << LIMB_BITS;
            }
            carry = (v - r) >> LIMB_BITS;
            *l = r;
        }
        while carry != 0 && self.start + self.limbs.len() < LIMBS {
            let v = carry;
            let mut r = v & LIMB_MASK;
            if r >= 1 << 31 {
                r -= 1 << LIMB_BITS;
            }
            carry = (v - r) >> LIMB_BITS;
            self.limbs.push(r);
        }
        self.top += carry;
        while let Some(0) = self.limbs.last() {
            self.limbs.pop();
        }
        let lead = self.limbs.iter().take_while(|&&l| l == 0).count();
        if lead > 0 {
            self.limbs.drain(..lead);
            self.start += lead;
        }
        if self.limbs.is_empty() {
            self.start = 0;
        }
        self.pending = 0;
    }

    /// Canonical sign/magnitude form: `(sign, limbs)` with every magnitude
    /// limb in `[0, 2³²)`, materialized over the **full** register (the
    /// windowed state is only a storage optimization). `sign = 0` iff the
    /// exact sum is zero. A `top` residue that survives canonicalization
    /// means the sum left the register's range (≥ 2¹¹⁰¹ in magnitude); it is
    /// mapped to a saturated sign reported by the boolean.
    fn canonical(&self) -> (i8, [i64; LIMBS], bool) {
        let mut full = [0i64; LIMBS];
        for (i, &l) in self.limbs.iter().enumerate() {
            full[self.start + i] = l;
        }
        // Strict sweep: every limb to [0, 2³²), signed residue to `top`.
        let mut top = self.top;
        let mut carry = 0i64;
        for l in &mut full {
            let v = *l + carry;
            let r = v & LIMB_MASK;
            carry = (v - r) >> LIMB_BITS;
            *l = r;
        }
        top += carry;
        if top == 0 {
            let zero = full.iter().all(|&l| l == 0);
            return (if zero { 0 } else { 1 }, full, false);
        }
        if top > 0 {
            // Beyond 2^1101: saturate positive (unreachable without ~2^78
            // max-magnitude deposits, but defined behavior regardless).
            return (1, full, true);
        }
        // Negative: magnitude = two's-complement negate over base-2³² digits.
        let mut mag = [0i64; LIMBS];
        let mut carry = 1i64;
        for (m, &l) in mag.iter_mut().zip(&full) {
            let v = (LIMB_MASK - l) + carry;
            *m = v & LIMB_MASK;
            carry = v >> LIMB_BITS;
        }
        let mag_top = -top - 1 + carry;
        if mag_top != 0 {
            return (-1, mag, true);
        }
        (-1, mag, false)
    }

    /// The exact sum rounded once to the nearest `f64` (ties to even), or
    /// the `f64`-folded nonfinite result if any nonfinite summand arrived.
    pub fn value(&self) -> f64 {
        let finite = self.finite_value();
        if self.has_special {
            finite + self.special
        } else {
            finite
        }
    }

    fn finite_value(&self) -> f64 {
        let (sign, mag, saturated) = self.canonical();
        if saturated {
            return if sign > 0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
        }
        if sign == 0 {
            return 0.0;
        }
        // Highest nonzero limb and overall MSB position.
        let h = match (0..LIMBS).rev().find(|&i| mag[i] != 0) {
            Some(h) => h,
            None => return 0.0,
        };
        let msb_in_limb = 63 - (mag[h] as u64).leading_zeros() as usize; // < 32
        let p = h * LIMB_BITS as usize + msb_in_limb;
        let signf = if sign > 0 { 1.0 } else { -1.0 };
        if p <= 52 {
            // The whole magnitude fits below bit 53: it is an exact
            // subnormal or small normal, m · 2⁻¹⁰⁷⁴ with m < 2⁵³ — which is
            // precisely `f64::from_bits(m)`.
            let m = (mag[0] as u64) | ((mag[1] as u64) << 32);
            return signf * f64::from_bits(m);
        }
        // General case: take the 53 bits below the MSB, round by guard +
        // sticky. Gather a 96-bit window of the top three limbs.
        let limb = |i: isize| -> u128 {
            if i < 0 {
                0
            } else {
                mag[i as usize] as u128
            }
        };
        let hi = h as isize;
        let w: u128 = (limb(hi) << 64) | (limb(hi - 1) << 32) | limb(hi - 2);
        // MSB of `w` sits at bit q = p − 32·(h−2); q ∈ [64, 95].
        let q = (p as isize - 32 * (hi - 2)) as u32;
        let m53 = (w >> (q - 52)) as u64; // 53 bits, MSB set
        let guard = (w >> (q - 53)) & 1 == 1;
        let mut sticky = w & ((1u128 << (q - 53)) - 1) != 0;
        if !sticky {
            sticky = (0..(hi - 2).max(0) as usize).any(|i| mag[i] != 0);
        }
        let mut mantissa = m53;
        // Unbiased exponent of the MSB: p − 1074; biased: p − 51.
        let mut biased = p as i64 - 51;
        if guard && (sticky || mantissa & 1 == 1) {
            mantissa += 1;
            if mantissa == 1u64 << 53 {
                mantissa >>= 1;
                biased += 1;
            }
        }
        if biased >= 0x7FF {
            return signf * f64::INFINITY;
        }
        let bits =
            ((sign < 0) as u64) << 63 | (biased as u64) << 52 | (mantissa & ((1u64 << 52) - 1));
        f64::from_bits(bits)
    }

    /// True iff no summand has ever been deposited (or they cancelled to an
    /// exact zero) and no nonfinite summand arrived.
    pub fn is_zero(&self) -> bool {
        !self.has_special && self.canonical().0 == 0
    }

    /// Append the canonical serialized record (little-endian):
    ///
    /// ```text
    /// sign: i8          // −1, 0, +1; 2/−2 when a nonfinite special follows
    /// [special: f64 bits, only when |sign| == 2]
    /// start: u16        // first nonzero magnitude limb (0 when sign == 0)
    /// len:   u16        // nonzero-window length in limbs
    /// limbs: u32 × len  // magnitude limbs, canonical [0, 2³²)
    /// ```
    ///
    /// The record is a pure function of the exact sum (canonicalized before
    /// writing), so equal sums — however they were grouped or ordered —
    /// serialize to identical bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let (sign, mag, saturated) = self.canonical();
        debug_assert!(!saturated, "saturated ExactSum cannot be serialized");
        let first = (0..LIMBS).find(|&i| mag[i] != 0);
        let (start, len) = match first {
            None => (0usize, 0usize),
            Some(f) => {
                let last = (0..LIMBS).rev().find(|&i| mag[i] != 0).unwrap();
                (f, last - f + 1)
            }
        };
        // A special always forces code ±2 (even over a zero finite part, so
        // the decoder knows to read the special field); a negative-or-zero
        // magnitude under code +2 is fine — the sign only scales the limbs.
        let sign_code = if self.has_special {
            if sign < 0 {
                -2
            } else {
                2
            }
        } else {
            sign
        };
        out.push(sign_code as u8);
        if self.has_special {
            out.extend_from_slice(&self.special.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(start as u16).to_le_bytes());
        out.extend_from_slice(&(len as u16).to_le_bytes());
        for &l in &mag[start..start + len] {
            out.extend_from_slice(&(l as u32).to_le_bytes());
        }
    }

    /// Decode one record written by [`encode_into`](Self::encode_into),
    /// advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<ExactSum, DecodeError> {
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DecodeError> {
            let s = buf
                .get(*pos..*pos + n)
                .ok_or(DecodeError("record truncated"))?;
            *pos += n;
            Ok(s)
        };
        // Validate the raw byte before any signed arithmetic (0x80 would
        // overflow `i8::abs`): the only legal encodings are 0, ±1 and ±2
        // (0xFE/0xFF as two's complement).
        let (sign, has_special) = match take(pos, 1)?[0] {
            0x00 => (0i8, false),
            0x01 => (1, false),
            0xFF => (-1, false),
            0x02 => (1, true),
            0xFE => (-1, true),
            _ => return Err(DecodeError("bad sign byte")),
        };
        let special = if has_special {
            f64::from_bits(u64::from_le_bytes(
                take(pos, 8)?.try_into().expect("8 bytes"),
            ))
        } else {
            0.0
        };
        let start = u16::from_le_bytes(take(pos, 2)?.try_into().expect("2 bytes")) as usize;
        let len = u16::from_le_bytes(take(pos, 2)?.try_into().expect("2 bytes")) as usize;
        if start + len > LIMBS {
            return Err(DecodeError("limb window out of range"));
        }
        if sign == 0 && len != 0 {
            return Err(DecodeError("zero sign with nonzero limbs"));
        }
        let mut s = ExactSum::new();
        if len > 0 {
            s.start = start;
            s.limbs.reserve_exact(len);
            for _ in 0..len {
                let l = u32::from_le_bytes(take(pos, 4)?.try_into().expect("4 bytes")) as i64;
                s.limbs.push(if sign < 0 { -l } else { l });
            }
            // Decoded limbs reach 2³² − 1 in magnitude (two sweeps' worth of
            // the post-sweep bound), so account for them in the overflow
            // budget as two deposits.
            s.pending = 2;
        }
        s.special = special;
        s.has_special = has_special;
        Ok(s)
    }
}

/// A vector of [`ExactSum`] accumulators — one per training point.
///
/// Carries the same determinism contract as the scalar: the materialized
/// [`values`](Self::values) depend only on the multiset of `(index, summand)`
/// deposits, never on their order or on how deposits were split across
/// merged partial vectors. This is the state the sharded valuation runtime
/// serializes into shard files.
#[derive(Debug, Clone)]
pub struct ExactVec {
    sums: Vec<ExactSum>,
}

impl ExactVec {
    /// `n` zeroed accumulators.
    pub fn zeros(n: usize) -> Self {
        Self {
            sums: vec![ExactSum::default(); n],
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Deposit `x` into accumulator `i`.
    #[inline]
    pub fn add(&mut self, i: usize, x: f64) {
        self.sums[i].add(x);
    }

    /// Deposit a dense per-point vector (`xs[i]` into accumulator `i`);
    /// zero entries cost one branch. Panics on length mismatch.
    pub fn add_dense(&mut self, xs: &[f64]) {
        assert_eq!(self.len(), xs.len(), "length mismatch");
        for (s, &x) in self.sums.iter_mut().zip(xs) {
            s.add(x);
        }
    }

    /// Fold one scalar accumulator into slot `i` (exact).
    pub fn merge_scalar(&mut self, i: usize, s: &ExactSum) {
        self.sums[i].merge(s);
    }

    /// Element-wise exact [`ExactSum::merge`]. Panics on length mismatch.
    pub fn merge(&mut self, other: &ExactVec) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            a.merge(b);
        }
    }

    /// Rounded total of accumulator `i`.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        self.sums[i].value()
    }

    /// Materialize every rounded total.
    pub fn values(&self) -> Vec<f64> {
        self.sums.iter().map(ExactSum::value).collect()
    }

    /// Total materialized limbs across all accumulators — the footprint of
    /// the lazily-sized windows (8 bytes per limb). `zeros(n)` reports 0.
    pub fn window_limbs(&self) -> usize {
        self.sums.iter().map(ExactSum::window_limbs).sum()
    }

    /// Append every accumulator's canonical record (see
    /// [`ExactSum::encode_into`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for s in &self.sums {
            s.encode_into(out);
        }
    }

    /// Decode `n` records, advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize, n: usize) -> Result<ExactVec, DecodeError> {
        let mut sums = Vec::with_capacity(n);
        for _ in 0..n {
            sums.push(ExactSum::decode_from(buf, pos)?);
        }
        Ok(ExactVec { sums })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sum_of(xs: &[f64]) -> ExactSum {
        let mut s = ExactSum::new();
        for &x in xs {
            s.add(x);
        }
        s
    }

    #[test]
    fn single_summand_roundtrips_bitwise() {
        let cases = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -3.25e-7,
            f64::MIN_POSITIVE,          // least normal
            f64::from_bits(1),          // least subnormal
            f64::from_bits(0xFFF_FFFF), // random subnormal
            f64::MAX,
            f64::MIN,
            1.2345678901234567e300,
            -9.87e-310,
        ];
        for &x in &cases {
            let got = sum_of(&[x]).value();
            // ±0.0 both come back as +0.0 (an exact zero has no sign).
            if x == 0.0 {
                assert_eq!(got.to_bits(), 0.0f64.to_bits(), "x={x:?}");
            } else {
                assert_eq!(got.to_bits(), x.to_bits(), "x={x:?}");
            }
        }
    }

    #[test]
    fn classic_cancellation_is_exact() {
        assert_eq!(sum_of(&[1.0, 1e100, 1.0, -1e100]).value(), 2.0);
        assert_eq!(sum_of(&[1e308, -1e308, 1e-308, -1e-308]).value(), 0.0);
        // Ten copies of fl(0.1) = 7205759403792794·2⁻⁵⁶ sum exactly to
        // 1 + 2⁻⁵⁴, which correctly rounds to 1.0 — what `math.fsum` reports,
        // and what a naive f64 chain famously does not (0.9999999999999999).
        assert_eq!(sum_of(&[0.1; 10]).value(), 1.0);
    }

    #[test]
    fn matches_i128_reference_on_bounded_exponents() {
        // Summands m · 2^e with m ∈ ±[0, 2³²), e ∈ [0, 60): the exact sum
        // fits an i128, whose `as f64` conversion is correctly rounded.
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..200 {
            let xs: Vec<(i128, f64)> = (0..50)
                .map(|_| {
                    let m = rng.gen_range(-(1i64 << 32)..(1i64 << 32)) as i128;
                    let e = rng.gen_range(0..60u32);
                    (m << e, (m as f64) * (2.0f64).powi(e as i32))
                })
                .collect();
            let exact_int: i128 = xs.iter().map(|&(i, _)| i).sum();
            let s = sum_of(&xs.iter().map(|&(_, f)| f).collect::<Vec<_>>());
            assert_eq!(
                s.value().to_bits(),
                (exact_int as f64).to_bits(),
                "exact_int={exact_int}"
            );
        }
    }

    #[test]
    fn ties_round_to_even() {
        let two53 = 9007199254740992.0; // 2^53
                                        // 2^53 + 1 is exactly halfway, LSB even → stays 2^53.
        assert_eq!(sum_of(&[two53, 1.0]).value(), two53);
        // 2^53 + 3 is halfway between 2^53+2 and 2^53+4 → rounds to +4.
        assert_eq!(sum_of(&[two53, 3.0]).value(), two53 + 4.0);
        // 2^53 + 1 + tiny is above halfway → rounds up.
        assert_eq!(sum_of(&[two53, 1.0, 1e-30]).value(), two53 + 2.0);
        // Negative mirror.
        assert_eq!(sum_of(&[-two53, -1.0]).value(), -two53);
        assert_eq!(sum_of(&[-two53, -3.0]).value(), -(two53 + 4.0));
    }

    #[test]
    fn mantissa_carry_on_rounding() {
        let below_two = 2.0 - 2.0f64.powi(-52); // predecessor of 2.0
                                                // (2 − 2⁻⁵²) + 2⁻⁵⁴ = 2 − 3·2⁻⁵⁴ is below the halfway point → down.
        assert_eq!(sum_of(&[below_two, 2.0f64.powi(-54)]).value(), below_two);
        // (2 − 2⁻⁵²) + 2⁻⁵³ = 2 − 2⁻⁵³ is exactly halfway; ties-to-even
        // carries the mantissa across the binade boundary to exactly 2.0.
        assert_eq!(sum_of(&[below_two, 2.0f64.powi(-53)]).value(), 2.0);
    }

    #[test]
    fn subnormal_arithmetic_is_exact() {
        let tiny = f64::from_bits(1); // 2^-1074
        assert_eq!(sum_of(&[tiny, tiny, tiny]).value(), f64::from_bits(3));
        assert_eq!(sum_of(&[tiny, -tiny]).value(), 0.0);
        // Crossing from subnormal into normal range.
        let almost = f64::MIN_POSITIVE - tiny;
        assert_eq!(sum_of(&[almost, tiny]).value(), f64::MIN_POSITIVE);
    }

    #[test]
    fn overflow_saturates_like_f64() {
        let s = sum_of(&[f64::MAX, f64::MAX]);
        assert_eq!(s.value(), f64::INFINITY);
        let s = sum_of(&[f64::MIN, f64::MIN]);
        assert_eq!(s.value(), f64::NEG_INFINITY);
        // …but unlike f64, intermediate overflow that cancels is recovered.
        assert_eq!(
            sum_of(&[f64::MAX, f64::MAX, -f64::MAX, -f64::MAX]).value(),
            0.0
        );
    }

    #[test]
    fn nonfinite_summands_propagate() {
        assert_eq!(sum_of(&[1.0, f64::INFINITY]).value(), f64::INFINITY);
        assert_eq!(sum_of(&[f64::NEG_INFINITY, 5.0]).value(), f64::NEG_INFINITY);
        assert!(sum_of(&[f64::INFINITY, f64::NEG_INFINITY]).value().is_nan());
        assert!(sum_of(&[f64::NAN, 1.0]).value().is_nan());
        // Specials survive a merge.
        let mut a = sum_of(&[1.0]);
        a.merge(&sum_of(&[f64::INFINITY]));
        assert_eq!(a.value(), f64::INFINITY);
    }

    #[test]
    fn order_and_grouping_invariance_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..50 {
            // Wildly mixed magnitudes, signs, and a few exact duplicates.
            let mut xs: Vec<f64> = (0..120)
                .map(|_| {
                    let m: f64 = rng.gen_range(-1.0..1.0);
                    let e: i32 = rng.gen_range(-80..80);
                    m * (2.0f64).powi(e)
                })
                .collect();
            let reference = sum_of(&xs).value();

            // Shuffle, then split into a random number of contiguous groups,
            // sum each group independently, merge in a random order.
            knnshap_numerics_shuffle(&mut rng, &mut xs);
            let k = rng.gen_range(1..10usize);
            let mut parts: Vec<ExactSum> = xs.chunks(xs.len().div_ceil(k)).map(sum_of).collect();
            knnshap_numerics_shuffle(&mut rng, &mut parts);
            let mut total = ExactSum::new();
            for p in &parts {
                total.merge(p);
            }
            assert_eq!(
                total.value().to_bits(),
                reference.to_bits(),
                "round={round}"
            );
        }
    }

    /// Local Fisher–Yates so this module doesn't depend on `sampling`.
    fn knnshap_numerics_shuffle<R: Rng, T>(rng: &mut R, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    #[test]
    fn windows_are_lazy_and_stay_small_for_similar_magnitudes() {
        // A fresh accumulator materializes nothing.
        assert_eq!(ExactSum::new().window_limbs(), 0);
        assert_eq!(ExactVec::zeros(1000).window_limbs(), 0);

        // Unit-scale deposits touch a 3-limb site; thousands of them (with
        // sweeps) stay within a handful of limbs — not the full 68-limb
        // register.
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = ExactSum::new();
        for _ in 0..5_000 {
            s.add(rng.gen_range(-1.0..1.0));
        }
        assert!(s.window_limbs() <= 6, "window = {}", s.window_limbs());

        // Mixing in a very different magnitude grows the window to span it…
        s.add(1e300);
        assert!(s.window_limbs() > 20, "window = {}", s.window_limbs());
        // …and the value is still the exact sum (spot check vs fresh order).
        assert!(s.value() == 1e300 || (s.value() - 1e300).abs() < 1e285);
    }

    #[test]
    fn sweeps_shrink_windows_emptied_by_cancellation() {
        let mut s = ExactSum::new();
        s.add(1e100);
        s.add(-1e100);
        let grown = s.window_limbs();
        assert!(grown >= 3);
        s.sweep_carries();
        assert_eq!(s.window_limbs(), 0, "cancelled window must trim to empty");
        assert!(s.is_zero());
        // And the accumulator remains fully usable afterwards.
        s.add(2.5);
        assert_eq!(s.value(), 2.5);
    }

    #[test]
    fn window_growth_covers_front_and_back_extensions() {
        // Deposit order forces both front (smaller magnitude) and back
        // (larger magnitude) window growth, plus merges across disjoint
        // windows — all must agree with a flat accumulation bitwise.
        let xs = [
            1.0,
            2.0f64.powi(-500),
            2.0f64.powi(700),
            -1.5,
            2.0f64.powi(-800),
        ];
        let whole = sum_of(&xs);
        for split in 1..xs.len() {
            let mut a = sum_of(&xs[..split]);
            a.merge(&sum_of(&xs[split..]));
            assert_eq!(
                a.value().to_bits(),
                whole.value().to_bits(),
                "split={split}"
            );
        }
    }

    #[test]
    fn many_deposits_trigger_carry_sweeps() {
        // 3·10^6 deposits of 0.1 — enough to exercise pending bookkeeping —
        // must equal the correctly-rounded exact sum. fl(0.1) = m/2^55 with
        // m = 3602879701896397; 3e6·m is exact in i128.
        let mut s = ExactSum::new();
        for _ in 0..3_000_000 {
            s.add(0.1);
        }
        let exact = (3_000_000i128 * 3602879701896397) as f64 / (2.0f64).powi(55);
        assert_eq!(s.value().to_bits(), exact.to_bits());
    }

    #[test]
    fn encode_decode_roundtrips_and_is_canonical() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let xs: Vec<f64> = (0..40)
                .map(|_| rng.gen_range(-1.0..1.0) * (2.0f64).powi(rng.gen_range(-60..60)))
                .collect();
            let a = sum_of(&xs);
            // A differently-grouped accumulation of the same multiset…
            let mut b = sum_of(&xs[..17]);
            b.merge(&sum_of(&xs[17..]));
            let (mut ba, mut bb) = (Vec::new(), Vec::new());
            a.encode_into(&mut ba);
            b.encode_into(&mut bb);
            // …serializes to identical bytes (canonical form).
            assert_eq!(ba, bb);
            let mut pos = 0;
            let back = ExactSum::decode_from(&ba, &mut pos).unwrap();
            assert_eq!(pos, ba.len(), "record length self-describes");
            assert_eq!(back.value().to_bits(), a.value().to_bits());
        }
    }

    #[test]
    fn encode_decode_zero_and_special() {
        let z = ExactSum::new();
        let mut buf = Vec::new();
        z.encode_into(&mut buf);
        assert_eq!(buf, vec![0u8, 0, 0, 0, 0]); // sign 0, start 0, len 0
        let mut pos = 0;
        assert_eq!(ExactSum::decode_from(&buf, &mut pos).unwrap().value(), 0.0);

        // A special over a ZERO finite part must still round-trip (the sign
        // code carries the special flag even when no limbs follow).
        let mut pure = ExactSum::new();
        pure.add(f64::NEG_INFINITY);
        let mut buf = Vec::new();
        pure.encode_into(&mut buf);
        let mut pos = 0;
        let back = ExactSum::decode_from(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back.value(), f64::NEG_INFINITY);

        let s = sum_of(&[2.5, f64::INFINITY]);
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        let mut pos = 0;
        let back = ExactSum::decode_from(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back.value(), f64::INFINITY);
        // The finite part survives alongside the special.
        let mut minus_inf = ExactSum::new();
        minus_inf.add(f64::NEG_INFINITY);
        let mut c = back;
        c.merge(&minus_inf);
        assert!(c.value().is_nan()); // inf + (−inf) = NaN, f64 semantics
    }

    #[test]
    fn decode_rejects_malformed_records() {
        assert!(ExactSum::decode_from(&[], &mut 0).is_err());
        // Truncated limb payload.
        let mut buf = Vec::new();
        sum_of(&[1.5]).encode_into(&mut buf);
        buf.pop();
        assert!(ExactSum::decode_from(&buf, &mut 0).is_err());
        // Window out of range.
        let bad = [1u8, 0xFF, 0xFF, 2, 0];
        assert!(ExactSum::decode_from(&bad, &mut 0).is_err());
        // Bad sign bytes — including 0x80, whose naive `as i8` + `abs()`
        // interpretation would overflow-panic in debug builds.
        for bad_sign in [7u8, 0x80, 0xFD, 3] {
            let bad = [bad_sign, 0, 0, 0, 0];
            assert!(
                ExactSum::decode_from(&bad, &mut 0).is_err(),
                "{bad_sign:#x}"
            );
        }
        // Zero sign but nonzero window length.
        let bad = [0u8, 0, 0, 1, 0, 1, 0, 0, 0];
        assert!(ExactSum::decode_from(&bad, &mut 0).is_err());
    }

    #[test]
    fn vec_merge_matches_flat_accumulation() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 7;
        let deposits: Vec<(usize, f64)> = (0..500)
            .map(|_| {
                (
                    rng.gen_range(0..n),
                    rng.gen_range(-1.0..1.0) * (2.0f64).powi(rng.gen_range(-40..40)),
                )
            })
            .collect();
        let mut whole = ExactVec::zeros(n);
        for &(i, x) in &deposits {
            whole.add(i, x);
        }
        let mut left = ExactVec::zeros(n);
        let mut right = ExactVec::zeros(n);
        for &(i, x) in &deposits[..250] {
            left.add(i, x);
        }
        for &(i, x) in &deposits[250..] {
            right.add(i, x);
        }
        left.merge(&right);
        for i in 0..n {
            assert_eq!(left.value(i).to_bits(), whole.value(i).to_bits(), "i={i}");
        }
        assert_eq!(left.values(), whole.values());

        // Vector serialization round-trip.
        let mut buf = Vec::new();
        whole.encode_into(&mut buf);
        let mut pos = 0;
        let back = ExactVec::decode_from(&buf, &mut pos, n).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back.values(), whole.values());
    }

    #[test]
    fn add_dense_skips_zeros_and_checks_length() {
        let mut v = ExactVec::zeros(3);
        v.add_dense(&[1.0, 0.0, -2.0]);
        v.add_dense(&[0.5, 0.0, 0.0]);
        assert_eq!(v.values(), vec![1.5, 0.0, -2.0]);
        assert!(!v.is_empty());
        assert_eq!(v.len(), 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn vec_merge_rejects_length_mismatch() {
        let mut a = ExactVec::zeros(2);
        a.merge(&ExactVec::zeros(3));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_dense_rejects_length_mismatch() {
        let mut a = ExactVec::zeros(2);
        a.add_dense(&[1.0; 3]);
    }
}
