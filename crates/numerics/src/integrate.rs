//! One-dimensional quadrature: composite and adaptive Simpson rules.
//!
//! The LSH theory path (paper Theorem 3, eq. 20) evaluates
//! `f_h(c) = ∫_0^r (1/c) f_2(z/c)(1 − z/r) dz` for many values of `c` while
//! sweeping the projection width `r` (Fig. 10). The integrand is smooth, so
//! Simpson quadrature converges at O(h⁴) and an adaptive splitter keeps the
//! cost low for the peaked small-`c` cases.

/// Composite Simpson rule with `n` subintervals (`n` is rounded up to even).
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(b >= a, "integration bounds must satisfy b >= a");
    if a == b {
        return 0.0;
    }
    let n = if n.is_multiple_of(2) { n.max(2) } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        acc += if i % 2 == 1 { 4.0 * f(x) } else { 2.0 * f(x) };
    }
    acc * h / 3.0
}

/// Adaptive Simpson quadrature with absolute tolerance `tol`.
///
/// Recursion depth is capped at 50, which bounds the subinterval width at
/// `(b−a)/2⁵⁰`; for the smooth integrands used here the estimate converges
/// long before the cap.
pub fn adaptive_simpson<F: Fn(f64) -> f64 + Copy>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(b >= a, "integration bounds must satisfy b >= a");
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    adaptive_rec(f, a, b, fa, fb, fm, whole, tol, 50)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_rec<F: Fn(f64) -> f64 + Copy>(
    f: F,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fm: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation term improves the estimate by one order.
        left + right + delta / 15.0
    } else {
        adaptive_rec(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)
            + adaptive_rec(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact for cubics.
        let f = |x: f64| 3.0 * x * x * x - x + 2.0;
        let got = simpson(f, -1.0, 2.0, 2);
        let want = |x: f64| 0.75 * x.powi(4) - 0.5 * x * x + 2.0 * x;
        assert!((got - (want(2.0) - want(-1.0))).abs() < 1e-12);
    }

    #[test]
    fn simpson_handles_odd_n_and_degenerate_range() {
        let f = |x: f64| x.sin();
        let even = simpson(f, 0.0, 1.0, 100);
        let odd = simpson(f, 0.0, 1.0, 99); // silently bumped to 100
        assert!((even - odd).abs() < 1e-12);
        assert_eq!(simpson(f, 1.0, 1.0, 10), 0.0);
    }

    #[test]
    fn adaptive_matches_known_integrals() {
        // (integrand, lower, upper, closed form)
        type Case = (fn(f64) -> f64, f64, f64, f64);
        let cases: [Case; 3] = [
            (|x| x.exp(), 0.0, 1.0, std::f64::consts::E - 1.0),
            (|x| x.sin(), 0.0, std::f64::consts::PI, 2.0),
            (
                |x| 1.0 / (1.0 + x * x),
                0.0,
                1.0,
                std::f64::consts::FRAC_PI_4,
            ),
        ];
        for (f, a, b, want) in cases {
            let got = adaptive_simpson(f, a, b, 1e-12);
            assert!((got - want).abs() < 1e-10, "got {got} want {want}");
        }
    }

    #[test]
    fn adaptive_peaked_integrand() {
        // Narrow Gaussian: naive low-n Simpson would miss the peak.
        let f = |x: f64| (-(x - 0.5) * (x - 0.5) / (2.0 * 1e-4)).exp();
        let got = adaptive_simpson(f, 0.0, 1.0, 1e-12);
        let want = (2.0 * std::f64::consts::PI * 1e-4).sqrt(); // full mass inside [0,1]
        assert!((got - want).abs() < 1e-8, "got {got} want {want}");
    }
}
