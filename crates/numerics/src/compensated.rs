//! Compensated (Neumaier/Kahan) floating-point summation.
//!
//! The parallel Monte Carlo runtime accumulates millions of marginal
//! contributions whose magnitudes differ wildly (most are exactly zero, the
//! rest are `O(1/K)`), and its determinism contract requires the accumulated
//! Shapley vector to be a pure function of the summand sequence — never of
//! the thread count. [`NeumaierSum`] provides the per-term accumulator and
//! [`CompensatedVec`] the per-point vector of them; both carry an explicit
//! [`merge`](NeumaierSum::merge) so `knnshap_parallel::par_map_reduce`-style
//! blocked folds (fixed block partition, fixed reduction order) stay bitwise
//! reproducible while losing far less precision than a naive `f64` chain.
//!
//! ```
//! use knnshap_numerics::compensated::NeumaierSum;
//!
//! // The classic cancellation case a naive sum gets wrong: 1.0 + 1e100 − 1e100.
//! let mut s = NeumaierSum::new();
//! for x in [1.0, 1e100, 1.0, -1e100] {
//!     s.add(x);
//! }
//! assert_eq!(s.value(), 2.0);
//! ```

/// Neumaier's improved Kahan–Babuška summation: a running `sum` plus a
/// `compensation` term capturing the low-order bits the running sum dropped.
///
/// Unlike classic Kahan, the compensation update also handles the case where
/// the incoming term is larger than the running sum, so the accumulator is
/// robust to the first term being tiny (exactly what happens when the first
/// permutations of an MC run contribute zero marginals).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    comp: f64,
}

impl NeumaierSum {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one term into the sum.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// Fold another accumulator into this one (deterministic: folds `other`'s
    /// running sum, then its compensation). Used as the block-order reduction
    /// step of the parallel MC runtime.
    #[inline]
    pub fn merge(&mut self, other: &NeumaierSum) {
        self.add(other.sum);
        self.add(other.comp);
    }
}

/// A vector of [`NeumaierSum`] accumulators — one per training point.
#[derive(Debug, Clone)]
pub struct CompensatedVec {
    terms: Vec<NeumaierSum>,
}

impl CompensatedVec {
    /// `n` zeroed accumulators.
    pub fn zeros(n: usize) -> Self {
        Self {
            terms: vec![NeumaierSum::default(); n],
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Fold `x` into accumulator `i`.
    #[inline]
    pub fn add(&mut self, i: usize, x: f64) {
        self.terms[i].add(x);
    }

    /// Compensated total of accumulator `i`.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        self.terms[i].value()
    }

    /// Element-wise [`NeumaierSum::merge`]. Panics on length mismatch.
    pub fn merge(&mut self, other: &CompensatedVec) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        for (a, b) in self.terms.iter_mut().zip(&other.terms) {
            a.merge(b);
        }
    }

    /// Materialize the compensated totals.
    pub fn values(&self) -> Vec<f64> {
        self.terms.iter().map(NeumaierSum::value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_cancellation_naive_sum_loses() {
        let xs = [1.0, 1e100, 1.0, -1e100];
        let naive: f64 = xs.iter().sum();
        assert_ne!(naive, 2.0, "naive sum should lose the small terms");
        let mut s = NeumaierSum::new();
        for &x in &xs {
            s.add(x);
        }
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn many_small_terms_stay_tight() {
        // 10^7 × 0.1 accumulates visible drift naively; compensated stays at
        // machine precision of the true value.
        let mut s = NeumaierSum::new();
        let mut naive = 0.0f64;
        for _ in 0..10_000_000 {
            s.add(0.1);
            naive += 0.1;
        }
        let truth = 1_000_000.0;
        assert!((s.value() - truth).abs() < 1e-7, "comp {}", s.value());
        assert!((s.value() - truth).abs() <= (naive - truth).abs());
    }

    #[test]
    fn merge_is_deterministic_and_accurate() {
        // Blocked merge must give the same bits every time, and stay close to
        // the sequential compensated sum.
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 1e-3).collect();
        let mut seq = NeumaierSum::new();
        for &x in &xs {
            seq.add(x);
        }
        let blocked = |chunk: usize| -> f64 {
            let mut total = NeumaierSum::new();
            for block in xs.chunks(chunk) {
                let mut acc = NeumaierSum::new();
                for &x in block {
                    acc.add(x);
                }
                total.merge(&acc);
            }
            total.value()
        };
        assert_eq!(blocked(128).to_bits(), blocked(128).to_bits());
        assert!((blocked(128) - seq.value()).abs() < 1e-9);
    }

    #[test]
    fn vec_merge_matches_per_index_merge() {
        let mut a = CompensatedVec::zeros(3);
        let mut b = CompensatedVec::zeros(3);
        a.add(0, 1.0);
        a.add(2, 1e16);
        b.add(0, 2.0);
        b.add(2, 1.0);
        b.add(2, -1e16);
        a.merge(&b);
        assert_eq!(a.value(0), 3.0);
        assert_eq!(a.value(1), 0.0);
        assert_eq!(a.value(2), 1.0);
        assert_eq!(a.values(), vec![3.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn vec_merge_rejects_length_mismatch() {
        let mut a = CompensatedVec::zeros(2);
        a.merge(&CompensatedVec::zeros(3));
    }
}
