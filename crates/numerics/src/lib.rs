//! Numerical substrate for the `knnshap` workspace.
//!
//! This crate implements, from scratch, every piece of numerical machinery the
//! paper's algorithms need:
//!
//! * log-space factorials and binomial coefficients ([`binom`]) — the weighted
//!   KNN (Theorem 7) and curator (Theorem 8) Shapley recursions weight utility
//!   differences by ratios of binomial coefficients that overflow `f64` for
//!   moderate `N`, so they are evaluated in log space;
//! * special functions ([`special`]) — the Gaussian/half-normal densities used
//!   by the p-stable LSH collision probability (eq. 20 of the paper) and the
//!   Bennett function `h(u) = (1+u)ln(1+u) − u` from Theorem 5;
//! * adaptive quadrature ([`integrate`]) — evaluates the collision-probability
//!   integral `f_h(c)`;
//! * root finding ([`roots`]) — solves eq. (32) for the Bennett permutation
//!   budget `T*`;
//! * descriptive statistics and correlation ([`stats`]) — used by the
//!   experiment harness (Figs. 14–16 report correlations between valuations);
//! * random sampling ([`sampling`]) — Box–Muller Gaussians for synthetic
//!   embeddings and LSH projections, and Fisher–Yates permutations for the
//!   Monte Carlo estimators.

pub mod binom;
pub mod integrate;
pub mod roots;
pub mod sampling;
pub mod special;
pub mod stats;

pub use binom::LogFactorialTable;
pub use integrate::{adaptive_simpson, simpson};
pub use roots::{bisect, brent};
pub use sampling::{gaussian_vec, sample_permutation, GaussianSampler};
pub use special::{bennett_h, half_normal_pdf, normal_cdf, normal_pdf};
pub use stats::Summary;
