//! Numerical substrate for the `knnshap` workspace.
//!
//! This crate implements, from scratch, every piece of numerical machinery the
//! paper's algorithms need:
//!
//! * log-space factorials and binomial coefficients ([`binom`]) — the weighted
//!   KNN (Theorem 7) and curator (Theorem 8) Shapley recursions weight utility
//!   differences by ratios of binomial coefficients that overflow `f64` for
//!   moderate `N`, so they are evaluated in log space;
//! * special functions ([`special`]) — the Gaussian/half-normal densities used
//!   by the p-stable LSH collision probability (eq. 20 of the paper) and the
//!   Bennett function `h(u) = (1+u)ln(1+u) − u` from Theorem 5;
//! * adaptive quadrature ([`integrate`]) — evaluates the collision-probability
//!   integral `f_h(c)`;
//! * root finding ([`roots`]) — solves eq. (32) for the Bennett permutation
//!   budget `T*`;
//! * descriptive statistics and correlation ([`stats`]) — used by the
//!   experiment harness (Figs. 14–16 report correlations between valuations);
//! * random sampling ([`sampling`]) — Box–Muller Gaussians for synthetic
//!   embeddings and LSH projections, Fisher–Yates permutations for the Monte
//!   Carlo estimators, and the counter-based RNG streams
//!   ([`sampling::RngStreams`]) the parallel MC runtime splits its
//!   permutation budget over;
//! * compensated summation ([`compensated`]) — Neumaier accumulators whose
//!   explicit merge keeps blocked parallel reductions both accurate and
//!   bitwise-deterministic;
//! * exact summation ([`exact`]) — fixed-point superaccumulators whose merge
//!   is *error-free* and therefore order- and grouping-invariant: the
//!   serialized/mergeable partial-sum state of the sharded valuation runtime
//!   (`knnshap_core::sharding`), where the reduction tree is chosen by the
//!   operator's shard layout rather than fixed by the code.
//!
//! ### Determinism contract
//!
//! Everything in this crate is a pure function of its inputs: no global RNG,
//! no platform-dependent intrinsics, no hidden state. In particular
//! [`sampling::RngStreams::stream`]`(i)` depends only on `(seed, i)` and
//! [`compensated::NeumaierSum::merge`] is a fixed sequence of f64 adds, which
//! together are what let `knnshap_core`'s Monte Carlo estimators promise
//! bitwise-identical Shapley vectors at every thread count.
//!
//! ```
//! use knnshap_numerics::compensated::NeumaierSum;
//! use knnshap_numerics::sampling::RngStreams;
//!
//! // Stream i is a pure function of (seed, i)…
//! let streams = RngStreams::new(7);
//! let p1 = knnshap_numerics::sample_permutation(&mut streams.stream(3), 10);
//! let p2 = knnshap_numerics::sample_permutation(&mut streams.stream(3), 10);
//! assert_eq!(p1, p2);
//!
//! // …and compensated merges recover what naive f64 chains lose.
//! let mut s = NeumaierSum::new();
//! for x in [1.0, 1e100, 1.0, -1e100] { s.add(x); }
//! assert_eq!(s.value(), 2.0);
//! ```

pub mod binom;
pub mod compensated;
pub mod exact;
pub mod fingerprint;
pub mod integrate;
pub mod roots;
pub mod sampling;
pub mod special;
pub mod stats;

pub use binom::LogFactorialTable;
pub use compensated::{CompensatedVec, NeumaierSum};
pub use exact::{ExactSum, ExactVec};
pub use fingerprint::Fingerprint;
pub use integrate::{adaptive_simpson, simpson};
pub use roots::{bisect, brent};
pub use sampling::{gaussian_vec, sample_permutation, GaussianSampler, RngStreams};
pub use special::{bennett_h, half_normal_pdf, normal_cdf, normal_pdf};
pub use stats::Summary;
