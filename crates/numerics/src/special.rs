//! Special functions: Gaussian density/CDF, half-normal density, the error
//! function, and the Bennett function from Theorem 5 of the paper.

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// Standard normal probability density `φ(x)`.
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * PI).sqrt()
}

/// Density of `|Z|` where `Z ~ N(0,1)` — the "absolute value of a 2-stable
/// random variable" appearing in the paper's collision probability
/// `f_h(c) = ∫_0^r (1/c) f_2(z/c) (1 − z/r) dz` (eq. 20).
#[inline]
pub fn half_normal_pdf(x: f64) -> f64 {
    if x < 0.0 {
        0.0
    } else {
        2.0 * normal_pdf(x)
    }
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation,
/// accurate to ~1.5e-7 absolute error — far below the tolerances the LSH
/// theory calculations need.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution `Φ(x)`.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x * FRAC_1_SQRT_2))
}

/// The Bennett function `h(u) = (1 + u) ln(1 + u) − u` (paper Theorem 5).
///
/// Defined for `u > −1`; strictly increasing and convex on `u ≥ 0`.
#[inline]
pub fn bennett_h(u: f64) -> f64 {
    debug_assert!(u > -1.0, "bennett_h domain is u > -1, got {u}");
    (1.0 + u) * (1.0 + u).ln() - u
}

/// Lower bound `h(u) ≥ u² / (2 + u)` used in Appendix H to derive the
/// closed-form approximation `T̃ ≥ (r²/ε²) ln(2K/δ)` (eq. 34/35).
#[inline]
pub fn bennett_h_lower_bound(u: f64) -> f64 {
    u * u / (2.0 + u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_pdf_is_symmetric_and_peaks_at_zero() {
        assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-12);
        for x in [0.1, 0.7, 1.5, 3.0] {
            assert!((normal_pdf(x) - normal_pdf(-x)).abs() < 1e-15);
            assert!(normal_pdf(x) < normal_pdf(0.0));
        }
    }

    #[test]
    fn half_normal_integrates_to_one() {
        let integral = crate::integrate::simpson(half_normal_pdf, 0.0, 10.0, 10_000);
        assert!((integral - 1.0).abs() < 1e-8, "got {integral}");
    }

    #[test]
    fn half_normal_zero_below_zero() {
        assert_eq!(half_normal_pdf(-0.5), 0.0);
        assert!((half_normal_pdf(0.0) - 2.0 * normal_pdf(0.0)).abs() < 1e-15);
    }

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
        }
    }

    #[test]
    fn normal_cdf_properties() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn bennett_h_basic_shape() {
        assert!((bennett_h(0.0)).abs() < 1e-15);
        // increasing on u >= 0
        let mut prev = 0.0;
        for i in 1..100 {
            let u = i as f64 * 0.1;
            let v = bennett_h(u);
            assert!(v > prev);
            prev = v;
        }
        // h(u) >= u^2/(2+u)
        for i in 0..100 {
            let u = i as f64 * 0.05;
            assert!(bennett_h(u) + 1e-12 >= bennett_h_lower_bound(u));
        }
        // h(u) <= u^2 for small u (used in Appendix H upper bound direction)
        for u in [0.01, 0.1, 0.5, 1.0] {
            assert!(bennett_h(u) <= u * u + 1e-12);
        }
    }
}
