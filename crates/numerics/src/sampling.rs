//! Random sampling utilities: Gaussian variates (Box–Muller) and uniform
//! random permutations (Fisher–Yates).
//!
//! The workspace deliberately keeps `rand` as its only RNG dependency and
//! derives Gaussians itself: synthetic "deep feature" embeddings, the p-stable
//! LSH projection vectors, and noise injection all draw from
//! [`GaussianSampler`], while the Monte Carlo Shapley estimators draw
//! permutations from [`sample_permutation`].

use rand::Rng;

/// Standard-normal sampler using the Box–Muller transform with caching of the
/// second variate, so amortized cost is one `ln`/`sqrt`/`sincos` pair per two
/// samples.
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one `N(0, 1)` sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draw one `N(mean, std²)` sample.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        mean + std * self.sample(rng)
    }
}

/// Fill a fresh vector with `n` iid standard Gaussians.
pub fn gaussian_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    let mut g = GaussianSampler::new();
    (0..n).map(|_| g.sample(rng)).collect()
}

/// Same as [`gaussian_vec`] but producing `f32` (feature matrices are `f32`).
pub fn gaussian_vec_f32<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f32> {
    let mut g = GaussianSampler::new();
    (0..n).map(|_| g.sample(rng) as f32).collect()
}

/// Uniformly random permutation of `0..n` via Fisher–Yates.
///
/// This is the sampling primitive of both Monte Carlo Shapley estimators
/// (paper eq. 4 and Algorithm 2): each permutation must be drawn uniformly
/// from the `n!` possibilities for the estimator to be unbiased.
pub fn sample_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    shuffle_in_place(rng, &mut p);
    p
}

/// In-place Fisher–Yates shuffle (reuses the caller's buffer; the improved MC
/// estimator re-shuffles one workhorse vector per permutation to avoid
/// allocating in its hot loop).
pub fn shuffle_in_place<R: Rng + ?Sized, T>(rng: &mut R, xs: &mut [T]) {
    let n = xs.len();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs = gaussian_vec(&mut rng, 200_000);
        let m = crate::stats::mean(&xs);
        let v = crate::stats::variance(&xs);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((v - 1.0).abs() < 0.02, "variance {v}");
    }

    #[test]
    fn gaussian_sampler_uses_spare() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = GaussianSampler::new();
        let _ = g.sample(&mut rng);
        assert!(g.spare.is_some());
        let _ = g.sample(&mut rng);
        assert!(g.spare.is_none());
    }

    #[test]
    fn sample_with_scales() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = GaussianSampler::new();
        let xs: Vec<f64> = (0..100_000)
            .map(|_| g.sample_with(&mut rng, 5.0, 0.5))
            .collect();
        assert!((crate::stats::mean(&xs) - 5.0).abs() < 0.02);
        assert!((crate::stats::std_dev(&xs) - 0.5).abs() < 0.02);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [0usize, 1, 2, 17, 100] {
            let p = sample_permutation(&mut rng, n);
            let mut seen = vec![false; n];
            for &x in &p {
                assert!(!seen[x]);
                seen[x] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn permutation_positions_are_uniformish() {
        // Element 0 should land in every slot with probability ~1/n.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 5;
        let trials = 50_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            let p = sample_permutation(&mut rng, n);
            let pos = p.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.2).abs() < 0.02, "freq {freq}");
        }
    }
}
