//! Random sampling utilities: Gaussian variates (Box–Muller), uniform random
//! permutations (Fisher–Yates), and counter-based RNG streams.
//!
//! The workspace deliberately keeps `rand` as its only RNG dependency and
//! derives Gaussians itself: synthetic "deep feature" embeddings, the p-stable
//! LSH projection vectors, and noise injection all draw from
//! [`GaussianSampler`], while the Monte Carlo Shapley estimators draw
//! permutations from [`sample_permutation`].
//!
//! ### Stream splitting
//!
//! The parallel Monte Carlo runtime cannot share one sequential generator
//! across workers without making results depend on scheduling. [`RngStreams`]
//! solves this with counter-based derivation: stream `i` of seed `s` is an
//! independent generator seeded from a SplitMix64-style mix of `(s, i)`, so
//! permutation `i` draws the same bits no matter which worker — or how many
//! workers — execute the run. See [`RngStreams::stream`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard-normal sampler using the Box–Muller transform with caching of the
/// second variate, so amortized cost is one `ln`/`sqrt`/`sincos` pair per two
/// samples.
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one `N(0, 1)` sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draw one `N(mean, std²)` sample.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        mean + std * self.sample(rng)
    }
}

/// Fill a fresh vector with `n` iid standard Gaussians.
pub fn gaussian_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    let mut g = GaussianSampler::new();
    (0..n).map(|_| g.sample(rng)).collect()
}

/// Same as [`gaussian_vec`] but producing `f32` (feature matrices are `f32`).
pub fn gaussian_vec_f32<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f32> {
    let mut g = GaussianSampler::new();
    (0..n).map(|_| g.sample(rng) as f32).collect()
}

/// Uniformly random permutation of `0..n` via Fisher–Yates.
///
/// This is the sampling primitive of both Monte Carlo Shapley estimators
/// (paper eq. 4 and Algorithm 2): each permutation must be drawn uniformly
/// from the `n!` possibilities for the estimator to be unbiased.
pub fn sample_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    shuffle_in_place(rng, &mut p);
    p
}

/// In-place Fisher–Yates shuffle (reuses the caller's buffer; the improved MC
/// estimator re-shuffles one workhorse vector per permutation to avoid
/// allocating in its hot loop).
pub fn shuffle_in_place<R: Rng + ?Sized, T>(rng: &mut R, xs: &mut [T]) {
    let n = xs.len();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Reset `xs` to the identity permutation `0..n` and shuffle it with `rng` —
/// the canonical "draw permutation `i` of stream `i`" step of the parallel MC
/// estimators. Starting from the identity (rather than whatever the buffer
/// held) makes the result a pure function of the generator state, so a
/// permutation drawn from [`RngStreams::stream`]`(i)` is identical no matter
/// which worker draws it or what that worker drew before.
pub fn identity_shuffle<R: Rng + ?Sized>(rng: &mut R, xs: &mut [usize]) {
    for (i, x) in xs.iter_mut().enumerate() {
        *x = i;
    }
    shuffle_in_place(rng, xs);
}

/// The SplitMix64 finalizer: a bijective avalanche mix of 64 bits.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A family of independent, counter-indexed RNG streams derived from one
/// seed.
///
/// Stream `i` is an [`StdRng`] seeded from `mix(seed, i)` — two rounds of the
/// SplitMix64 finalizer over the golden-ratio-weighted combination of the two
/// words — so nearby `(seed, stream)` pairs land on statistically unrelated
/// generator states. The derivation is pure: it involves no shared mutable
/// state, which is what lets the Monte Carlo estimators hand stream `i` to
/// whichever pool worker processes permutation `i` and still produce
/// bitwise-identical output at every thread count.
///
/// ```
/// use knnshap_numerics::sampling::{sample_permutation, RngStreams};
///
/// let streams = RngStreams::new(42);
/// // Stream derivation is pure: the same (seed, index) always yields the
/// // same permutation, independent of any other stream having been drawn.
/// let a = sample_permutation(&mut streams.stream(7), 20);
/// let _ = sample_permutation(&mut streams.stream(3), 20);
/// let b = sample_permutation(&mut streams.stream(7), 20);
/// assert_eq!(a, b);
/// assert_ne!(a, sample_permutation(&mut streams.stream(8), 20));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    seed: u64,
}

impl RngStreams {
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The base seed the streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generator for stream `i`.
    pub fn stream(&self, i: u64) -> StdRng {
        StdRng::seed_from_u64(mix64(
            mix64(self.seed).wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i.wrapping_add(1))),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs = gaussian_vec(&mut rng, 200_000);
        let m = crate::stats::mean(&xs);
        let v = crate::stats::variance(&xs);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((v - 1.0).abs() < 0.02, "variance {v}");
    }

    #[test]
    fn gaussian_sampler_uses_spare() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = GaussianSampler::new();
        let _ = g.sample(&mut rng);
        assert!(g.spare.is_some());
        let _ = g.sample(&mut rng);
        assert!(g.spare.is_none());
    }

    #[test]
    fn sample_with_scales() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = GaussianSampler::new();
        let xs: Vec<f64> = (0..100_000)
            .map(|_| g.sample_with(&mut rng, 5.0, 0.5))
            .collect();
        assert!((crate::stats::mean(&xs) - 5.0).abs() < 0.02);
        assert!((crate::stats::std_dev(&xs) - 0.5).abs() < 0.02);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [0usize, 1, 2, 17, 100] {
            let p = sample_permutation(&mut rng, n);
            let mut seen = vec![false; n];
            for &x in &p {
                assert!(!seen[x]);
                seen[x] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn stream_rng_is_pure_and_seed_sensitive() {
        use rand::RngCore;
        let s = RngStreams::new(1234);
        assert_eq!(s.seed(), 1234);
        // Pure in the stream index…
        for i in [0u64, 1, 17, u64::MAX] {
            assert_eq!(s.stream(i).next_u64(), s.stream(i).next_u64());
        }
        // …distinct across adjacent indices and across seeds.
        assert_ne!(s.stream(0).next_u64(), s.stream(1).next_u64());
        assert_ne!(
            s.stream(0).next_u64(),
            RngStreams::new(1235).stream(0).next_u64()
        );
    }

    #[test]
    fn identity_shuffle_ignores_buffer_history() {
        let s = RngStreams::new(9);
        let mut dirty: Vec<usize> = (0..50).rev().collect();
        identity_shuffle(&mut s.stream(4), &mut dirty);
        let mut fresh: Vec<usize> = vec![0; 50];
        identity_shuffle(&mut s.stream(4), &mut fresh);
        assert_eq!(dirty, fresh);
        let mut seen = vec![false; 50];
        for &x in &dirty {
            assert!(!seen[x]);
            seen[x] = true;
        }
    }

    #[test]
    fn stream_positions_are_uniformish() {
        // Element 0's slot across streams of one seed must be ~uniform — the
        // unbiasedness precondition of the parallel MC estimators.
        let streams = RngStreams::new(77);
        let n = 5;
        let trials = 50_000u64;
        let mut counts = vec![0usize; n];
        let mut perm = vec![0usize; n];
        for t in 0..trials {
            identity_shuffle(&mut streams.stream(t), &mut perm);
            let pos = perm.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.2).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn permutation_positions_are_uniformish() {
        // Element 0 should land in every slot with probability ~1/n.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 5;
        let trials = 50_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            let p = sample_permutation(&mut rng, n);
            let pos = p.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.2).abs() < 0.02, "freq {freq}");
        }
    }
}
