//! Order-sensitive 64-bit content fingerprints (SplitMix64-style mixing).
//!
//! Shared by every on-disk artifact that must refuse to combine with inputs
//! it was not computed from: `KNNSHARD` partials, `KNNJOBPLAN` directories
//! and `KNNGRAPH` neighbor graphs all stamp dataset/parameter fingerprints
//! built here. The goal is to detect *operator mistakes* — two invocations
//! that disagree on datasets, seeds or parameters — not to resist
//! adversaries.

/// Order-sensitive 64-bit fingerprint builder (SplitMix64-style mixing).
/// Used to detect operator mistakes — two invocations that disagree on
/// datasets, seeds or parameters — not to resist adversaries.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    pub fn new(domain: &str) -> Self {
        let mut f = Fingerprint(0x9E37_79B9_7F4A_7C15);
        for b in domain.bytes() {
            f = f.u64(b as u64);
        }
        f
    }

    #[must_use]
    pub fn u64(self, x: u64) -> Self {
        let mut z = self.0 ^ x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Fingerprint((z ^ (z >> 27)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    #[must_use]
    pub fn f64(self, x: f64) -> Self {
        self.u64(x.to_bits())
    }

    #[must_use]
    pub fn f32s(self, xs: &[f32]) -> Self {
        let mut f = self.u64(xs.len() as u64);
        for &x in xs {
            f = f.u64(x.to_bits() as u64);
        }
        f
    }

    #[must_use]
    pub fn u32s(self, xs: &[u32]) -> Self {
        let mut f = self.u64(xs.len() as u64);
        for &x in xs {
            f = f.u64(x as u64);
        }
        f
    }

    #[must_use]
    pub fn f64s(self, xs: &[f64]) -> Self {
        let mut f = self.u64(xs.len() as u64);
        for &x in xs {
            f = f.f64(x);
        }
        f
    }

    pub fn finish(self) -> u64 {
        self.0 ^ (self.0 >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_domain_sensitive() {
        let a = Fingerprint::new("t").u64(1).u64(2).finish();
        let b = Fingerprint::new("t").u64(2).u64(1).finish();
        let c = Fingerprint::new("u").u64(1).u64(2).finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn slice_hashing_is_length_prefixed() {
        // [1.0, 2.0] must not collide with [1.0] ++ [2.0] hashed separately.
        let joined = Fingerprint::new("t").f32s(&[1.0, 2.0]).finish();
        let split = Fingerprint::new("t").f32s(&[1.0]).f32s(&[2.0]).finish();
        assert_ne!(joined, split);
    }
}
