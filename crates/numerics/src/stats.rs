//! Descriptive statistics and correlation measures.
//!
//! The experiment harness reports the quantities the paper plots: means and
//! extrema of Shapley values per contributor pool (Fig. 15d), Pearson
//! correlation between valuations under different models (Figs. 14b, 15b, 16),
//! and rank (Spearman) correlation for the value-rank-preservation claim of
//! Theorem 2.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator); 0.0 for fewer than 2 samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Largest absolute componentwise difference `max_i |a_i − b_i|` — the error
/// metric in the paper's (ε, δ)-approximation definition (`‖ŝ − s‖_∞`).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Pearson product-moment correlation; 0.0 when either side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    if a.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in a.iter().zip(b) {
        let (u, v) = (x - ma, y - mb);
        num += u * v;
        da += u * u;
        db += v * v;
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

/// Ranks with average tie-handling (1-based), as used by Spearman correlation.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("NaN in ranks"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // average rank for the tie group [i, j]
        let r = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = r;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    pearson(&ranks(a), &ranks(b))
}

/// `p`-th percentile (0–100) by linear interpolation on the sorted copy.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "p must be in [0, 100]");
    let mut s = xs.to_vec();
    s.sort_by(|x, y| x.partial_cmp(y).expect("NaN in percentile"));
    let rank = p / 100.0 * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let w = rank - lo as f64;
        s[lo] * (1.0 - w) + s[hi] * w
    }
}

/// Five-number-plus-moments summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub median: f64,
    pub max: f64,
}

impl Summary {
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty slice");
        Self {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            median: percentile(xs, 50.0),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // population variance is 4; sample variance = 4 * 8/7
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_graceful() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0); // constant side
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_on_monotone_nonlinear() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0]; // monotone => rank corr 1
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }
}
