//! Closed-form cross-checks for the numerical machinery underpinning the
//! paper's sample-complexity results.
//!
//! Theorem 2 (truncated approximation) and Theorems 7/8 (weighted/curator
//! recursions) lean on exact binomial-coefficient ratios; Theorem 5 (improved
//! MC bound) leans on the Bennett function `h(u) = (1+u)ln(1+u) − u` and on
//! root finding over strictly monotone exp-sums. Each helper is asserted here
//! against hand-derivable values, independently of the property suites.

use knnshap_numerics::binom::{binomial_u128, LogFactorialTable};
use knnshap_numerics::integrate::simpson;
use knnshap_numerics::roots::{bisect, bisect_with_growing_bracket, brent};
use knnshap_numerics::sampling::{gaussian_vec, sample_permutation};
use knnshap_numerics::special::{bennett_h, bennett_h_lower_bound, normal_cdf, normal_pdf};
use knnshap_numerics::stats::{mean, std_dev, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn binomial_closed_form_values() {
    // Textbook values, exact in u128.
    assert_eq!(binomial_u128(10, 5), 252);
    assert_eq!(binomial_u128(52, 5), 2_598_960);
    assert_eq!(binomial_u128(0, 0), 1);
    assert_eq!(binomial_u128(30, 15), 155_117_520);
    // The log-space table must agree to full f64 relative precision.
    let t = LogFactorialTable::new(64);
    for (n, k, want) in [
        (10u64, 5u64, 252.0),
        (52, 5, 2_598_960.0),
        (64, 32, binomial_u128(64, 32) as f64),
    ] {
        let got = t.binomial(n as usize, k as usize);
        assert!(
            (got - want).abs() / want < 1e-12,
            "C({n},{k}) = {got}, want {want}"
        );
    }
}

#[test]
fn binomial_ratio_closed_form() {
    // C(n,k)/C(n,k−1) = (n−k+1)/k exactly; check deep into the
    // f64-overflowing regime (C(5000, 2500) ≈ 10^1503).
    let t = LogFactorialTable::new(5000);
    for (n, k) in [(100usize, 30usize), (2000, 1000), (5000, 2500)] {
        let got = t.binomial_ratio(n, k, n, k - 1);
        let want = (n - k + 1) as f64 / k as f64;
        assert!(
            (got - want).abs() < 1e-9,
            "ratio C({n},{k})/C({n},{}) = {got}, want {want}",
            k - 1
        );
    }
    // Vandermonde-style telescoping: C(n,k)/C(n+1,k) = (n+1−k)/(n+1).
    let got = t.binomial_ratio(1000, 400, 1001, 400);
    assert!((got - 601.0 / 1001.0).abs() < 1e-12);
}

#[test]
fn hoeffding_budget_formula_from_primitives() {
    // §2.2: T ≥ ((b−a)²/(2ε²)) ln(2N/δ) with b−a = 2/K for unweighted KNN.
    // Recompute from ln and compare against a hand-evaluated instance:
    // K = 1, ε = δ = 0.1, N = 1000 ⇒ T = (4/0.02)·ln(20000) = 200·ln(20000).
    let t = 4.0f64 / (2.0 * 0.1 * 0.1) * (2.0f64 * 1000.0 / 0.1).ln();
    assert!((t - 200.0 * 20_000.0f64.ln()).abs() < 1e-9);
    assert_eq!(t.ceil() as usize, 1_981);
}

#[test]
fn bennett_h_closed_form_values() {
    // h(0) = 0, h(1) = 2 ln 2 − 1, h(e−1) = 1.
    assert_eq!(bennett_h(0.0), 0.0);
    assert!((bennett_h(1.0) - (2.0 * 2.0f64.ln() - 1.0)).abs() < 1e-15);
    let e = std::f64::consts::E;
    assert!((bennett_h(e - 1.0) - 1.0).abs() < 1e-12);
    // Appendix H lower bound u²/(2+u) is tight at 0 and strictly below after.
    assert_eq!(bennett_h_lower_bound(0.0), 0.0);
    for u in [0.25, 0.5, 1.0, 3.0, 10.0] {
        let h = bennett_h(u);
        let lb = bennett_h_lower_bound(u);
        assert!(lb < h, "bound not strict at u={u}: {lb} vs {h}");
    }
    // ...and within a factor ~1.5 over the moderate range Theorem 5 uses.
    for u in [0.25, 0.5, 1.0, 3.0] {
        assert!(
            bennett_h(u) / bennett_h_lower_bound(u) < 1.6,
            "bound too loose at u={u}"
        );
    }
}

#[test]
fn bennett_budget_equation_inverts() {
    // The eq. (32) shape: N·exp(−T·h(ε/r)) = δ/2 has the closed-form root
    // T = ln(2N/δ)/h(ε/r). The growing-bracket bisection must recover it.
    let (n, eps, delta, r) = (500.0f64, 0.1f64, 0.05f64, 1.0f64);
    let a = bennett_h(eps / r);
    let f = |t: f64| n * (-t * a).exp() - delta / 2.0;
    let t_star = bisect_with_growing_bracket(f, 0.0, 16.0, 1e-9);
    let want = (2.0 * n / delta).ln() / a;
    assert!((t_star - want).abs() < 1e-6, "T* = {t_star}, want {want}");
}

#[test]
fn root_finders_agree_on_monotone_objectives() {
    let f = |x: f64| x.exp() - 3.0;
    let root = 3.0f64.ln();
    assert!((bisect(f, 0.0, 2.0, 1e-12, 200) - root).abs() < 1e-10);
    assert!((brent(f, 0.0, 2.0, 1e-13, 100) - root).abs() < 1e-10);
}

#[test]
fn normal_cdf_central_mass() {
    // Φ(1) − Φ(−1) = erf(1/√2) ≈ 0.6826894921 (the 68–95–99.7 rule).
    let one_sigma = normal_cdf(1.0) - normal_cdf(-1.0);
    assert!(
        (one_sigma - 0.682_689_492_1).abs() < 1e-6,
        "got {one_sigma}"
    );
    let two_sigma = normal_cdf(2.0) - normal_cdf(-2.0);
    assert!(
        (two_sigma - 0.954_499_736_1).abs() < 1e-6,
        "got {two_sigma}"
    );
    // CDF must also match the integral of the density.
    let int = simpson(normal_pdf, -1.0, 1.0, 4_096);
    assert!((int - one_sigma).abs() < 1e-7);
}

#[test]
fn gaussian_sampler_matches_normal_cdf() {
    // Empirical quantiles of the Box–Muller stream vs. Φ at ±1, ±2.
    let mut rng = StdRng::seed_from_u64(2024);
    let xs = gaussian_vec(&mut rng, 100_000);
    for z in [-2.0, -1.0, 0.0, 1.0, 2.0] {
        let emp = xs.iter().filter(|&&x| x <= z).count() as f64 / xs.len() as f64;
        let want = normal_cdf(z);
        assert!((emp - want).abs() < 0.01, "CDF at {z}: {emp} vs {want}");
    }
    assert!(mean(&xs).abs() < 0.02);
    assert!((std_dev(&xs) - 1.0).abs() < 0.02);
}

#[test]
fn permutation_sampler_mean_position_is_centered() {
    // E[position of any element] = (n−1)/2 under uniformity; the MC Shapley
    // estimators (eq. 4) are unbiased only if this holds.
    let mut rng = StdRng::seed_from_u64(7);
    let n = 11usize;
    let trials = 20_000;
    let mut pos_sum = 0usize;
    for _ in 0..trials {
        let p = sample_permutation(&mut rng, n);
        pos_sum += p.iter().position(|&x| x == 0).unwrap();
    }
    let avg = pos_sum as f64 / trials as f64;
    assert!((avg - 5.0).abs() < 0.08, "mean position {avg}, want 5.0");
}

#[test]
fn summary_closed_form() {
    let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
    assert_eq!(s.n, 5);
    assert_eq!(s.min, 1.0);
    assert_eq!(s.max, 5.0);
    assert_eq!(s.median, 3.0);
    assert!((s.mean - 3.0).abs() < 1e-15);
    assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
}
