//! Property-based tests for the numerical substrate.

use knnshap_numerics::binom::{binomial_u128, Combinations, LogFactorialTable};
use knnshap_numerics::integrate::{adaptive_simpson, simpson};
use knnshap_numerics::roots::{bisect, brent};
use knnshap_numerics::special::{bennett_h, normal_cdf};
use knnshap_numerics::stats::{mean, percentile, ranks, spearman, variance};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn log_binomial_symmetry(n in 1usize..300, kfrac in 0.0f64..1.0) {
        let k = ((n as f64) * kfrac) as usize;
        let t = LogFactorialTable::new(n);
        let a = t.ln_binomial(n, k);
        let b = t.ln_binomial(n, n - k);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn binomial_row_sums_to_2n(n in 0u64..30) {
        let total: u128 = (0..=n).map(|k| binomial_u128(n, k)).sum();
        prop_assert_eq!(total, 1u128 << n);
    }

    #[test]
    fn combinations_are_sorted_unique_and_complete(n in 0usize..9, k in 0usize..9) {
        let all = Combinations::new(n, k).collect_all();
        prop_assert_eq!(all.len() as u128, binomial_u128(n as u64, k as u64));
        for c in &all {
            prop_assert!(c.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(c.iter().all(|&x| x < n));
        }
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn simpson_agrees_with_adaptive_on_smooth(a in -2.0f64..0.0, w in 0.1f64..3.0) {
        let b = a + w;
        let f = |x: f64| (x * 1.3).sin() + 0.5 * x * x;
        let fixed = simpson(f, a, b, 4000);
        let adaptive = adaptive_simpson(f, a, b, 1e-12);
        prop_assert!((fixed - adaptive).abs() < 1e-8);
    }

    #[test]
    fn bisect_and_brent_agree(c in -5.0f64..5.0) {
        // root of x^3 + x - c (strictly increasing => unique root)
        let f = |x: f64| x * x * x + x - c;
        let r1 = bisect(f, -10.0, 10.0, 1e-12, 300);
        let r2 = brent(f, -10.0, 10.0, 1e-12, 300);
        prop_assert!((r1 - r2).abs() < 1e-8);
        prop_assert!(f(r1).abs() < 1e-8);
    }

    #[test]
    fn normal_cdf_is_monotone_and_symmetric(x in -4.0f64..4.0, dx in 0.001f64..1.0) {
        prop_assert!(normal_cdf(x + dx) >= normal_cdf(x));
        prop_assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bennett_h_bounds(u in 0.0f64..50.0) {
        // u²/(2+u) ≤ h(u) ≤ u²/2 for u ≥ 0
        prop_assert!(bennett_h(u) + 1e-12 >= u * u / (2.0 + u));
        prop_assert!(bennett_h(u) <= u * u / 2.0 + 1e-12);
    }

    #[test]
    fn variance_is_translation_invariant(
        xs in prop::collection::vec(-100.0f64..100.0, 2..50),
        shift in -1000.0f64..1000.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((variance(&xs) - variance(&shifted)).abs() < 1e-6 * (1.0 + variance(&xs)));
        prop_assert!((mean(&shifted) - mean(&xs) - shift).abs() < 1e-8);
    }

    #[test]
    fn ranks_are_a_permutation_sum(xs in prop::collection::vec(-10.0f64..10.0, 1..40)) {
        let r = ranks(&xs);
        let n = xs.len() as f64;
        // tie-averaged ranks always sum to n(n+1)/2
        prop_assert!((r.iter().sum::<f64>() - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(
        xs in prop::collection::vec(0.01f64..10.0, 3..30),
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x.ln()).collect(); // strictly monotone
        prop_assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_within_range(
        xs in prop::collection::vec(-50.0f64..50.0, 1..40),
        p in 0.0f64..100.0,
    ) {
        let v = percentile(&xs, p);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}
