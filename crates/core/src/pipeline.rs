//! High-level valuation pipeline — the crate's front door.
//!
//! [`KnnShapley`] wires dataset statistics, method selection and threading
//! into one builder, dispatching to the right algorithm for the
//! configuration, mirroring the decision guide in the paper's §6.2 "Remarks":
//! exact for default use, truncated/LSH when a moderate ε is acceptable and K
//! is small, Monte Carlo for weighted models where the exact algorithm is
//! O(N^K).
//!
//! ```
//! use knnshap_core::pipeline::{KnnShapley, Method};
//! use knnshap_datasets::synth::blobs::{self, BlobConfig};
//!
//! let cfg = BlobConfig { n: 300, dim: 8, n_classes: 3, ..Default::default() };
//! let train = blobs::generate(&cfg);
//! let test = blobs::queries(&cfg, 10, 7);
//! let sv = KnnShapley::new(&train, &test)
//!     .k(3)
//!     .method(Method::Exact)
//!     .run()
//!     .unwrap();
//! assert_eq!(sv.len(), 300);
//! ```

use crate::composite::GameForm;
use crate::curator::{curator_class_shapley, Ownership};
use crate::mc::{IncKnnUtility, StoppingRule};
use crate::types::ShapleyValues;
use knnshap_datasets::{contrast, ClassDataset, RegDataset};
use knnshap_knn::graph::KnnGraph;
use knnshap_knn::weights::WeightFn;
use knnshap_lsh::index::LshIndex;

/// Valuation algorithm selection.
#[derive(Debug, Clone, Copy)]
pub enum Method {
    /// Theorem 1 (unweighted, O(N log N)/test) or Theorem 7 (weighted,
    /// O(N^K)/test), chosen by the configured weight function.
    Exact,
    /// Theorem 2: (ε, 0)-approximation with exact partial retrieval.
    /// Unweighted classification only.
    Truncated { eps: f64 },
    /// Theorem 2 with kd-tree retrieval — the paper's §3.2 tree-based
    /// alternative to LSH. Same (ε, 0) guarantee as [`Method::Truncated`]
    /// (the tree returns exact neighbors); sub-scan query cost in low to
    /// moderate dimensions, degrading toward the linear scan as the
    /// dimension grows. Unweighted classification only.
    TruncatedTree { eps: f64 },
    /// Theorem 4: (ε, δ)-approximation with LSH retrieval; index parameters
    /// planned from measured dataset statistics. Unweighted classification
    /// only (the paper's LSH analysis is confined to this case).
    Lsh {
        eps: f64,
        delta: f64,
        max_tables: usize,
    },
    /// Baseline permutation sampling (§2.2) over the configured utility.
    McBaseline { rule: StoppingRule, seed: u64 },
    /// Algorithm 2: heap-incremental permutation sampling.
    McImproved { rule: StoppingRule, seed: u64 },
}

/// Configuration errors surfaced by [`KnnShapley::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Train/test feature dimensionality differs.
    DimensionMismatch,
    /// The test set is empty.
    EmptyTestSet,
    /// The training set is empty.
    EmptyTrainSet,
    /// The selected method only supports uniform weights.
    WeightedUnsupported(&'static str),
    /// A feature value is NaN or infinite; distance comparisons would panic
    /// deep inside the valuation sorts. `(which, row)` identifies the first
    /// offending row in `"train"` or `"test"`.
    NonFiniteFeature { which: &'static str, row: usize },
    /// A precomputed KNN graph was attached but the selected method performs
    /// its own retrieval (LSH / kd-tree) and cannot consume it.
    GraphUnsupported(&'static str),
    /// The attached KNN graph was built from different datasets (shape or
    /// content fingerprint drift).
    GraphMismatch(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::DimensionMismatch => write!(f, "train/test dimension mismatch"),
            PipelineError::EmptyTestSet => write!(f, "test set is empty"),
            PipelineError::EmptyTrainSet => write!(f, "training set is empty"),
            PipelineError::WeightedUnsupported(m) => {
                write!(f, "{m} supports only unweighted KNN (WeightFn::Uniform)")
            }
            PipelineError::NonFiniteFeature { which, row } => {
                write!(f, "{which} row {row} contains a NaN/infinite feature")
            }
            PipelineError::GraphUnsupported(m) => {
                write!(f, "{m} performs its own retrieval and cannot use --graph")
            }
            PipelineError::GraphMismatch(detail) => {
                write!(f, "graph does not match the datasets: {detail}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// A valuation plus run metadata, returned by
/// [`KnnShapley::run_report`]/[`RegShapley::run_report`].
#[derive(Debug, Clone)]
pub struct Valuation {
    pub values: ShapleyValues,
    /// Permutations consumed, for the Monte Carlo methods (`None` for the
    /// deterministic algorithms).
    pub permutations: Option<usize>,
}

impl From<ShapleyValues> for Valuation {
    fn from(values: ShapleyValues) -> Self {
        Valuation {
            values,
            permutations: None,
        }
    }
}

/// Builder for classification-task data valuation.
pub struct KnnShapley<'a> {
    train: &'a ClassDataset,
    test: &'a ClassDataset,
    k: usize,
    weight: WeightFn,
    method: Method,
    threads: usize,
    graph: Option<&'a KnnGraph>,
    adaptive: bool,
}

impl<'a> KnnShapley<'a> {
    /// Start a pipeline with the paper's defaults: K = 1, unweighted, exact,
    /// the workspace default worker count (`KNNSHAP_THREADS`, else one per
    /// core).
    pub fn new(train: &'a ClassDataset, test: &'a ClassDataset) -> Self {
        Self {
            train,
            test,
            k: 1,
            weight: WeightFn::Uniform,
            method: Method::Exact,
            threads: knnshap_parallel::current_threads(),
            graph: None,
            adaptive: false,
        }
    }

    pub fn k(mut self, k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        self.k = k;
        self
    }

    pub fn weight(mut self, weight: WeightFn) -> Self {
        self.weight = weight;
        self
    }

    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Schedule the budget-driven methods (Monte Carlo, truncated) by the
    /// measured cost model of [`crate::schedule`] instead of the static
    /// heuristics. Bitwise-identical output either way — the scheduler only
    /// re-tiles which items run in which block/round; the closed-form
    /// methods ignore the flag.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Attach a precomputed [`KnnGraph`] so the run skips the distance pass.
    /// The graph is fingerprint-checked against the datasets at run time; the
    /// result stays bitwise-identical to the brute-force path for every
    /// method that does its retrieval through ranked neighbor lists
    /// (exact, truncated, Monte Carlo). LSH and kd-tree retrieval reject it.
    pub fn graph(mut self, graph: &'a KnnGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    fn validate(&self) -> Result<(), PipelineError> {
        if self.train.is_empty() {
            return Err(PipelineError::EmptyTrainSet);
        }
        if self.test.is_empty() {
            return Err(PipelineError::EmptyTestSet);
        }
        if self.train.dim() != self.test.dim() {
            return Err(PipelineError::DimensionMismatch);
        }
        check_finite(&self.train.x, &self.test.x)?;
        if let Some(g) = self.graph {
            g.validate_against(&self.train.x, &self.test.x)
                .map_err(|e| PipelineError::GraphMismatch(e.to_string()))?;
        }
        Ok(())
    }

    /// Execute the configured valuation.
    pub fn run(&self) -> Result<ShapleyValues, PipelineError> {
        self.run_report().map(|r| r.values)
    }

    /// Execute the configured valuation and return it with run metadata
    /// (for the Monte Carlo methods, the permutation count actually
    /// consumed — what the CLI turns into a throughput line).
    pub fn run_report(&self) -> Result<Valuation, PipelineError> {
        self.validate()?;
        let uniform = matches!(self.weight, WeightFn::Uniform);
        match self.method {
            Method::Exact => {
                if uniform {
                    Ok(match self.graph {
                        Some(g) => crate::exact_unweighted::knn_class_shapley_from_graph(
                            self.train,
                            self.test,
                            self.k,
                            g,
                            self.threads,
                        ),
                        None => crate::exact_unweighted::knn_class_shapley_with_threads(
                            self.train,
                            self.test,
                            self.k,
                            self.threads,
                        ),
                    }
                    .into())
                } else {
                    Ok(match self.graph {
                        Some(g) => crate::exact_weighted::weighted_knn_class_shapley_from_graph(
                            self.train,
                            self.test,
                            self.k,
                            self.weight,
                            g,
                            self.threads,
                        ),
                        None => crate::exact_weighted::weighted_knn_class_shapley(
                            self.train,
                            self.test,
                            self.k,
                            self.weight,
                            self.threads,
                        ),
                    }
                    .into())
                }
            }
            Method::Truncated { eps } => {
                if !uniform {
                    return Err(PipelineError::WeightedUnsupported("Truncated"));
                }
                Ok(match self.graph {
                    Some(g) => crate::truncated::truncated_class_shapley_from_graph(
                        self.train,
                        self.test,
                        self.k,
                        eps,
                        g,
                        self.threads,
                    ),
                    None if self.adaptive => crate::truncated::truncated_class_shapley_adaptive(
                        self.train,
                        self.test,
                        self.k,
                        eps,
                        self.threads,
                    ),
                    None => crate::truncated::truncated_class_shapley_with_threads(
                        self.train,
                        self.test,
                        self.k,
                        eps,
                        self.threads,
                    ),
                }
                .into())
            }
            Method::TruncatedTree { eps } => {
                if !uniform {
                    return Err(PipelineError::WeightedUnsupported("TruncatedTree"));
                }
                if self.graph.is_some() {
                    return Err(PipelineError::GraphUnsupported("TruncatedTree"));
                }
                let tree = knnshap_knn::kdtree::KdTree::build(&self.train.x);
                let sums = crate::sharding::exact_sums_over(
                    self.train.len(),
                    0..self.test.len(),
                    self.threads,
                    |j, acc| {
                        acc.add_dense(
                            crate::truncated::truncated_class_shapley_with_kdtree(
                                &tree,
                                self.train,
                                self.test.x.row(j),
                                self.test.y[j],
                                self.k,
                                eps,
                            )
                            .as_slice(),
                        );
                    },
                );
                Ok(crate::sharding::finalize_mean(&sums, self.test.len() as u64).into())
            }
            Method::Lsh {
                eps,
                delta,
                max_tables,
            } => {
                if !uniform {
                    return Err(PipelineError::WeightedUnsupported("Lsh"));
                }
                if self.graph.is_some() {
                    return Err(PipelineError::GraphUnsupported("Lsh"));
                }
                let ks = crate::truncated::k_star(self.k, eps).min(self.train.len());
                let est = contrast::estimate(
                    &self.train.x,
                    &self.test.x,
                    ks,
                    16.min(self.test.len()),
                    64,
                    0xC0_FFEE,
                );
                let params = crate::lsh_approx::plan_index_params(
                    self.train.len(),
                    &est,
                    self.k,
                    eps,
                    delta,
                    1.0,
                    max_tables,
                    0x5EED,
                );
                let index = LshIndex::build(&self.train.x, params);
                Ok(
                    crate::lsh_approx::lsh_class_shapley(
                        &index, self.train, self.test, self.k, eps,
                    )
                    .into(),
                )
            }
            Method::McBaseline { rule, seed } => {
                let u = match self.graph {
                    Some(g) => crate::utility::KnnClassUtility::from_graph(
                        self.train,
                        self.test,
                        self.k,
                        self.weight,
                        g,
                    ),
                    None => crate::utility::KnnClassUtility::new(
                        self.train,
                        self.test,
                        self.k,
                        self.weight,
                    ),
                };
                let res = if self.adaptive {
                    crate::mc::mc_shapley_baseline_adaptive(&u, rule, seed, None, self.threads)
                } else {
                    crate::mc::mc_shapley_baseline_with_threads(&u, rule, seed, None, self.threads)
                };
                Ok(Valuation {
                    values: res.values,
                    permutations: Some(res.permutations),
                })
            }
            Method::McImproved { rule, seed } => {
                let inc = match self.graph {
                    Some(g) => IncKnnUtility::classification_from_graph(
                        self.train,
                        self.test,
                        self.k,
                        self.weight,
                        g,
                    ),
                    None => {
                        IncKnnUtility::classification(self.train, self.test, self.k, self.weight)
                    }
                };
                let res = if self.adaptive {
                    crate::mc::mc_shapley_improved_adaptive(&inc, rule, seed, None, self.threads)
                } else {
                    crate::mc::mc_shapley_improved_with_threads(
                        &inc,
                        rule,
                        seed,
                        None,
                        self.threads,
                    )
                };
                Ok(Valuation {
                    values: res.values,
                    permutations: Some(res.permutations),
                })
            }
        }
    }

    /// Value *sellers* instead of points given an ownership map
    /// (Theorem 8 / Theorem 12). Exact only.
    pub fn run_curator(
        &self,
        ownership: &Ownership,
        form: GameForm,
    ) -> Result<ShapleyValues, PipelineError> {
        self.validate()?;
        if ownership.owners.len() != self.train.len() {
            return Err(PipelineError::DimensionMismatch);
        }
        Ok(curator_class_shapley(
            self.train,
            ownership,
            self.test,
            self.k,
            self.weight,
            form,
        ))
    }
}

/// Shared NaN/inf screening for both pipeline front doors.
fn check_finite(
    train: &knnshap_datasets::Features,
    test: &knnshap_datasets::Features,
) -> Result<(), PipelineError> {
    if let Some(row) = train.first_non_finite_row() {
        return Err(PipelineError::NonFiniteFeature {
            which: "train",
            row,
        });
    }
    if let Some(row) = test.first_non_finite_row() {
        return Err(PipelineError::NonFiniteFeature { which: "test", row });
    }
    Ok(())
}

/// Valuation algorithm selection for regression tasks.
///
/// The retrieval-based approximations (Theorems 2/4) are classification-only
/// in the paper ("the application of the LSH-based approximation is still
/// confined to the classification case", §1 C1.2), so the regression builder
/// offers exact and Monte Carlo paths only.
#[derive(Debug, Clone, Copy)]
pub enum RegMethod {
    /// Theorem 6 (unweighted, O(N log N)/test) or Theorem 7 (weighted,
    /// O(N^K)/test), chosen by the configured weight function.
    Exact,
    /// Baseline permutation sampling (§2.2) over the regression utility.
    McBaseline { rule: StoppingRule, seed: u64 },
    /// Algorithm 2: heap-incremental permutation sampling.
    McImproved { rule: StoppingRule, seed: u64 },
}

/// Builder for regression-task data valuation (negative-MSE utility,
/// eq. 25/27).
///
/// ```
/// use knnshap_core::pipeline::{RegShapley, RegMethod};
/// use knnshap_datasets::synth::regression::{self, RegressionConfig};
///
/// let cfg = RegressionConfig { n: 200, ..Default::default() };
/// let train = regression::generate(&cfg);
/// let test = regression::queries(&cfg, 10);
/// let sv = RegShapley::new(&train, &test).k(3).run().unwrap();
/// assert_eq!(sv.len(), 200);
/// ```
pub struct RegShapley<'a> {
    train: &'a RegDataset,
    test: &'a RegDataset,
    k: usize,
    weight: WeightFn,
    method: RegMethod,
    threads: usize,
    graph: Option<&'a KnnGraph>,
    adaptive: bool,
}

impl<'a> RegShapley<'a> {
    /// Start a regression pipeline: K = 1, unweighted, exact, the workspace
    /// default worker count (`KNNSHAP_THREADS`, else one per core).
    pub fn new(train: &'a RegDataset, test: &'a RegDataset) -> Self {
        Self {
            train,
            test,
            k: 1,
            weight: WeightFn::Uniform,
            method: RegMethod::Exact,
            threads: knnshap_parallel::current_threads(),
            graph: None,
            adaptive: false,
        }
    }

    pub fn k(mut self, k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        self.k = k;
        self
    }

    pub fn weight(mut self, weight: WeightFn) -> Self {
        self.weight = weight;
        self
    }

    pub fn method(mut self, method: RegMethod) -> Self {
        self.method = method;
        self
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Schedule the Monte Carlo methods by the measured cost model (see
    /// [`KnnShapley::adaptive`]). Bitwise-identical output either way.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Attach a precomputed [`KnnGraph`] so the run skips the distance pass.
    /// The graph is label-free, so the same artifact serves classification
    /// and regression over the same features. Fingerprint-checked at run
    /// time; results stay bitwise-identical to the brute-force path.
    pub fn graph(mut self, graph: &'a KnnGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    fn validate(&self) -> Result<(), PipelineError> {
        if self.train.is_empty() {
            return Err(PipelineError::EmptyTrainSet);
        }
        if self.test.is_empty() {
            return Err(PipelineError::EmptyTestSet);
        }
        if self.train.dim() != self.test.dim() {
            return Err(PipelineError::DimensionMismatch);
        }
        check_finite(&self.train.x, &self.test.x)?;
        if let Some(g) = self.graph {
            g.validate_against(&self.train.x, &self.test.x)
                .map_err(|e| PipelineError::GraphMismatch(e.to_string()))?;
        }
        Ok(())
    }

    /// Execute the configured valuation.
    pub fn run(&self) -> Result<ShapleyValues, PipelineError> {
        self.run_report().map(|r| r.values)
    }

    /// Execute the configured valuation and return it with run metadata
    /// (permutation counts for the Monte Carlo methods).
    pub fn run_report(&self) -> Result<Valuation, PipelineError> {
        self.validate()?;
        let uniform = matches!(self.weight, WeightFn::Uniform);
        match self.method {
            RegMethod::Exact => {
                if uniform {
                    Ok(match self.graph {
                        Some(g) => crate::exact_regression::knn_reg_shapley_from_graph(
                            self.train,
                            self.test,
                            self.k,
                            g,
                            self.threads,
                        ),
                        None => crate::exact_regression::knn_reg_shapley_with_threads(
                            self.train,
                            self.test,
                            self.k,
                            self.threads,
                        ),
                    }
                    .into())
                } else {
                    Ok(match self.graph {
                        Some(g) => crate::exact_weighted::weighted_knn_reg_shapley_from_graph(
                            self.train,
                            self.test,
                            self.k,
                            self.weight,
                            g,
                            self.threads,
                        ),
                        None => crate::exact_weighted::weighted_knn_reg_shapley(
                            self.train,
                            self.test,
                            self.k,
                            self.weight,
                            self.threads,
                        ),
                    }
                    .into())
                }
            }
            RegMethod::McBaseline { rule, seed } => {
                let u = match self.graph {
                    Some(g) => crate::utility::KnnRegUtility::from_graph(
                        self.train,
                        self.test,
                        self.k,
                        self.weight,
                        g,
                    ),
                    None => crate::utility::KnnRegUtility::new(
                        self.train,
                        self.test,
                        self.k,
                        self.weight,
                    ),
                };
                let res = if self.adaptive {
                    crate::mc::mc_shapley_baseline_adaptive(&u, rule, seed, None, self.threads)
                } else {
                    crate::mc::mc_shapley_baseline_with_threads(&u, rule, seed, None, self.threads)
                };
                Ok(Valuation {
                    values: res.values,
                    permutations: Some(res.permutations),
                })
            }
            RegMethod::McImproved { rule, seed } => {
                let inc = match self.graph {
                    Some(g) => IncKnnUtility::regression_from_graph(
                        self.train,
                        self.test,
                        self.k,
                        self.weight,
                        g,
                    ),
                    None => IncKnnUtility::regression(self.train, self.test, self.k, self.weight),
                };
                let res = if self.adaptive {
                    crate::mc::mc_shapley_improved_adaptive(&inc, rule, seed, None, self.threads)
                } else {
                    crate::mc::mc_shapley_improved_with_threads(
                        &inc,
                        rule,
                        seed,
                        None,
                        self.threads,
                    )
                };
                Ok(Valuation {
                    values: res.values,
                    permutations: Some(res.permutations),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knnshap_datasets::synth::blobs::{self, BlobConfig};
    use knnshap_datasets::Features;

    fn data() -> (ClassDataset, ClassDataset) {
        let cfg = BlobConfig {
            n: 120,
            dim: 6,
            n_classes: 3,
            cluster_std: 0.6,
            center_scale: 3.0,
            seed: 2,
        };
        (blobs::generate(&cfg), blobs::queries(&cfg, 6, 3))
    }

    #[test]
    fn exact_default_runs() {
        let (train, test) = data();
        let sv = KnnShapley::new(&train, &test).k(3).run().unwrap();
        assert_eq!(sv.len(), 120);
    }

    #[test]
    fn truncated_close_to_exact() {
        let (train, test) = data();
        let exact = KnnShapley::new(&train, &test).k(2).run().unwrap();
        let approx = KnnShapley::new(&train, &test)
            .k(2)
            .method(Method::Truncated { eps: 0.1 })
            .run()
            .unwrap();
        assert!(exact.max_abs_diff(&approx) <= 0.1 + 1e-12);
    }

    #[test]
    fn truncated_tree_matches_truncated_scan() {
        // the kd-tree returns exact neighbors, so the two retrieval paths
        // must agree bit-for-bit
        let (train, test) = data();
        let scan = KnnShapley::new(&train, &test)
            .k(2)
            .method(Method::Truncated { eps: 0.15 })
            .run()
            .unwrap();
        let tree = KnnShapley::new(&train, &test)
            .k(2)
            .method(Method::TruncatedTree { eps: 0.15 })
            .run()
            .unwrap();
        assert!(scan.max_abs_diff(&tree) < 1e-12);
    }

    #[test]
    fn lsh_runs_and_is_bounded() {
        let (train, test) = data();
        let exact = KnnShapley::new(&train, &test).k(1).run().unwrap();
        let approx = KnnShapley::new(&train, &test)
            .k(1)
            .method(Method::Lsh {
                eps: 0.15,
                delta: 0.1,
                max_tables: 32,
            })
            .run()
            .unwrap();
        // allow the δ failure slack
        assert!(exact.max_abs_diff(&approx) <= 0.3);
    }

    #[test]
    fn mc_methods_run() {
        let (train, test) = data();
        let a = KnnShapley::new(&train, &test)
            .k(2)
            .method(Method::McBaseline {
                rule: StoppingRule::Fixed(30),
                seed: 1,
            })
            .run()
            .unwrap();
        let b = KnnShapley::new(&train, &test)
            .k(2)
            .method(Method::McImproved {
                rule: StoppingRule::Fixed(200),
                seed: 1,
            })
            .run()
            .unwrap();
        assert_eq!(a.len(), 120);
        assert_eq!(b.len(), 120);
    }

    #[test]
    fn run_report_exposes_mc_permutations_and_is_thread_count_free() {
        let (train, test) = data();
        let report = |threads: usize| {
            KnnShapley::new(&train, &test)
                .k(2)
                .threads(threads)
                .method(Method::McImproved {
                    rule: StoppingRule::Fixed(120),
                    seed: 3,
                })
                .run_report()
                .unwrap()
        };
        let serial = report(1);
        assert_eq!(serial.permutations, Some(120));
        for threads in [2usize, 8] {
            let par = report(threads);
            assert_eq!(par.permutations, Some(120));
            for i in 0..train.len() {
                assert_eq!(
                    serial.values.get(i).to_bits(),
                    par.values.get(i).to_bits(),
                    "i={i} threads={threads}"
                );
            }
        }
        let exact = KnnShapley::new(&train, &test).run_report().unwrap();
        assert_eq!(exact.permutations, None);
    }

    #[test]
    fn weighted_exact_dispatches() {
        let (train, test) = data();
        let small_train = train.gather(&(0..40).collect::<Vec<_>>());
        let sv = KnnShapley::new(&small_train, &test)
            .k(2)
            .weight(WeightFn::InverseDistance { eps: 1e-3 })
            .run()
            .unwrap();
        assert_eq!(sv.len(), 40);
    }

    #[test]
    fn weighted_rejected_for_retrieval_methods() {
        let (train, test) = data();
        let err = KnnShapley::new(&train, &test)
            .weight(WeightFn::InverseDistance { eps: 1e-3 })
            .method(Method::Truncated { eps: 0.1 })
            .run()
            .unwrap_err();
        assert_eq!(err, PipelineError::WeightedUnsupported("Truncated"));
    }

    #[test]
    fn validation_errors() {
        let (train, test) = data();
        let empty = ClassDataset::new(Features::new(vec![], 6), vec![], 3);
        assert_eq!(
            KnnShapley::new(&train, &empty).run().unwrap_err(),
            PipelineError::EmptyTestSet
        );
        assert_eq!(
            KnnShapley::new(&empty, &test).run().unwrap_err(),
            PipelineError::EmptyTrainSet
        );
        let wrong_dim = ClassDataset::new(Features::new(vec![0.0; 4], 2), vec![0, 1], 3);
        assert_eq!(
            KnnShapley::new(&train, &wrong_dim).run().unwrap_err(),
            PipelineError::DimensionMismatch
        );
    }

    #[test]
    fn non_finite_features_are_rejected_not_panicked() {
        let (train, test) = data();
        let mut poisoned_test = test.clone();
        poisoned_test.x.row_mut(3)[2] = f32::NAN;
        assert_eq!(
            KnnShapley::new(&train, &poisoned_test).run().unwrap_err(),
            PipelineError::NonFiniteFeature {
                which: "test",
                row: 3
            }
        );
        let mut poisoned_train = train.clone();
        poisoned_train.x.row_mut(7)[0] = f32::INFINITY;
        assert_eq!(
            KnnShapley::new(&poisoned_train, &test).run().unwrap_err(),
            PipelineError::NonFiniteFeature {
                which: "train",
                row: 7
            }
        );
    }

    #[test]
    fn graph_backed_run_is_bitwise_identical_and_validated() {
        let (train, test) = data();
        let graph = KnnGraph::build(&train.x, &test.x, 2);
        for method in [
            Method::Exact,
            Method::Truncated { eps: 0.1 },
            Method::McImproved {
                rule: StoppingRule::Fixed(60),
                seed: 9,
            },
        ] {
            let brute = KnnShapley::new(&train, &test)
                .k(2)
                .method(method)
                .run()
                .unwrap();
            let via_graph = KnnShapley::new(&train, &test)
                .k(2)
                .method(method)
                .graph(&graph)
                .run()
                .unwrap();
            for i in 0..train.len() {
                assert_eq!(
                    brute.get(i).to_bits(),
                    via_graph.get(i).to_bits(),
                    "i={i} method={method:?}"
                );
            }
        }
        // retrieval methods refuse the graph rather than silently ignoring it
        let err = KnnShapley::new(&train, &test)
            .method(Method::Lsh {
                eps: 0.15,
                delta: 0.1,
                max_tables: 8,
            })
            .graph(&graph)
            .run()
            .unwrap_err();
        assert_eq!(err, PipelineError::GraphUnsupported("Lsh"));
        // a graph built from different data is refused before any valuation
        let mut other = train.clone();
        other.x.row_mut(0)[0] += 1.0;
        let stale = KnnGraph::build(&other.x, &test.x, 2);
        let err = KnnShapley::new(&train, &test)
            .graph(&stale)
            .run()
            .unwrap_err();
        assert!(matches!(err, PipelineError::GraphMismatch(_)));
    }

    #[test]
    fn curator_path() {
        let (train, test) = data();
        let own = Ownership::round_robin(train.len(), 10);
        let sv = KnnShapley::new(&train, &test)
            .k(2)
            .run_curator(&own, GameForm::DataOnly)
            .unwrap();
        assert_eq!(sv.len(), 10);
    }

    mod regression {
        use super::*;
        use knnshap_datasets::synth::regression::{self, RegressionConfig};

        fn reg_data() -> (RegDataset, RegDataset) {
            let cfg = RegressionConfig {
                n: 80,
                ..Default::default()
            };
            (regression::generate(&cfg), regression::queries(&cfg, 6))
        }

        #[test]
        fn exact_unweighted_runs_and_distributes_utility() {
            let (train, test) = reg_data();
            let sv = RegShapley::new(&train, &test).k(3).run().unwrap();
            assert_eq!(sv.len(), 80);
            let u = crate::utility::KnnRegUtility::unweighted(&train, &test, 3);
            use crate::utility::Utility;
            assert!((sv.total() - u.grand()).abs() < 1e-9);
        }

        #[test]
        fn weighted_exact_dispatches() {
            let (train, test) = reg_data();
            let small = train.gather(&(0..30).collect::<Vec<_>>());
            let sv = RegShapley::new(&small, &test)
                .k(2)
                .weight(WeightFn::Exponential { beta: 0.5 })
                .run()
                .unwrap();
            assert_eq!(sv.len(), 30);
        }

        #[test]
        fn mc_improved_tracks_exact() {
            let (train, test) = reg_data();
            let exact = RegShapley::new(&train, &test).k(2).run().unwrap();
            let mc = RegShapley::new(&train, &test)
                .k(2)
                .method(RegMethod::McImproved {
                    rule: StoppingRule::Fixed(4000),
                    seed: 3,
                })
                .run()
                .unwrap();
            // statistical agreement: generous but non-vacuous envelope
            let spread = exact
                .as_slice()
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
                .max(1e-9);
            assert!(exact.max_abs_diff(&mc) < 0.5 * spread + 0.05);
        }

        #[test]
        fn mc_baseline_runs() {
            let (train, test) = reg_data();
            let sv = RegShapley::new(&train, &test)
                .method(RegMethod::McBaseline {
                    rule: StoppingRule::Fixed(20),
                    seed: 5,
                })
                .run()
                .unwrap();
            assert_eq!(sv.len(), 80);
        }

        #[test]
        fn validation_errors() {
            let (train, test) = reg_data();
            let empty = RegDataset::new(Features::new(vec![], train.dim()), vec![]);
            assert_eq!(
                RegShapley::new(&train, &empty).run().unwrap_err(),
                PipelineError::EmptyTestSet
            );
            assert_eq!(
                RegShapley::new(&empty, &test).run().unwrap_err(),
                PipelineError::EmptyTrainSet
            );
        }
    }
}
