//! Sharded valuation runtime: per-shard partial sums with a deterministic,
//! bitwise-reproducible merge.
//!
//! The paper targets valuation over data sets "containing millions of data
//! points"; past a single machine, the job has to split. Two decompositions
//! make that split exact rather than approximate:
//!
//! * **By test point** — Theorem 1 (and Theorems 2/6/7) express the
//!   multi-test Shapley vector as the *mean of independent per-test-point
//!   games* (the additivity axiom applied to utility eq. 8). Any contiguous
//!   range of test points is therefore a self-contained unit of work.
//! * **By permutation stream** — the Monte Carlo family (§2.2, Algorithm 2)
//!   is an average over i.i.d. permutations, and since PR 3 permutation `t`
//!   draws from counter-based RNG stream `t`
//!   ([`knnshap_numerics::sampling::RngStreams`]), a pure function of
//!   `(seed, t)`. Any contiguous range of stream indices is likewise
//!   self-contained. (The group-testing baseline shards the same way over
//!   its coalition-test streams.)
//!
//! A *shard* runs one such range and produces a [`ShardPartial`]: unscaled
//! per-training-point partial sums held in **exact accumulators**
//! ([`knnshap_numerics::exact::ExactVec`]), plus a self-describing
//! [`ShardMeta`] header. [`merge_partials`] validates that the shards belong
//! to the same job (version, kind, fingerprint, sizes), that their ranges
//! tile the item space exactly, folds them in fixed shard order, and applies
//! the job's finalization (the mean scaling, or the group-testing recovery).
//!
//! ### Determinism contract
//!
//! The merged Shapley vector is **bitwise-identical to the unsharded run at
//! every shard count and every thread count**. This rests on two facts:
//!
//! 1. each per-item contribution (a per-test-point Shapley vector, or a
//!    per-permutation marginal vector) is already a pure function of the job
//!    inputs — never of threads or shards (PR 2/3 contracts);
//! 2. the cross-item summation is *exact* ([`ExactVec`]): an error-free
//!    fixed-point accumulation whose merge is mathematically associative and
//!    commutative, rounded to `f64` exactly once, at finalization.
//!
//! Because of (2) the reduction tree simply does not matter: 1, 2 or 7
//! shards — or the unsharded estimator, which since this PR routes through
//! the same accumulators — deposit the same multiset of summands and round
//! once. `tests/shard_determinism.rs` holds the whole runtime to this, and
//! `docs/sharding.md` is the operator's handbook (file format, CLI
//! workflow, failure modes).
//!
//! ```
//! use knnshap_core::exact_unweighted::{knn_class_shapley_shard, knn_class_shapley_with_threads};
//! use knnshap_core::sharding::{merge_partials, ShardSpec};
//! use knnshap_datasets::synth::blobs::{self, BlobConfig};
//!
//! let cfg = BlobConfig { n: 80, dim: 4, n_classes: 2, ..Default::default() };
//! let train = blobs::generate(&cfg);
//! let test = blobs::queries(&cfg, 9, 3);
//!
//! // Three shards, computed independently (here in-process; in production
//! // each runs in its own process via `knnshap shard` and lands on disk).
//! let parts: Vec<_> = (0..3)
//!     .map(|i| knn_class_shapley_shard(&train, &test, 2, ShardSpec::new(i, 3), 1))
//!     .collect();
//! let merged = merge_partials(&parts).unwrap();
//!
//! // Bitwise-identical to the unsharded estimator, not merely close.
//! let whole = knn_class_shapley_with_threads(&train, &test, 2, 1);
//! for i in 0..train.len() {
//!     assert_eq!(merged.values.get(i).to_bits(), whole.get(i).to_bits());
//! }
//! ```

use crate::types::ShapleyValues;
use knnshap_datasets::{ClassDataset, RegDataset};
use knnshap_knn::weights::WeightFn;
use knnshap_numerics::exact::ExactVec;

/// On-disk format version written/required by
/// [`ShardPartial::to_bytes`]/[`from_bytes`](ShardPartial::from_bytes).
pub const SHARD_FORMAT_VERSION: u32 = 1;

/// Magic prefix of every shard file.
pub const SHARD_MAGIC: [u8; 8] = *b"KNNSHARD";

/// Sanity cap on header-declared array lengths, so a corrupt header cannot
/// request absurd allocations before payload validation.
const MAX_EXTRAS: u32 = 64;

/// Which estimator family produced a shard — determines the finalization
/// applied at merge time and guards against mixing incompatible partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKind {
    /// Exact per-test decomposition, classification (Theorems 1/7).
    ExactClass,
    /// Exact per-test decomposition, regression (Theorems 6/7).
    ExactReg,
    /// Truncated (ε, 0) per-test decomposition (Theorem 2).
    Truncated,
    /// Baseline Monte Carlo over permutation streams (§2.2).
    McBaseline,
    /// Improved Monte Carlo (Algorithm 2) over permutation streams.
    McImproved,
    /// Group-testing baseline ([JDW+19]) over coalition-test streams.
    GroupTesting,
}

impl ShardKind {
    fn code(self) -> u8 {
        match self {
            ShardKind::ExactClass => 0,
            ShardKind::ExactReg => 1,
            ShardKind::Truncated => 2,
            ShardKind::McBaseline => 3,
            ShardKind::McImproved => 4,
            ShardKind::GroupTesting => 5,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => ShardKind::ExactClass,
            1 => ShardKind::ExactReg,
            2 => ShardKind::Truncated,
            3 => ShardKind::McBaseline,
            4 => ShardKind::McImproved,
            5 => ShardKind::GroupTesting,
            _ => return None,
        })
    }

    /// Human-readable name used by reports and error messages.
    pub fn name(self) -> &'static str {
        match self {
            ShardKind::ExactClass => "exact-class",
            ShardKind::ExactReg => "exact-reg",
            ShardKind::Truncated => "truncated",
            ShardKind::McBaseline => "mc-baseline",
            ShardKind::McImproved => "mc-improved",
            ShardKind::GroupTesting => "group-testing",
        }
    }
}

/// Which slice of a job a worker should run: shard `index` of `count`.
///
/// The induced item range ([`range`](Self::range)) is the canonical balanced
/// contiguous partition — a pure function of `(total, index, count)`, so
/// every process that agrees on the job agrees on the split without
/// coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// Shard `index` of `count`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `index >= count`.
    pub fn new(index: usize, count: usize) -> Self {
        assert!(count >= 1, "shard count must be at least 1");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        Self { index, count }
    }

    /// The whole job as a single shard.
    pub fn full() -> Self {
        Self { index: 0, count: 1 }
    }

    pub fn index(&self) -> usize {
        self.index
    }

    pub fn count(&self) -> usize {
        self.count
    }

    /// The canonical item range of this shard: `⌊index·total/count⌋ ..
    /// ⌊(index+1)·total/count⌋`. Ranges of consecutive indices tile
    /// `0..total` exactly; when `count > total` trailing shards are empty
    /// (and merge as no-ops).
    ///
    /// ```
    /// use knnshap_core::sharding::ShardSpec;
    /// let ranges: Vec<_> = (0..3).map(|i| ShardSpec::new(i, 3).range(10)).collect();
    /// assert_eq!(ranges, vec![0..3, 3..6, 6..10]);
    /// ```
    pub fn range(&self, total: usize) -> std::ops::Range<usize> {
        let cut = |i: usize| (i as u128 * total as u128 / self.count as u128) as usize;
        cut(self.index)..cut(self.index + 1)
    }
}

/// Self-describing identity of a shard: enough for [`merge_partials`] to
/// verify that a set of partials belongs to one job and covers it exactly,
/// without access to the datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeta {
    /// Estimator family (selects the finalization at merge time).
    pub kind: ShardKind,
    /// Job fingerprint: a hash of the datasets and every parameter that
    /// changes the per-item contributions (K, seed, ε, weights…). Two shard
    /// files merge only if their fingerprints agree bit for bit.
    pub fingerprint: u64,
    /// Number of training points (= length of the partial-sum vector).
    pub n_train: u64,
    /// Total items in the job: test points for the exact decompositions,
    /// permutation/test streams for the stochastic ones.
    pub total_items: u64,
    /// First item (inclusive) this shard covered.
    pub item_lo: u64,
    /// One past the last item this shard covered.
    pub item_hi: u64,
    /// Kind-specific finalization constants, bitwise-checked equal across
    /// shards (group testing stores `[ν(I)]`; the mean families store none).
    pub extras: Vec<f64>,
}

/// One shard's output: identity plus unscaled exact partial sums.
#[derive(Debug, Clone)]
pub struct ShardPartial {
    pub meta: ShardMeta,
    /// Per-training-point partial sums over the shard's item range.
    pub sums: ExactVec,
    /// Kind-specific scalar accumulators (group testing's shared term);
    /// empty for the other kinds.
    pub aux: ExactVec,
}

/// A merged, finalized valuation.
#[derive(Debug, Clone)]
pub struct MergedValuation {
    pub values: ShapleyValues,
    /// Items the job consumed (permutations for the MC kinds, test points
    /// for the exact kinds) — what the CLI reports.
    pub items: u64,
}

/// Everything that can go wrong assembling shards back into a valuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The byte stream does not start with [`SHARD_MAGIC`].
    BadMagic,
    /// The file's format version is not [`SHARD_FORMAT_VERSION`].
    UnsupportedVersion { found: u32 },
    /// Structurally invalid bytes (truncation, bad ranges, trailing data…).
    Malformed(String),
    /// Shards describe different jobs (kind/fingerprint/size mismatch).
    Incompatible(String),
    /// Shard ranges do not tile the job's item space exactly.
    Coverage(String),
    /// No shards supplied.
    Empty,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::BadMagic => write!(f, "not a knnshap shard file (bad magic)"),
            ShardError::UnsupportedVersion { found } => write!(
                f,
                "shard format version {found} is not supported (this build reads \
                 version {SHARD_FORMAT_VERSION})"
            ),
            ShardError::Malformed(m) => write!(f, "malformed shard file: {m}"),
            ShardError::Incompatible(m) => write!(f, "incompatible shards: {m}"),
            ShardError::Coverage(m) => write!(f, "shard coverage error: {m}"),
            ShardError::Empty => write!(f, "no shards to merge"),
        }
    }
}

impl std::error::Error for ShardError {}

impl ShardPartial {
    /// Assemble a partial for the per-item-mean families (no extras, no
    /// aux) — the one construction every `*_shard` entry point shares.
    pub(crate) fn new(
        kind: ShardKind,
        fingerprint: u64,
        n_train: usize,
        total_items: usize,
        range: std::ops::Range<usize>,
        sums: ExactVec,
    ) -> Self {
        ShardPartial {
            meta: ShardMeta {
                kind,
                fingerprint,
                n_train: n_train as u64,
                total_items: total_items as u64,
                item_lo: range.start as u64,
                item_hi: range.end as u64,
                extras: vec![],
            },
            sums,
            aux: ExactVec::zeros(0),
        }
    }

    /// Serialize to the versioned on-disk format (fully specified in
    /// `docs/sharding.md`; all integers and float bit patterns
    /// little-endian). The payload is canonical: equal exact partial sums
    /// produce identical bytes, whatever thread count computed them.
    pub fn to_bytes(&self) -> Vec<u8> {
        let m = &self.meta;
        debug_assert_eq!(self.sums.len() as u64, m.n_train);
        let mut out = Vec::with_capacity(64 + self.sums.len() * 12);
        out.extend_from_slice(&SHARD_MAGIC);
        out.extend_from_slice(&SHARD_FORMAT_VERSION.to_le_bytes());
        out.push(m.kind.code());
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&m.fingerprint.to_le_bytes());
        out.extend_from_slice(&m.n_train.to_le_bytes());
        out.extend_from_slice(&m.total_items.to_le_bytes());
        out.extend_from_slice(&m.item_lo.to_le_bytes());
        out.extend_from_slice(&m.item_hi.to_le_bytes());
        out.extend_from_slice(&(m.extras.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.aux.len() as u32).to_le_bytes());
        for &x in &m.extras {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        self.sums.encode_into(&mut out);
        self.aux.encode_into(&mut out);
        out
    }

    /// Parse a shard file, validating magic, version, and structure.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ShardError> {
        let header = |pos: usize, n: usize| -> Result<&[u8], ShardError> {
            buf.get(pos..pos + n)
                .ok_or_else(|| ShardError::Malformed("header truncated".into()))
        };
        if buf.len() < 8 || buf[..8] != SHARD_MAGIC {
            return Err(ShardError::BadMagic);
        }
        let version = u32::from_le_bytes(header(8, 4)?.try_into().expect("4 bytes"));
        if version != SHARD_FORMAT_VERSION {
            return Err(ShardError::UnsupportedVersion { found: version });
        }
        let kind = ShardKind::from_code(header(12, 1)?[0])
            .ok_or_else(|| ShardError::Malformed("unknown estimator kind".into()))?;
        let u64_at = |pos: usize| -> Result<u64, ShardError> {
            Ok(u64::from_le_bytes(header(pos, 8)?.try_into().expect("8")))
        };
        let fingerprint = u64_at(16)?;
        let n_train = u64_at(24)?;
        let total_items = u64_at(32)?;
        let item_lo = u64_at(40)?;
        let item_hi = u64_at(48)?;
        let extras_len = u32::from_le_bytes(header(56, 4)?.try_into().expect("4"));
        let aux_len = u32::from_le_bytes(header(60, 4)?.try_into().expect("4"));
        if item_lo > item_hi || item_hi > total_items {
            return Err(ShardError::Malformed(format!(
                "item range {item_lo}..{item_hi} outside 0..{total_items}"
            )));
        }
        if extras_len > MAX_EXTRAS || aux_len > MAX_EXTRAS {
            return Err(ShardError::Malformed("implausible header lengths".into()));
        }
        let n = usize::try_from(n_train)
            .map_err(|_| ShardError::Malformed("n_train exceeds this platform".into()))?;
        // Every accumulator record is at least 5 bytes, so a header that
        // declares more records than the remaining payload could possibly
        // hold is corrupt — reject it before allocating anything.
        if n > buf.len().saturating_sub(64) / 5 {
            return Err(ShardError::Malformed(format!(
                "header declares {n} training points but only {} payload bytes follow",
                buf.len().saturating_sub(64)
            )));
        }
        let mut pos = 64;
        let mut extras = Vec::with_capacity(extras_len as usize);
        for _ in 0..extras_len {
            extras.push(f64::from_bits(u64_at(pos)?));
            pos += 8;
        }
        let sums = ExactVec::decode_from(buf, &mut pos, n)
            .map_err(|e| ShardError::Malformed(e.to_string()))?;
        let aux = ExactVec::decode_from(buf, &mut pos, aux_len as usize)
            .map_err(|e| ShardError::Malformed(e.to_string()))?;
        if pos != buf.len() {
            return Err(ShardError::Malformed(format!(
                "{} trailing bytes after payload",
                buf.len() - pos
            )));
        }
        Ok(ShardPartial {
            meta: ShardMeta {
                kind,
                fingerprint,
                n_train,
                total_items,
                item_lo,
                item_hi,
                extras,
            },
            sums,
            aux,
        })
    }

    /// Fold the **adjacent** partial `next` into this one, extending the
    /// covered item range to `self.item_lo .. next.item_hi` — the
    /// incremental form of [`merge_partials`] used by the job-orchestration
    /// runtime's checkpointing workers (`knnshap_runtime`): a shard's range
    /// is computed chunk by chunk, each finished chunk absorbed and the
    /// accumulated partial checkpointed, so a killed worker resumes from the
    /// last checkpoint instead of restarting the shard.
    ///
    /// Validates the same job-identity invariants as [`merge_partials`]
    /// (kind, fingerprint, sizes, finalization constants) plus exact
    /// adjacency (`next.item_lo == self.item_hi`). Because the accumulators
    /// are exact, absorbing chunks one at a time leaves state — and
    /// serialized bytes — bitwise-identical to computing the whole range in
    /// one call.
    pub fn absorb_adjacent(&mut self, next: &ShardPartial) -> Result<(), ShardError> {
        let (a, b) = (&self.meta, &next.meta);
        if a.kind != b.kind {
            return Err(ShardError::Incompatible(format!(
                "kind {} vs {}",
                b.kind.name(),
                a.kind.name()
            )));
        }
        if a.fingerprint != b.fingerprint {
            return Err(ShardError::Incompatible(format!(
                "job fingerprint {:016x} vs {:016x}",
                b.fingerprint, a.fingerprint
            )));
        }
        if a.n_train != b.n_train || a.total_items != b.total_items {
            return Err(ShardError::Incompatible(format!(
                "sizes differ: {} train / {} items vs {} train / {} items",
                b.n_train, b.total_items, a.n_train, a.total_items
            )));
        }
        if a.extras.len() != b.extras.len()
            || a.extras
                .iter()
                .zip(&b.extras)
                .any(|(x, y)| x.to_bits() != y.to_bits())
        {
            return Err(ShardError::Incompatible(
                "finalization constants differ between chunks".into(),
            ));
        }
        if next.sums.len() as u64 != b.n_train || next.aux.len() != self.aux.len() {
            return Err(ShardError::Incompatible(
                "payload lengths disagree with headers".into(),
            ));
        }
        if b.item_lo != a.item_hi {
            return Err(ShardError::Coverage(format!(
                "chunk {}..{} is not adjacent to accumulated {}..{}",
                b.item_lo, b.item_hi, a.item_lo, a.item_hi
            )));
        }
        self.sums.merge(&next.sums);
        self.aux.merge(&next.aux);
        self.meta.item_hi = next.meta.item_hi;
        Ok(())
    }
}

/// The one finalization of every per-item-mean family (exact, truncated,
/// Monte Carlo): round each exact partial sum once, then divide by the item
/// count. Both the unsharded estimators and [`merge_partials`] call this, so
/// the two paths cannot drift.
pub(crate) fn finalize_mean(sums: &ExactVec, total_items: u64) -> ShapleyValues {
    let d = (total_items.max(1)) as f64;
    ShapleyValues::new((0..sums.len()).map(|i| sums.value(i) / d).collect())
}

/// Block-granularity cap for the exact folds: enough scheduling units for
/// the pool to balance skewed per-item costs, few enough that block setup
/// is invisible. The actual block count also scales with the thread count
/// (see [`exact_block_fold`]): every block pays O(`n_train`) accumulator
/// setup, so a serial fold uses one block and a parallel one a few blocks
/// per worker — never more than this cap.
const FOLD_BLOCKS: usize = 32;

/// Scheduling units per worker below the [`FOLD_BLOCKS`] cap — enough slack
/// to rebalance skewed items without multiplying accumulator setup.
const FOLD_BLOCKS_PER_THREAD: usize = 4;

/// The one parallel fold shape behind every exact accumulation in the
/// workspace: tile `count` items into a fixed block partition, give each
/// block a fresh accumulator from `make`, `step` it over the block's items
/// in order, and hand the finished accumulator to `fold` — which merges it
/// into a shared total and **drops it immediately**, so live accumulators
/// are bounded by the worker count rather than the block count (exact
/// accumulators cost ~0.5 KiB per training point; 32 simultaneous partials
/// of a million-point job would be ~18 GiB, while this shape stays at
/// `threads + 1` partials).
///
/// ### Determinism contract
///
/// `fold` runs in scheduling order, which varies — that is sound *only*
/// because the accumulators merged here are exact ([`ExactVec`] /
/// [`knnshap_numerics::exact::ExactSum`]), whose merge is error-free and
/// therefore order-invariant. Never route rounded (f64/Neumaier) partials
/// through this helper.
pub(crate) fn exact_block_fold<A, M, S, F>(count: usize, threads: usize, make: M, step: S, fold: F)
where
    A: Send,
    M: Fn() -> A + Sync,
    S: Fn(&mut A, usize) + Sync,
    F: Fn(A) + Sync,
{
    let block = static_fold_block(count, threads);
    exact_block_fold_sized(count, threads, block, make, step, fold);
}

/// The static (non-measured) block size of [`exact_block_fold`]: one block
/// per serial fold; a few per worker otherwise, capped at [`FOLD_BLOCKS`].
/// Bitwise-free choice — the accumulators are exact, so the partition (like
/// the fold order) cannot move a bit; it is picked purely for cost.
pub(crate) fn static_fold_block(count: usize, threads: usize) -> usize {
    let target = if threads <= 1 {
        1
    } else {
        FOLD_BLOCKS.min(threads.saturating_mul(FOLD_BLOCKS_PER_THREAD))
    };
    count.div_ceil(target).max(1)
}

/// [`exact_block_fold`] with a caller-chosen block size — the entry point of
/// the measured scheduler ([`crate::schedule`]), which picks `block` so one
/// block's compute amortizes the accumulator setup (`make`) and merge
/// (`fold`) it pays. The partition is still bitwise-free: exact accumulators
/// make every tiling of `0..count` deposit the same multiset of summands.
pub(crate) fn exact_block_fold_sized<A, M, S, F>(
    count: usize,
    threads: usize,
    block: usize,
    make: M,
    step: S,
    fold: F,
) where
    A: Send,
    M: Fn() -> A + Sync,
    S: Fn(&mut A, usize) + Sync,
    F: Fn(A) + Sync,
{
    if count == 0 {
        return;
    }
    let block = block.clamp(1, count);
    let blocks = count.div_ceil(block);
    knnshap_parallel::par_map(blocks, threads, |b| {
        let lo = b * block;
        let hi = ((b + 1) * block).min(count);
        let mut acc = make();
        for j in lo..hi {
            step(&mut acc, j);
        }
        fold(acc);
    });
}

/// [`exact_block_fold`] specialized to the per-item-mean families: fill a
/// per-training-point [`ExactVec`] from each item of `range` (absolute
/// indices), eagerly merged into one total.
pub(crate) fn exact_sums_over<F>(
    n_train: usize,
    range: std::ops::Range<usize>,
    threads: usize,
    fill: F,
) -> ExactVec
where
    F: Fn(usize, &mut ExactVec) + Sync,
{
    let total = std::sync::Mutex::new(ExactVec::zeros(n_train));
    exact_block_fold(
        range.len(),
        threads,
        || ExactVec::zeros(n_train),
        |acc, j| fill(range.start + j, acc),
        |acc| total.lock().expect("fold poisoned").merge(&acc),
    );
    total.into_inner().expect("fold poisoned")
}

/// [`exact_sums_over`] with a caller-chosen block size (see
/// [`exact_block_fold_sized`]) — same bits, scheduler-picked tiling.
pub(crate) fn exact_sums_over_sized<F>(
    n_train: usize,
    range: std::ops::Range<usize>,
    threads: usize,
    block: usize,
    fill: F,
) -> ExactVec
where
    F: Fn(usize, &mut ExactVec) + Sync,
{
    let total = std::sync::Mutex::new(ExactVec::zeros(n_train));
    exact_block_fold_sized(
        range.len(),
        threads,
        block,
        || ExactVec::zeros(n_train),
        |acc, j| fill(range.start + j, acc),
        |acc| total.lock().expect("fold poisoned").merge(&acc),
    );
    total.into_inner().expect("fold poisoned")
}

/// [`exact_sums_over`] for fills that touch (nearly) every training point
/// per item — the exact recursions do, one contribution per rank: `fill`
/// writes item `j`'s contributions into a zeroed dense `f64` scratch
/// (`scratch[i] = contribution of train point i`), and the fold deposits
/// the scratch with [`ExactVec::add_dense`].
///
/// Identical bits to the sink-per-contribution shape — the deposited
/// values are the same `f64`s and exact accumulation is order-invariant —
/// but the deposits walk the accumulator array *sequentially* instead of
/// in rank order, which is what makes per-mutation revaluation in the
/// serving engine (and the cold batch path it must match) cache-friendly:
/// the rank-ordered sink is a random walk over `n_train` heap-backed
/// accumulators, the dense pass a linear one.
pub(crate) fn exact_sums_over_dense<F>(
    n_train: usize,
    range: std::ops::Range<usize>,
    threads: usize,
    fill: F,
) -> ExactVec
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if threads <= 1 {
        // Serial fast path: deposit each item's scratch straight into the
        // total — no intermediate block accumulator, no final full-length
        // merge. Exactness makes the grouping invisible in the bits.
        let mut total = ExactVec::zeros(n_train);
        let mut scratch = vec![0.0f64; n_train];
        for j in range {
            scratch.fill(0.0);
            fill(j, &mut scratch);
            total.add_dense(&scratch);
        }
        return total;
    }
    let total = std::sync::Mutex::new(ExactVec::zeros(n_train));
    exact_block_fold(
        range.len(),
        threads,
        || (ExactVec::zeros(n_train), vec![0.0f64; n_train]),
        |(acc, scratch), j| {
            scratch.fill(0.0);
            fill(range.start + j, scratch);
            acc.add_dense(scratch);
        },
        |(acc, _)| total.lock().expect("fold poisoned").merge(&acc),
    );
    total.into_inner().expect("fold poisoned")
}

/// Merge shard partials into the job's final valuation.
///
/// Shards may arrive in any order; they are sorted into fixed shard order
/// (by `item_lo`) before folding — and because the partial sums are exact,
/// the fold order cannot change the result anyway. Validation rejects:
/// mixed jobs ([`ShardError::Incompatible`]: kind, fingerprint, sizes or
/// finalization constants differ), and ranges that overlap, leave gaps, or
/// don't span `0..total_items` ([`ShardError::Coverage`]).
///
/// ### Determinism contract
///
/// For any partition of the job into shards, the returned values are
/// bitwise-identical to the unsharded estimator's output (which accumulates
/// through the same [`ExactVec`] and finalizes with the same code path).
pub fn merge_partials(parts: &[ShardPartial]) -> Result<MergedValuation, ShardError> {
    let first = parts.first().ok_or(ShardError::Empty)?;
    let m0 = &first.meta;
    for p in parts {
        let m = &p.meta;
        if m.kind != m0.kind {
            return Err(ShardError::Incompatible(format!(
                "kind {} vs {}",
                m.kind.name(),
                m0.kind.name()
            )));
        }
        if m.fingerprint != m0.fingerprint {
            return Err(ShardError::Incompatible(format!(
                "job fingerprint {:016x} vs {:016x} (different datasets, seeds or \
                 parameters)",
                m.fingerprint, m0.fingerprint
            )));
        }
        if m.n_train != m0.n_train || m.total_items != m0.total_items {
            return Err(ShardError::Incompatible(format!(
                "sizes differ: {} train / {} items vs {} train / {} items",
                m.n_train, m.total_items, m0.n_train, m0.total_items
            )));
        }
        if m.extras.len() != m0.extras.len()
            || m.extras
                .iter()
                .zip(&m0.extras)
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return Err(ShardError::Incompatible(
                "finalization constants differ between shards".into(),
            ));
        }
        if p.sums.len() as u64 != m.n_train || p.aux.len() != first.aux.len() {
            return Err(ShardError::Incompatible(
                "payload lengths disagree with headers".into(),
            ));
        }
    }

    // Fixed shard order; verify the non-empty ranges tile 0..total exactly.
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by_key(|&i| (parts[i].meta.item_lo, parts[i].meta.item_hi));
    let mut expected = 0u64;
    for &i in &order {
        let m = &parts[i].meta;
        if m.item_lo == m.item_hi {
            continue; // empty shard (count > items): a validated no-op
        }
        match m.item_lo.cmp(&expected) {
            std::cmp::Ordering::Less => {
                return Err(ShardError::Coverage(format!(
                    "items {}..{} covered twice",
                    m.item_lo,
                    m.item_hi.min(expected)
                )))
            }
            std::cmp::Ordering::Greater => {
                return Err(ShardError::Coverage(format!(
                    "items {expected}..{} missing",
                    m.item_lo
                )))
            }
            std::cmp::Ordering::Equal => expected = m.item_hi,
        }
    }
    if expected != m0.total_items {
        return Err(ShardError::Coverage(format!(
            "items {expected}..{} missing",
            m0.total_items
        )));
    }

    // Fold in fixed shard order (exactness makes the order immaterial; fixing
    // it anyway keeps the procedure auditable).
    let mut sums = parts[order[0]].sums.clone();
    let mut aux = parts[order[0]].aux.clone();
    for &i in &order[1..] {
        sums.merge(&parts[i].sums);
        aux.merge(&parts[i].aux);
    }

    let values = match m0.kind {
        ShardKind::ExactClass
        | ShardKind::ExactReg
        | ShardKind::Truncated
        | ShardKind::McBaseline
        | ShardKind::McImproved => finalize_mean(&sums, m0.total_items),
        ShardKind::GroupTesting => {
            let grand = *m0.extras.first().ok_or_else(|| {
                ShardError::Incompatible("group-testing shards missing ν(I)".into())
            })?;
            if aux.len() != 1 {
                return Err(ShardError::Incompatible(
                    "group-testing shards need exactly one shared accumulator".into(),
                ));
            }
            crate::group_testing::recover_values(
                grand,
                m0.total_items as usize,
                sums.values(),
                aux.value(0),
            )
        }
    };
    Ok(MergedValuation {
        values,
        items: m0.total_items,
    })
}

// ---------------------------------------------------------------------------
// Job fingerprints
// ---------------------------------------------------------------------------

/// Order-sensitive 64-bit fingerprint builder, re-exported from
/// [`knnshap_numerics::fingerprint`] (it moved there so artifact formats
/// below `knnshap_core` — e.g. the `KNNGRAPH` neighbor graph in
/// `knnshap_knn::graph` — can stamp the same dataset-content fingerprints).
pub use knnshap_numerics::fingerprint::Fingerprint;

/// Content hash of a classification dataset (feature bits + labels).
pub fn hash_class_dataset(d: &ClassDataset) -> u64 {
    Fingerprint::new("class-dataset")
        .u64(d.dim() as u64)
        .f32s(d.x.as_slice())
        .u32s(&d.y)
        .finish()
}

/// Content hash of a regression dataset (feature bits + targets).
pub fn hash_reg_dataset(d: &RegDataset) -> u64 {
    Fingerprint::new("reg-dataset")
        .u64(d.dim() as u64)
        .f32s(d.x.as_slice())
        .f64s(&d.y)
        .finish()
}

/// Stable encoding of a weight function for fingerprinting.
pub(crate) fn weight_code(w: WeightFn) -> (u64, f64) {
    match w {
        WeightFn::Uniform => (0, 0.0),
        WeightFn::InverseDistance { eps } => (1, eps as f64),
        WeightFn::Exponential { beta } => (2, beta as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knnshap_datasets::synth::blobs::{self, BlobConfig};

    fn data() -> (ClassDataset, ClassDataset) {
        let cfg = BlobConfig {
            n: 50,
            dim: 4,
            n_classes: 2,
            cluster_std: 0.6,
            center_scale: 3.0,
            seed: 8,
        };
        (blobs::generate(&cfg), blobs::queries(&cfg, 11, 5))
    }

    fn parts(shards: usize) -> Vec<ShardPartial> {
        let (train, test) = data();
        (0..shards)
            .map(|i| {
                crate::exact_unweighted::knn_class_shapley_shard(
                    &train,
                    &test,
                    2,
                    ShardSpec::new(i, shards),
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn spec_ranges_tile_for_awkward_counts() {
        for total in [0usize, 1, 3, 10, 11, 97] {
            for count in [1usize, 2, 3, 7, 13] {
                let mut expected = 0;
                for i in 0..count {
                    let r = ShardSpec::new(i, count).range(total);
                    assert_eq!(r.start, expected, "total={total} count={count} i={i}");
                    assert!(r.end >= r.start);
                    expected = r.end;
                }
                assert_eq!(expected, total);
            }
        }
        assert_eq!(ShardSpec::full().range(42), 0..42);
        assert_eq!(ShardSpec::new(1, 3).index(), 1);
        assert_eq!(ShardSpec::new(1, 3).count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn spec_rejects_index_past_count() {
        ShardSpec::new(3, 3);
    }

    #[test]
    fn roundtrip_bytes_preserve_everything() {
        for p in parts(3) {
            let bytes = p.to_bytes();
            let back = ShardPartial::from_bytes(&bytes).unwrap();
            assert_eq!(back.meta, p.meta);
            assert_eq!(back.sums.values(), p.sums.values());
            // Canonical payload: re-serializing yields identical bytes.
            assert_eq!(back.to_bytes(), bytes);
        }
    }

    #[test]
    fn merge_accepts_any_input_order() {
        let mut ps = parts(4);
        let sorted = merge_partials(&ps).unwrap();
        ps.reverse();
        ps.swap(0, 2);
        let scrambled = merge_partials(&ps).unwrap();
        for i in 0..sorted.values.len() {
            assert_eq!(
                sorted.values.get(i).to_bits(),
                scrambled.values.get(i).to_bits()
            );
        }
        assert_eq!(sorted.items, 11);
    }

    #[test]
    fn merge_tolerates_empty_shards_from_oversharding() {
        // 13 shards of an 11-item job: two shards are empty ranges.
        let ps = parts(13);
        assert!(ps.iter().any(|p| p.meta.item_lo == p.meta.item_hi));
        let merged = merge_partials(&ps).unwrap();
        let whole = merge_partials(&parts(1)).unwrap();
        for i in 0..whole.values.len() {
            assert_eq!(
                merged.values.get(i).to_bits(),
                whole.values.get(i).to_bits()
            );
        }
    }

    #[test]
    fn merge_rejects_gap_overlap_and_mixed_jobs() {
        let ps = parts(3);
        // Gap: drop the middle shard.
        let err = merge_partials(&[ps[0].clone(), ps[2].clone()]).unwrap_err();
        assert!(matches!(err, ShardError::Coverage(_)), "{err}");
        // Overlap: duplicate a shard.
        let err = merge_partials(&[ps[0].clone(), ps[0].clone(), ps[1].clone(), ps[2].clone()])
            .unwrap_err();
        assert!(matches!(err, ShardError::Coverage(_)), "{err}");
        // Mixed jobs: different K ⇒ different fingerprint.
        let (train, test) = data();
        let other = crate::exact_unweighted::knn_class_shapley_shard(
            &train,
            &test,
            3,
            ShardSpec::new(0, 3),
            1,
        );
        let err = merge_partials(&[other, ps[1].clone(), ps[2].clone()]).unwrap_err();
        assert!(matches!(err, ShardError::Incompatible(_)), "{err}");
        // Nothing at all.
        assert_eq!(merge_partials(&[]).unwrap_err(), ShardError::Empty);
    }

    #[test]
    fn from_bytes_rejects_bad_magic_version_and_corruption() {
        let p = &parts(1)[0];
        let good = p.to_bytes();

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            ShardPartial::from_bytes(&bad).unwrap_err(),
            ShardError::BadMagic
        );

        let mut bad = good.clone();
        bad[8] = 99; // version field
        assert_eq!(
            ShardPartial::from_bytes(&bad).unwrap_err(),
            ShardError::UnsupportedVersion { found: 99 }
        );

        let mut bad = good.clone();
        bad[12] = 200; // kind code
        assert!(matches!(
            ShardPartial::from_bytes(&bad).unwrap_err(),
            ShardError::Malformed(_)
        ));

        // A header claiming an absurd n_train must be rejected before any
        // allocation happens (no capacity-overflow panic, no OOM).
        let mut bad = good.clone();
        bad[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ShardPartial::from_bytes(&bad).unwrap_err(),
            ShardError::Malformed(_)
        ));

        // Truncated payload and trailing garbage.
        assert!(matches!(
            ShardPartial::from_bytes(&good[..good.len() - 3]).unwrap_err(),
            ShardError::Malformed(_)
        ));
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            ShardPartial::from_bytes(&bad).unwrap_err(),
            ShardError::Malformed(_)
        ));
        assert!(matches!(
            ShardPartial::from_bytes(&good[..20]).unwrap_err(),
            ShardError::Malformed(_)
        ));
    }

    #[test]
    fn absorb_adjacent_chunks_reproduce_single_range_bytes() {
        // Computing a shard as many adjacent micro-chunks and absorbing them
        // one by one must leave byte-identical state to the one-shot
        // computation — the invariant the runtime's checkpoint/resume path
        // rests on.
        let fine = parts(6); // chunk boundaries refine the 2-shard partition
        let coarse = parts(2);
        for (s, coarse_part) in coarse.iter().enumerate() {
            let mut acc: Option<ShardPartial> = None;
            for chunk in fine.iter().skip(s * 3).take(3) {
                match &mut acc {
                    None => acc = Some(chunk.clone()),
                    Some(a) => a.absorb_adjacent(chunk).unwrap(),
                }
            }
            assert_eq!(acc.unwrap().to_bytes(), coarse_part.to_bytes(), "shard {s}");
        }
    }

    #[test]
    fn absorb_adjacent_rejects_gaps_and_mixed_jobs() {
        let ps = parts(3);
        // Non-adjacent (gap).
        let mut a = ps[0].clone();
        let err = a.absorb_adjacent(&ps[2]).unwrap_err();
        assert!(matches!(err, ShardError::Coverage(_)), "{err}");
        // Self-absorb = overlap, also non-adjacent.
        let mut a = ps[1].clone();
        let err = a.absorb_adjacent(&ps[1].clone()).unwrap_err();
        assert!(matches!(err, ShardError::Coverage(_)), "{err}");
        // Different job (different K ⇒ fingerprint).
        let (train, test) = data();
        let other = crate::exact_unweighted::knn_class_shapley_shard(
            &train,
            &test,
            3,
            ShardSpec::new(1, 3),
            1,
        );
        let mut a = ps[0].clone();
        let err = a.absorb_adjacent(&other).unwrap_err();
        assert!(matches!(err, ShardError::Incompatible(_)), "{err}");
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let a = Fingerprint::new("t").u64(1).u64(2).finish();
        let b = Fingerprint::new("t").u64(2).u64(1).finish();
        let c = Fingerprint::new("u").u64(1).u64(2).finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        let (train, _) = data();
        let mut train2 = train.clone();
        train2.y[0] ^= 1;
        assert_ne!(hash_class_dataset(&train), hash_class_dataset(&train2));
    }
}
