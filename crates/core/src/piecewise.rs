//! Appendix F: the *piecewise utility difference* generalization.
//!
//! All of the paper's exact algorithms exploit one structural property
//! (§4 "Comments on the Proof Techniques", eq. 29): for a pair of players
//! `(i, j)`, the utility difference decomposes over a small number of
//! coalition groups,
//!
//! ```text
//! ν(S∪{i}) − ν(S∪{j}) = Σ_{t=1}^{T} C_ij^{(t)} · 1[S ∈ S_t],
//! ```
//!
//! turning Lemma 1's exponential sum into a counting problem (eq. 31):
//!
//! ```text
//! s_i − s_j = 1/(N−1) Σ_t C_ij^{(t)} Σ_k |{S ∈ S_t : |S| = k}| / C(N−2, k)
//! ```
//!
//! This module makes that recipe executable: a game describes its piecewise
//! structure through [`PiecewiseDifference`] (the constants `C^{(t)}` and the
//! per-size group counts `|{S ∈ S_t, |S| = k}|`), and
//! [`shapley_from_piecewise`] assembles exact Shapley values in
//! `O(N·T·N_count)` where `N_count` is the cost of one counting query.
//!
//! The unweighted KNN classifier is provided as the canonical instance
//! (`T = 1`, eqs. 99–100): the group `S_1` is "coalitions with fewer than K
//! members ranked closer than `i`", whose size-k count is the hypergeometric
//! sum the paper collapses via the binomial identity. Its values match
//! Theorem 1's recursion bit-for-bit, which is exactly the claim of
//! Appendix F — and our test suite proves it.

use crate::types::ShapleyValues;
use knnshap_numerics::binom::LogFactorialTable;

/// A cooperative game exposing the piecewise structure of eq. (29) for
/// *adjacent* players under some fixed player ordering (the KNN games order
/// players by distance rank; adjacency is all the paper's recursions need).
pub trait PiecewiseDifference {
    /// Number of players.
    fn n(&self) -> usize;

    /// The piecewise terms for the adjacent pair `(rank, rank+1)`:
    /// each `(C^{(t)}, counts)` where `counts[k]` is
    /// `|{S ⊆ I\{i,j} : S ∈ S_t, |S| = k}|` for `k = 0..=N−2`.
    ///
    /// Counts may be returned in any compact form; they are consumed by
    /// [`shapley_from_piecewise`] weighted by `1/C(N−2, k)`.
    fn adjacent_terms(&self, rank: usize) -> Vec<PiecewiseTerm>;

    /// The value of the last-ranked player (the recursion base), `s_{α_N}`.
    fn base_value(&self) -> f64;

    /// Map a rank back to the player's external index (identity by default).
    fn player_of_rank(&self, rank: usize) -> usize {
        rank
    }
}

/// One `(C^{(t)}, S_t)` group of eq. (29).
#[derive(Debug, Clone)]
pub struct PiecewiseTerm {
    /// The constant `C_ij^{(t)}`.
    pub coefficient: f64,
    /// `counts[k] = |{S ∈ S_t : |S| = k}|` for `k = 0..=N−2`.
    pub counts_by_size: Vec<f64>,
}

/// Assemble exact Shapley values from a piecewise description (eq. 31).
pub fn shapley_from_piecewise<G: PiecewiseDifference>(game: &G) -> ShapleyValues {
    let n = game.n();
    assert!(n >= 1, "need at least one player");
    let mut out = ShapleyValues::zeros(n);
    if n == 1 {
        out.as_mut_slice()[game.player_of_rank(0)] = game.base_value();
        return out;
    }
    let lf = LogFactorialTable::new(n);
    // Precompute 1/C(N−2, k).
    let inv_binom: Vec<f64> = (0..=n - 2).map(|k| 1.0 / lf.binomial(n - 2, k)).collect();

    let mut s = game.base_value();
    out.as_mut_slice()[game.player_of_rank(n - 1)] = s;
    for rank in (0..n - 1).rev() {
        let mut diff = 0.0;
        for term in game.adjacent_terms(rank) {
            debug_assert!(term.counts_by_size.len() < n);
            let weighted: f64 = term
                .counts_by_size
                .iter()
                .zip(&inv_binom)
                .map(|(c, w)| c * w)
                .sum();
            diff += term.coefficient * weighted;
        }
        s += diff / (n - 1) as f64;
        out.as_mut_slice()[game.player_of_rank(rank)] = s;
    }
    out
}

/// The unweighted KNN classification game in piecewise form (eqs. 99–100):
/// one group per adjacent pair with coefficient
/// `(1[y_i = y] − 1[y_{i+1} = y])/K` and counts
/// `|{S : |S ∩ closer(i)| < K, |S| = k}| = Σ_{m<K} C(i−1, m)·C(N−i−1, k−m)`.
pub struct KnnClassPiecewise {
    /// 1 if the rank-r point's label matches the test label.
    correct: Vec<bool>,
    /// External index of each rank.
    rank_to_index: Vec<usize>,
    k: usize,
    lf: LogFactorialTable,
}

impl KnnClassPiecewise {
    /// Build from a distance-sorted view: `correct[r]` and
    /// `rank_to_index[r]` describe the rank-`r` nearest point.
    pub fn new(correct: Vec<bool>, rank_to_index: Vec<usize>, k: usize) -> Self {
        assert_eq!(correct.len(), rank_to_index.len());
        assert!(k >= 1, "K must be at least 1");
        let n = correct.len();
        Self {
            correct,
            rank_to_index,
            k,
            lf: LogFactorialTable::new(n.max(2)),
        }
    }
}

impl PiecewiseDifference for KnnClassPiecewise {
    fn n(&self) -> usize {
        self.correct.len()
    }

    fn adjacent_terms(&self, rank: usize) -> Vec<PiecewiseTerm> {
        let n = self.n();
        let coefficient =
            (f64::from(self.correct[rank]) - f64::from(self.correct[rank + 1])) / self.k as f64;
        if coefficient == 0.0 {
            return Vec::new();
        }
        // counts[k] = Σ_{m=0}^{min(K−1, k)} C(i−1, m)·C(N−i−1, k−m),
        // with i the 1-based rank of the nearer element.
        let i1 = rank + 1;
        let closer = i1 - 1; // points ranked strictly closer than i
        let farther = n - i1 - 1; // points ranked beyond i+1
        let mut counts = vec![0.0f64; n - 1];
        for (kk, slot) in counts.iter_mut().enumerate() {
            let mut acc = 0.0;
            for m in 0..=kk.min(self.k - 1) {
                if m > closer || kk - m > farther {
                    continue;
                }
                acc +=
                    (self.lf.ln_binomial(closer, m) + self.lf.ln_binomial(farther, kk - m)).exp();
            }
            *slot = acc;
        }
        vec![PiecewiseTerm {
            coefficient,
            counts_by_size: counts,
        }]
    }

    fn base_value(&self) -> f64 {
        let n = self.n();
        // Same generalized base as Theorem 1 (see exact_unweighted.rs).
        f64::from(self.correct[n - 1]) * self.k.min(n) as f64 / (n as f64 * self.k as f64)
    }

    fn player_of_rank(&self, rank: usize) -> usize {
        self.rank_to_index[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_unweighted::knn_class_shapley_single;
    use knnshap_datasets::{ClassDataset, Features};
    use knnshap_knn::distance::Metric;
    use knnshap_knn::neighbors::argsort_by_distance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn piecewise_of(train: &ClassDataset, query: &[f32], label: u32, k: usize) -> ShapleyValues {
        let ranked = argsort_by_distance(&train.x, query, Metric::SquaredL2);
        let correct: Vec<bool> = ranked
            .iter()
            .map(|r| train.y[r.index as usize] == label)
            .collect();
        let idx: Vec<usize> = ranked.iter().map(|r| r.index as usize).collect();
        shapley_from_piecewise(&KnnClassPiecewise::new(correct, idx, k))
    }

    #[test]
    fn matches_theorem1_on_random_instances() {
        // Appendix F's claim: the generic counting solver reproduces the
        // specialized Theorem 1 recursion exactly.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = rng.gen_range(2..30);
            let feats: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
            let train = ClassDataset::new(Features::new(feats, 2), labels, 3);
            let q = [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
            let label = rng.gen_range(0..3);
            for k in [1usize, 2, 5, n, n + 3] {
                let a = piecewise_of(&train, &q, label, k);
                let b = knn_class_shapley_single(&train, &q, label, k);
                assert!(
                    a.max_abs_diff(&b) < 1e-9,
                    "n={n} k={k}: err={}",
                    a.max_abs_diff(&b)
                );
            }
        }
    }

    #[test]
    fn zero_coefficient_pairs_emit_no_terms() {
        let g = KnnClassPiecewise::new(vec![true, true, false], vec![0, 1, 2], 1);
        assert!(g.adjacent_terms(0).is_empty()); // same label => no group
        assert_eq!(g.adjacent_terms(1).len(), 1);
    }

    #[test]
    fn counting_identity_matches_closed_form() {
        // The paper collapses the counts via
        // Σ_k (1/C(N−2,k)) Σ_m C(i−1,m)C(N−i−1,k−m) = min(K,i)(N−1)/i (eq. 13).
        let n = 12;
        let k = 3;
        let lf = LogFactorialTable::new(n);
        for i1 in 1..n {
            let g = KnnClassPiecewise::new(
                (0..n).map(|r| r == i1 - 1).collect(), // only rank i correct
                (0..n).collect(),
                k,
            );
            let terms = g.adjacent_terms(i1 - 1);
            assert_eq!(terms.len(), 1);
            let lhs: f64 = terms[0]
                .counts_by_size
                .iter()
                .enumerate()
                .map(|(kk, c)| c / lf.binomial(n - 2, kk))
                .sum();
            let rhs = (k.min(i1) * (n - 1)) as f64 / i1 as f64;
            assert!((lhs - rhs).abs() < 1e-9, "i={i1}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn single_player_base() {
        let g = KnnClassPiecewise::new(vec![true], vec![0], 4);
        let sv = shapley_from_piecewise(&g);
        assert!((sv[0] - 0.25).abs() < 1e-12);
    }
}
