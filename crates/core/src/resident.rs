//! Resident valuation state with incremental train-point churn — the engine
//! behind `knnshap serve`.
//!
//! The paper's O(N_test · N log N) cost (Theorem 1) is dominated by work
//! that does **not** depend on which training points are present: computing
//! N_test × N distances and sorting them. [`ResidentValuator`] keeps that
//! state resident — one rank list per test point — so that inserting or
//! deleting a single training point only perturbs each rank list locally
//! (a binary search + splice per test point) and revaluation reruns just
//! the O(N) Theorem 1 recursion per test point, with no distance
//! computation and no sorting. An M-mutation replay therefore costs
//! M · O(N_test · N) cheap arithmetic instead of M cold
//! O(N_test · (N·d + N log N)) rebuilds (`bench_serve_incremental`
//! quantifies the gap).
//!
//! ### Determinism contract
//!
//! After **any** sequence of [`insert`](ResidentValuator::insert) /
//! [`delete`](ResidentValuator::delete) mutations, [`values`](ResidentValuator::values)
//! is **bitwise-identical** to a cold
//! [`knn_class_shapley_with_threads`](crate::exact_unweighted::knn_class_shapley_with_threads)
//! run on the final dataset, at every thread count. Three facts carry this:
//!
//! 1. **Rank lists stay canonical.** The batch path ranks by
//!    `(distance, train index)` (ties broken toward the smaller index).
//!    An inserted point takes the *largest* index, so splicing it after all
//!    equal-distance entries reproduces the cold sort; deletion preserves
//!    the relative order of the survivors, and renumbering (indices above
//!    the deleted point shift down by one) preserves it still — so the
//!    maintained list equals a fresh argsort of the mutated dataset entry
//!    for entry, duplicate distances included.
//! 2. **One recursion.** Both paths run the identical
//!    [`theorem1_recurrence`] arithmetic over those (equal) rank lists.
//! 3. **Exact accumulation.** Per-test vectors fold into
//!    [`knnshap_numerics::exact::ExactVec`] and finalize through the same
//!    `sharding::finalize_mean` as the batch estimator, so the
//!    cross-test reduction is a pure function of the test multiset — never
//!    of threads.
//!
//! `tests/serve_incremental.rs` (workspace root) holds the engine to this
//! with randomized mutation interleavings, cross-checked against an
//! independent implementation of the recurrence following the Wang–Jia
//! correction note (arXiv:2304.04258).
//!
//! ### Batched mutations
//!
//! [`apply_batch`](ResidentValuator::apply_batch) applies a whole group of
//! mutations with **one** rank-list splice pass (each test point's list is
//! updated once, walking the group's splices in order) instead of one
//! parallel pass per mutation — and, because revaluation is a separate
//! step ([`values`](ResidentValuator::values)), a caller that coalesces M
//! mutations pays for **one** recursion instead of M. The per-test-point
//! splice operations are the identical ones the one-at-a-time path runs in
//! the identical order, so the resulting rank lists — and therefore the
//! bits of every vector computed from them — are the same as sequential
//! application. `insert` and `delete` are in fact thin wrappers over a
//! one-element batch, so there is exactly one splice implementation to
//! trust. `tests/serve_batching.rs` holds batched-vs-sequential to bitwise
//! equality over random groups.

use crate::exact_unweighted::theorem1_recurrence;
use crate::types::ShapleyValues;
use knnshap_datasets::ClassDataset;
use knnshap_knn::distance::Metric;
use knnshap_knn::neighbors::{argsort_by_distance, Neighbor};

/// Everything a mutation or query on resident state can reject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResidentError {
    /// Candidate/query feature count differs from the dataset dimension.
    DimMismatch { expected: usize, got: usize },
    /// Candidate features contain NaN/±inf (distance ordering undefined).
    NonFinite,
    /// Train-point index past the current training-set size.
    OutOfRange { index: usize, len: usize },
    /// Deleting the last training point would leave an empty game.
    LastPoint,
    /// The supplied KNN graph was not built from these datasets
    /// ([`ResidentValuator::with_graph`]).
    GraphMismatch { detail: String },
}

impl std::fmt::Display for ResidentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResidentError::DimMismatch { expected, got } => {
                write!(f, "point has {got} features but the dataset has {expected}")
            }
            ResidentError::NonFinite => {
                write!(f, "point has non-finite features (NaN or infinity)")
            }
            ResidentError::OutOfRange { index, len } => {
                write!(f, "train index {index} out of range 0..{len}")
            }
            ResidentError::LastPoint => {
                write!(f, "cannot delete the last training point")
            }
            ResidentError::GraphMismatch { detail } => {
                write!(f, "graph does not match the datasets: {detail}")
            }
        }
    }
}

impl std::error::Error for ResidentError {}

/// One train-set mutation, as submitted to
/// [`ResidentValuator::apply_batch`].
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Append a training point (it takes the next free index).
    Insert { features: Vec<f32>, label: u32 },
    /// Remove training point `index`; survivors above renumber down by one.
    Delete { index: usize },
}

/// A committed mutation's receipt: the train index it touched (new index
/// for inserts, removed index for deletes) and the dataset version its
/// commit produced — each accepted mutation of a batch gets its own
/// consecutive version, exactly as sequential application would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Applied {
    pub index: usize,
    pub version: u64,
}

/// An accepted mutation, resolved against the dataset state at its point
/// in the batch — everything the splice pass needs without re-touching the
/// (already mutated) training set.
enum ResolvedOp {
    /// The new point's features and the index it was assigned.
    Insert { row: Vec<f32>, index: u32 },
    /// The index that was removed (as numbered when the delete applied).
    Delete { index: usize },
}

/// Resident distance/rank state over `(train, test, K)` supporting
/// incremental train-point insert/delete and exact revaluation.
///
/// ```
/// use knnshap_core::exact_unweighted::knn_class_shapley_with_threads;
/// use knnshap_core::resident::ResidentValuator;
/// use knnshap_datasets::synth::blobs::{self, BlobConfig};
///
/// let cfg = BlobConfig { n: 60, dim: 4, n_classes: 2, ..Default::default() };
/// let (train, test) = (blobs::generate(&cfg), blobs::queries(&cfg, 8, 3));
/// let mut engine = ResidentValuator::new(train.clone(), test.clone(), 3, 1).unwrap();
///
/// // Mutate: drop point 5, re-insert a copy of point 0's features.
/// engine.delete(5).unwrap();
/// let new_idx = engine.insert(train.x.row(0), train.y[0]).unwrap();
/// assert_eq!(new_idx, 59); // appended at the end of the renumbered set
/// assert_eq!(engine.version(), 2);
///
/// // Bitwise-identical to a cold run on the final dataset.
/// let served = engine.values();
/// let cold = knn_class_shapley_with_threads(engine.train(), &test, 3, 1);
/// for i in 0..served.len() {
///     assert_eq!(served.get(i).to_bits(), cold.get(i).to_bits());
/// }
/// ```
#[derive(Debug)]
pub struct ResidentValuator {
    train: ClassDataset,
    test: ClassDataset,
    k: usize,
    threads: usize,
    /// One canonical `(distance, index)`-sorted rank list per test point —
    /// always equal to a fresh `argsort_by_distance` of the current train
    /// set (the invariant every mutation maintains).
    ranked: Vec<Vec<Neighbor>>,
    /// Dataset version: 0 for the loaded dataset, +1 per committed mutation.
    version: u64,
}

impl ResidentValuator {
    /// Builds resident rank state for `(train, test)` with `threads`
    /// workers. Rejects empty datasets, `k == 0`, dimension mismatches and
    /// non-finite features (a NaN distance has no defined rank).
    pub fn new(
        train: ClassDataset,
        test: ClassDataset,
        k: usize,
        threads: usize,
    ) -> Result<Self, ResidentError> {
        assert!(!train.is_empty(), "training set is empty");
        assert!(!test.is_empty(), "test set is empty");
        assert!(k >= 1, "K must be at least 1");
        if train.dim() != test.dim() {
            return Err(ResidentError::DimMismatch {
                expected: train.dim(),
                got: test.dim(),
            });
        }
        if train.x.first_non_finite_row().is_some() || test.x.first_non_finite_row().is_some() {
            return Err(ResidentError::NonFinite);
        }
        let ranked = knnshap_parallel::par_map(test.len(), threads, |j| {
            argsort_by_distance(&train.x, test.x.row(j), Metric::SquaredL2)
        });
        Ok(Self {
            train,
            test,
            k,
            threads,
            ranked,
            version: 0,
        })
    }

    /// [`ResidentValuator::new`] seeded from a precomputed graph: the
    /// initial rank lists are taken from the artifact (which stores exactly
    /// the canonical `(distance, index)`-sorted lists `new` would argsort),
    /// so daemon startup skips the O(N·N_test·d) distance pass entirely.
    /// Subsequent mutations maintain the lists incrementally as usual, and
    /// the bitwise-equality contract with a cold batch run is unchanged.
    pub fn with_graph(
        train: ClassDataset,
        test: ClassDataset,
        k: usize,
        threads: usize,
        graph: &knnshap_knn::graph::KnnGraph,
    ) -> Result<Self, ResidentError> {
        assert!(!train.is_empty(), "training set is empty");
        assert!(!test.is_empty(), "test set is empty");
        assert!(k >= 1, "K must be at least 1");
        if train.dim() != test.dim() {
            return Err(ResidentError::DimMismatch {
                expected: train.dim(),
                got: test.dim(),
            });
        }
        if train.x.first_non_finite_row().is_some() || test.x.first_non_finite_row().is_some() {
            return Err(ResidentError::NonFinite);
        }
        graph
            .validate_against(&train.x, &test.x)
            .map_err(|e| ResidentError::GraphMismatch {
                detail: e.to_string(),
            })?;
        Ok(Self {
            train,
            test,
            k,
            threads,
            ranked: graph.lists().to_vec(),
            version: 0,
        })
    }

    /// Current dataset version (0 = as loaded; each committed mutation
    /// increments it by one).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The current (mutated) training set.
    pub fn train(&self) -> &ClassDataset {
        &self.train
    }

    /// The resident test set (immutable for the engine's lifetime).
    pub fn test(&self) -> &ClassDataset {
        &self.test
    }

    pub fn n_train(&self) -> usize {
        self.train.len()
    }

    pub fn n_test(&self) -> usize {
        self.test.len()
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    fn check_point(&self, row: &[f32]) -> Result<(), ResidentError> {
        if row.len() != self.train.dim() {
            return Err(ResidentError::DimMismatch {
                expected: self.train.dim(),
                got: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(ResidentError::NonFinite);
        }
        Ok(())
    }

    /// Inserts a training point, returning its index (always the current
    /// training-set size: new points append, so existing indices are
    /// stable). Each rank list gains one spliced entry after all
    /// equal-distance incumbents — exactly where the cold
    /// `(distance, index)` sort would place the largest index.
    ///
    /// A one-element [`apply_batch`](Self::apply_batch): single mutations
    /// and batches share one splice implementation.
    pub fn insert(&mut self, row: &[f32], label: u32) -> Result<usize, ResidentError> {
        self.apply_batch(&[Mutation::Insert {
            features: row.to_vec(),
            label,
        }])
        .pop()
        .expect("one ack per mutation")
        .map(|a| a.index)
    }

    /// Deletes training point `index`. Surviving points renumber down by
    /// one above `index` (matching what reloading the shrunk dataset would
    /// produce); renumbering preserves the survivors' relative order, so
    /// each rank list just drops one entry.
    ///
    /// A one-element [`apply_batch`](Self::apply_batch), like `insert`.
    pub fn delete(&mut self, index: usize) -> Result<(), ResidentError> {
        self.apply_batch(&[Mutation::Delete { index }])
            .pop()
            .expect("one ack per mutation")
            .map(|_| ())
    }

    /// Applies a group of mutations with **one** rank-list pass, returning
    /// one receipt per mutation in order.
    ///
    /// Semantics are exactly sequential application: each mutation is
    /// validated against the dataset state its predecessors left behind
    /// (an insert's index counts earlier accepted inserts, a delete's
    /// range check sees earlier deletes), a rejected mutation is a no-op
    /// that does not bump the version, and accepted mutations commit in
    /// order with consecutive versions. The resulting rank lists are
    /// bitwise-identical to one-at-a-time application because each test
    /// point's list undergoes the identical splice operations in the
    /// identical order — the batch only fuses M parallel passes into one.
    ///
    /// What a batch **saves** is everything downstream of the lists: a
    /// caller coalescing M mutations runs [`values`](Self::values) (the
    /// recursion + exact accumulation, the dominant cost) once instead of
    /// M times, plus M−1 fork/join barriers. `bench_serve_incremental`
    /// measures the gap; `KNNSHAP_SERVE_BATCH_FLOOR` gates it.
    pub fn apply_batch(&mut self, muts: &[Mutation]) -> Vec<Result<Applied, ResidentError>> {
        // Pass 1 (serial): validate each mutation against the evolving
        // dataset, mutate the dataset, and resolve the splice ops.
        let mut acks = Vec::with_capacity(muts.len());
        let mut ops = Vec::with_capacity(muts.len());
        for m in muts {
            match m {
                Mutation::Insert { features, label } => {
                    if let Err(e) = self.check_point(features) {
                        acks.push(Err(e));
                        continue;
                    }
                    let new_idx = self.train.len();
                    assert!(
                        new_idx < u32::MAX as usize,
                        "training set exceeds u32 indices"
                    );
                    self.train.x.push_row(features);
                    self.train.y.push(*label);
                    self.train.n_classes = self.train.n_classes.max(label + 1);
                    ops.push(ResolvedOp::Insert {
                        row: features.clone(),
                        index: new_idx as u32,
                    });
                    self.version += 1;
                    acks.push(Ok(Applied {
                        index: new_idx,
                        version: self.version,
                    }));
                }
                Mutation::Delete { index } => {
                    let index = *index;
                    if index >= self.train.len() {
                        acks.push(Err(ResidentError::OutOfRange {
                            index,
                            len: self.train.len(),
                        }));
                        continue;
                    }
                    if self.train.len() == 1 {
                        acks.push(Err(ResidentError::LastPoint));
                        continue;
                    }
                    let keep: Vec<usize> = (0..self.train.len()).filter(|&i| i != index).collect();
                    self.train = self.train.gather(&keep);
                    ops.push(ResolvedOp::Delete { index });
                    self.version += 1;
                    acks.push(Ok(Applied {
                        index,
                        version: self.version,
                    }));
                }
            }
        }
        if ops.is_empty() {
            return acks; // nothing accepted — rank lists are untouched
        }
        // Pass 2 (parallel, once per batch): replay the accepted splices
        // in order on every rank list. Distances and splice positions are
        // computed by the same expressions the sequential path used, so
        // the lists come out entry-for-entry identical.
        let old = std::mem::take(&mut self.ranked);
        let test = &self.test;
        self.ranked = knnshap_parallel::par_map(test.len(), self.threads, |j| {
            let mut list = old[j].clone();
            for op in &ops {
                match op {
                    ResolvedOp::Insert { row, index } => {
                        let d = Metric::SquaredL2.eval(test.x.row(j), row);
                        let pos = list.partition_point(|nb| nb.dist <= d);
                        list.insert(
                            pos,
                            Neighbor {
                                index: *index,
                                dist: d,
                            },
                        );
                    }
                    ResolvedOp::Delete { index } => {
                        list.retain(|nb| nb.index as usize != *index);
                        for nb in list.iter_mut() {
                            nb.index -= u32::from(nb.index as usize > *index);
                        }
                    }
                }
            }
            list
        });
        acks
    }

    /// The Shapley vector of the current training set — bitwise-identical
    /// to a cold [`crate::exact_unweighted::knn_class_shapley_with_threads`]
    /// run on [`train`](Self::train), at every thread count, but computed
    /// from the resident rank lists (no distances, no sorting).
    pub fn values(&self) -> ShapleyValues {
        let n = self.train.len();
        // Dense fill, like the batch path: one contribution per training
        // point per test point, deposited linearly (same bits — see
        // `exact_sums_over_dense`). This is what keeps per-mutation
        // revaluation fast: the recursion's rank order would otherwise do a
        // random walk over `n` heap-backed exact accumulators.
        let sums = crate::sharding::exact_sums_over_dense(
            n,
            0..self.test.len(),
            self.threads,
            |j, scratch| {
                let (list, y) = (&self.ranked[j], self.test.y[j]);
                theorem1_recurrence(
                    list.len(),
                    self.k,
                    |r| f64::from(self.train.y[list[r].index as usize] == y),
                    |r, s| scratch[list[r].index as usize] = s,
                );
            },
        );
        crate::sharding::finalize_mean(&sums, self.test.len() as u64)
    }

    /// What-if valuation: the Shapley value the candidate point **would**
    /// receive if inserted — bitwise-identical to
    /// `insert(row, label)` followed by `values()[new index]` — without
    /// committing anything. The candidate is spliced *virtually* into each
    /// rank list (an index remap around its insertion position), and only
    /// its own rank's value is kept from each per-test recursion.
    pub fn what_if(&self, row: &[f32], label: u32) -> Result<f64, ResidentError> {
        self.check_point(row)?;
        let n = self.train.len();
        let sums =
            crate::sharding::exact_sums_over(1, 0..self.test.len(), self.threads, |j, acc| {
                let (list, y) = (&self.ranked[j], self.test.y[j]);
                let d = Metric::SquaredL2.eval(self.test.x.row(j), row);
                let pos = list.partition_point(|nb| nb.dist <= d);
                let cand = f64::from(label == y);
                theorem1_recurrence(
                    n + 1,
                    self.k,
                    |r| match r.cmp(&pos) {
                        std::cmp::Ordering::Less => {
                            f64::from(self.train.y[list[r].index as usize] == y)
                        }
                        std::cmp::Ordering::Equal => cand,
                        std::cmp::Ordering::Greater => {
                            f64::from(self.train.y[list[r - 1].index as usize] == y)
                        }
                    },
                    |r, s| {
                        if r == pos {
                            acc.add(0, s);
                        }
                    },
                );
            });
        Ok(crate::sharding::finalize_mean(&sums, self.test.len() as u64).get(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_unweighted::knn_class_shapley_with_threads;
    use knnshap_datasets::synth::blobs::{self, BlobConfig};
    use knnshap_datasets::Features;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(n: usize, n_test: usize, seed: u64) -> (ClassDataset, ClassDataset) {
        let cfg = BlobConfig {
            n,
            dim: 5,
            n_classes: 3,
            cluster_std: 0.6,
            center_scale: 3.0,
            seed,
        };
        (
            blobs::generate(&cfg),
            blobs::queries(&cfg, n_test, seed + 1),
        )
    }

    fn assert_bitwise(a: &ShapleyValues, b: &ShapleyValues, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for i in 0..a.len() {
            assert_eq!(
                a.get(i).to_bits(),
                b.get(i).to_bits(),
                "{what}: value {i}: {} vs {}",
                a.get(i),
                b.get(i)
            );
        }
    }

    #[test]
    fn fresh_engine_matches_batch_estimator_bitwise() {
        let (train, test) = data(70, 9, 3);
        for k in [1usize, 3, 70, 100] {
            let engine = ResidentValuator::new(train.clone(), test.clone(), k, 2).unwrap();
            let cold = knn_class_shapley_with_threads(&train, &test, k, 1);
            assert_bitwise(&engine.values(), &cold, &format!("k={k}"));
        }
    }

    #[test]
    fn mutation_sequence_matches_cold_recompute_bitwise() {
        let (train, test) = data(40, 7, 11);
        let mut rng = StdRng::seed_from_u64(99);
        let mut engine = ResidentValuator::new(train.clone(), test.clone(), 3, 2).unwrap();
        for step in 0..25 {
            if engine.n_train() > 2 && rng.gen_range(0..3) == 0 {
                let idx = rng.gen_range(0..engine.n_train());
                engine.delete(idx).unwrap();
            } else {
                // Half the inserts duplicate an existing row — exact
                // duplicate distances stress the tie-break invariant.
                let (row, label): (Vec<f32>, u32) = if rng.gen_range(0..2) == 0 {
                    let src = rng.gen_range(0..engine.n_train());
                    (
                        engine.train().x.row(src).to_vec(),
                        engine.train().y[src] ^ u32::from(rng.gen_range(0..2) == 0),
                    )
                } else {
                    (
                        (0..engine.train().dim())
                            .map(|_| rng.gen_range(-3.0..3.0))
                            .collect(),
                        rng.gen_range(0..3),
                    )
                };
                engine.insert(&row, label).unwrap();
            }
            assert_eq!(engine.version(), step + 1);
            let cold = knn_class_shapley_with_threads(engine.train(), &test, 3, 1);
            assert_bitwise(&engine.values(), &cold, &format!("step {step}"));
        }
    }

    #[test]
    fn values_are_thread_count_invariant() {
        let (train, test) = data(50, 8, 21);
        let run = |threads: usize| {
            let mut e = ResidentValuator::new(train.clone(), test.clone(), 2, threads).unwrap();
            e.delete(13).unwrap();
            e.insert(&[0.5; 5], 1).unwrap();
            e.values()
        };
        let serial = run(1);
        for threads in [2usize, 8] {
            assert_bitwise(&serial, &run(threads), &format!("threads={threads}"));
        }
    }

    #[test]
    fn what_if_matches_committed_insert_bitwise() {
        let (train, test) = data(35, 6, 7);
        let engine = ResidentValuator::new(train.clone(), test.clone(), 2, 2).unwrap();
        for (row, label) in [
            (vec![0.0f32; 5], 0u32),
            (train.x.row(4).to_vec(), train.y[4]), // duplicate point
            (train.x.row(4).to_vec(), train.y[4] ^ 1), // duplicate, flipped label
        ] {
            let hypothetical = engine.what_if(&row, label).unwrap();
            let mut committed = ResidentValuator::new(train.clone(), test.clone(), 2, 2).unwrap();
            let idx = committed.insert(&row, label).unwrap();
            assert_eq!(
                hypothetical.to_bits(),
                committed.values().get(idx).to_bits(),
                "label {label}"
            );
        }
    }

    #[test]
    fn delete_then_reload_equivalence_with_renumbering() {
        // Deleting index 3 must behave exactly like valuing the dataset with
        // row 3 removed (indices above shift down).
        let (train, test) = data(20, 5, 5);
        let mut engine = ResidentValuator::new(train.clone(), test.clone(), 1, 1).unwrap();
        engine.delete(3).unwrap();
        let keep: Vec<usize> = (0..20).filter(|&i| i != 3).collect();
        let shrunk = train.gather(&keep);
        assert_eq!(engine.n_train(), 19);
        let cold = knn_class_shapley_with_threads(&shrunk, &test, 1, 1);
        assert_bitwise(&engine.values(), &cold, "renumbered delete");
    }

    #[test]
    fn k_boundary_cases_survive_churn() {
        // K equal to, one below, and above the (shrinking) training size.
        let (train, test) = data(6, 4, 13);
        for k in [5usize, 6, 7, 12] {
            let mut engine = ResidentValuator::new(train.clone(), test.clone(), k, 1).unwrap();
            engine.delete(0).unwrap();
            engine.insert(&[1.0; 5], 2).unwrap();
            engine.delete(4).unwrap();
            let cold = knn_class_shapley_with_threads(engine.train(), &test, k, 1);
            assert_bitwise(&engine.values(), &cold, &format!("k={k}"));
        }
    }

    #[test]
    fn rejects_bad_mutations() {
        let (train, test) = data(10, 3, 1);
        let mut engine = ResidentValuator::new(train, test, 2, 1).unwrap();
        assert_eq!(
            engine.insert(&[1.0, 2.0], 0).unwrap_err(),
            ResidentError::DimMismatch {
                expected: 5,
                got: 2
            }
        );
        assert_eq!(
            engine
                .insert(&[1.0, 2.0, f32::NAN, 0.0, 0.0], 0)
                .unwrap_err(),
            ResidentError::NonFinite
        );
        assert_eq!(
            engine.delete(10).unwrap_err(),
            ResidentError::OutOfRange { index: 10, len: 10 }
        );
        assert_eq!(engine.what_if(&[1.0], 0).unwrap_err(), {
            ResidentError::DimMismatch {
                expected: 5,
                got: 1,
            }
        });
        for _ in 0..9 {
            engine.delete(0).unwrap();
        }
        assert_eq!(engine.delete(0).unwrap_err(), ResidentError::LastPoint);
        assert_eq!(engine.version(), 9, "failed mutations must not bump");
    }

    #[test]
    fn batched_mutations_match_sequential_bitwise() {
        // The core batching invariant: applying a random mutation group via
        // apply_batch yields the same rank lists — hence the same value
        // bits — as applying them one at a time, at serial and parallel
        // thread counts alike.
        let (train, test) = data(40, 7, 17);
        for threads in [1usize, 8] {
            let mut rng = StdRng::seed_from_u64(4242);
            let mut batched =
                ResidentValuator::new(train.clone(), test.clone(), 3, threads).unwrap();
            let mut sequential =
                ResidentValuator::new(train.clone(), test.clone(), 3, threads).unwrap();
            for round in 0..6 {
                let mut group = Vec::new();
                let mut len = batched.n_train();
                for _ in 0..rng.gen_range(1..=7) {
                    if len > 2 && rng.gen_range(0..3) == 0 {
                        group.push(Mutation::Delete {
                            index: rng.gen_range(0..len),
                        });
                        len -= 1;
                    } else {
                        let features = if rng.gen_range(0..2) == 0 {
                            batched.train().x.row(rng.gen_range(0..len)).to_vec()
                        } else {
                            (0..5).map(|_| rng.gen_range(-3.0..3.0)).collect()
                        };
                        group.push(Mutation::Insert {
                            features,
                            label: rng.gen_range(0..3),
                        });
                        len += 1;
                    }
                }
                let acks = batched.apply_batch(&group);
                assert_eq!(acks.len(), group.len(), "one ack per mutation");
                for (m, ack) in group.iter().zip(&acks) {
                    match m {
                        Mutation::Insert { features, label } => {
                            let idx = sequential.insert(features, *label).unwrap();
                            let a = ack.as_ref().unwrap();
                            assert_eq!(a.index, idx);
                            assert_eq!(a.version, sequential.version());
                        }
                        Mutation::Delete { index } => {
                            sequential.delete(*index).unwrap();
                            assert_eq!(ack.as_ref().unwrap().version, sequential.version());
                        }
                    }
                }
                assert_eq!(batched.version(), sequential.version());
                assert_bitwise(
                    &batched.values(),
                    &sequential.values(),
                    &format!("threads={threads} round={round}"),
                );
            }
            let cold = knn_class_shapley_with_threads(batched.train(), &test, 3, 1);
            assert_bitwise(&batched.values(), &cold, "final vs cold recompute");
        }
    }

    #[test]
    fn batch_rejects_are_per_mutation_and_do_not_bump_version() {
        let (train, test) = data(12, 4, 29);
        let mut engine = ResidentValuator::new(train.clone(), test.clone(), 2, 1).unwrap();
        let acks = engine.apply_batch(&[
            Mutation::Insert {
                features: vec![0.25; 5],
                label: 1,
            },
            Mutation::Delete { index: 99 }, // rejected: out of range
            Mutation::Insert {
                features: vec![1.0, f32::NAN, 0.0, 0.0, 0.0],
                label: 0,
            }, // rejected: non-finite
            Mutation::Delete { index: 12 }, // accepted: the point just inserted
        ]);
        assert_eq!(acks.len(), 4);
        assert_eq!(
            acks[0].as_ref().unwrap(),
            &Applied {
                index: 12,
                version: 1
            }
        );
        assert_eq!(
            acks[1].as_ref().unwrap_err(),
            // Range check sees the state after the first insert (len 13).
            &ResidentError::OutOfRange { index: 99, len: 13 }
        );
        assert_eq!(acks[2].as_ref().unwrap_err(), &ResidentError::NonFinite);
        assert_eq!(
            acks[3].as_ref().unwrap(),
            &Applied {
                index: 12,
                version: 2
            }
        );
        assert_eq!(engine.version(), 2, "rejected mutations must not bump");
        // Net effect is insert-then-delete of the same point: identical to
        // never touching the dataset.
        let cold = knn_class_shapley_with_threads(&train, &test, 2, 1);
        assert_bitwise(&engine.values(), &cold, "insert+delete round-trip");
    }

    #[test]
    fn all_rejected_batch_leaves_rank_lists_untouched() {
        let (train, test) = data(10, 3, 31);
        let mut engine = ResidentValuator::new(train, test, 2, 1).unwrap();
        let before = engine.values();
        let acks = engine.apply_batch(&[
            Mutation::Delete { index: 77 },
            Mutation::Insert {
                features: vec![1.0],
                label: 0,
            },
        ]);
        assert!(acks.iter().all(Result::is_err));
        assert_eq!(engine.version(), 0);
        assert_bitwise(&engine.values(), &before, "no-op batch");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (train, test) = data(8, 2, 37);
        let mut engine = ResidentValuator::new(train, test, 1, 1).unwrap();
        assert!(engine.apply_batch(&[]).is_empty());
        assert_eq!(engine.version(), 0);
    }

    #[test]
    fn dimension_mismatch_between_train_and_test_is_rejected() {
        let train = ClassDataset::new(Features::new(vec![0.0, 1.0], 2), vec![0], 1);
        let test = ClassDataset::new(Features::new(vec![0.0], 1), vec![0], 1);
        assert!(matches!(
            ResidentValuator::new(train, test, 1, 1),
            Err(ResidentError::DimMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_training_features_are_rejected() {
        let train = ClassDataset::new(Features::new(vec![f32::INFINITY, 1.0], 1), vec![0, 1], 2);
        let test = ClassDataset::new(Features::new(vec![0.0], 1), vec![0], 1);
        assert_eq!(
            ResidentValuator::new(train, test, 1, 1).unwrap_err(),
            ResidentError::NonFinite
        );
    }

    #[test]
    fn error_messages_name_the_problem() {
        let errs: Vec<String> = [
            ResidentError::DimMismatch {
                expected: 4,
                got: 2,
            },
            ResidentError::NonFinite,
            ResidentError::OutOfRange { index: 9, len: 3 },
            ResidentError::LastPoint,
        ]
        .iter()
        .map(|e| e.to_string())
        .collect();
        assert!(errs[0].contains("2 features"));
        assert!(errs[1].contains("non-finite"));
        assert!(errs[2].contains("9 out of range"));
        assert!(errs[3].contains("last training point"));
    }
}
