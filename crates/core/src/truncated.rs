//! Theorem 2: the truncated (ε, 0)-approximation.
//!
//! Only the `K* = max(K, ⌈1/ε⌉)` nearest neighbors matter: the true SV of the
//! rank-`i` point is bounded by `min(1/i, 1/K)` (proof of Theorem 2), so
//! setting `ŝ_{α_i} = 0` for ranks `i ≥ K*` and running the Theorem 1
//! recursion below rank `K*` yields `‖ŝ − s‖_∞ ≤ ε` with *zero* failure
//! probability — and, because `ŝ_i − ŝ_{i+1} = s_i − s_{i+1}` for
//! `i ≤ K* − 1`, the approximation preserves the exact value ranking of the
//! `K*` nearest points.
//!
//! Retrieval uses `select_nth_unstable` (expected O(N)) instead of a full
//! sort, so a single-test valuation costs O(N + K* log K*) versus the exact
//! algorithm's O(N log N).
//!
//! One behaviour worth flagging for users: when every retained neighbor has
//! the same label-correctness (e.g. perfectly pure clusters), every
//! recursion difference is zero and the estimate is *identically zero* —
//! still within ε of the truth (each exact value is ≤ 1/K* ≤ ε there), but
//! carrying no ranking information. Ranking-sensitive applications should
//! tighten ε or fall back to the exact algorithm when the estimate
//! degenerates; see `all_zero_estimate_on_pure_clusters_is_still_valid`.

use crate::sharding::{Fingerprint, ShardKind, ShardPartial, ShardSpec};
use crate::types::ShapleyValues;
use knnshap_datasets::ClassDataset;
use knnshap_knn::distance::Metric;
use knnshap_knn::graph::KnnGraph;
use knnshap_knn::neighbors::{partial_k_nearest, Neighbor};
use knnshap_numerics::exact::ExactVec;

/// `K* = max(K, ⌈1/ε⌉)` — the number of neighbors whose values must be
/// computed to achieve ‖ŝ − s‖_∞ ≤ ε.
///
/// ```
/// use knnshap_core::truncated::k_star;
/// assert_eq!(k_star(5, 0.1), 10);   // ⌈1/0.1⌉ dominates
/// assert_eq!(k_star(50, 0.1), 50);  // K dominates
/// ```
pub fn k_star(k: usize, eps: f64) -> usize {
    assert!(k >= 1, "K must be at least 1");
    assert!(eps > 0.0, "epsilon must be positive");
    k.max((1.0 / eps).ceil() as usize)
}

/// Run the truncated recursion (eqs. 18–19) over an already-retrieved,
/// ascending-sorted neighbor list covering ranks `1..=len`.
///
/// This is shared by the exact-retrieval path below and the LSH-backed path
/// in [`crate::lsh_approx`]; `n` is the full training-set size (values of
/// unretrieved points are 0).
#[doc(hidden)]
pub fn truncated_recursion(
    neighbors: &[Neighbor],
    labels: &[u32],
    test_label: u32,
    k: usize,
    k_star: usize,
    n: usize,
) -> ShapleyValues {
    let mut out = ShapleyValues::zeros(n);
    if neighbors.is_empty() {
        return out;
    }
    let correct =
        |rank: usize| -> f64 { f64::from(labels[neighbors[rank].index as usize] == test_label) };
    let len = neighbors.len().min(k_star);
    let mut s = if len == n {
        // Every point retrieved: fall back to the exact base (Theorem 1) so
        // the "truncated" estimator degrades gracefully to the exact SV.
        correct(len - 1) * k.min(n) as f64 / (n as f64 * k as f64)
    } else {
        // ŝ at rank K* is 0 by eq. (18).
        0.0
    };
    out.as_mut_slice()[neighbors[len - 1].index as usize] = s;
    for i in (0..len - 1).rev() {
        let rank1 = i + 1;
        s += (correct(i) - correct(i + 1)) / k as f64 * (k.min(rank1) as f64 / rank1 as f64);
        out.as_mut_slice()[neighbors[i].index as usize] = s;
    }
    out
}

/// Truncated SVs w.r.t. a single test point, using exact partial retrieval.
pub fn truncated_class_shapley_single(
    train: &ClassDataset,
    query: &[f32],
    test_label: u32,
    k: usize,
    eps: f64,
) -> ShapleyValues {
    let ks = k_star(k, eps);
    let neighbors = partial_k_nearest(&train.x, query, ks, Metric::SquaredL2);
    truncated_recursion(&neighbors, &train.y, test_label, k, ks, train.len())
}

/// Truncated SVs using a prebuilt kd-tree for retrieval — exact neighbors,
/// so the same (ε, 0) guarantee as [`truncated_class_shapley_single`], with
/// sub-scan query cost in low/moderate dimensions (the tree is the paper's
/// §3.2 alternative to LSH).
pub fn truncated_class_shapley_with_kdtree(
    tree: &knnshap_knn::kdtree::KdTree<'_>,
    train: &ClassDataset,
    query: &[f32],
    test_label: u32,
    k: usize,
    eps: f64,
) -> ShapleyValues {
    assert_eq!(tree.len(), train.len(), "tree/dataset size mismatch");
    let ks = k_star(k, eps);
    let neighbors = tree.k_nearest(query, ks);
    truncated_recursion(&neighbors, &train.y, test_label, k, ks, train.len())
}

/// Truncated SVs w.r.t. a test set (average of per-test values), on the
/// workspace default worker count.
pub fn truncated_class_shapley(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    eps: f64,
) -> ShapleyValues {
    truncated_class_shapley_with_threads(train, test, k, eps, knnshap_parallel::current_threads())
}

/// [`truncated_class_shapley`] with an explicit worker count: the per-test
/// games fan across the pool into *exact* accumulators, so the average is
/// bitwise-identical for every `threads` value — and for every sharding of
/// the test range (see [`truncated_class_shapley_shard`]).
pub fn truncated_class_shapley_with_threads(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    eps: f64,
    threads: usize,
) -> ShapleyValues {
    assert!(!test.is_empty(), "need at least one test point");
    let sums = shard_sums(train, test, k, eps, 0..test.len(), threads);
    crate::sharding::finalize_mean(&sums, test.len() as u64)
}

/// [`truncated_class_shapley_with_threads`] scheduled by the measured cost
/// model of [`crate::schedule`]: one warmup test-point game is timed (and
/// re-run by the real pass — it is a pure function of its index), a fan-out
/// plan is derived (or pinned by the `KNNSHAP_SCHED_FORCE` test hook), and
/// the per-test games fold on the scheduler's tiling. Bitwise-identical to
/// the static path at every thread count: the plan only re-tiles which test
/// points run in which block, and the accumulators are exact.
pub fn truncated_class_shapley_adaptive(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    eps: f64,
    threads: usize,
) -> ShapleyValues {
    use std::time::Instant;
    assert!(!test.is_empty(), "need at least one test point");
    let n_test = test.len();

    let fork_t = Instant::now();
    let mut probe = ExactVec::zeros(train.len());
    let fork_secs = fork_t.elapsed().as_secs_f64();
    let item_t = Instant::now();
    let per_test = truncated_class_shapley_single(train, test.x.row(0), test.y[0], k, eps);
    probe.add_dense(per_test.as_slice());
    let per_item_secs = item_t.elapsed().as_secs_f64();
    let mut total = ExactVec::zeros(train.len());
    let merge_t = Instant::now();
    total.merge(&probe);
    let merge_secs = merge_t.elapsed().as_secs_f64();

    let model = crate::schedule::CostModel {
        per_item_secs,
        fork_secs,
        merge_secs,
    };
    let force = crate::schedule::forced();
    let plan = crate::schedule::plan_fanout(&model, n_test, threads, force.as_ref());
    let sums = crate::sharding::exact_sums_over_sized(
        train.len(),
        0..n_test,
        plan.threads,
        plan.block_items,
        |j, acc| {
            let per_test = truncated_class_shapley_single(train, test.x.row(j), test.y[j], k, eps);
            acc.add_dense(per_test.as_slice());
        },
    );
    crate::sharding::finalize_mean(&sums, n_test as u64)
}

/// Truncated partial sums over one canonical shard of the test range.
///
/// ### Determinism contract
///
/// Theorem 2's guarantee is per test point, so the shard split rides the
/// same additivity decomposition as the exact algorithm: the partial state
/// depends only on `(train, test, k, ε)` and the shard's range. Merging a
/// full shard set with [`crate::sharding::merge_partials`] reproduces
/// [`truncated_class_shapley_with_threads`] bit for bit at every shard and
/// thread count.
///
/// ```
/// use knnshap_core::sharding::{merge_partials, ShardSpec};
/// use knnshap_core::truncated::{truncated_class_shapley, truncated_class_shapley_shard};
/// use knnshap_datasets::synth::blobs::{self, BlobConfig};
///
/// let cfg = BlobConfig { n: 60, dim: 4, n_classes: 3, ..Default::default() };
/// let (train, test) = (blobs::generate(&cfg), blobs::queries(&cfg, 8, 2));
/// let parts: Vec<_> = (0..3)
///     .map(|i| truncated_class_shapley_shard(&train, &test, 2, 0.2, ShardSpec::new(i, 3), 1))
///     .collect();
/// let merged = merge_partials(&parts).unwrap().values;
/// let whole = truncated_class_shapley(&train, &test, 2, 0.2);
/// assert!(merged.as_slice().iter().zip(whole.as_slice()).all(|(a, b)| a == b));
/// ```
pub fn truncated_class_shapley_shard(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    eps: f64,
    spec: ShardSpec,
    threads: usize,
) -> ShardPartial {
    assert!(!test.is_empty(), "need at least one test point");
    let range = spec.range(test.len());
    let sums = shard_sums(train, test, k, eps, range.clone(), threads);
    let fingerprint = truncated_fingerprint(train, test, k, eps);
    ShardPartial::new(
        ShardKind::Truncated,
        fingerprint,
        train.len(),
        test.len(),
        range,
        sums,
    )
}

/// The job fingerprint of the truncated family.
pub fn truncated_fingerprint(train: &ClassDataset, test: &ClassDataset, k: usize, eps: f64) -> u64 {
    Fingerprint::new("truncated")
        .u64(k as u64)
        .f64(eps)
        .u64(crate::sharding::hash_class_dataset(train))
        .u64(crate::sharding::hash_class_dataset(test))
        .finish()
}

fn shard_sums(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    eps: f64,
    range: std::ops::Range<usize>,
    threads: usize,
) -> ExactVec {
    crate::sharding::exact_sums_over(train.len(), range, threads, |j, acc| {
        let per_test = truncated_class_shapley_single(train, test.x.row(j), test.y[j], k, eps);
        acc.add_dense(per_test.as_slice());
    })
}

/// [`truncated_class_shapley_shard`] fed by a precomputed graph.
///
/// The graph's full ranking prefix `[..K*]` is exactly what
/// [`partial_k_nearest`] retrieves (both are ascending prefixes of the same
/// total order over bitwise-identical distances), so the partial carries the
/// same kind/fingerprint and merges bitwise-identically with brute-force
/// shards. Panics if the graph was not built from `(train.x, test.x)`.
pub fn truncated_class_shapley_graph_shard(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    eps: f64,
    graph: &KnnGraph,
    spec: ShardSpec,
    threads: usize,
) -> ShardPartial {
    assert!(!test.is_empty(), "need at least one test point");
    graph
        .validate_against(&train.x, &test.x)
        .expect("graph/dataset mismatch");
    let range = spec.range(test.len());
    let sums = graph_shard_sums(train, test, k, eps, graph, range.clone(), threads);
    let fingerprint = truncated_fingerprint(train, test, k, eps);
    ShardPartial::new(
        ShardKind::Truncated,
        fingerprint,
        train.len(),
        test.len(),
        range,
        sums,
    )
}

fn graph_shard_sums(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    eps: f64,
    graph: &KnnGraph,
    range: std::ops::Range<usize>,
    threads: usize,
) -> ExactVec {
    let ks = k_star(k, eps);
    crate::sharding::exact_sums_over(train.len(), range, threads, |j, acc| {
        let list = graph.list(j);
        let prefix = &list[..ks.min(list.len())];
        let per_test = truncated_recursion(prefix, &train.y, test.y[j], k, ks, train.len());
        acc.add_dense(per_test.as_slice());
    })
}

/// [`truncated_class_shapley_with_threads`] fed by a precomputed graph:
/// skips the distance pass, returns the same bits.
pub fn truncated_class_shapley_from_graph(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    eps: f64,
    graph: &KnnGraph,
    threads: usize,
) -> ShapleyValues {
    assert!(!test.is_empty(), "need at least one test point");
    graph
        .validate_against(&train.x, &test.x)
        .expect("graph/dataset mismatch");
    let sums = graph_shard_sums(train, test, k, eps, graph, 0..test.len(), threads);
    crate::sharding::finalize_mean(&sums, test.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_unweighted::{knn_class_shapley_single, knn_class_shapley_with_threads};
    use knnshap_datasets::synth::blobs::{self, BlobConfig};
    use knnshap_datasets::Features;

    fn instance(n: usize) -> (ClassDataset, ClassDataset) {
        let cfg = BlobConfig {
            n,
            dim: 4,
            n_classes: 3,
            cluster_std: 1.0,
            center_scale: 2.0,
            seed: 42,
        };
        (blobs::generate(&cfg), blobs::queries(&cfg, 5, 7))
    }

    #[test]
    fn k_star_formula() {
        assert_eq!(k_star(1, 0.1), 10);
        assert_eq!(k_star(50, 0.1), 50);
        assert_eq!(k_star(2, 0.34), 3); // ceil(1/0.34) = 3
        assert_eq!(k_star(1, 2.0), 1);
    }

    #[test]
    fn error_within_epsilon_single() {
        let (train, test) = instance(120);
        for eps in [0.5, 0.1, 0.05] {
            for k in [1usize, 3] {
                let exact = knn_class_shapley_single(&train, test.x.row(0), test.y[0], k);
                let approx =
                    truncated_class_shapley_single(&train, test.x.row(0), test.y[0], k, eps);
                let err = exact.max_abs_diff(&approx);
                assert!(err <= eps + 1e-12, "eps={eps} k={k}: err={err}");
            }
        }
    }

    #[test]
    fn error_within_epsilon_multi() {
        let (train, test) = instance(100);
        let eps = 0.08;
        let exact = knn_class_shapley_with_threads(&train, &test, 2, 1);
        let approx = truncated_class_shapley(&train, &test, 2, eps);
        assert!(exact.max_abs_diff(&approx) <= eps + 1e-12);
    }

    #[test]
    fn multi_test_bitwise_identical_across_thread_counts() {
        let (train, test) = instance(90);
        let serial = truncated_class_shapley_with_threads(&train, &test, 2, 0.1, 1);
        for threads in [2usize, 8] {
            let par = truncated_class_shapley_with_threads(&train, &test, 2, 0.1, threads);
            for i in 0..train.len() {
                assert_eq!(
                    serial.get(i).to_bits(),
                    par.get(i).to_bits(),
                    "i={i} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn rank_preserved_for_top_k_star() {
        // Theorem 2: ŝ_i − ŝ_{i+1} = s_i − s_{i+1} for i ≤ K*−1, so the value
        // order of the retrieved prefix matches the exact order exactly.
        let (train, test) = instance(80);
        let eps = 0.2; // K* = 5
        let k = 2;
        let exact = knn_class_shapley_single(&train, test.x.row(1), test.y[1], k);
        let approx = truncated_class_shapley_single(&train, test.x.row(1), test.y[1], k, eps);
        let ks = k_star(k, eps);
        let neighbors = partial_k_nearest(&train.x, test.x.row(1), ks, Metric::SquaredL2);
        for w in neighbors.windows(2) {
            let (a, b) = (w[0].index as usize, w[1].index as usize);
            let de = exact[a] - exact[b];
            let da = approx[a] - approx[b];
            assert!((de - da).abs() < 1e-12, "difference not preserved");
        }
    }

    #[test]
    fn degenerates_to_exact_when_k_star_covers_all() {
        let (train, test) = instance(30);
        // eps tiny => K* >= N => estimator must equal the exact SV.
        let exact = knn_class_shapley_single(&train, test.x.row(0), test.y[0], 3);
        let approx = truncated_class_shapley_single(&train, test.x.row(0), test.y[0], 3, 1e-9);
        assert!(exact.max_abs_diff(&approx) < 1e-12);
    }

    #[test]
    fn unretrieved_points_are_zero() {
        let (train, test) = instance(60);
        let approx = truncated_class_shapley_single(&train, test.x.row(0), test.y[0], 1, 0.25);
        let nonzero = approx.as_slice().iter().filter(|v| **v != 0.0).count();
        assert!(nonzero <= k_star(1, 0.25));
    }

    #[test]
    fn kdtree_backend_matches_scan_backend() {
        let (train, test) = instance(150);
        let tree = knnshap_knn::kdtree::KdTree::build(&train.x);
        for eps in [0.3, 0.1] {
            for k in [1usize, 3] {
                let scan = truncated_class_shapley_single(&train, test.x.row(2), test.y[2], k, eps);
                let via_tree = truncated_class_shapley_with_kdtree(
                    &tree,
                    &train,
                    test.x.row(2),
                    test.y[2],
                    k,
                    eps,
                );
                assert!(scan.max_abs_diff(&via_tree) < 1e-12, "eps={eps} k={k}");
            }
        }
    }

    #[test]
    fn tiny_training_set() {
        let train = ClassDataset::new(Features::new(vec![0.0, 1.0], 1), vec![1, 0], 2);
        let approx = truncated_class_shapley_single(&train, &[0.1], 1, 1, 0.5);
        let exact = knn_class_shapley_single(&train, &[0.1], 1, 1);
        // K* = 2 >= N: must be exact
        assert!(approx.max_abs_diff(&exact) < 1e-12);
    }

    #[test]
    fn all_zero_estimate_on_pure_clusters_is_still_valid() {
        // All K* retained neighbors carry the query's label, so every
        // recursion difference is zero and the estimate degenerates to the
        // all-zero vector — which Theorem 2 nevertheless certifies, because
        // every exact value is ≤ 1/K* ≤ ε here.
        let n = 100;
        let feats: Vec<f32> = (0..n).map(|i| i as f32 * 0.01).collect();
        let train = ClassDataset::new(Features::new(feats, 1), vec![0; n], 1);
        let eps = 0.1; // K* = 10 < N
        let approx = truncated_class_shapley_single(&train, &[0.0], 0, 2, eps);
        assert!(approx.as_slice().iter().all(|&v| v == 0.0));
        let exact = knn_class_shapley_single(&train, &[0.0], 0, 2);
        assert!(approx.max_abs_diff(&exact) <= eps + 1e-12);
        // and the exact values really are individually below ε
        assert!(exact.as_slice().iter().all(|&v| v.abs() <= eps + 1e-12));
    }
}
