//! Theorems 9–11 (Appendix E.4): the *composite game* that values the
//! analyst's computation alongside the sellers' data.
//!
//! The composite utility over `M + 1` players (sellers `I_s` plus analyst
//! `C`) is eq. (28): `ν_c(S) = 0` if `S ⊆ I_s` or `S = {C}`, else
//! `ν(S \ {C})`. Data alone earns nothing, computation alone earns nothing;
//! only their combination produces a model. Consequences proved in the paper
//! and reproduced here:
//!
//! * every seller's value is scaled down relative to the data-only game by
//!   the factor `(min{i,K}+1)/(2(i+1)) ≤ 1/2` at rank `i` (eqs. 88–89);
//! * the analyst receives at least half the total utility,
//!   `s_C = ν(I) − Σ_i s_i` (eqs. 87/92/95).
//!
//! The recursions only differ from their data-only counterparts in the
//! binomial weights (there is one extra mandatory player), so the weighted
//! variant delegates to the Theorem 7 driver in [`crate::exact_weighted`]
//! parameterized by [`GameForm`].

use crate::types::ShapleyValues;
use crate::utility::Utility;
use knnshap_datasets::{ClassDataset, RegDataset};
use knnshap_knn::distance::Metric;
use knnshap_knn::neighbors::argsort_by_distance;
use knnshap_knn::weights::WeightFn;

/// Which cooperative game is being solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GameForm {
    /// Sellers only (the paper's "data-only game").
    DataOnly,
    /// Sellers plus one analyst whose participation is required for any
    /// utility (the paper's "composite game", eq. 28).
    Composite,
}

/// Seller values plus the analyst's value.
#[derive(Debug, Clone)]
pub struct CompositeShapley {
    /// Per-seller (or per-training-point) values.
    pub sellers: ShapleyValues,
    /// The analyst's value `s_C = ν(I) − Σ_i s_i`.
    pub analyst: f64,
}

/// Wraps a base utility into the composite game of eq. (28): players
/// `0..n-1` are the base players and player `n` is the analyst. Used by the
/// enumeration ground truth in tests.
pub struct CompositeUtility<'a, U: Utility + ?Sized> {
    base: &'a U,
}

impl<'a, U: Utility + ?Sized> CompositeUtility<'a, U> {
    pub fn new(base: &'a U) -> Self {
        Self { base }
    }

    pub fn analyst_player(&self) -> usize {
        self.base.n()
    }
}

impl<U: Utility + ?Sized> Utility for CompositeUtility<'_, U> {
    fn n(&self) -> usize {
        self.base.n() + 1
    }

    fn eval(&self, subset: &[usize]) -> f64 {
        let analyst = self.base.n();
        if !subset.contains(&analyst) {
            return 0.0;
        }
        let sellers: Vec<usize> = subset.iter().copied().filter(|&p| p != analyst).collect();
        if sellers.is_empty() {
            return 0.0;
        }
        self.base.eval(&sellers)
    }
}

/// Theorem 9: composite-game SVs for the unweighted KNN classifier, one test
/// point, O(N log N).
pub fn composite_knn_class_shapley_single(
    train: &ClassDataset,
    query: &[f32],
    test_label: u32,
    k: usize,
) -> CompositeShapley {
    let n = train.len();
    assert!(n >= 1 && k >= 1);
    let ranked = argsort_by_distance(&train.x, query, Metric::SquaredL2);
    let correct =
        |rank: usize| -> f64 { f64::from(train.y[ranked[rank].index as usize] == test_label) };
    let mut values = vec![0.0f64; n];
    // Base (eq. 85, stated for K < N; the min() form below also covers K ≥ N,
    // mirroring the data-only generalization — validated by enumeration):
    // s_{α_N} = 1[correct] · min(K,N)(min(K,N)+1) / (2(N+1)·N·K).
    let mk = k.min(n) as f64;
    let mut s = correct(n - 1) * mk * (mk + 1.0) / (2.0 * (n + 1) as f64 * n as f64 * k as f64);
    values[ranked[n - 1].index as usize] = s;
    for i in (0..n.saturating_sub(1)).rev() {
        let rank1 = (i + 1) as f64; // paper's 1-based rank of element i
        let mi = k.min(i + 1) as f64;
        s += (correct(i) - correct(i + 1)) / k as f64 * mi * (mi + 1.0)
            / (2.0 * rank1 * (rank1 + 1.0));
        values[ranked[i].index as usize] = s;
    }
    let sellers = ShapleyValues::new(values);
    // ν(I): utility of the grand coalition (eq. 87).
    let grand = {
        let k_eff = k.min(n);
        (0..k_eff).map(correct).sum::<f64>() / k as f64
    };
    let analyst = grand - sellers.total();
    CompositeShapley { sellers, analyst }
}

/// Theorem 9 averaged over a test set.
pub fn composite_knn_class_shapley(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
) -> CompositeShapley {
    assert!(!test.is_empty(), "need at least one test point");
    let mut sellers = ShapleyValues::zeros(train.len());
    let mut analyst = 0.0;
    for j in 0..test.len() {
        let one = composite_knn_class_shapley_single(train, test.x.row(j), test.y[j], k);
        sellers.add_assign(&one.sellers);
        analyst += one.analyst;
    }
    sellers.scale(1.0 / test.len() as f64);
    CompositeShapley {
        sellers,
        analyst: analyst / test.len() as f64,
    }
}

/// Theorem 10: composite-game SVs for unweighted KNN regression, one test
/// point, O(N log N) via the same prefix/suffix-sum trick as Theorem 6.
/// Requires `K < N` (the paper's standing assumption for this recursion).
pub fn composite_knn_reg_shapley_single(
    train: &RegDataset,
    query: &[f32],
    test_target: f64,
    k: usize,
) -> CompositeShapley {
    let n = train.len();
    assert!(n >= 1 && k >= 1);
    let t = test_target;
    let kf = k as f64;

    if n == 1 {
        // Two players (point + analyst), both needed: each gets ν({0})/2.
        let e = train.y[0] / kf - t;
        let v = -(e * e);
        return CompositeShapley {
            sellers: ShapleyValues::new(vec![v / 2.0]),
            analyst: v / 2.0,
        };
    }
    assert!(
        k < n,
        "Theorem 10 recursion requires K < N (got K={k}, N={n})"
    );

    let ranked = argsort_by_distance(&train.x, query, Metric::SquaredL2);
    let z: Vec<f64> = ranked.iter().map(|r| train.y[r.index as usize]).collect();
    let sum_all: f64 = z.iter().sum();

    // Suffix sums of c(l)·z[l] with
    // c(l) = 2·min(K+1,l)·min(K,l−1)·min(K−1,l−2) / (3·l·(l−1)·(l−2)).
    let coeff = |l: usize| -> f64 {
        if l < 3 {
            0.0
        } else {
            2.0 * ((k + 1).min(l) * k.min(l - 1) * (k - 1).min(l - 2)) as f64
                / (3.0 * (l * (l - 1) * (l - 2)) as f64)
        }
    };
    let mut suffix = vec![0.0f64; n + 2];
    for j in (0..n).rev() {
        suffix[j] = suffix[j + 1] + coeff(j + 1) * z[j];
    }

    // Base (eq. 90).
    let zn = z[n - 1];
    let sum_others = sum_all - zn;
    let e_single = zn / kf - t;
    let mut s = -(zn / (kf * (n + 1) as f64))
        * (((k + 2) * (k - 1)) as f64 / (2.0 * n as f64) * (zn / kf - 2.0 * t)
            + 2.0 * ((k - 1) * (k + 1)) as f64 / (3.0 * (n * (n - 1)) as f64) * sum_others)
        - e_single * e_single / ((n * (n + 1)) as f64);

    let mut values = vec![0.0f64; n];
    values[ranked[n - 1].index as usize] = s;

    let mut pref: f64 = z[..n - 1].iter().sum();
    for i in (1..n).rev() {
        // paper rank i; code index ip = i−1
        let ip = i - 1;
        pref -= z[ip]; // Σ_{l ≤ i−1} z_l
        let head = (z[ip] / kf + z[ip + 1] / kf - 2.0 * t) * ((k + 1).min(i + 1) * k.min(i)) as f64
            / (2.0 * (i * (i + 1)) as f64);
        let pref_term = if i >= 2 {
            pref / kf * 2.0 * ((k + 1).min(i + 1) * k.min(i) * (k - 1).min(i - 1)) as f64
                / (3.0 * ((i - 1) * i * (i + 1)) as f64)
        } else {
            0.0
        };
        let suff_term = suffix[i + 1] / kf; // ranks ≥ i+2, coefficients baked in
        s += (z[ip + 1] - z[ip]) / kf * (head + pref_term + suff_term);
        values[ranked[ip].index as usize] = s;
    }

    let sellers = ShapleyValues::new(values);
    // ν(I) = −((1/K) Σ_{top-K} y − t)².
    let grand = {
        let pred: f64 = z[..k.min(n)].iter().sum::<f64>() / kf;
        let e = pred - t;
        -(e * e)
    };
    let analyst = grand - sellers.total();
    CompositeShapley { sellers, analyst }
}

/// Theorem 10 averaged over a test set.
pub fn composite_knn_reg_shapley(
    train: &RegDataset,
    test: &RegDataset,
    k: usize,
) -> CompositeShapley {
    assert!(!test.is_empty(), "need at least one test point");
    let mut sellers = ShapleyValues::zeros(train.len());
    let mut analyst = 0.0;
    for j in 0..test.len() {
        let one = composite_knn_reg_shapley_single(train, test.x.row(j), test.y[j], k);
        sellers.add_assign(&one.sellers);
        analyst += one.analyst;
    }
    sellers.scale(1.0 / test.len() as f64);
    CompositeShapley {
        sellers,
        analyst: analyst / test.len() as f64,
    }
}

/// Theorem 11: composite-game SVs for *weighted* KNN classification, one
/// test point, O(N^K) (delegates to the Theorem 7 driver with composite
/// binomial weights).
pub fn composite_weighted_knn_class_shapley_single(
    train: &ClassDataset,
    query: &[f32],
    test_label: u32,
    k: usize,
    weight: WeightFn,
) -> CompositeShapley {
    let (sellers, grand) = crate::exact_weighted::weighted_class_shapley_form(
        train,
        query,
        test_label,
        k,
        weight,
        GameForm::Composite,
    );
    let analyst = grand - sellers.total();
    CompositeShapley { sellers, analyst }
}

/// Theorem 11 for weighted KNN regression.
pub fn composite_weighted_knn_reg_shapley_single(
    train: &RegDataset,
    query: &[f32],
    test_target: f64,
    k: usize,
    weight: WeightFn,
) -> CompositeShapley {
    let (sellers, grand) = crate::exact_weighted::weighted_reg_shapley_form(
        train,
        query,
        test_target,
        k,
        weight,
        GameForm::Composite,
    );
    let analyst = grand - sellers.total();
    CompositeShapley { sellers, analyst }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_enum::shapley_enumeration;
    use crate::exact_unweighted::knn_class_shapley_single;
    use crate::utility::{KnnClassUtility, KnnRegUtility};
    use knnshap_datasets::Features;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_class(seed: u64, n: usize) -> (ClassDataset, ClassDataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let feats: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        (
            ClassDataset::new(Features::new(feats, 2), labels, 2),
            ClassDataset::new(
                Features::new(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)], 2),
                vec![rng.gen_range(0..2)],
                2,
            ),
        )
    }

    fn random_reg(seed: u64, n: usize) -> (RegDataset, RegDataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let feats: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let targets: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        (
            RegDataset::new(Features::new(feats, 2), targets),
            RegDataset::new(
                Features::new(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)], 2),
                vec![rng.gen_range(-2.0..2.0)],
            ),
        )
    }

    #[test]
    fn theorem9_matches_composite_enumeration() {
        for seed in 0..6u64 {
            for k in [1usize, 2, 3, 8, 12] {
                let (train, test) = random_class(seed, 8);
                let base = KnnClassUtility::unweighted(&train, &test, k);
                let comp = CompositeUtility::new(&base);
                let truth = shapley_enumeration(&comp);
                let fast = composite_knn_class_shapley_single(&train, test.x.row(0), test.y[0], k);
                for i in 0..train.len() {
                    assert!(
                        (fast.sellers[i] - truth[i]).abs() < 1e-10,
                        "seed={seed} k={k} i={i}: {} vs {}",
                        fast.sellers[i],
                        truth[i]
                    );
                }
                assert!(
                    (fast.analyst - truth[comp.analyst_player()]).abs() < 1e-10,
                    "seed={seed} k={k} analyst"
                );
            }
        }
    }

    #[test]
    fn theorem10_matches_composite_enumeration() {
        for seed in 0..5u64 {
            for k in [1usize, 2, 3] {
                let (train, test) = random_reg(seed, 7);
                let base = KnnRegUtility::unweighted(&train, &test, k);
                let comp = CompositeUtility::new(&base);
                let truth = shapley_enumeration(&comp);
                let fast = composite_knn_reg_shapley_single(&train, test.x.row(0), test.y[0], k);
                for i in 0..train.len() {
                    assert!(
                        (fast.sellers[i] - truth[i]).abs() < 1e-9,
                        "seed={seed} k={k} i={i}: {} vs {}",
                        fast.sellers[i],
                        truth[i]
                    );
                }
                assert!((fast.analyst - truth[comp.analyst_player()]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn theorem11_matches_composite_enumeration() {
        let w = WeightFn::InverseDistance { eps: 1e-3 };
        for seed in 0..4u64 {
            for k in [1usize, 2, 3] {
                let (train, test) = random_class(seed, 7);
                let base = KnnClassUtility::new(&train, &test, k, w);
                let comp = CompositeUtility::new(&base);
                let truth = shapley_enumeration(&comp);
                let fast = composite_weighted_knn_class_shapley_single(
                    &train,
                    test.x.row(0),
                    test.y[0],
                    k,
                    w,
                );
                for i in 0..train.len() {
                    assert!(
                        (fast.sellers[i] - truth[i]).abs() < 1e-9,
                        "seed={seed} k={k} i={i}: {} vs {}",
                        fast.sellers[i],
                        truth[i]
                    );
                }
                assert!((fast.analyst - truth[comp.analyst_player()]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn theorem11_regression_matches_enumeration() {
        let w = WeightFn::Exponential { beta: 0.5 };
        let (train, test) = random_reg(3, 6);
        let base = KnnRegUtility::new(&train, &test, 2, w);
        let comp = CompositeUtility::new(&base);
        let truth = shapley_enumeration(&comp);
        let fast =
            composite_weighted_knn_reg_shapley_single(&train, test.x.row(0), test.y[0], 2, w);
        for i in 0..train.len() {
            assert!((fast.sellers[i] - truth[i]).abs() < 1e-9, "i={i}");
        }
        assert!((fast.analyst - truth[comp.analyst_player()]).abs() < 1e-9);
    }

    #[test]
    fn seller_share_halved_vs_data_only() {
        // eqs. (88)-(89): composite seller values are at most half the
        // data-only values (ratio (min{i,K}+1)/(2(i+1)) ≤ 1/2), so the
        // analyst takes at least half of ν(I).
        let (train, test) = random_class(9, 20);
        let k = 3;
        let comp = composite_knn_class_shapley_single(&train, test.x.row(0), test.y[0], k);
        let data_only = knn_class_shapley_single(&train, test.x.row(0), test.y[0], k);
        let grand = comp.sellers.total() + comp.analyst;
        assert!((data_only.total() - grand).abs() < 1e-10); // both games share ν(I)
        if grand > 0.0 {
            assert!(
                comp.analyst >= grand / 2.0 - 1e-10,
                "analyst={} grand={grand}",
                comp.analyst
            );
        }
    }

    #[test]
    fn analyst_value_grows_with_utility() {
        // Fig. 15(a): s_C increases with the total utility of the model.
        // Two separated clusters with clean labels (high utility) vs. the
        // same geometry with every label flipped (utility ≈ 0).
        let feats: Vec<f32> = (0..16)
            .map(|i| {
                if i % 2 == 0 {
                    i as f32 * 0.01
                } else {
                    10.0 + i as f32 * 0.01
                }
            })
            .collect();
        let labels: Vec<u32> = (0..16).map(|i| (i % 2) as u32).collect();
        let train = ClassDataset::new(Features::new(feats, 1), labels.clone(), 2);
        let test = ClassDataset::new(
            Features::new(vec![0.05, 10.05, 0.02, 10.07], 1),
            vec![0, 1, 0, 1],
            2,
        );
        let good = composite_knn_class_shapley(&train, &test, 2);
        let flipped: Vec<u32> = labels.iter().map(|&l| 1 - l).collect();
        let bad_train = ClassDataset::new(train.x.clone(), flipped, 2);
        let bad = composite_knn_class_shapley(&bad_train, &test, 2);
        assert!(
            good.analyst > bad.analyst,
            "good={} bad={}",
            good.analyst,
            bad.analyst
        );
        // With a perfect model the analyst's share is large and positive.
        assert!(good.analyst > 0.4, "analyst={}", good.analyst);
    }

    #[test]
    fn composite_multi_test_is_average() {
        let (train, _) = random_class(4, 10);
        let mut rng = StdRng::seed_from_u64(77);
        let test = ClassDataset::new(
            Features::new((0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), 2),
            vec![0, 1, 0],
            2,
        );
        let avg = composite_knn_class_shapley(&train, &test, 2);
        let mut manual = ShapleyValues::zeros(train.len());
        let mut analyst = 0.0;
        for j in 0..test.len() {
            let one = composite_knn_class_shapley_single(&train, test.x.row(j), test.y[j], 2);
            manual.add_assign(&one.sellers);
            analyst += one.analyst;
        }
        manual.scale(1.0 / 3.0);
        assert!(avg.sellers.max_abs_diff(&manual) < 1e-12);
        assert!((avg.analyst - analyst / 3.0).abs() < 1e-12);
    }
}
