//! Permutation-sample-complexity bounds for Monte Carlo Shapley estimation.
//!
//! * **Hoeffding** (baseline, §2.2, after Maleki et al.): to get an
//!   (ε, δ)-approximation, `T ≥ ((b−a)²/(2ε²)) ln(2N/δ)` permutations
//!   suffice, where `b−a` is the width of the interval containing the
//!   utility differences `φ_i`.
//! * **Bennett** (Theorem 5): exploiting that `φ_i = 0` whenever adding point
//!   `i` does not change the K-nearest set — which for the rank-`i` point
//!   happens with probability `q_i = (i−K)/i` (eq. 33) — the variance of
//!   `φ_i` is at most `(1−q_i²) r²` and the required `T*` solves
//!   `Σ_i exp(−T(1−q_i²) h(ε/((1−q_i²) r))) = δ/2` (eq. 32).
//! * **Approximate Bennett** (Appendix H): `T̃ = (1/h(ε/r)) ln(2K/δ)`
//!   (eq. 134), lower-bounded by `(r²/ε²) ln(2K/δ)` (eq. 35) and notably
//!   *independent of N* — the key qualitative claim of Fig. 11.
//!
//! ### Range convention
//!
//! The paper uses `r` for both "the range of the utility differences" (§2.2)
//! and "the range `[−r, r]`" (Theorem 5); for the unweighted KNN classifier
//! it states `r = 1/K`, which is the *almost-sure bound* `|φ_i| ≤ 1/K`
//! (adding a point swaps at most one vote of weight 1/K). To keep the two
//! bounds comparable, every function here takes `phi_bound` = the a.s. bound
//! on `|φ_i|` (1/K for unweighted KNN classification); Hoeffding then uses
//! interval width `2·phi_bound` and Bennett uses `r = phi_bound`, matching
//! Theorem 5 exactly.

use knnshap_numerics::roots::bisect_with_growing_bracket;
use knnshap_numerics::special::bennett_h;

/// A.s. bound on the utility difference `|φ_i|` for the unweighted KNN
/// classifier utility (paper: `r = 1/K`).
pub fn knn_class_phi_bound(k: usize) -> f64 {
    assert!(k >= 1);
    1.0 / k as f64
}

/// The §6.2.2 heuristic stopping threshold: `ε/50`.
///
/// The paper terminates the Monte Carlo estimators "when the change of the
/// SV estimates in two consecutive iterations is below ε/50"; this is the one
/// place that constant lives, so the [`crate::mc::StoppingRule::Heuristic`]
/// docs and every caller constructing one stay in agreement.
///
/// ```
/// use knnshap_core::bounds::heuristic_threshold;
/// assert_eq!(heuristic_threshold(0.1), 0.002);
/// ```
pub fn heuristic_threshold(eps: f64) -> f64 {
    assert!(eps > 0.0, "epsilon must be positive");
    eps / 50.0
}

/// Ceiling on permutations ingested per round by the snapshot/heuristic paths
/// of the parallel Monte Carlo runtime (`crate::mc`).
const MAX_MC_ROUND: usize = 64;

/// Budget→round mapping for the parallel Monte Carlo runtime: how many
/// permutation streams the snapshot/heuristic paths of `crate::mc` launch per
/// round before folding them — in permutation order — into the running
/// estimate.
///
/// A function of the budget alone (never of the thread count, which would
/// break the bitwise-determinism contract): small budgets get small rounds so
/// the heuristic rule keeps its per-permutation granularity cheaply, large
/// budgets saturate at 64 in-flight contribution vectors to bound memory at
/// `64·N` floats while leaving the pool plenty to steal.
pub fn mc_round_size(budget: usize) -> usize {
    budget
        .div_ceil(64)
        .clamp(8, MAX_MC_ROUND)
        .min(budget.max(1))
}

/// Hoeffding permutation budget `T = ⌈((2·phi_bound)²/(2ε²)) ln(2N/δ)⌉`.
///
/// ```
/// use knnshap_core::bounds::{bennett_permutations, hoeffding_permutations};
///
/// // Fig. 11's headline: the Hoeffding budget keeps growing with N while the
/// // Bennett budget (which sees the collapsing per-point variance, eq. 33)
/// // stays flat — and sits far below it.
/// let r = 1.0; // K = 1 ⇒ φ ∈ [−1, 1]
/// let (h1, h2) = (
///     hoeffding_permutations(1_000, 0.1, 0.1, r),
///     hoeffding_permutations(100_000, 0.1, 0.1, r),
/// );
/// let (b1, b2) = (
///     bennett_permutations(1_000, 1, 0.1, 0.1, r),
///     bennett_permutations(100_000, 1, 0.1, 0.1, r),
/// );
/// assert!(h2 > h1);
/// assert_eq!(b1, b2);
/// assert!(b1 < h1 / 2);
/// ```
pub fn hoeffding_permutations(n: usize, eps: f64, delta: f64, phi_bound: f64) -> usize {
    assert!(n >= 1 && eps > 0.0 && phi_bound > 0.0);
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    let width = 2.0 * phi_bound;
    let t = width * width / (2.0 * eps * eps) * (2.0 * n as f64 / delta).ln();
    t.ceil().max(1.0) as usize
}

/// `q_i`: probability that the rank-`i` (1-based) point leaves the utility
/// unchanged when inserted at a uniformly random position (eq. 33).
pub fn q_i(i: usize, k: usize) -> f64 {
    assert!(i >= 1);
    if i <= k {
        0.0
    } else {
        (i - k) as f64 / i as f64
    }
}

/// Exact Bennett budget `T*`: the root of eq. (32), found by bisection with a
/// geometrically growing bracket (the LHS is strictly decreasing in `T`).
///
/// Cost is O(N) per function evaluation; the per-rank exponents are
/// precomputed so the bisection loop is a pure `exp`-sum.
pub fn bennett_permutations(n: usize, k: usize, eps: f64, delta: f64, phi_bound: f64) -> usize {
    assert!(n >= 1 && k >= 1 && eps > 0.0 && phi_bound > 0.0);
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    let r = phi_bound;
    // a_i = (1 − q_i²)·h(ε / ((1 − q_i²)·r)); Σ_i exp(−T·a_i) = δ/2.
    // Ranks 1..=K share q = 0 and are folded into one weighted term.
    let a_of = |q: f64| {
        let v = 1.0 - q * q;
        v * bennett_h(eps / (v * r))
    };
    let mut exponents: Vec<(f64, f64)> = Vec::with_capacity(n.saturating_sub(k) + 1);
    exponents.push((k.min(n) as f64, a_of(0.0)));
    for i in (k + 1)..=n {
        exponents.push((1.0, a_of(q_i(i, k))));
    }
    let target = delta / 2.0;
    let f = |t: f64| {
        exponents
            .iter()
            .map(|&(mult, a)| mult * (-t * a).exp())
            .sum::<f64>()
            - target
    };
    // f(0) = N − δ/2 > 0; f decreases to −δ/2.
    let t_star = bisect_with_growing_bracket(f, 0.0, 16.0, 1e-6);
    t_star.ceil().max(1.0) as usize
}

/// Approximate Bennett budget `T̃ = ⌈(1/h(ε/r)) ln(2K/δ)⌉` (eq. 134) — the
/// closed-form, N-free approximation of `T*` from Appendix H.
pub fn bennett_permutations_approx(k: usize, eps: f64, delta: f64, phi_bound: f64) -> usize {
    assert!(k >= 1 && eps > 0.0 && phi_bound > 0.0);
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    let t = (2.0 * k as f64 / delta).ln() / bennett_h(eps / phi_bound);
    t.ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_i_shape() {
        assert_eq!(q_i(1, 3), 0.0);
        assert_eq!(q_i(3, 3), 0.0);
        assert!((q_i(4, 3) - 0.25).abs() < 1e-12);
        assert!((q_i(100, 3) - 0.97).abs() < 1e-12);
        // monotone increasing beyond K
        let mut prev = 0.0;
        for i in 4..200 {
            let q = q_i(i, 3);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn hoeffding_grows_logarithmically_with_n() {
        let t1 = hoeffding_permutations(1_000, 0.1, 0.1, 1.0);
        let t2 = hoeffding_permutations(1_000_000, 0.1, 0.1, 1.0);
        assert!(t2 > t1);
        // ratio should be ln(2e6/0.1)/ln(2e4/0.1) ≈ 1.55, far below 1000x
        assert!((t2 as f64 / t1 as f64) < 2.0);
    }

    #[test]
    fn bennett_below_hoeffding() {
        // The whole point of Theorem 5: for the same guarantee, Bennett needs
        // fewer permutations than Hoeffding, with the gap widening in N.
        let k = 5;
        let r = knn_class_phi_bound(k);
        let mut prev_gap = 0.0;
        for n in [1_000usize, 10_000, 100_000] {
            let hoeff = hoeffding_permutations(n, 0.1 * r, 0.1, r);
            let benn = bennett_permutations(n, k, 0.1 * r, 0.1, r);
            assert!(benn < hoeff, "n={n}: bennett={benn} hoeffding={hoeff}");
            let gap = hoeff as f64 / benn as f64;
            assert!(gap >= prev_gap, "gap should widen with n");
            prev_gap = gap;
        }
    }

    #[test]
    fn bennett_saturates_in_n() {
        // Fig. 11: the Bennett budget becomes N-independent for large N.
        let k = 3;
        let r = knn_class_phi_bound(k);
        let t1 = bennett_permutations(10_000, k, 0.05 * r, 0.1, r);
        let t2 = bennett_permutations(100_000, k, 0.05 * r, 0.1, r);
        let ratio = t2 as f64 / t1 as f64;
        assert!(ratio < 1.3, "t1={t1} t2={t2}");
    }

    #[test]
    fn bennett_solves_eq32() {
        // Substitute T* back into the LHS of eq. (32): must be ≤ δ/2 and the
        // value at T*−2 must exceed it (root bracketing sanity).
        let (n, k, eps, delta, r) = (500usize, 2usize, 0.05, 0.1, 0.5);
        let t_star = bennett_permutations(n, k, eps, delta, r);
        let lhs = |t: f64| -> f64 {
            (1..=n)
                .map(|i| {
                    let q = q_i(i, k);
                    let v = 1.0 - q * q;
                    (-t * v * bennett_h(eps / (v * r))).exp()
                })
                .sum()
        };
        assert!(lhs(t_star as f64) <= delta / 2.0 + 1e-6);
        assert!(lhs((t_star as f64 - 2.0).max(0.0)) >= delta / 2.0 - 1e-6);
    }

    #[test]
    fn approx_bennett_close_to_exact_for_large_n() {
        let k = 4;
        let r = knn_class_phi_bound(k);
        let approx = bennett_permutations_approx(k, 0.05 * r, 0.1, r);
        let exact = bennett_permutations(50_000, k, 0.05 * r, 0.1, r);
        let ratio = exact as f64 / approx as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "approx={approx} exact={exact}");
    }

    #[test]
    fn budgets_scale_inverse_quadratically_in_eps() {
        let t1 = hoeffding_permutations(1000, 0.1, 0.1, 1.0);
        let t2 = hoeffding_permutations(1000, 0.05, 0.1, 1.0);
        let ratio = t2 as f64 / t1 as f64;
        assert!((ratio - 4.0).abs() < 0.1, "ratio={ratio}");
    }

    #[test]
    fn knn_phi_bound_is_one_over_k() {
        assert_eq!(knn_class_phi_bound(1), 1.0);
        assert_eq!(knn_class_phi_bound(4), 0.25);
    }

    #[test]
    fn hoeffding_single_point_matches_closed_form() {
        // n = 1 is the smallest legal game; the budget must equal the formula
        // ⌈(2r)²/(2ε²)·ln(2/δ)⌉ evaluated directly.
        let (eps, delta, r) = (0.1f64, 0.05f64, 1.0f64);
        let expect = ((2.0 * r) * (2.0 * r) / (2.0 * eps * eps) * (2.0 / delta).ln()).ceil();
        assert_eq!(hoeffding_permutations(1, eps, delta, r), expect as usize);
    }

    #[test]
    fn hoeffding_floors_at_one_permutation() {
        // A huge ε drives the formula below 1; the budget must clamp, not
        // return 0 (an estimator given budget 0 would divide by zero).
        assert_eq!(hoeffding_permutations(10, 100.0, 0.5, 1.0), 1);
    }

    #[test]
    fn hoeffding_extreme_eps_delta_stay_finite_and_monotone() {
        // Tiny ε and tiny δ blow the budget up but must stay finite, and the
        // budget must be monotone in both.
        let tight = hoeffding_permutations(1000, 1e-4, 1e-9, 1.0);
        assert!(tight > 1_000_000);
        assert!(tight < usize::MAX / 2);
        assert!(hoeffding_permutations(1000, 1e-3, 1e-9, 1.0) < tight);
        assert!(hoeffding_permutations(1000, 1e-4, 1e-3, 1.0) < tight);
        // δ → 1⁻ is legal and cheap.
        let loose = hoeffding_permutations(1000, 0.5, 0.999, 1.0);
        assert!(loose >= 1);
    }

    #[test]
    fn bennett_single_point_matches_closed_form() {
        // n = k = 1: eq. (32) collapses to one term, exp(−T·h(ε/r)) = δ/2,
        // i.e. T = ln(2/δ)/h(ε/r).
        let (eps, delta, r) = (0.1f64, 0.1f64, 1.0f64);
        let expect = ((2.0 / delta).ln() / bennett_h(eps / r)).ceil();
        assert_eq!(bennett_permutations(1, 1, eps, delta, r), expect as usize);
    }

    #[test]
    fn bennett_extreme_eps_floors_at_one() {
        assert_eq!(bennett_permutations(100, 2, 50.0, 0.5, 1.0), 1);
    }

    #[test]
    #[should_panic(expected = "phi_bound > 0.0")]
    fn hoeffding_rejects_zero_range() {
        hoeffding_permutations(10, 0.1, 0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "phi_bound > 0.0")]
    fn bennett_rejects_zero_range() {
        bennett_permutations(10, 1, 0.1, 0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "delta in (0,1)")]
    fn hoeffding_rejects_delta_one() {
        hoeffding_permutations(10, 0.1, 1.0, 1.0);
    }

    #[test]
    fn heuristic_threshold_is_eps_over_50() {
        assert_eq!(heuristic_threshold(0.5), 0.01);
        assert_eq!(heuristic_threshold(1.0), 1.0 / 50.0);
    }

    #[test]
    fn mc_round_size_shape() {
        // Never exceeds the budget, never zero, saturates at MAX_MC_ROUND,
        // and is a function of the budget alone.
        assert_eq!(mc_round_size(1), 1);
        assert_eq!(mc_round_size(5), 5);
        assert_eq!(mc_round_size(100), 8);
        assert_eq!(mc_round_size(100_000), 64);
        for budget in [1usize, 2, 7, 63, 64, 65, 511, 512, 10_000] {
            let r = mc_round_size(budget);
            assert!(r >= 1 && r <= budget.max(1) && r <= 64, "budget={budget}");
        }
    }
}
