//! Permutation-sample-complexity bounds for Monte Carlo Shapley estimation.
//!
//! * **Hoeffding** (baseline, §2.2, after Maleki et al.): to get an
//!   (ε, δ)-approximation, `T ≥ ((b−a)²/(2ε²)) ln(2N/δ)` permutations
//!   suffice, where `b−a` is the width of the interval containing the
//!   utility differences `φ_i`.
//! * **Bennett** (Theorem 5): exploiting that `φ_i = 0` whenever adding point
//!   `i` does not change the K-nearest set — which for the rank-`i` point
//!   happens with probability `q_i = (i−K)/i` (eq. 33) — the variance of
//!   `φ_i` is at most `(1−q_i²) r²` and the required `T*` solves
//!   `Σ_i exp(−T(1−q_i²) h(ε/((1−q_i²) r))) = δ/2` (eq. 32).
//! * **Approximate Bennett** (Appendix H): `T̃ = (1/h(ε/r)) ln(2K/δ)`
//!   (eq. 134), lower-bounded by `(r²/ε²) ln(2K/δ)` (eq. 35) and notably
//!   *independent of N* — the key qualitative claim of Fig. 11.
//!
//! ### Range convention
//!
//! The paper uses `r` for both "the range of the utility differences" (§2.2)
//! and "the range `[−r, r]`" (Theorem 5); for the unweighted KNN classifier
//! it states `r = 1/K`, which is the *almost-sure bound* `|φ_i| ≤ 1/K`
//! (adding a point swaps at most one vote of weight 1/K). To keep the two
//! bounds comparable, every function here takes `phi_bound` = the a.s. bound
//! on `|φ_i|` (1/K for unweighted KNN classification); Hoeffding then uses
//! interval width `2·phi_bound` and Bennett uses `r = phi_bound`, matching
//! Theorem 5 exactly.

use knnshap_numerics::roots::bisect_with_growing_bracket;
use knnshap_numerics::special::bennett_h;

/// A.s. bound on the utility difference `|φ_i|` for the unweighted KNN
/// classifier utility (paper: `r = 1/K`).
pub fn knn_class_phi_bound(k: usize) -> f64 {
    assert!(k >= 1);
    1.0 / k as f64
}

/// Hoeffding permutation budget `T = ⌈((2·phi_bound)²/(2ε²)) ln(2N/δ)⌉`.
///
/// ```
/// use knnshap_core::bounds::{bennett_permutations, hoeffding_permutations};
///
/// // Fig. 11's headline: the Hoeffding budget keeps growing with N while the
/// // Bennett budget (which sees the collapsing per-point variance, eq. 33)
/// // stays flat — and sits far below it.
/// let r = 1.0; // K = 1 ⇒ φ ∈ [−1, 1]
/// let (h1, h2) = (
///     hoeffding_permutations(1_000, 0.1, 0.1, r),
///     hoeffding_permutations(100_000, 0.1, 0.1, r),
/// );
/// let (b1, b2) = (
///     bennett_permutations(1_000, 1, 0.1, 0.1, r),
///     bennett_permutations(100_000, 1, 0.1, 0.1, r),
/// );
/// assert!(h2 > h1);
/// assert_eq!(b1, b2);
/// assert!(b1 < h1 / 2);
/// ```
pub fn hoeffding_permutations(n: usize, eps: f64, delta: f64, phi_bound: f64) -> usize {
    assert!(n >= 1 && eps > 0.0 && phi_bound > 0.0);
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    let width = 2.0 * phi_bound;
    let t = width * width / (2.0 * eps * eps) * (2.0 * n as f64 / delta).ln();
    t.ceil().max(1.0) as usize
}

/// `q_i`: probability that the rank-`i` (1-based) point leaves the utility
/// unchanged when inserted at a uniformly random position (eq. 33).
pub fn q_i(i: usize, k: usize) -> f64 {
    assert!(i >= 1);
    if i <= k {
        0.0
    } else {
        (i - k) as f64 / i as f64
    }
}

/// Exact Bennett budget `T*`: the root of eq. (32), found by bisection with a
/// geometrically growing bracket (the LHS is strictly decreasing in `T`).
///
/// Cost is O(N) per function evaluation; the per-rank exponents are
/// precomputed so the bisection loop is a pure `exp`-sum.
pub fn bennett_permutations(n: usize, k: usize, eps: f64, delta: f64, phi_bound: f64) -> usize {
    assert!(n >= 1 && k >= 1 && eps > 0.0 && phi_bound > 0.0);
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    let r = phi_bound;
    // a_i = (1 − q_i²)·h(ε / ((1 − q_i²)·r)); Σ_i exp(−T·a_i) = δ/2.
    // Ranks 1..=K share q = 0 and are folded into one weighted term.
    let a_of = |q: f64| {
        let v = 1.0 - q * q;
        v * bennett_h(eps / (v * r))
    };
    let mut exponents: Vec<(f64, f64)> = Vec::with_capacity(n.saturating_sub(k) + 1);
    exponents.push((k.min(n) as f64, a_of(0.0)));
    for i in (k + 1)..=n {
        exponents.push((1.0, a_of(q_i(i, k))));
    }
    let target = delta / 2.0;
    let f = |t: f64| {
        exponents
            .iter()
            .map(|&(mult, a)| mult * (-t * a).exp())
            .sum::<f64>()
            - target
    };
    // f(0) = N − δ/2 > 0; f decreases to −δ/2.
    let t_star = bisect_with_growing_bracket(f, 0.0, 16.0, 1e-6);
    t_star.ceil().max(1.0) as usize
}

/// Approximate Bennett budget `T̃ = ⌈(1/h(ε/r)) ln(2K/δ)⌉` (eq. 134) — the
/// closed-form, N-free approximation of `T*` from Appendix H.
pub fn bennett_permutations_approx(k: usize, eps: f64, delta: f64, phi_bound: f64) -> usize {
    assert!(k >= 1 && eps > 0.0 && phi_bound > 0.0);
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    let t = (2.0 * k as f64 / delta).ln() / bennett_h(eps / phi_bound);
    t.ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_i_shape() {
        assert_eq!(q_i(1, 3), 0.0);
        assert_eq!(q_i(3, 3), 0.0);
        assert!((q_i(4, 3) - 0.25).abs() < 1e-12);
        assert!((q_i(100, 3) - 0.97).abs() < 1e-12);
        // monotone increasing beyond K
        let mut prev = 0.0;
        for i in 4..200 {
            let q = q_i(i, 3);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn hoeffding_grows_logarithmically_with_n() {
        let t1 = hoeffding_permutations(1_000, 0.1, 0.1, 1.0);
        let t2 = hoeffding_permutations(1_000_000, 0.1, 0.1, 1.0);
        assert!(t2 > t1);
        // ratio should be ln(2e6/0.1)/ln(2e4/0.1) ≈ 1.55, far below 1000x
        assert!((t2 as f64 / t1 as f64) < 2.0);
    }

    #[test]
    fn bennett_below_hoeffding() {
        // The whole point of Theorem 5: for the same guarantee, Bennett needs
        // fewer permutations than Hoeffding, with the gap widening in N.
        let k = 5;
        let r = knn_class_phi_bound(k);
        let mut prev_gap = 0.0;
        for n in [1_000usize, 10_000, 100_000] {
            let hoeff = hoeffding_permutations(n, 0.1 * r, 0.1, r);
            let benn = bennett_permutations(n, k, 0.1 * r, 0.1, r);
            assert!(benn < hoeff, "n={n}: bennett={benn} hoeffding={hoeff}");
            let gap = hoeff as f64 / benn as f64;
            assert!(gap >= prev_gap, "gap should widen with n");
            prev_gap = gap;
        }
    }

    #[test]
    fn bennett_saturates_in_n() {
        // Fig. 11: the Bennett budget becomes N-independent for large N.
        let k = 3;
        let r = knn_class_phi_bound(k);
        let t1 = bennett_permutations(10_000, k, 0.05 * r, 0.1, r);
        let t2 = bennett_permutations(100_000, k, 0.05 * r, 0.1, r);
        let ratio = t2 as f64 / t1 as f64;
        assert!(ratio < 1.3, "t1={t1} t2={t2}");
    }

    #[test]
    fn bennett_solves_eq32() {
        // Substitute T* back into the LHS of eq. (32): must be ≤ δ/2 and the
        // value at T*−2 must exceed it (root bracketing sanity).
        let (n, k, eps, delta, r) = (500usize, 2usize, 0.05, 0.1, 0.5);
        let t_star = bennett_permutations(n, k, eps, delta, r);
        let lhs = |t: f64| -> f64 {
            (1..=n)
                .map(|i| {
                    let q = q_i(i, k);
                    let v = 1.0 - q * q;
                    (-t * v * bennett_h(eps / (v * r))).exp()
                })
                .sum()
        };
        assert!(lhs(t_star as f64) <= delta / 2.0 + 1e-6);
        assert!(lhs((t_star as f64 - 2.0).max(0.0)) >= delta / 2.0 - 1e-6);
    }

    #[test]
    fn approx_bennett_close_to_exact_for_large_n() {
        let k = 4;
        let r = knn_class_phi_bound(k);
        let approx = bennett_permutations_approx(k, 0.05 * r, 0.1, r);
        let exact = bennett_permutations(50_000, k, 0.05 * r, 0.1, r);
        let ratio = exact as f64 / approx as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "approx={approx} exact={exact}");
    }

    #[test]
    fn budgets_scale_inverse_quadratically_in_eps() {
        let t1 = hoeffding_permutations(1000, 0.1, 0.1, 1.0);
        let t2 = hoeffding_permutations(1000, 0.05, 0.1, 1.0);
        let ratio = t2 as f64 / t1 as f64;
        assert!((ratio - 4.0).abs() < 0.1, "ratio={ratio}");
    }

    #[test]
    fn knn_phi_bound_is_one_over_k() {
        assert_eq!(knn_class_phi_bound(1), 1.0);
        assert_eq!(knn_class_phi_bound(4), 0.25);
    }
}
