//! Theorem 7 (Appendix E.2): exact Shapley values for *weighted* KNN
//! classifiers and regressors in O(N^K) time — and, through the same driver,
//! Theorem 11's composite-game variant.
//!
//! The paper's key observation (Fig. 4): a KNN utility only depends on the
//! identity of the top-K neighbors, and there are at most `N^K` distinct
//! top-K sets, so the exponential sum of eq. (2) collapses to a polynomial
//! one. Concretely, for the adjacent-rank difference (Lemma 1)
//!
//! ```text
//! s_i − s_{i+1} = 1/(N−1) Σ_{S ⊆ I\{i,i+1}} [ν(S∪{i}) − ν(S∪{i+1})] / C(N−2, |S|)
//! ```
//!
//! only coalitions whose top-(K−1) set can change the difference matter:
//! subsets of size `≤ K−2` contribute directly, and each subset `S` of size
//! `K−1` represents all of its supersets whose extra members rank farther
//! than `max rank(S ∪ {i, i+1})`, contributing with multiplicity
//! `W(m) = Σ_{k≥K−1} C(N−m, k−K+1)/C(N−2, k)` (eqs. 74–77; `W` is
//! precomputed per rank in log-space binomials). In the composite game
//! ([`GameForm::Composite`], Theorem 11) the analyst is a mandatory extra
//! player, shifting every binomial to `C(N−1, k+1)` and the prefactor to
//! `1/N` (eq. 94).
//!
//! The data-only recursion base is recovered from the efficiency axiom
//! `Σ_j s_j = ν(I) − ν(∅)` rather than by enumerating `B_k(α_N)` — cheaper
//! by a factor of `N` and validated against the O(2^N) enumeration in the
//! tests. The composite base is eq. (93), which costs one subset sweep.
//! Note eq. (75)/(94) in the paper read `s_{α_{i+1}} = s_{α_i} + Δ`;
//! consistency with Lemma 1 (and with the enumeration ground truth) requires
//! `s_{α_i} = s_{α_{i+1}} + Δ`, which is what we implement.

use crate::composite::GameForm;
use crate::types::ShapleyValues;
use knnshap_datasets::{ClassDataset, RegDataset};
use knnshap_knn::distance::Metric;
use knnshap_knn::graph::KnnGraph;
use knnshap_knn::neighbors::{argsort_by_distance, Neighbor};
use knnshap_knn::weights::WeightFn;
use knnshap_numerics::binom::{Combinations, LogFactorialTable};

/// Which estimate the weighted utility scores.
enum Task<'a> {
    /// 1[label == test label] votes (eq. 26).
    Class { labels: &'a [u32], test_label: u32 },
    /// −(prediction − target)² (eq. 27), ν(∅) = 0 convention.
    Reg {
        targets: &'a [f64],
        test_target: f64,
    },
}

impl Task<'_> {
    /// Utility of a coalition given as ascending *ranks* (0-based; rank r is
    /// the (r+1)-nearest point). All members are within the top-K because
    /// Theorem 7 only ever evaluates coalitions of size ≤ K.
    fn utility(&self, ranks: &[usize], dists_l2: &[f32], k: usize, weight: WeightFn) -> f64 {
        if ranks.is_empty() {
            return 0.0;
        }
        debug_assert!(ranks.len() <= k);
        debug_assert!(ranks.windows(2).all(|w| w[0] < w[1]));
        let d: Vec<f32> = ranks.iter().map(|&r| dists_l2[r]).collect();
        let w = weight.weights(&d, k);
        match self {
            Task::Class { labels, test_label } => ranks
                .iter()
                .zip(&w)
                .filter(|(&r, _)| labels[r] == *test_label)
                .map(|(_, &wk)| wk)
                .sum(),
            Task::Reg {
                targets,
                test_target,
            } => {
                let pred: f64 = ranks.iter().zip(&w).map(|(&r, &wk)| wk * targets[r]).sum();
                let e = pred - test_target;
                -(e * e)
            }
        }
    }
}

/// `W(m)` of eq. (77) (data-only) or its eq. (94) analogue (composite) for
/// every 1-based max-rank `m`, in log-space binomials.
fn multiplicity_table(n: usize, k: usize, lf: &LogFactorialTable, form: GameForm) -> Vec<f64> {
    let mut w = vec![0.0f64; n + 1];
    for (m, slot) in w.iter_mut().enumerate().skip(1) {
        let avail = n - m; // points ranked strictly beyond m
        let mut acc = 0.0;
        for kk in (k - 1)..=(n.saturating_sub(2)) {
            let extra = kk - (k - 1);
            if extra > avail {
                break;
            }
            acc += match form {
                GameForm::DataOnly => lf.binomial_ratio(avail, extra, n - 2, kk),
                GameForm::Composite => lf.binomial_ratio(avail, extra, n - 1, kk + 1),
            };
        }
        *slot = acc;
    }
    w
}

/// Shapley values per *rank* for one test point plus the grand-coalition
/// utility ν(I); `dists_l2` must be the ascending sorted distances.
fn weighted_shapley_ranked(
    task: &Task<'_>,
    dists_l2: &[f32],
    k: usize,
    weight: WeightFn,
    form: GameForm,
) -> (Vec<f64>, f64) {
    let n = dists_l2.len();
    assert!(n >= 1);
    let grand_ranks: Vec<usize> = (0..n.min(k)).collect();
    let nu_grand = task.utility(&grand_ranks, dists_l2, k, weight);
    if n == 1 {
        // One seller: data-only gives them everything; in the composite game
        // the seller and the analyst are symmetric and split ν(I) evenly.
        let v = match form {
            GameForm::DataOnly => nu_grand,
            GameForm::Composite => nu_grand / 2.0,
        };
        return (vec![v], nu_grand);
    }

    let lf = LogFactorialTable::new(n.max(2));
    let need_big_branch = k - 1 <= n - 2;
    let w_table = if need_big_branch {
        multiplicity_table(n, k, &lf, form)
    } else {
        Vec::new()
    };
    let prefactor = match form {
        GameForm::DataOnly => 1.0 / (n - 1) as f64,
        GameForm::Composite => 1.0 / n as f64,
    };
    let small_divisor = |sz: usize| -> f64 {
        match form {
            GameForm::DataOnly => lf.binomial(n - 2, sz),
            GameForm::Composite => lf.binomial(n - 1, sz + 1),
        }
    };

    // d[i] = s_{rank i} − s_{rank i+1} for 0-based adjacent ranks.
    let mut d = vec![0.0f64; n - 1];
    let mut coalition: Vec<usize> = Vec::with_capacity(k);
    let mut others: Vec<usize> = Vec::with_capacity(n - 2);
    for (i, di) in d.iter_mut().enumerate() {
        others.clear();
        others.extend((0..n).filter(|&r| r != i && r != i + 1));
        let mut total = 0.0f64;

        // Small coalitions: |S| ≤ K−2, every member inside the top-K of both
        // S∪{i} and S∪{i+1} regardless of what else joins.
        if k >= 2 {
            for sz in 0..=(k - 2).min(n - 2) {
                let mut acc = 0.0f64;
                let mut combos = Combinations::new(others.len(), sz);
                while let Some(c) = combos.next_combination() {
                    let diff = pair_diff(task, dists_l2, k, weight, &others, c, i, &mut coalition);
                    acc += diff;
                }
                total += acc / small_divisor(sz);
            }
        }

        // Representative coalitions of size exactly K−1, each standing in for
        // all supersets whose extras rank beyond max(S∪{i,i+1}), carrying the
        // W(m) multiplicity.
        if need_big_branch {
            let sz = k - 1;
            let mut combos = Combinations::new(others.len(), sz);
            while let Some(c) = combos.next_combination() {
                // max 1-based rank over S ∪ {i, i+1}: ranks are 0-based here.
                let max_rank0 = c
                    .iter()
                    .map(|&ci| others[ci])
                    .chain([i + 1])
                    .max()
                    .expect("nonempty");
                let diff = pair_diff(task, dists_l2, k, weight, &others, c, i, &mut coalition);
                total += diff * w_table[max_rank0 + 1];
            }
        }

        *di = total * prefactor;
    }

    // Recursion base.
    let s_last = match form {
        GameForm::DataOnly => {
            // Efficiency: Σ_j s_j = ν(I) − ν(∅) = nu_grand (ν(∅) = 0).
            let weighted_d: f64 = d
                .iter()
                .enumerate()
                .map(|(i0, &di)| (i0 + 1) as f64 * di)
                .sum();
            (nu_grand - weighted_d) / n as f64
        }
        GameForm::Composite => {
            // Eq. (93): s_{α_N} = 1/(N+1) Σ_{sz≤K−1} (1/C(N, sz+1))
            //                     Σ_{S∈B_sz(α_N)} [ν(S∪{α_N}) − ν(S)].
            let mut acc = 0.0f64;
            let others_last: Vec<usize> = (0..n - 1).collect();
            let mut with: Vec<usize> = Vec::with_capacity(k);
            for sz in 0..=(k - 1).min(n - 1) {
                let mut inner = 0.0f64;
                let mut combos = Combinations::new(others_last.len(), sz);
                while let Some(c) = combos.next_combination() {
                    with.clear();
                    with.extend(c.iter().map(|&ci| others_last[ci]));
                    let without = task.utility(&with, dists_l2, k, weight);
                    with.push(n - 1); // already the largest rank, stays sorted
                    let with_last = task.utility(&with, dists_l2, k, weight);
                    inner += with_last - without;
                }
                acc += inner / lf.binomial(n, sz + 1);
            }
            acc / (n + 1) as f64
        }
    };

    let mut s = vec![0.0f64; n];
    s[n - 1] = s_last;
    for i in (0..n - 1).rev() {
        s[i] = s[i + 1] + d[i];
    }
    (s, nu_grand)
}

/// `ν(S∪{i}) − ν(S∪{i+1})` where `S` is the combination `c` over `others`.
#[allow(clippy::too_many_arguments)]
fn pair_diff(
    task: &Task<'_>,
    dists_l2: &[f32],
    k: usize,
    weight: WeightFn,
    others: &[usize],
    c: &[usize],
    i: usize,
    coalition: &mut Vec<usize>,
) -> f64 {
    let build = |extra: usize, coalition: &mut Vec<usize>| {
        coalition.clear();
        coalition.extend(c.iter().map(|&ci| others[ci]));
        coalition.push(extra);
        coalition.sort_unstable();
    };
    build(i, coalition);
    let with_i = task.utility(coalition, dists_l2, k, weight);
    build(i + 1, coalition);
    let with_next = task.utility(coalition, dists_l2, k, weight);
    with_i - with_next
}

fn map_back(ranked_idx: &[u32], per_rank: &[f64], n: usize) -> ShapleyValues {
    let mut out = ShapleyValues::zeros(n);
    for (rank, &idx) in ranked_idx.iter().enumerate() {
        out.as_mut_slice()[idx as usize] = per_rank[rank];
    }
    out
}

/// Weighted classification SVs under either game form; returns the values
/// and ν(I) (the composite layer derives the analyst value from the latter).
pub(crate) fn weighted_class_shapley_form(
    train: &ClassDataset,
    query: &[f32],
    test_label: u32,
    k: usize,
    weight: WeightFn,
    form: GameForm,
) -> (ShapleyValues, f64) {
    let ranked = argsort_by_distance(&train.x, query, Metric::SquaredL2);
    weighted_class_shapley_ranked_form(train, &ranked, test_label, k, weight, form)
}

/// [`weighted_class_shapley_form`] over an already-computed ranking — the
/// seam the graph-backed path enters through. The stored graph distances
/// are bitwise-identical squared-L2 values, so `sqrt` here produces the
/// exact floats the brute-force path feeds the recursion.
fn weighted_class_shapley_ranked_form(
    train: &ClassDataset,
    ranked: &[Neighbor],
    test_label: u32,
    k: usize,
    weight: WeightFn,
    form: GameForm,
) -> (ShapleyValues, f64) {
    assert!(k >= 1, "K must be at least 1");
    let idx: Vec<u32> = ranked.iter().map(|r| r.index).collect();
    let dists: Vec<f32> = ranked.iter().map(|r| r.dist.sqrt()).collect();
    let labels: Vec<u32> = idx.iter().map(|&i| train.y[i as usize]).collect();
    let task = Task::Class {
        labels: &labels,
        test_label,
    };
    let (per_rank, grand) = weighted_shapley_ranked(&task, &dists, k, weight, form);
    (map_back(&idx, &per_rank, train.len()), grand)
}

/// Weighted regression SVs under either game form.
pub(crate) fn weighted_reg_shapley_form(
    train: &RegDataset,
    query: &[f32],
    test_target: f64,
    k: usize,
    weight: WeightFn,
    form: GameForm,
) -> (ShapleyValues, f64) {
    let ranked = argsort_by_distance(&train.x, query, Metric::SquaredL2);
    weighted_reg_shapley_ranked_form(train, &ranked, test_target, k, weight, form)
}

/// Regression analogue of [`weighted_class_shapley_ranked_form`].
fn weighted_reg_shapley_ranked_form(
    train: &RegDataset,
    ranked: &[Neighbor],
    test_target: f64,
    k: usize,
    weight: WeightFn,
    form: GameForm,
) -> (ShapleyValues, f64) {
    assert!(k >= 1, "K must be at least 1");
    let idx: Vec<u32> = ranked.iter().map(|r| r.index).collect();
    let dists: Vec<f32> = ranked.iter().map(|r| r.dist.sqrt()).collect();
    let targets: Vec<f64> = idx.iter().map(|&i| train.y[i as usize]).collect();
    let task = Task::Reg {
        targets: &targets,
        test_target,
    };
    let (per_rank, grand) = weighted_shapley_ranked(&task, &dists, k, weight, form);
    (map_back(&idx, &per_rank, train.len()), grand)
}

/// Exact weighted-KNN classification SVs for a single test point (Theorem 7).
pub fn weighted_knn_class_shapley_single(
    train: &ClassDataset,
    query: &[f32],
    test_label: u32,
    k: usize,
    weight: WeightFn,
) -> ShapleyValues {
    weighted_class_shapley_form(train, query, test_label, k, weight, GameForm::DataOnly).0
}

/// Exact weighted-KNN regression SVs for a single test point (Theorem 7).
pub fn weighted_knn_reg_shapley_single(
    train: &RegDataset,
    query: &[f32],
    test_target: f64,
    k: usize,
    weight: WeightFn,
) -> ShapleyValues {
    weighted_reg_shapley_form(train, query, test_target, k, weight, GameForm::DataOnly).0
}

/// Multi-test weighted classification SVs (average of per-test games),
/// parallelized over test points into exact accumulators — bitwise-identical
/// at every thread count and reproducible by any full shard set from
/// [`weighted_knn_class_shapley_shard`].
pub fn weighted_knn_class_shapley(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    weight: WeightFn,
    threads: usize,
) -> ShapleyValues {
    assert!(!test.is_empty(), "need at least one test point");
    let sums = class_shard_sums(train, test, k, weight, 0..test.len(), threads);
    crate::sharding::finalize_mean(&sums, test.len() as u64)
}

/// Weighted-classification partial sums over one canonical shard of the test
/// range (Theorem 7 rides the same per-test additivity decomposition as
/// Theorem 1, so the shard/merge determinism contract of
/// [`crate::sharding`] applies unchanged).
pub fn weighted_knn_class_shapley_shard(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    weight: WeightFn,
    spec: crate::sharding::ShardSpec,
    threads: usize,
) -> crate::sharding::ShardPartial {
    use crate::sharding::{ShardKind, ShardPartial};
    assert!(!test.is_empty(), "need at least one test point");
    let range = spec.range(test.len());
    let sums = class_shard_sums(train, test, k, weight, range.clone(), threads);
    let fingerprint = weighted_class_fingerprint(train, test, k, weight);
    ShardPartial::new(
        ShardKind::ExactClass,
        fingerprint,
        train.len(),
        test.len(),
        range,
        sums,
    )
}

/// The job fingerprint of the weighted exact-classification family (shares
/// the `ExactClass` kind with the unweighted algorithm; the weight function
/// is part of the hash, so the two never merge together).
pub fn weighted_class_fingerprint(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    weight: WeightFn,
) -> u64 {
    let (wtag, wparam) = crate::sharding::weight_code(weight);
    crate::sharding::Fingerprint::new("exact-class")
        .u64(k as u64)
        .u64(wtag)
        .f64(wparam)
        .u64(crate::sharding::hash_class_dataset(train))
        .u64(crate::sharding::hash_class_dataset(test))
        .finish()
}

fn class_shard_sums(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    weight: WeightFn,
    range: std::ops::Range<usize>,
    threads: usize,
) -> knnshap_numerics::exact::ExactVec {
    crate::sharding::exact_sums_over(train.len(), range, threads, |j, acc| {
        let per_test =
            weighted_knn_class_shapley_single(train, test.x.row(j), test.y[j], k, weight);
        acc.add_dense(per_test.as_slice());
    })
}

/// [`weighted_knn_class_shapley_shard`] fed by a precomputed graph: same
/// kind, same fingerprint, same bits as the brute-force shard. Panics if
/// the graph was not built from `(train.x, test.x)`.
pub fn weighted_knn_class_shapley_graph_shard(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    weight: WeightFn,
    graph: &KnnGraph,
    spec: crate::sharding::ShardSpec,
    threads: usize,
) -> crate::sharding::ShardPartial {
    use crate::sharding::{ShardKind, ShardPartial};
    assert!(!test.is_empty(), "need at least one test point");
    graph
        .validate_against(&train.x, &test.x)
        .expect("graph/dataset mismatch");
    let range = spec.range(test.len());
    let sums = class_graph_shard_sums(train, test, k, weight, graph, range.clone(), threads);
    let fingerprint = weighted_class_fingerprint(train, test, k, weight);
    ShardPartial::new(
        ShardKind::ExactClass,
        fingerprint,
        train.len(),
        test.len(),
        range,
        sums,
    )
}

fn class_graph_shard_sums(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    weight: WeightFn,
    graph: &KnnGraph,
    range: std::ops::Range<usize>,
    threads: usize,
) -> knnshap_numerics::exact::ExactVec {
    crate::sharding::exact_sums_over(train.len(), range, threads, |j, acc| {
        let (per_test, _) = weighted_class_shapley_ranked_form(
            train,
            graph.list(j),
            test.y[j],
            k,
            weight,
            GameForm::DataOnly,
        );
        acc.add_dense(per_test.as_slice());
    })
}

/// [`weighted_knn_class_shapley`] fed by a precomputed graph: skips the
/// distance pass, returns the same bits.
pub fn weighted_knn_class_shapley_from_graph(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    weight: WeightFn,
    graph: &KnnGraph,
    threads: usize,
) -> ShapleyValues {
    assert!(!test.is_empty(), "need at least one test point");
    graph
        .validate_against(&train.x, &test.x)
        .expect("graph/dataset mismatch");
    let sums = class_graph_shard_sums(train, test, k, weight, graph, 0..test.len(), threads);
    crate::sharding::finalize_mean(&sums, test.len() as u64)
}

/// [`weighted_knn_reg_shapley`] fed by a precomputed graph.
pub fn weighted_knn_reg_shapley_from_graph(
    train: &RegDataset,
    test: &RegDataset,
    k: usize,
    weight: WeightFn,
    graph: &KnnGraph,
    threads: usize,
) -> ShapleyValues {
    assert!(!test.is_empty(), "need at least one test point");
    graph
        .validate_against(&train.x, &test.x)
        .expect("graph/dataset mismatch");
    let n_test = test.len();
    let sums = crate::sharding::exact_sums_over(train.len(), 0..n_test, threads, |j, acc| {
        let (per_test, _) = weighted_reg_shapley_ranked_form(
            train,
            graph.list(j),
            test.y[j],
            k,
            weight,
            GameForm::DataOnly,
        );
        acc.add_dense(per_test.as_slice());
    });
    crate::sharding::finalize_mean(&sums, n_test as u64)
}

/// Multi-test weighted regression SVs (exact accumulation; same thread- and
/// shard-invariance contract as [`weighted_knn_class_shapley`]).
pub fn weighted_knn_reg_shapley(
    train: &RegDataset,
    test: &RegDataset,
    k: usize,
    weight: WeightFn,
    threads: usize,
) -> ShapleyValues {
    assert!(!test.is_empty(), "need at least one test point");
    let n_test = test.len();
    let sums = crate::sharding::exact_sums_over(train.len(), 0..n_test, threads, |j, acc| {
        let per_test = weighted_knn_reg_shapley_single(train, test.x.row(j), test.y[j], k, weight);
        acc.add_dense(per_test.as_slice());
    });
    crate::sharding::finalize_mean(&sums, n_test as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_enum::shapley_enumeration;
    use crate::exact_regression::knn_reg_shapley_single;
    use crate::exact_unweighted::knn_class_shapley_single;
    use crate::utility::{KnnClassUtility, KnnRegUtility};
    use knnshap_datasets::Features;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_class(seed: u64, n: usize) -> (ClassDataset, ClassDataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let feats: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let train = ClassDataset::new(Features::new(feats, 2), labels, 3);
        let test = ClassDataset::new(
            Features::new(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)], 2),
            vec![rng.gen_range(0..3)],
            3,
        );
        (train, test)
    }

    fn random_reg(seed: u64, n: usize) -> (RegDataset, RegDataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let feats: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let targets: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let train = RegDataset::new(Features::new(feats, 2), targets);
        let test = RegDataset::new(
            Features::new(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)], 2),
            vec![rng.gen_range(-2.0..2.0)],
        );
        (train, test)
    }

    const INV: WeightFn = WeightFn::InverseDistance { eps: 1e-3 };

    #[test]
    fn classification_matches_enumeration() {
        for seed in 0..5u64 {
            for k in [1usize, 2, 3, 4] {
                let (train, test) = random_class(seed, 8);
                let fast =
                    weighted_knn_class_shapley_single(&train, test.x.row(0), test.y[0], k, INV);
                let truth = shapley_enumeration(&KnnClassUtility::new(&train, &test, k, INV));
                assert!(
                    fast.max_abs_diff(&truth) < 1e-9,
                    "seed={seed} k={k}: err={}",
                    fast.max_abs_diff(&truth)
                );
            }
        }
    }

    #[test]
    fn regression_matches_enumeration() {
        for seed in 0..5u64 {
            for k in [1usize, 2, 3] {
                let (train, test) = random_reg(seed, 7);
                let fast =
                    weighted_knn_reg_shapley_single(&train, test.x.row(0), test.y[0], k, INV);
                let truth = shapley_enumeration(&KnnRegUtility::new(&train, &test, k, INV));
                assert!(
                    fast.max_abs_diff(&truth) < 1e-9,
                    "seed={seed} k={k}: err={}",
                    fast.max_abs_diff(&truth)
                );
            }
        }
    }

    #[test]
    fn uniform_weights_recover_unweighted_classification() {
        let (train, test) = random_class(7, 12);
        for k in [1usize, 3, 5] {
            let weighted = weighted_knn_class_shapley_single(
                &train,
                test.x.row(0),
                test.y[0],
                k,
                WeightFn::Uniform,
            );
            let unweighted = knn_class_shapley_single(&train, test.x.row(0), test.y[0], k);
            assert!(
                weighted.max_abs_diff(&unweighted) < 1e-9,
                "k={k}: err={}",
                weighted.max_abs_diff(&unweighted)
            );
        }
    }

    #[test]
    fn uniform_weights_recover_unweighted_regression() {
        let (train, test) = random_reg(8, 10);
        for k in [1usize, 2, 4] {
            let weighted = weighted_knn_reg_shapley_single(
                &train,
                test.x.row(0),
                test.y[0],
                k,
                WeightFn::Uniform,
            );
            let unweighted = knn_reg_shapley_single(&train, test.x.row(0), test.y[0], k);
            assert!(
                weighted.max_abs_diff(&unweighted) < 1e-9,
                "k={k}: err={}",
                weighted.max_abs_diff(&unweighted)
            );
        }
    }

    #[test]
    fn k_exceeding_n_matches_enumeration() {
        let (train, test) = random_class(3, 6);
        for k in [6usize, 7, 10] {
            let fast = weighted_knn_class_shapley_single(&train, test.x.row(0), test.y[0], k, INV);
            let truth = shapley_enumeration(&KnnClassUtility::new(&train, &test, k, INV));
            assert!(fast.max_abs_diff(&truth) < 1e-9, "k={k}");
        }
    }

    #[test]
    fn multi_test_averages_and_parallelism() {
        let (train, _) = random_class(1, 9);
        let mut rng = StdRng::seed_from_u64(5);
        let test = ClassDataset::new(
            Features::new((0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), 2),
            vec![0, 1, 2, 0],
            3,
        );
        let serial = weighted_knn_class_shapley(&train, &test, 2, INV, 1);
        let par = weighted_knn_class_shapley(&train, &test, 2, INV, 4);
        assert!(serial.max_abs_diff(&par) < 1e-12);
        // average of singles
        let mut manual = ShapleyValues::zeros(train.len());
        for j in 0..test.len() {
            manual.add_assign(&weighted_knn_class_shapley_single(
                &train,
                test.x.row(j),
                test.y[j],
                2,
                INV,
            ));
        }
        manual.scale(1.0 / test.len() as f64);
        assert!(serial.max_abs_diff(&manual) < 1e-12);
    }

    #[test]
    fn single_point_training_set() {
        let train = ClassDataset::new(Features::new(vec![1.0], 1), vec![0], 2);
        let sv = weighted_knn_class_shapley_single(&train, &[0.0], 0, 3, INV);
        // ν({0}) with one vote of weight 1 (normalized) = 1
        assert!((sv[0] - 1.0).abs() < 1e-12);
    }
}
