//! # knnshap-core — the paper's valuation algorithms
//!
//! Implements every algorithm of *Jia et al., "Efficient Task-Specific Data
//! Valuation for Nearest Neighbor Algorithms"* (VLDB 2019):
//!
//! | Paper result | Module | Complexity |
//! |---|---|---|
//! | Theorem 1 / Algorithm 1 — exact SV, unweighted KNN classifier | [`exact_unweighted`] | O(N log N) per test point |
//! | Theorem 2 — truncated (ε, 0)-approximation | [`truncated`] | O(N + K* log K*) |
//! | Theorem 4 — LSH-backed (ε, δ)-approximation | [`lsh_approx`] | sublinear for C_K* > 1 |
//! | Theorem 6 — exact SV, unweighted KNN regression | [`exact_regression`] | O(N log N) |
//! | Theorem 7 — exact SV, weighted KNN | [`exact_weighted`] | O(N^K) |
//! | Theorem 8 — exact SV, multi-data-per-curator | [`curator`] | O(M^K) |
//! | Theorems 9–12 — composite game (sellers + analyst) | [`composite`], [`curator`] | as data-only game |
//! | Baseline MC + Hoeffding bound (§2.2) | [`mc`], [`bounds`] | O((N/ε²) log(N/δ)) evals |
//! | Group-testing baseline of [JDW+19] (Fig. 6's third competitor) | [`group_testing`] | O((log²N/ε²) log(N/δ)) evals |
//! | Theorem 5 / Algorithm 2 — improved MC + Bennett bound | [`mc`], [`bounds`] | O((N/ε²) log K log(K/δ)) |
//! | Appendix F — generic piecewise-difference solver | [`piecewise`] | O(N·T) counting queries |
//!
//! Ground truth for all of the above is the O(2^N) enumeration in
//! [`exact_enum`], used pervasively by the test suite.
//!
//! Around the algorithms sit the paper's §7 applications ([`analysis`]:
//! monetary payouts, noisy-data audits, per-class summaries), the §3.1
//! streaming scenario ([`streaming`]: on-the-fly accumulation as test points
//! arrive), and the [`sharding`] runtime (per-shard partial sums over exact
//! accumulators with a merge that is bitwise-identical to the unsharded run
//! at every shard and thread count — see `docs/sharding.md`).

pub mod analysis;
pub mod axioms;
pub mod bounds;
pub mod composite;
pub mod curator;
pub mod exact_enum;
pub mod exact_regression;
pub mod exact_unweighted;
pub mod exact_weighted;
pub mod group_testing;
pub mod lsh_approx;
pub mod mc;
pub mod piecewise;
pub mod pipeline;
pub mod resident;
pub mod schedule;
pub mod sharding;
pub mod streaming;
pub mod truncated;
pub mod types;
pub mod utility;

pub use pipeline::{KnnShapley, Method, RegMethod, RegShapley, Valuation};
pub use types::ShapleyValues;
pub use utility::Utility;
