//! Theorem 1 / Algorithm 1: exact Shapley values for the unweighted KNN
//! classifier in O(N log N) per test point.
//!
//! For one test point `(x_test, y_test)`, sort training points by distance
//! (`α_i` = index of the i-th nearest). Then:
//!
//! ```text
//! s_{α_N} = 1[y_{α_N} = y_test] / N
//! s_{α_i} = s_{α_{i+1}} + (1[y_{α_i} = y_test] − 1[y_{α_{i+1}} = y_test]) / K · min(K, i) / i
//! ```
//!
//! The multi-test value (utility eq. 8) is the average of per-test values by
//! the additivity axiom (Algorithm 1 lines 8–10). Test points run through
//! `knnshap_parallel::par_map_reduce`: each fixed block of test points folds
//! into a private accumulator (the hot recursion never touches shared
//! state).
//!
//! ### Determinism contract
//!
//! Per-test vectors accumulate in *exact* fixed-point sums
//! ([`knnshap_numerics::exact::ExactVec`]), so the multi-test average is a
//! pure function of the test-point multiset: bitwise-identical for every
//! thread count **and** for every sharding of the test range — the same
//! additivity decomposition that justifies averaging also makes any
//! contiguous test-point range ([`knn_class_shapley_shard`]) an independent
//! unit of work whose merged result reproduces the unsharded bits (see
//! [`crate::sharding`]).

use crate::sharding::{Fingerprint, ShardKind, ShardPartial, ShardSpec};
use crate::types::ShapleyValues;
use knnshap_datasets::ClassDataset;
use knnshap_knn::distance::Metric;
use knnshap_knn::graph::KnnGraph;
use knnshap_knn::neighbors::{argsort_by_distance, Neighbor};
use knnshap_numerics::exact::ExactVec;

/// Exact SVs w.r.t. a single test point (Theorem 1).
pub fn knn_class_shapley_single(
    train: &ClassDataset,
    query: &[f32],
    test_label: u32,
    k: usize,
) -> ShapleyValues {
    let mut out = ShapleyValues::zeros(train.len());
    {
        let acc = out.as_mut_slice();
        accumulate_single(train, query, test_label, k, |i, s| acc[i] += s);
    }
    out
}

/// The Theorem 1 backward recursion over an *abstract* distance ranking.
///
/// `correct(r)` must return `1[y_{α_{r+1}} = y_test]` as an `f64` for the
/// 0-based rank `r`; `sink(r, s)` receives each rank's per-test Shapley
/// value, farthest rank first.
///
/// Backward recursion over ranks (1-based `i` in the paper, 0-based here).
/// The paper states the base as 1[y_{α_N} = y_test]/N, which assumes K < N;
/// re-deriving eq. (15)–(17) without that assumption gives
/// s_{α_N} = 1[...] · min(K, N)/(N·K), which the enumeration ground truth
/// confirms (with K ≥ N the game is additive and every correct point is
/// worth exactly 1/K).
///
/// This is the **one** implementation of the recursion's arithmetic in the
/// workspace: the batch drivers here feed it fresh argsorts, while the
/// resident engine ([`crate::resident`]) feeds it incrementally maintained
/// rank lists (including virtually spliced ones for what-if queries). Both
/// paths therefore execute the identical sequence of float operations, which
/// is what makes the serving layer's bitwise-equality contract hold.
pub fn theorem1_recurrence<C, S>(n: usize, k: usize, correct: C, mut sink: S)
where
    C: Fn(usize) -> f64,
    S: FnMut(usize, f64),
{
    assert!(n >= 1, "need at least one training point");
    assert!(k >= 1, "K must be at least 1");
    let mut s = correct(n - 1) * k.min(n) as f64 / (n as f64 * k as f64);
    sink(n - 1, s);
    for i in (0..n - 1).rev() {
        let rank1 = i + 1; // paper's 1-based rank of element `i`
        s += (correct(i) - correct(i + 1)) / k as f64 * (k.min(rank1) as f64 / rank1 as f64);
        sink(i, s);
    }
}

/// Runs the Theorem 1 recursion for one test point, handing each
/// `(train index, value)` pair to `sink` (a plain slice for the single-test
/// API, an exact accumulator for the multi-test/shard drivers).
fn accumulate_single<S: FnMut(usize, f64)>(
    train: &ClassDataset,
    query: &[f32],
    test_label: u32,
    k: usize,
    sink: S,
) {
    assert!(train.len() >= 1, "need at least one training point");
    let ranked = argsort_by_distance(&train.x, query, Metric::SquaredL2);
    accumulate_ranked(train, &ranked, test_label, k, sink);
}

/// The recursion over an already-computed distance ranking — the seam the
/// graph-backed path enters through. The brute-force path above funnels into
/// this too, so both execute the identical float sequence.
fn accumulate_ranked<S: FnMut(usize, f64)>(
    train: &ClassDataset,
    ranked: &[Neighbor],
    test_label: u32,
    k: usize,
    mut sink: S,
) {
    let n = train.len();
    assert!(n >= 1, "need at least one training point");
    theorem1_recurrence(
        n,
        k,
        |rank| f64::from(train.y[ranked[rank].index as usize] == test_label),
        |rank, s| sink(ranked[rank].index as usize, s),
    );
}

/// Exact partial sums over one canonical shard of the test range, folded
/// with `threads` workers into exact accumulators.
///
/// ### Determinism contract
///
/// The shard's partial state depends only on `(train, test, k)` and the
/// shard's item range — not on `threads`, and not on how the rest of the
/// job is sharded. Merging the partials of any full shard set with
/// [`crate::sharding::merge_partials`] reproduces
/// [`knn_class_shapley_with_threads`] bit for bit.
///
/// ```
/// use knnshap_core::exact_unweighted::{knn_class_shapley, knn_class_shapley_shard};
/// use knnshap_core::sharding::{merge_partials, ShardSpec};
/// use knnshap_datasets::synth::blobs::{self, BlobConfig};
///
/// let cfg = BlobConfig { n: 40, dim: 3, n_classes: 2, ..Default::default() };
/// let (train, test) = (blobs::generate(&cfg), blobs::queries(&cfg, 7, 1));
/// let parts: Vec<_> = (0..2)
///     .map(|i| knn_class_shapley_shard(&train, &test, 1, ShardSpec::new(i, 2), 1))
///     .collect();
/// let merged = merge_partials(&parts).unwrap().values;
/// let whole = knn_class_shapley(&train, &test, 1);
/// assert!(merged.as_slice().iter().zip(whole.as_slice()).all(|(a, b)| a == b));
/// ```
pub fn knn_class_shapley_shard(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    spec: ShardSpec,
    threads: usize,
) -> ShardPartial {
    assert!(!test.is_empty(), "need at least one test point");
    assert_eq!(train.dim(), test.dim(), "train/test dimension mismatch");
    let range = spec.range(test.len());
    let sums = shard_sums(train, test, k, range.clone(), threads);
    let fingerprint = class_fingerprint(train, test, k);
    ShardPartial::new(
        ShardKind::ExactClass,
        fingerprint,
        train.len(),
        test.len(),
        range,
        sums,
    )
}

/// The job fingerprint of the unweighted exact-classification family — also
/// recomputed by the CLI `merge` to cross-check shard files against the
/// datasets and parameters it was invoked with.
pub fn class_fingerprint(train: &ClassDataset, test: &ClassDataset, k: usize) -> u64 {
    Fingerprint::new("exact-class")
        .u64(k as u64)
        .u64(crate::sharding::hash_class_dataset(train))
        .u64(crate::sharding::hash_class_dataset(test))
        .finish()
}

/// The shared fold both the shard entry point and the unsharded driver use.
fn shard_sums(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    range: std::ops::Range<usize>,
    threads: usize,
) -> ExactVec {
    // Dense fill: the recursion assigns every training point exactly one
    // contribution per test point, so each item overwrites the scratch
    // completely and the fold deposits it linearly (same bits, see
    // `exact_sums_over_dense`).
    crate::sharding::exact_sums_over_dense(train.len(), range, threads, |j, scratch| {
        accumulate_single(train, test.x.row(j), test.y[j], k, |i, s| scratch[i] = s);
    })
}

/// [`knn_class_shapley_shard`] fed by a precomputed graph instead of a
/// fresh distance pass.
///
/// The graph stores exactly the ranking [`argsort_by_distance`] produces
/// (same per-pair arithmetic, same tie-break), so the partial — and any
/// merge it participates in — is bitwise-identical to the brute-force
/// shard's, and carries the *same* kind and fingerprint: graph-backed and
/// brute-force partials of one job inter-merge freely.
///
/// Panics if the graph was not built from exactly `(train.x, test.x)`; CLI
/// entry points validate first and report a proper error.
pub fn knn_class_shapley_graph_shard(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    graph: &KnnGraph,
    spec: ShardSpec,
    threads: usize,
) -> ShardPartial {
    assert!(!test.is_empty(), "need at least one test point");
    graph
        .validate_against(&train.x, &test.x)
        .expect("graph/dataset mismatch");
    let range = spec.range(test.len());
    let sums = graph_shard_sums(train, test, k, graph, range.clone(), threads);
    let fingerprint = class_fingerprint(train, test, k);
    ShardPartial::new(
        ShardKind::ExactClass,
        fingerprint,
        train.len(),
        test.len(),
        range,
        sums,
    )
}

/// The graph-backed fold: identical to [`shard_sums`] except each test
/// point's ranking comes from the artifact instead of an argsort.
fn graph_shard_sums(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    graph: &KnnGraph,
    range: std::ops::Range<usize>,
    threads: usize,
) -> ExactVec {
    crate::sharding::exact_sums_over_dense(train.len(), range, threads, |j, scratch| {
        accumulate_ranked(train, graph.list(j), test.y[j], k, |i, s| scratch[i] = s);
    })
}

/// [`knn_class_shapley_with_threads`] fed by a precomputed graph: skips the
/// O(N·N_test·d) distance pass, returns the same bits.
pub fn knn_class_shapley_from_graph(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    graph: &KnnGraph,
    threads: usize,
) -> ShapleyValues {
    assert!(!test.is_empty(), "need at least one test point");
    graph
        .validate_against(&train.x, &test.x)
        .expect("graph/dataset mismatch");
    let sums = graph_shard_sums(train, test, k, graph, 0..test.len(), threads);
    crate::sharding::finalize_mean(&sums, test.len() as u64)
}

/// Exact SVs w.r.t. a whole test set (utility eq. 8): the average of the
/// per-test-point SVs, computed with `threads` workers.
pub fn knn_class_shapley_with_threads(
    train: &ClassDataset,
    test: &ClassDataset,
    k: usize,
    threads: usize,
) -> ShapleyValues {
    assert!(!test.is_empty(), "need at least one test point");
    assert_eq!(train.dim(), test.dim(), "train/test dimension mismatch");
    let sums = shard_sums(train, test, k, 0..test.len(), threads);
    crate::sharding::finalize_mean(&sums, test.len() as u64)
}

/// [`knn_class_shapley_with_threads`] with the workspace default worker
/// count ([`knnshap_parallel::current_threads`]: `KNNSHAP_THREADS`, else one
/// per core).
///
/// ```
/// use knnshap_core::exact_unweighted::knn_class_shapley;
/// use knnshap_core::utility::{KnnClassUtility, Utility};
/// use knnshap_datasets::synth::blobs::{self, BlobConfig};
///
/// let cfg = BlobConfig { n: 150, dim: 4, n_classes: 3, ..Default::default() };
/// let train = blobs::generate(&cfg);
/// let test = blobs::queries(&cfg, 10, 42);
/// let sv = knn_class_shapley(&train, &test, 5);
/// // group rationality: the values distribute exactly the model's utility
/// let u = KnnClassUtility::unweighted(&train, &test, 5);
/// assert!((sv.total() - u.grand()).abs() < 1e-9);
/// ```
pub fn knn_class_shapley(train: &ClassDataset, test: &ClassDataset, k: usize) -> ShapleyValues {
    knn_class_shapley_with_threads(train, test, k, knnshap_parallel::current_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_enum::shapley_enumeration;
    use crate::utility::{KnnClassUtility, Utility};
    use knnshap_datasets::Features;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(seed: u64, n: usize, classes: u32) -> (ClassDataset, ClassDataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let feats: Vec<f32> = (0..n * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
        let train = ClassDataset::new(Features::new(feats, 2), labels, classes);
        let tfeats: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let tlabels: Vec<u32> = (0..3).map(|_| rng.gen_range(0..classes)).collect();
        let test = ClassDataset::new(Features::new(tfeats, 2), tlabels, classes);
        (train, test)
    }

    #[test]
    fn matches_enumeration_single_test() {
        for seed in 0..8u64 {
            for k in [1usize, 2, 3, 7, 12] {
                let (train, test) = random_instance(seed, 9, 3);
                let single =
                    ClassDataset::new(Features::new(test.x.row(0).to_vec(), 2), vec![test.y[0]], 3);
                let fast = knn_class_shapley_single(&train, test.x.row(0), test.y[0], k);
                let truth = shapley_enumeration(&KnnClassUtility::unweighted(&train, &single, k));
                assert!(
                    fast.max_abs_diff(&truth) < 1e-10,
                    "seed={seed} k={k}: {:?} vs {:?}",
                    fast.as_slice(),
                    truth.as_slice()
                );
            }
        }
    }

    #[test]
    fn matches_enumeration_multi_test() {
        for seed in [3u64, 17, 99] {
            let (train, test) = random_instance(seed, 8, 2);
            let fast = knn_class_shapley_with_threads(&train, &test, 2, 1);
            let truth = shapley_enumeration(&KnnClassUtility::unweighted(&train, &test, 2));
            assert!(fast.max_abs_diff(&truth) < 1e-10, "seed={seed}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (train, test) = random_instance(5, 40, 3);
        let serial = knn_class_shapley_with_threads(&train, &test, 3, 1);
        let par = knn_class_shapley_with_threads(&train, &test, 3, 4);
        assert!(serial.max_abs_diff(&par) < 1e-12);
    }

    #[test]
    fn group_rationality() {
        // Σ s_i = ν(I) (classification has ν(∅) = 0).
        let (train, test) = random_instance(11, 25, 3);
        for k in [1usize, 4, 25, 40] {
            let sv = knn_class_shapley_with_threads(&train, &test, k, 2);
            let u = KnnClassUtility::unweighted(&train, &test, k);
            assert!(
                (sv.total() - u.grand()).abs() < 1e-9,
                "k={k}: {} vs {}",
                sv.total(),
                u.grand()
            );
        }
    }

    #[test]
    fn nearest_correct_point_is_most_valuable_k1() {
        // With K=1 and a single test point, the nearest correct-label point
        // must receive the largest SV.
        let train = ClassDataset::new(
            Features::new(vec![0.1, 0.9, 2.0, 3.0], 1),
            vec![1, 0, 1, 0],
            2,
        );
        let sv = knn_class_shapley_single(&train, &[0.0], 1, 1);
        let ranking = sv.ranking();
        assert_eq!(ranking[0], 0);
    }

    #[test]
    fn farthest_point_value_formula() {
        // s_{α_N} = 1[y_{α_N} = y_test] / N exactly.
        let train = ClassDataset::new(Features::new(vec![0.0, 1.0, 10.0], 1), vec![0, 0, 0], 1);
        let sv = knn_class_shapley_single(&train, &[0.0], 0, 2);
        assert!((sv[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_training_point() {
        let train = ClassDataset::new(Features::new(vec![0.5], 1), vec![1], 2);
        let sv = knn_class_shapley_single(&train, &[0.0], 1, 3);
        // ν({0}) = 1/K = 1/3; s_0 = 1/3 (efficiency with one player)
        assert!((sv[0] - 1.0 / 3.0).abs() < 1e-12);
        let sv_wrong = knn_class_shapley_single(&train, &[0.0], 0, 3);
        assert_eq!(sv_wrong[0], 0.0);
    }

    #[test]
    fn wrong_label_points_never_exceed_correct_at_same_rank() {
        // All-same-distance degenerate case: ties broken by index; just check
        // the recursion runs and values are finite and bounded by 1/K.
        let train = ClassDataset::new(Features::new(vec![1.0; 6], 1), vec![0, 1, 0, 1, 0, 1], 2);
        let sv = knn_class_shapley_single(&train, &[1.0], 0, 2);
        for i in 0..6 {
            assert!(sv[i].abs() <= 0.5 + 1e-12);
            assert!(sv[i].is_finite());
        }
    }
}
